"""The paper's intro story, investigated interactively.

"Queries to the RepDB database used for report generation have a 30% slow
down in response time, compared to performance two weeks back."  Instead of
the DBA/SAN-admin blame game, an administrator steps through the DIADS
workflow screen by screen — the text renderings mirror Figures 3, 6 and 7.

Run:  python examples/interactive_investigation.py
"""

from repro.core import Diads, build_apg
from repro.core.report import (
    render_apg_browser,
    render_query_table,
    render_workflow_screen,
)
from repro.lab import scenario_san_misconfiguration


def main() -> None:
    bundle = scenario_san_misconfiguration(hours=12).run()
    query = bundle.query_name

    # --- Figure 3: the query-selection screen ---------------------------
    print(render_query_table(bundle.stores.runs, query, limit=10))
    print()

    # --- Figure 6: browse the APG around a suspicious operator ----------
    apg = build_apg(bundle, query)
    print(render_apg_browser(apg, "O22"))
    print()

    # --- Figure 7: step through the workflow, intervening as we go ------
    session = Diads.from_bundle(bundle).interactive(query)
    print(render_workflow_screen(session))
    while not session.finished:
        result = session.run_next()
        print(f"\n-> executed {result.module}: {result.summary}")
        if result.module == "CO":
            # The admin inspects COS and re-runs the module, as the paper's
            # interactive mode allows ("each module can be re-executed as
            # many times as needed").
            top = result.top(5)
            print("   top anomalous operators:",
                  ", ".join(f"{op}={score:.2f}" for op, score in top))
            session.rerun("CO")
    print()
    print(render_workflow_screen(session))

    # --- the verdict -----------------------------------------------------
    print()
    print(session.report().render())


if __name__ == "__main__":
    main()
