"""Online monitoring with auto-triggered diagnosis — the closed loop.

The paper's workflow is reactive: an administrator notices slow runs, marks
them unsatisfactory, and only then does DIADS investigate.  The streaming
subsystem removes the human: a :class:`FleetSupervisor` watches several
environments at once, online detectors (EWMA drift over volume response
times + a response-time SLO over the query's run stream) open incidents the
moment a degradation appears, runs are auto-marked, and every incident gets
a full pipeline diagnosis attached — all while the simulation keeps running.

The fleet here mixes three persistent faults with one *flapping* SAN
misconfiguration (the offending workload comes and goes on a duty cycle),
which exercises incident deduplication and cooldown.

Run:  python examples/online_watch.py
CLI:  python -m repro.cli watch --hours 8
"""

from repro import FleetSupervisor
from repro.cli import DEFAULT_WATCH_FLEET, SCENARIOS

HOURS = 8.0

supervisor = FleetSupervisor(
    chunk_s=1800.0,      # detectors + diagnosis run every simulated 30 min
    cooldown_s=7200.0,   # a resolved target stays quiet for 2 h
    max_workers=4,       # environments advance (and diagnose) concurrently
)
# The stock `repro watch` fleet: three persistent faults + one flapping.
for name in DEFAULT_WATCH_FLEET:
    supervisor.watch_scenario(SCENARIOS[name](hours=HOURS))

# Advance the whole fleet chunk by chunk, narrating resolved incidents.
elapsed = 0.0
while elapsed < HOURS * 3600.0:
    for incident in supervisor.tick():
        print(
            f"t={elapsed / 3600.0 + 0.5:4.1f}h  {incident.incident_id:<40} "
            f"{incident.severity.value:<8} -> {incident.top_cause_id}"
        )
    elapsed += supervisor.chunk_s

print()
print(supervisor.render_table())

# Every detection the fleet produced, folded into few incidents:
total_detections = sum(
    sum(len(i.detections) for i in w.manager.incidents) + w.manager.suppressed
    for w in supervisor.watched.values()
)
incidents = supervisor.incidents()
diagnosed = [i for i in incidents if i.report is not None]
print(
    f"\n{total_detections} detections -> {len(incidents)} incidents "
    f"({len(diagnosed)} diagnosed) across {len(supervisor.watched)} environments"
)

# The incident is the ops ticket: JSON-ready, report attached.
sample = diagnosed[0].to_dict()
print(f"\nexample ticket {sample['incident_id']}: severity={sample['severity']}, "
      f"top cause={sample['report']['causes'][0]['cause_id']}")
