"""Section 7 extensions: what-if analysis for integrated DB + SAN planning.

Before changing anything in production, the administrator asks:
 1. What happens to the report query if another application adds I/O load to
    V2's pool?
 2. What if we move the supplier tablespace off the contended V1 onto V2?
 3. Would raising random_page_cost change any plans?

Run:  python examples/whatif_planning.py
"""

from repro.core import Diads, WhatIfAnalyzer
from repro.lab import scenario_san_misconfiguration


def main() -> None:
    # A healthy-ish environment (take the bundle before judging): the
    # analyzer works on whatever monitoring history exists.
    bundle = scenario_san_misconfiguration(hours=12).run()
    query = bundle.query_name
    analyzer = WhatIfAnalyzer(bundle.bundle)

    print("=== 1. Adding a 300-IOPS workload to V2 ===")
    outcome = analyzer.add_workload(query, "V2", read_iops=200.0, write_iops=100.0)
    print(f"  baseline query duration : {outcome.baseline_duration:.2f}s")
    print(f"  predicted duration      : {outcome.predicted_duration:.2f}s "
          f"({outcome.slowdown_pct:+.1f}%)")
    print(f"  V2 read latency         : {outcome.volume_latency_before['V2']:.2f} -> "
          f"{outcome.volume_latency_after['V2']:.2f} ms")

    print()
    print("=== 2. Same workload on V4 (shares P2's disks with V2) ===")
    outcome = analyzer.add_workload(query, "V4", read_iops=200.0, write_iops=100.0)
    print(f"  predicted slowdown: {outcome.slowdown_pct:+.1f}%  "
          "(shared spindles: the query suffers even though V4 isn't its volume)")

    print()
    print("=== 3. Moving the supplier tablespace from V1 to V2 ===")
    outcome = analyzer.move_tablespace(query, "supplier", "V2")
    print(f"  baseline  : {outcome.baseline_duration:.2f}s")
    print(f"  predicted : {outcome.predicted_duration:.2f}s "
          f"({outcome.slowdown_pct:+.1f}%)")
    print("  (during the V1 contention this is the mitigation a consultant")
    print("   would propose; the prediction quantifies it before anyone")
    print("   migrates a byte)")

    print()
    print("=== And after the fact: the diagnosis the planning avoided ===")
    report = Diads.from_bundle(bundle).diagnose(query)
    print(f"  {report.top_cause.describe()}")


if __name__ == "__main__":
    main()
