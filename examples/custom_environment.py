"""Building a custom environment: your own SAN, schema, workload and fault.

The library is a toolkit, not just a replayer of the paper's testbed.  This
example assembles a two-pool SAN from scratch, lays a small star schema over
it, runs an optimizer-planned reporting query, injects a RAID rebuild, and
diagnoses the resulting slowdown.

Run:  python examples/custom_environment.py
"""

from repro.core import Diads
from repro.db import Catalog, Column, Index, Table, Tablespace
from repro.db.query import JoinEdge, Predicate, QuerySpec
from repro.lab import Environment, FaultInjector, QueryJob
from repro.san import Testbed, TopologyBuilder


def build_san() -> Testbed:
    b = TopologyBuilder()
    b.server("app-db", name="warehouse db server")
    b.hba("hba", "app-db", ports=2)
    b.switch("sw0")
    b.subsystem("array", name="storage array", ports=2)
    b.pool("pool-fact", "array", raid_level="RAID10")
    b.pool("pool-dim", "array", raid_level="RAID5")
    b.disks("pool-fact", [f"fd{i}" for i in range(6)], max_iops=200.0)
    b.disks("pool-dim", [f"dd{i}" for i in range(4)], max_iops=160.0)
    b.volume("vol-fact", "pool-fact", size_gb=800.0)
    b.volume("vol-dim", "pool-dim", size_gb=100.0)
    b.cable("hba-p0", "sw0").cable("hba-p1", "sw0").cable("sw0", "array")
    b.zone("prod", ["hba-p0", "hba-p1", "array-p0", "array-p1"])
    b.lun("vol-fact", "app-db").lun("vol-dim", "app-db")
    return Testbed(
        topology=b.topology,
        access=b.access,
        db_server_id="app-db",
        subsystem_id="array",
        pool1_id="pool-fact",
        pool2_id="pool-dim",
        volume_ids={"V1": "vol-fact", "V2": "vol-dim", "V3": "vol-dim", "V4": "vol-dim"},
    )


def build_schema() -> Catalog:
    catalog = Catalog()
    catalog.add_tablespace(Tablespace(name="ts_fact", volume_id="vol-fact"))
    catalog.add_tablespace(Tablespace(name="ts_dim", volume_id="vol-dim"))
    catalog.add_table(
        Table(
            name="sales",
            row_count=2_000_000,
            row_width=96,
            tablespace="ts_fact",
            columns={
                "sale_id": Column("sale_id", ndv=2_000_000),
                "store_id": Column("store_id", ndv=500),
                "day": Column("day", ndv=730),
            },
        )
    )
    catalog.add_table(
        Table(
            name="stores",
            row_count=500,
            row_width=120,
            tablespace="ts_dim",
            columns={
                "store_id": Column("store_id", ndv=500),
                "region": Column("region", ndv=12),
            },
        )
    )
    catalog.create_index(Index(name="ix_sales_store", table="sales", column="store_id"))
    catalog.create_index(Index(name="pk_stores", table="stores", column="store_id", unique=True))
    return catalog


def reporting_query() -> QuerySpec:
    return QuerySpec(
        name="regional-sales",
        tables=["sales", "stores"],
        predicates=[Predicate("stores", "region", 1.0 / 12.0, "region = 'WEST'")],
        joins=[JoinEdge("sales", "store_id", "stores", "store_id")],
        aggregate=True,
    )


def main() -> None:
    env = Environment(testbed=build_san(), catalog=build_schema(), seed=3)
    env.add_job(
        QueryJob(name="regional-sales", period_s=1800.0, first_run_s=600.0,
                 spec=reporting_query())
    )
    # fault: a fact-pool disk dies and rebuilds for four hours
    FaultInjector(env).raid_rebuild(
        at=6 * 3600.0, disk_id="fd0", duration_s=4 * 3600.0, capacity_factor=0.4
    )

    print("Simulating 12 hours on the custom environment...")
    bundle = env.run(12 * 3600.0)
    bundle.stores.runs.label_by_window("regional-sales", 6 * 3600.0, 10 * 3600.0)

    report = Diads.from_bundle(bundle).diagnose("regional-sales")
    print()
    print(report.render())

    top = report.top_cause
    assert top.match.cause_id == "raid-rebuild-degradation", top.match.cause_id
    print()
    print(f"Diagnosed: {top.match.cause_id} on {top.match.binding} "
          f"(impact {top.impact_pct:.1f}%)")


if __name__ == "__main__":
    main()
