"""Concurrent database + SAN problems, and why silo tools get them wrong.

Scenario 4 of Table 1: a DML batch changes data properties at the same time
as a SAN misconfiguration creates contention on V1.  DIADS identifies both
and ranks them by impact; the silo baselines (SAN-only, DB-only,
pure-correlation) each tell a misleading story.

Run:  python examples/concurrent_problems.py
"""

from repro.core import (
    CorrelationOnlyDiagnoser,
    DbOnlyDiagnoser,
    Diads,
    SanOnlyDiagnoser,
)
from repro.lab import scenario_concurrent_db_san


def main() -> None:
    bundle = scenario_concurrent_db_san(hours=24).run()
    query = bundle.query_name

    print("=== DIADS (integrated) ===")
    report = Diads.from_bundle(bundle).diagnose(query)
    for i, ranked in enumerate(report.ranked_causes, start=1):
        if ranked.match.confidence.value == "low":
            break
        print(f"  {i}. {ranked.describe()}")

    print()
    print("=== SAN-only tool ===")
    for finding in SanOnlyDiagnoser().diagnose(bundle, query):
        print(f"  - {finding.describe()}")
    print("  (volume-level contention found, but the concurrent data-property")
    print("   change is invisible to a storage tool)")

    print()
    print("=== DB-only tool ===")
    for finding in DbOnlyDiagnoser().diagnose(bundle, query):
        print(f"  - {finding.describe()}")
    print("  (operators pinpointed, but the SAN misconfiguration cannot be")
    print("   seen; the usual database suspects are raised instead)")

    print()
    print("=== Pure-correlation tool (no domain knowledge) ===")
    for finding in CorrelationOnlyDiagnoser().diagnose(bundle, query):
        print(f"  - {finding.describe()}")
    print("  (event flooding: every co-moving metric looks like a cause)")


if __name__ == "__main__":
    main()
