"""Durable, restart-survivable monitoring — kill the watch, resume it.

Everything in the closed loop now persists through the unified
telemetry-store API (:mod:`repro.storage`): a ``FleetSupervisor`` given a
``state_dir`` journals every incident transition (open → diagnosing →
resolved) through a crash-safe JSONL backend and checkpoints detector +
dedup/cooldown state after every chunk.  A second supervisor pointed at the
same directory resumes exactly where the first one died and finishes with
the byte-identical incident history an uninterrupted run would produce.

This script demonstrates the kill/resume cycle in-process: the first
supervisor simply stops halfway (as if SIGKILLed — it never shuts down
cleanly) and a fresh one takes over.

Run:  python examples/durable_watch.py
CLI:  python -m repro.cli watch --hours 8 --state-dir ./state
      python -m repro.cli incidents --state-dir ./state
"""

import shutil
import tempfile
from pathlib import Path

from repro import FleetSupervisor, IncidentStore
from repro.lab.scenarios import scenario_flapping_san_misconfiguration

HOURS = 6.0
STATE = Path(tempfile.mkdtemp(prefix="repro-durable-watch-"))


def make_supervisor() -> FleetSupervisor:
    supervisor = FleetSupervisor(chunk_s=1800.0, cooldown_s=7200.0, state_dir=STATE)
    supervisor.watch_scenario(scenario_flapping_san_misconfiguration(hours=HOURS))
    return supervisor


# --- first life: dies halfway through, no clean shutdown --------------------
first = make_supervisor()
first.run(HOURS * 3600.0 / 2)
print(f"first process 'killed' at t={first.advanced_s / 3600.0:.1f}h "
      f"with {len(first.incidents())} incident(s)")
del first

# --- second life: resumes from the checkpoint -------------------------------
second = make_supervisor()
covered = second.resume()
print(f"resumed from checkpoint at t={covered / 3600.0:.1f}h "
      f"({len(second.incidents())} incident(s) restored)")
second.run(HOURS * 3600.0 - covered)

print(f"\nfinal history after {HOURS:g} simulated hours:")
for incident in second.incidents():
    print(f"  {incident.incident_id:<42} {incident.state.value:<10} "
          f"{incident.severity.value:<9} -> {incident.top_cause_id}")

# --- the journal outlives every process -------------------------------------
journal = IncidentStore.open(STATE)
print(f"\ndurable journal holds {len(journal.history())} ticket(s), "
      f"{len(journal.history(state='resolved'))} resolved")
journal.close()

shutil.rmtree(STATE, ignore_errors=True)
