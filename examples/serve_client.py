"""A REST/SSE client for the ``repro serve`` fleet service, stdlib only.

Walks the full tenant lifecycle against a running server:

1. create a tenant,
2. register a fleet from a scenario spec,
3. start the watch,
4. follow the tenant's live SSE event stream,
5. query the incident and fleet-incident histories.

Start a server in one terminal::

    python -m repro.cli serve --state-root /tmp/fleet --port 8787

then run this client in another::

    python examples/serve_client.py --url http://127.0.0.1:8787

With ``--state-root`` instead of ``--url`` the client reads the server's
``serve.json`` manifest to discover the bound port (handy with ``--port 0``).
``--until fleet-incident`` returns as soon as the first incident streams by
and a fleet incident is correlated — leaving the watch running server-side —
which is how the CI smoke drives a mid-watch SIGKILL.  Exits non-zero on any
failure.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time
from pathlib import Path

FLEET_SPEC = {
    "scenarios": ["shared-pool-saturation"],
    "seed": 7,
    "min_members": 2,
    "chunk_minutes": 30.0,
}


class Client:
    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    def request(self, method: str, path: str, body: dict | None = None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=60)
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(method, path, body=payload)
            response = conn.getresponse()
            raw = response.read()
            return response.status, (json.loads(raw) if raw else None)
        finally:
            conn.close()

    def expect(self, method: str, path: str, body: dict | None = None, *, ok=(200, 201)):
        status, payload = self.request(method, path, body)
        if status not in ok:
            raise SystemExit(f"{method} {path} -> {status}: {payload}")
        return payload

    def stream(self, path: str):
        """Yield parsed SSE frames from ``path`` until the caller stops."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=120)
        conn.request("GET", path)
        response = conn.getresponse()
        buffer = b""
        try:
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    return
                buffer += chunk
                while b"\n\n" in buffer:
                    raw, buffer = buffer.split(b"\n\n", 1)
                    frame: dict = {}
                    for line in raw.decode().split("\n"):
                        if line.startswith("id: "):
                            frame["id"] = int(line[4:])
                        elif line.startswith("event: "):
                            frame["event"] = line[7:]
                        elif line.startswith("data: "):
                            frame["data"] = json.loads(line[6:])
                    if frame:
                        yield frame
        finally:
            conn.close()


def discover(args: argparse.Namespace) -> tuple[str, int]:
    if args.url:
        host, _, port = args.url.partition("://")[2].partition(":")
        return host, int(port)
    manifest = Path(args.state_root) / "serve.json"
    deadline = time.time() + 30
    while time.time() < deadline:
        try:
            data = json.loads(manifest.read_text())
            return data["host"], data["port"]
        except (OSError, ValueError, KeyError):
            time.sleep(0.1)
    raise SystemExit(f"no server manifest at {manifest}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", help="server base URL, e.g. http://127.0.0.1:8787")
    target.add_argument("--state-root", help="read host/port from <root>/serve.json")
    parser.add_argument("--tenant", default="example")
    parser.add_argument("--hours", type=float, default=6.0)
    parser.add_argument(
        "--until",
        choices=("done", "fleet-incident"),
        default="done",
        help="stop following the stream at watch completion, or as soon as "
        "the first incident streams by and a fleet incident is correlated "
        "(watch keeps running)",
    )
    args = parser.parse_args(argv)
    client = Client(*discover(args))

    health = client.expect("GET", "/healthz")
    print(f"server ok: backend={health['backend']} tenants={health['tenants']}")

    client.expect("POST", "/v1/tenants", {"tenant_id": args.tenant}, ok=(201, 409))
    spec = dict(FLEET_SPEC, hours=args.hours)
    fleet = client.expect("POST", f"/v1/tenants/{args.tenant}/fleets", spec)
    print(f"fleet registered: {len(fleet['members'])} members")
    client.expect("POST", f"/v1/tenants/{args.tenant}/watch/start")

    incident_events = 0
    for frame in client.stream(f"/v1/tenants/{args.tenant}/events"):
        kind = frame.get("event", "")
        if kind == "incident_opened":
            incident_events += 1
            event = frame["data"]["event"]
            print(f"  [{frame['id']}] {event['env']}: incident {event['incident_id']}")
        if args.until == "fleet-incident" and incident_events:
            break  # the watch keeps running server-side
        if kind == "fleet_done":
            break

    if incident_events == 0:
        raise SystemExit("stream carried no incident_opened events")

    history = client.expect("GET", f"/v1/tenants/{args.tenant}/incidents")
    print(f"incident history: {len(history['incidents'])} ticket(s)")
    if not history["incidents"]:
        raise SystemExit("incident history is empty")

    # Mid-run the correlation may be a beat behind the stream; poll briefly.
    deadline = time.time() + 30
    fleet_incidents = []
    while time.time() < deadline and not fleet_incidents:
        payload = client.expect("GET", f"/v1/tenants/{args.tenant}/fleet-incidents")
        fleet_incidents = payload["fleet_incidents"]
        if not fleet_incidents:
            time.sleep(0.2)
    if not fleet_incidents:
        raise SystemExit("no fleet incident correlated")
    top = fleet_incidents[0]
    print(
        f"fleet incident {top['fleet_id']}: component {top['component_id']} "
        f"({len(top['members'])} members, confidence {top['confidence']:.2f})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
