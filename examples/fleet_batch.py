"""Fleet-scale batch diagnosis and a plug-in module, on the pipeline engine.

Two things the pipeline redesign makes possible:

1. **Batch over many bundles** — a fleet of databases each producing its own
   monitoring bundle, diagnosed concurrently through
   ``DiagnosisPipeline.diagnose_many`` (the CLI equivalent is
   ``python -m repro.cli batch all``).
2. **Third-party modules** — a custom drill-down registered with
   ``@register_module`` plugs into ``Diads`` without touching the engine.

Run:  python examples/fleet_batch.py
"""

from repro import (
    Diads,
    all_table1_scenarios,
    default_pipeline,
    register_module,
)
from repro.core.modules.base import DiagnosisContext, ModuleResult


# --- a third-party module: no engine edits, just a registration -----------
@register_module
class TicketSummaryModule:
    """Condense the diagnosis into a one-line ops-ticket subject."""

    name = "TICKET"
    requires = ("SD",)
    after = ("IA",)

    def run(self, ctx: DiagnosisContext) -> ModuleResult:
        sd = ctx.result("SD")
        top = sd.matches[0] if sd.matches else None
        subject = (
            f"[{top.confidence.value}] {ctx.query_name}: {top.description}"
            if top
            else f"{ctx.query_name}: no root cause matched"
        )
        result = ModuleResult(module=self.name, summary=subject)
        ctx.set_result(result)
        return result


def main() -> None:
    # 1. Simulate the fleet: every Table-1 scenario is its own "database",
    #    i.e. its own monitoring bundle with a slow query inside.
    print("Simulating the Table-1 fleet (8 hours each)...")
    fleet = [scenario.run() for scenario in all_table1_scenarios(hours=8)]

    # 2. One engine, many bundles: fan the whole fleet over a thread pool.
    pipeline = default_pipeline()
    reports = pipeline.diagnose_many(fleet, max_workers=8)

    print(f"\n{len(reports)} queries diagnosed concurrently:\n")
    for bundle, report in zip(fleet, reports):
        top = report.top_cause
        verdict = top.display_id if top else "(no cause)"
        skipped = f" (skipped: {', '.join(report.skipped)})" if report.skipped else ""
        print(f"  {bundle.info.name:<32} -> {verdict}{skipped}")

    # 3. The plug-in module in action on one bundle: ``modules=`` extends
    #    the classic six by registered name — the engine slots TICKET after
    #    IA because of its requires/after declarations.
    first = fleet[0]
    diads = Diads.from_bundle(
        first, modules=["PD", "CO", "CR", "DA", "SD", "IA", "TICKET"]
    )
    report = diads.diagnose(first.query_name)
    print(f"\nPipeline order with the plug-in: {' -> '.join(diads.pipeline.order)}")
    print(f"Ticket subject: {report.context.result('TICKET').summary}")


if __name__ == "__main__":
    main()
