"""Quickstart: diagnose a query slowdown end-to-end.

Reproduces the paper's headline scenario in ~30 lines: a report query on a
PostgreSQL-like database slows down after a SAN misconfiguration maps a new
volume onto the disks backing V1.  DIADS drills down from the query to the
volume and names the misconfiguration, with the impact score attached.

Run:  python examples/quickstart.py
"""

from repro import Diads, scenario_san_misconfiguration


def main() -> None:
    # 1. Simulate a day of the paper's testbed: TPC-H Q2 every 30 minutes on
    #    volumes V1/V2, with the misconfiguration injected at noon.  The
    #    scenario also labels runs (before noon satisfactory, after not) —
    #    the administrator's only manual step.
    print("Simulating the testbed (24 hours, fault at noon)...")
    scenario = scenario_san_misconfiguration(hours=24)
    bundle = scenario.run()

    runs = bundle.stores.runs.runs(bundle.query_name)
    good = [r.duration for r in runs if r.satisfactory]
    bad = [r.duration for r in runs if r.satisfactory is False]
    print(
        f"  {len(runs)} query executions recorded; "
        f"median {sorted(good)[len(good) // 2]:.1f}s before the fault, "
        f"{sorted(bad)[len(bad) // 2]:.1f}s after"
    )

    # 2. Diagnose.  DIADS sees only the monitoring stores — never the
    #    injected fault.
    report = Diads.from_bundle(bundle).diagnose(bundle.query_name)

    # 3. Read the verdict.
    print()
    print(report.render())
    print()
    top = report.top_cause
    print(f"Ground truth: {scenario.info.ground_truth[0]}")
    print(f"Diagnosed:    {top.match.cause_id} on {top.match.binding} "
          f"({top.match.confidence.value} confidence, "
          f"impact {top.impact_pct:.1f}%)")


if __name__ == "__main__":
    main()
