"""Fleet correlation — one shared-pool outage, eight environments, ONE report.

A misconfigured volume lands on a pool shared by six of eight environments.
Watched independently, that is a dozen "unrelated" incidents and a dozen
redundant pipeline runs.  With the cross-environment correlator
(:mod:`repro.correlate`) wired into the supervisor:

1. the streaming engine notices the co-occurring incident opens across the
   pool's membership and merges them into one ``FleetIncident``;
2. the shared-root-cause drill-down ranks the shared components across the
   member bundles (dependency paths x metric/duration correlation) and
   names the pool — out-ranking the also-shared core switch, because two
   attached-but-healthy members are evidence against the switch;
3. every member incident is resolved with the fleet-level report instead of
   paying its own six-module diagnosis;
4. the control experiment shows co-location alone is not correlation.

Run:  python examples/fleet_correlation.py
CLI:  python -m repro.cli watch shared-pool-saturation --hours 8 --state-dir ./state
      python -m repro.cli correlate --state-dir ./state
"""

from repro import FleetSupervisor
from repro.correlate import (
    fabric_coincidental_independent_faults,
    fabric_shared_pool_saturation,
)

HOURS = 8.0

# --- shared-pool outage: 8 environments, 6 attached to the faulty pool ------
fabric = fabric_shared_pool_saturation(hours=HOURS, n_envs=8, attached=6)
engine = fabric.correlator()  # keyed by the fabric's shared-component map
supervisor = FleetSupervisor(correlator=engine, cooldown_s=HOURS * 3600.0)
fabric.watch_all(supervisor)
supervisor.run(HOURS * 3600.0)

for group in engine.fleet_incidents():
    print(f"{group.fleet_id}: {len(group.members)} member incidents across "
          f"{len(group.member_envs)} environments, confidence "
          f"{group.confidence:.2f}, {group.state.value}")
    for cause in group.report_data["causes"]:
        print(f"  {cause['cause_id']:<28} score {cause['score']:.2f} "
              f"(coverage {cause['coverage']:.2f}, "
              f"correlation {cause['correlation']:.2f})")

print("\nmember incidents (all short-circuited by the fleet report):")
for incident in supervisor.incidents():
    print(f"  {incident.incident_id:<28} {incident.state.value:<9} "
          f"-> {incident.top_cause_id}")

# --- the control: shared infrastructure, independent staggered faults -------
control = fabric_coincidental_independent_faults(hours=HOURS)
control_engine = control.correlator()
control_supervisor = FleetSupervisor(correlator=control_engine)
control.watch_all(control_supervisor)
control_supervisor.run(HOURS * 3600.0)

opened = sum(len(w.manager.incidents) for w in control_supervisor.watched.values())
print(f"\ncontrol fabric: {opened} independent incident(s), "
      f"{len(control_engine.fleet_incidents())} merged group(s) "
      "(co-location alone is not correlation)")
