"""Module PD in action: a dropped index flips the plan, DIADS replays the
optimizer to prove it, and what-if analysis validates the fix.

Run:  python examples/plan_regression.py
"""

from repro.core import Diads, WhatIfAnalyzer
from repro.db import render_plan
from repro.lab import scenario_plan_regression


def main() -> None:
    bundle = scenario_plan_regression(hours=12, via="index_drop").run()
    query = bundle.query_name

    # Show the plan change as recorded in the runs themselves.
    runs = bundle.stores.runs.runs(query)
    before = next(r for r in runs if r.satisfactory)
    after = next(r for r in runs if r.satisfactory is False)
    print("Plan during satisfactory runs:")
    print(render_plan(before.plan))
    print(f"  duration ~{before.duration:.2f}s")
    print()
    print("Plan during unsatisfactory runs:")
    print(render_plan(after.plan))
    print(f"  duration ~{after.duration:.2f}s")
    print()

    # Diagnose: PD takes the plan-change branch of the workflow.
    report = Diads.from_bundle(bundle).diagnose(query)
    pd = report.module_result("PD")
    print(f"Module PD: {pd.summary}")
    for cause in pd.causes:
        print(f"  - {cause.describe()}")
    print()
    print(f"Verdict: {report.top_cause.describe()}")
    print()

    # What-if: confirm that re-creating the index restores the cheap plan.
    analyzer = WhatIfAnalyzer(bundle.bundle)
    original_index = bundle.initial_catalog.index("ix_partsupp_suppkey")
    outcome = analyzer.replan_under(query, create_indexes=(original_index,))
    print("What-if: CREATE INDEX ix_partsupp_suppkey ...")
    print(f"  plan changes: {outcome.plan_changes}")
    print(f"  estimated cost: {outcome.current_cost:.0f} -> "
          f"{outcome.hypothetical_cost:.0f} "
          f"({outcome.cost_ratio:.2f}x)")
    print(render_plan(outcome.hypothetical_plan))


if __name__ == "__main__":
    main()
