"""Observability in-process — trace a watch, then read the journal back.

``repro.obs`` records what the runtime *spends* without touching what it
*computes*: spans carry both the simulated instant they belong to and the
wall time they took, metrics count what an operator would watch live, and
everything lands write-only under ``state_dir/obs/`` — next to (never
inside) the checkpoint, so resume stays byte-for-byte identical with
observability on.

This script enables observability, runs a small fleet with a state dir,
then reads the sidecar back through the export API: a per-span duration
table, the per-tick critical path, and the latest metrics snapshot.  The
same data backs ``repro trace`` / ``repro metrics``, and
``repro trace --chrome out.json`` renders it in Perfetto.

Run:  python examples/traced_watch.py
CLI:  python -m repro.cli watch --hours 6 --state-dir ./state --stats
      python -m repro.cli trace --state-dir ./state --critical-path
      python -m repro.cli metrics --state-dir ./state
"""

import shutil
import tempfile
from pathlib import Path

from repro import FleetSupervisor
from repro.lab.scenarios import (
    scenario_flapping_san_misconfiguration,
    scenario_lock_contention,
)
from repro.obs import (
    critical_path,
    disable,
    enable,
    load_metric_snapshots,
    load_spans,
    metrics,
    span,
    summarize,
)

HOURS = 6.0
STATE = Path(tempfile.mkdtemp(prefix="repro-traced-watch-"))

# Observability is off by default and zero-cost when off.  `repro watch
# --stats` flips the same switch; REPRO_OBS=1 works for any entry point.
enable()

# --- a traced watch ---------------------------------------------------------
# Instrumenting your own code is one context manager: the span nests under
# whatever is currently open (across Scheduler.call and pool threads) and
# journals its simulated time + wall duration when it closes.
with span("example.setup"):
    supervisor = FleetSupervisor(chunk_s=1800.0, cooldown_s=7200.0, state_dir=STATE)
    supervisor.watch_scenario(scenario_flapping_san_misconfiguration(hours=HOURS))
    supervisor.watch_scenario(scenario_lock_contention(hours=HOURS))
    metrics.inc("example.fleets_started")

supervisor.run(HOURS * 3600.0)
print(f"watched {len(supervisor.watched)} environment(s) for {HOURS:g} simulated "
      f"hours -> {len(supervisor.incidents())} incident(s)")

# --- read the sidecar back --------------------------------------------------
spans = load_spans(STATE)
print(f"\n{len(spans)} span(s) journalled under {STATE / 'obs'}")

print("\nwhere the wall time went (top 5 span names):")
for name, row in list(summarize(spans).items())[:5]:
    print(f"  {name:<22} x{row['count']:<5} total {row['total_s'] * 1e3:8.1f} ms"
          f"   p95 {row['p95_ms']:6.2f} ms")

report = critical_path(spans)
print(f"\ncritical path: {report['roots']} iteration(s), "
      f"{report['coverage']:.0%} of tick wall time attributed to named phases")
for name, seconds in list(report["by_name"].items())[:4]:
    print(f"  {name:<12} {seconds * 1e3:8.1f} ms")

snapshots = load_metric_snapshots(STATE)
latest = snapshots[-1]["metrics"]
print(f"\n{len(snapshots)} metrics snapshot(s); latest counters:")
for name, value in sorted(latest["counters"].items()):
    print(f"  {name:<28} {value:g}")

disable()
shutil.rmtree(STATE, ignore_errors=True)
