"""Legacy setup shim: the offline environment lacks the `wheel` package, so
PEP-660 editable installs fail; `pip install -e . --no-use-pep517
--no-build-isolation` (or plain `pip install -e .` on a machine with wheel)
uses this file instead."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    python_requires=">=3.10",
)
