"""Extension benches: Section-7 features, extension scenarios, scalability,
and the incomplete-symptoms-database ablation (Section 5, last observation).
"""

from __future__ import annotations

import pytest

from repro.core import Diads, SelfHealer, suggest_entry
from repro.core.evaluation import evaluate_bundle
from repro.core.symptoms import SymptomsDatabase
from repro.lab.scenarios import (
    ScenarioBundle,
    scenario_buffer_pool,
    scenario_cpu_saturation,
    scenario_raid_rebuild,
    scenario_san_misconfiguration,
)


@pytest.fixture(scope="module")
def extension_evals():
    bundles = [
        scenario_cpu_saturation(hours=12.0).run(),
        scenario_buffer_pool(hours=12.0).run(),
        scenario_raid_rebuild(hours=12.0).run(),
    ]
    return [evaluate_bundle(b) for b in bundles]


def test_extension_scenarios_table(extension_evals, record_result):
    lines = [
        "Extension scenarios (root causes from the paper's introduction)",
        "-" * 90,
    ]
    for ev in extension_evals:
        lines.append(ev.row())
    record_result("extension_scenarios", "\n".join(lines))
    assert all(ev.identified for ev in extension_evals)


def test_selfheal_roundtrip(record_result):
    """Section 7: diagnose → fix → verify recovery."""
    scenario = scenario_san_misconfiguration(hours=10.0)
    env = scenario.build()
    bundle = env.run(scenario.duration_s)
    bundle.stores.runs.label_by_window(
        scenario.query_name, scenario.info.fault_time, scenario.duration_s + 1
    )
    sb = ScenarioBundle(info=scenario.info, bundle=bundle, query_name=scenario.query_name)
    report = Diads.from_bundle(sb).diagnose(scenario.query_name)
    healer = SelfHealer()
    applied = healer.apply(report, env, at_time=scenario.duration_s)
    env.run(2 * 3600.0, start_s=scenario.duration_s)

    runs = env.stores.runs.runs(scenario.query_name)
    pre = [r.duration for r in runs if r.start_time < scenario.info.fault_time]
    broken = [
        r.duration
        for r in runs
        if scenario.info.fault_time <= r.start_time < scenario.duration_s
    ]
    healed = [r.duration for r in runs if r.start_time >= scenario.duration_s]
    lines = [
        "Self-healing round trip (scenario 1)",
        "-" * 60,
        f"fixes applied: {', '.join(a.fix.fix_id for a in applied)}",
        f"median duration before fault : {sorted(pre)[len(pre)//2]:6.2f} s",
        f"median duration during fault : {sorted(broken)[len(broken)//2]:6.2f} s",
        f"median duration after heal   : {sorted(healed)[len(healed)//2]:6.2f} s",
    ]
    record_result("selfheal_roundtrip", "\n".join(lines))
    assert max(healed) < 1.2 * max(pre)


def test_ablation_incomplete_symptoms_db(scenario1_bundle, record_result):
    """Section 5: 'DIADS produces good results even when the symptoms
    database is incomplete' — and the evolution loop closes the gap."""
    empty = SymptomsDatabase()
    report = Diads.from_bundle(scenario1_bundle, symptoms_db=empty).diagnose(
        scenario1_bundle.query_name
    )
    co = report.module_result("CO")
    da = report.module_result("DA")
    lines = [
        "Ablation — symptoms database removed (scenario 1)",
        "-" * 70,
        f"COS still pinpoints V1 leaves : {sorted(co.cos & {'O8', 'O22'})}",
        f"CCS narrows to V1's hardware  : {sorted(da.ccs)}",
    ]
    suggestion = suggest_entry(report)
    lines.append("")
    lines.append("Self-evolution proposal from the uncovered diagnosis:")
    lines.append(suggestion.describe())
    empty.add(suggestion.entry)
    adopted = Diads.from_bundle(scenario1_bundle, symptoms_db=empty).diagnose(
        scenario1_bundle.query_name
    )
    lines.append("")
    lines.append(
        f"after expert adoption: {adopted.top_cause.match.display_id} "
        f"({adopted.top_cause.match.confidence.value})"
    )
    record_result("ablation_symptoms_db", "\n".join(lines))
    assert {"O8", "O22"} <= co.cos
    assert "V1" in da.ccs and "V2" not in da.ccs
    assert adopted.top_cause.match.confidence.value == "high"


def test_scalability_vs_history_length(record_result):
    """Diagnosis latency as the monitoring history grows."""
    import time

    lines = [
        "Scalability — diagnosis latency vs monitoring history",
        "-" * 64,
        f"{'hours':<8}{'runs':<7}{'raw samples':<14}{'diagnose (ms)':<14}",
        "-" * 64,
    ]
    latencies = {}
    for hours in (6.0, 12.0, 24.0, 48.0):
        bundle = scenario_san_misconfiguration(hours=hours).run()
        diads = Diads.from_bundle(bundle)
        t0 = time.perf_counter()
        report = diads.diagnose(bundle.query_name)
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
        latencies[hours] = elapsed_ms
        n_runs = len(bundle.stores.runs.runs(bundle.query_name))
        lines.append(
            f"{hours:<8g}{n_runs:<7}{len(bundle.stores.metrics):<14}{elapsed_ms:<14.1f}"
        )
        assert report.top_cause.match.cause_id == "volume-contention-san-misconfig"
    record_result("scalability_history", "\n".join(lines))
    # growth should be roughly linear in history, not quadratic
    assert latencies[48.0] < 30.0 * latencies[6.0]


def test_bench_selfheal_recommend(benchmark, scenario1_bundle):
    report = Diads.from_bundle(scenario1_bundle).diagnose(scenario1_bundle.query_name)
    fixes = benchmark(lambda: SelfHealer().recommend(report))
    assert fixes


def test_bench_suggest_entry(benchmark, scenario1_bundle):
    report = Diads.from_bundle(
        scenario1_bundle, symptoms_db=SymptomsDatabase()
    ).diagnose(scenario1_bundle.query_name)
    suggestion = benchmark(lambda: suggest_entry(report))
    assert suggestion is not None
