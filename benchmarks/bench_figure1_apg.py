"""E3 — Figure 1: the Annotated Plan Graph for TPC-H Q2.

Regenerates the figure's content as text: the 25-operator / 9-leaf plan, the
tablespace→volume mapping, the pool/disk layout, and the inner/outer
dependency paths of the Index-Scan-on-part operator O23 the paper walks
through.
"""

from __future__ import annotations

import pytest

from repro.core.apg import build_apg
from repro.core.report import render_apg_overview


@pytest.fixture(scope="module")
def apg(scenario1_bundle):
    return build_apg(scenario1_bundle, scenario1_bundle.query_name)


def test_figure1_reproduction(apg, record_result):
    text = render_apg_overview(apg)
    record_result("figure1_apg", text)
    assert "operators: 25 (9 leaves)" in text
    assert "ts_supplier -> V1" in text


def test_figure1_structural_constraints(apg):
    assert apg.operator_count == 25
    assert apg.leaf_count == 9
    assert set(apg.leaves_on_volume("V1")) == {"O8", "O22"}
    assert len(apg.leaves_on_volume("V2")) == 7

    # O23's dependency paths exactly as the paper describes them
    inner = apg.inner_path("O23")
    assert {"srv-db", "hba0", "ds6000", "P2", "V2"} <= inner
    assert {f"d{i}" for i in range(5, 11)} <= inner
    assert apg.outer_path("O23") == frozenset({"V3", "V4"})


def test_figure1_annotations_available(apg):
    """Each component in an APG is annotated with monitoring data collected
    during the plan's execution window."""
    run = apg.runs[-1]
    annotation = apg.annotate("O23", run)
    assert "V2" in annotation.component_metrics
    assert "readTime" in annotation.component_metrics["V2"]
    assert annotation.actual_rows > 0


def test_bench_apg_construction(benchmark, scenario1_bundle):
    apg = benchmark(
        lambda: build_apg(scenario1_bundle, scenario1_bundle.query_name)
    )
    assert apg.operator_count == 25


def test_bench_apg_annotation(benchmark, apg):
    run = apg.runs[-1]
    annotation = benchmark(lambda: apg.annotate("O23", run))
    assert annotation.component_metrics
