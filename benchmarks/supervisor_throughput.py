"""Barriered vs barrier-free fleet supervision throughput.

The motivating pathology of the runtime refactor: in the barriered
``tick`` loop, one slow diagnosis stalls *every* environment's next chunk —
the fleet advances at the speed of its slowest member.  The barrier-free
``run`` path gives each environment its own clock, so a slow diagnosis
stalls only the environment it belongs to while the rest of the fleet keeps
advancing.

This benchmark measures exactly that: a 64-environment fleet with a 10%
per-chunk incident rate and a heavy-tailed diagnosis latency (one straggler
environment pays a long pipeline, the other firing environments a short
one), supervised for a fixed wall-clock window under both execution paths.
The metric is **fleet-advance throughput** — environment-chunks completed
per wall second — plus the p50/p95 per-environment chunk-completion latency.

Acceptance: the barrier-free path must deliver **>= 2x** the barriered
throughput.  Results land in ``benchmarks/results/`` as a human table
(``supervisor_throughput.txt``) and machine-readable
``BENCH_supervisor.json`` so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from types import SimpleNamespace

import numpy as np

from repro.core.pipeline import DiagnosisRequest
from repro.stream import FleetSupervisor
from repro.stream.detectors import Detection

N_ENVS = 64
INCIDENT_RATE = 0.10           # fraction of environments firing per chunk
CHUNK_S = 1800.0               # simulated seconds per chunk
ADVANCE_COST_S = 0.002         # wall cost of simulating one chunk
FAST_DIAGNOSIS_S = 0.02        # wall cost of a typical pipeline run
SLOW_DIAGNOSIS_S = 0.5         # wall cost of the straggler's pipeline
WINDOW_S = 2.5                 # measurement window per mode (wall seconds)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class _StubWatched:
    """A WatchedEnvironment stand-in with deterministic incident pressure.

    The first ``int(N_ENVS * INCIDENT_RATE)`` environments fire one
    detection per chunk (cooldown 0 reopens an incident every time); the
    rest stay healthy.  ``advance`` burns a fixed wall cost standing in for
    the simulation work, and records chunk-completion times so both
    execution paths are instrumented identically.
    """

    def __init__(self, index: int, fires: bool) -> None:
        self.name = f"env-{index:03d}"
        self.index = index
        self.fires = fires
        self.query_name = "q-bench"
        self.advanced_s = 0.0
        self.manager = None  # filled in by the harness (needs the supervisor's store)
        self.env = SimpleNamespace(clock=0.0, bundle=lambda: None)
        self.info = None
        self.chunks = 0
        self.completions: list[float] = []

    def advance(self, chunk_s: float) -> list[Detection]:
        time.sleep(ADVANCE_COST_S)
        self.env.clock += chunk_s
        self.chunks += 1
        self.completions.append(time.perf_counter())
        if not self.fires:
            return []
        return [
            Detection(
                time=self.env.clock,
                detector="bench",
                target="V1/readTime",
                value=10.0,
                expected=5.0,
                magnitude=2.0,
                kind="drift",
            )
        ]

    def diagnosable(self) -> bool:
        return True

    def diagnosis_request(self) -> DiagnosisRequest:
        # Mirrors WatchedEnvironment: the stub's bundle() returns its env
        # name, which routes _SlowPipeline's per-environment latency.
        return DiagnosisRequest(self.env.bundle(), self.query_name)


class _SlowPipeline:
    """Duck-typed DiagnosisPipeline: per-environment diagnosis latency.

    Environment 0 is the straggler; every other firing environment pays the
    fast latency.  Implements both batch entry points the supervisor uses —
    ``diagnose_many`` (barriered wave) and ``submit_many`` (barrier-free).
    """

    def __init__(self, fleet: dict[str, _StubWatched]) -> None:
        self.fleet = fleet

    def _latency_for(self, request) -> float:
        # Each stub's bundle() returns its environment name, so the
        # request's bundle routes the per-environment latency.
        index = self.fleet[request.bundle].index
        return SLOW_DIAGNOSIS_S if index == 0 else FAST_DIAGNOSIS_S

    def _diagnose(self, request):
        time.sleep(self._latency_for(request))
        return None  # incidents resolve without a report; counts are what matter

    def diagnose_many(self, requests, max_workers=None, pool=None):
        from repro.runtime import shared_pool

        pool = pool or shared_pool()
        reqs = list(requests)
        if max_workers is not None and max_workers <= 1 or len(reqs) <= 1:
            return [self._diagnose(r) for r in reqs]
        return pool.map_bounded(self._diagnose, reqs, limit=max_workers)

    def submit_many(self, requests, pool=None):
        from repro.runtime import shared_pool

        pool = pool or shared_pool()
        return [pool.submit(self._diagnose, request) for request in requests]


def _build_supervisor() -> tuple[FleetSupervisor, list[_StubWatched]]:
    from repro.stream.incidents import IncidentManager

    firing = max(1, int(N_ENVS * INCIDENT_RATE))
    fleet: dict[str, _StubWatched] = {}
    stubs = []
    for index in range(N_ENVS):
        stub = _StubWatched(index, fires=index < firing)
        stub.env.bundle = (lambda name=stub.name: name)
        fleet[stub.name] = stub
        stubs.append(stub)
    supervisor = FleetSupervisor(
        pipeline=_SlowPipeline(fleet), chunk_s=CHUNK_S, cooldown_s=0.0
    )
    for stub in stubs:
        stub.manager = IncidentManager(stub.name, cooldown_s=0.0)
        supervisor.watched[stub.name] = stub
    return supervisor, stubs


def _latency_stats(stubs) -> tuple[float, float]:
    gaps = []
    for stub in stubs:
        done = stub.completions
        gaps.extend(b - a for a, b in zip(done, done[1:]))
    if not gaps:
        return float("nan"), float("nan")
    return (
        float(np.percentile(gaps, 50) * 1000.0),
        float(np.percentile(gaps, 95) * 1000.0),
    )


def _measure_barriered() -> dict:
    supervisor, stubs = _build_supervisor()
    start = time.perf_counter()
    deadline = start + WINDOW_S
    ticks = 0
    while time.perf_counter() < deadline:
        supervisor.tick()
        ticks += 1
    wall = time.perf_counter() - start
    chunks = sum(stub.chunks for stub in stubs)
    p50, p95 = _latency_stats(stubs)
    return {
        "mode": "barriered-tick",
        "ticks": ticks,
        "chunks": chunks,
        "wall_s": round(wall, 3),
        "chunks_per_s": round(chunks / wall, 1),
        "p50_chunk_latency_ms": round(p50, 2),
        "p95_chunk_latency_ms": round(p95, 2),
        "incidents": len(supervisor.incidents()),
    }


def _measure_async() -> dict:
    supervisor, stubs = _build_supervisor()
    timer = threading.Timer(WINDOW_S, supervisor.stop)
    start = time.perf_counter()
    timer.start()
    try:
        supervisor.run(10_000 * CHUNK_S)  # far beyond the window; stop() ends it
    finally:
        timer.cancel()
    wall = time.perf_counter() - start
    chunks = sum(stub.chunks for stub in stubs)
    p50, p95 = _latency_stats(stubs)
    return {
        "mode": "async-runtime",
        "chunks": chunks,
        "wall_s": round(wall, 3),
        "chunks_per_s": round(chunks / wall, 1),
        "p50_chunk_latency_ms": round(p50, 2),
        "p95_chunk_latency_ms": round(p95, 2),
        "incidents": len(supervisor.incidents()),
    }


def test_bench_supervisor_throughput(record_result):
    barriered = _measure_barriered()
    asynchronous = _measure_async()
    speedup = asynchronous["chunks_per_s"] / barriered["chunks_per_s"]

    payload = {
        "benchmark": "supervisor_throughput",
        "config": {
            "environments": N_ENVS,
            "incident_rate": INCIDENT_RATE,
            "chunk_s": CHUNK_S,
            "advance_cost_s": ADVANCE_COST_S,
            "fast_diagnosis_s": FAST_DIAGNOSIS_S,
            "slow_diagnosis_s": SLOW_DIAGNOSIS_S,
            "window_s": WINDOW_S,
        },
        "barriered": barriered,
        "async": asynchronous,
        "speedup": round(speedup, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_supervisor.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        f"Fleet-advance throughput: {N_ENVS} environments, "
        f"{INCIDENT_RATE:.0%} incident rate, heavy-tailed diagnosis "
        f"({SLOW_DIAGNOSIS_S * 1000:.0f}ms straggler / "
        f"{FAST_DIAGNOSIS_S * 1000:.0f}ms typical)",
        "-" * 86,
        f"{'mode':<18}{'chunks':>8}{'wall s':>9}{'chunks/s':>11}"
        f"{'p50 ms':>9}{'p95 ms':>9}{'incidents':>11}",
        "-" * 86,
    ]
    for row in (barriered, asynchronous):
        lines.append(
            f"{row['mode']:<18}{row['chunks']:>8}{row['wall_s']:>9.2f}"
            f"{row['chunks_per_s']:>11.1f}{row['p50_chunk_latency_ms']:>9.1f}"
            f"{row['p95_chunk_latency_ms']:>9.1f}{row['incidents']:>11}"
        )
    lines.append("")
    lines.append(f"speedup (async / barriered): {speedup:.2f}x  (target >= 2.0x)")
    record_result("supervisor_throughput", "\n".join(lines))

    assert asynchronous["incidents"] > 0 and barriered["incidents"] > 0
    assert speedup >= 2.0, (
        f"barrier-free runtime delivered only {speedup:.2f}x the barriered "
        f"tick throughput (need >= 2x)"
    )
