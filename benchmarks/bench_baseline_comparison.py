"""E10 — Section 5's silo-tool comparison.

Paper: a SAN-only tool flags both V1 and V2 (and may prefer V2 because most
data lives there); a DB-only tool pinpoints slow operators but emits
false positives (buffer pool, plan choice); pure correlation floods.  DIADS
pinpoints V1's contention with the misconfiguration evidence.
"""

from __future__ import annotations

import pytest

from repro.core.baselines import (
    CorrelationOnlyDiagnoser,
    DbOnlyDiagnoser,
    SanOnlyDiagnoser,
)
from repro.core.workflow import Diads


@pytest.fixture(scope="module")
def tool_outputs(scenario1_burst_bundle):
    bundle, query = scenario1_burst_bundle, scenario1_burst_bundle.query_name
    return {
        "DIADS": Diads.from_bundle(bundle).diagnose(query),
        "san-only": SanOnlyDiagnoser().diagnose(bundle, query),
        "db-only": DbOnlyDiagnoser().diagnose(bundle, query),
        "correlation-only": CorrelationOnlyDiagnoser().diagnose(bundle, query),
    }


def test_e10_reproduction(tool_outputs, record_result):
    lines = ["E10 — tool comparison on scenario 1 + bursty V2 load", "-" * 78]
    report = tool_outputs["DIADS"]
    lines.append(f"DIADS            -> {report.top_cause.describe()}")
    for tool in ("san-only", "db-only", "correlation-only"):
        findings = tool_outputs[tool]
        lines.append(f"{tool:<16} -> {len(findings)} findings:")
        for f in findings[:6]:
            lines.append(f"    - {f.describe()}")
    record_result("e10_baseline_comparison", "\n".join(lines))


def test_diads_pinpoints_v1(tool_outputs):
    top = tool_outputs["DIADS"].top_cause
    assert top.match.cause_id == "volume-contention-san-misconfig"
    assert top.match.binding == "V1"


def test_san_only_blames_both_volumes_preferring_v2(tool_outputs):
    findings = tool_outputs["san-only"]
    targets = [f.target for f in findings]
    assert "V1" in targets and "V2" in targets
    assert targets.index("V2") < targets.index("V1")


def test_db_only_emits_false_positives_and_misses_the_san(tool_outputs):
    findings = tool_outputs["db-only"]
    causes = {f.cause for f in findings}
    assert "slow-operators" in causes
    assert "suboptimal-buffer-pool" in causes or "suboptimal-plan-choice" in causes
    assert all("V1" not in f.target for f in findings)


def test_correlation_only_floods_across_components(tool_outputs):
    findings = tool_outputs["correlation-only"]
    components = {f.target.split(".")[0] for f in findings}
    assert len(findings) >= 5
    assert len(components) >= 3


def test_bench_san_only(benchmark, scenario1_burst_bundle):
    tool = SanOnlyDiagnoser()
    findings = benchmark(
        lambda: tool.diagnose(scenario1_burst_bundle, scenario1_burst_bundle.query_name)
    )
    assert findings


def test_bench_correlation_only(benchmark, scenario1_burst_bundle):
    tool = CorrelationOnlyDiagnoser()
    findings = benchmark(
        lambda: tool.diagnose(scenario1_burst_bundle, scenario1_burst_bundle.query_name)
    )
    assert findings
