"""E8 — Section 5 observation: KDE works at few tens of samples, robust to noise.

Sweeps detector accuracy over sample count and noise level for the KDE
detector and its competitors (static threshold, z-score, empirical
percentile, supervised Gaussian naive Bayes).  Also ablates the KDE
bandwidth rule (DESIGN.md §4).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.baselines import DETECTOR_FACTORIES, KDEDetector
from repro.stats.evaluation import evaluate_detectors, sweep_detectors

SAMPLE_SIZES = (5, 10, 20, 40, 80)
NOISE_LEVELS = (0.02, 0.05, 0.1, 0.2)


@pytest.fixture(scope="module")
def sweep():
    return sweep_detectors(sample_sizes=SAMPLE_SIZES, noise_levels=NOISE_LEVELS, trials=200)


def _grid(sweep, detector):
    return {
        (s.noise_sigma, s.n_samples): s
        for s in sweep
        if s.detector == detector
    }


def test_e8_reproduction(sweep, record_result):
    detectors = sorted({s.detector for s in sweep})
    lines = [
        "E8 — detection accuracy vs sample count and noise (threshold 0.8, 40% shift)",
        "-" * 100,
        f"{'noise':<7}{'n':<5}" + "".join(f"{d:>16}" for d in detectors),
        "-" * 100,
    ]
    for noise in NOISE_LEVELS:
        for n in SAMPLE_SIZES:
            row = f"{noise:<7}{n:<5}"
            for d in detectors:
                score = _grid(sweep, d)[(noise, n)]
                row += f"{score.accuracy:>16.3f}"
            lines.append(row)
    record_result("e8_kde_vs_baselines", "\n".join(lines))


def test_kde_accurate_with_few_tens_of_samples(sweep):
    """The paper's claim at moderate noise: n=20 is enough for KDE."""
    kde = _grid(sweep, "kde-silverman")
    assert kde[(0.05, 20)].accuracy >= 0.9
    assert kde[(0.02, 10)].accuracy >= 0.9


def test_kde_beats_percentile_at_small_n(sweep):
    """The empirical CDF cannot even express a 0.8 score at n=5."""
    kde = _grid(sweep, "kde-silverman")
    pct = _grid(sweep, "percentile")
    for noise in NOISE_LEVELS:
        assert kde[(noise, 5)].accuracy >= pct[(noise, 5)].accuracy - 0.05


def test_kde_more_robust_to_noise_than_threshold(sweep):
    """Static thresholds collapse as noise approaches the anomaly shift."""
    kde = _grid(sweep, "kde-silverman")
    thr = _grid(sweep, "threshold")
    assert kde[(0.2, 40)].accuracy >= thr[(0.2, 40)].accuracy

    # and the threshold detector misses moderate shifts entirely at low noise
    assert thr[(0.02, 40)].true_positive_rate < kde[(0.02, 40)].true_positive_rate


def test_kde_competitive_with_supervised_nb(sweep):
    """Naive Bayes gets labelled anomalies (an unfair advantage) and still
    does not dominate KDE at small n."""
    kde = _grid(sweep, "kde-silverman")
    nb = _grid(sweep, "naive-bayes")
    small_n_gap = np.mean(
        [kde[(noise, 10)].accuracy - nb[(noise, 10)].accuracy for noise in NOISE_LEVELS]
    )
    assert small_n_gap >= -0.08


def test_ablation_bandwidth_rules(record_result):
    """DESIGN §4: Silverman vs Scott vs fixed bandwidth.

    Operator times span milliseconds to minutes, so the ablation evaluates
    each rule across healthy levels (scales).  A fixed bandwidth can be tuned
    to one scale but cannot transfer; the adaptive rules stay accurate.
    """
    detectors = {
        "kde-silverman": lambda: KDEDetector("silverman"),
        "kde-scott": lambda: KDEDetector("scott"),
        "kde-fixed-2.0": lambda: KDEDetector(2.0),
    }
    scales = (0.05, 10.0, 2000.0)
    lines = [
        "E8 ablation — bandwidth rule across metric scales (n=20, noise=0.05)",
        "-" * 66,
        f"{'detector':<16}" + "".join(f"{f'scale={s:g}':>15}" for s in scales),
        "-" * 66,
    ]
    rng = np.random.default_rng(11)
    results = {}
    for scale in scales:
        scores = evaluate_detectors(
            20, 0.05, detectors=detectors, trials=200, rng=rng, scale=scale
        )
        for s in scores:
            results[(s.detector, scale)] = s.accuracy
    for name in detectors:
        row = f"{name:<16}" + "".join(
            f"{results[(name, scale)]:>15.3f}" for scale in scales
        )
        lines.append(row)
    record_result("e8_ablation_bandwidth", "\n".join(lines))
    # adaptive rules transfer across scales; the fixed bandwidth breaks on
    # at least one end (over-smoothed at small scales -> misses anomalies,
    # or needle-thin at large scales)
    for scale in scales:
        assert results[("kde-silverman", scale)] >= 0.85
        assert results[("kde-scott", scale)] >= 0.85
    assert min(results[("kde-fixed-2.0", s)] for s in scales) < 0.75


def test_bench_kde_scoring(benchmark):
    rng = np.random.default_rng(0)
    healthy = 10.0 * rng.lognormal(0, 0.05, size=40)
    detector = KDEDetector().fit(healthy)
    score = benchmark(lambda: detector.score(14.0))
    assert score > 0.9


def test_bench_detector_sweep_cell(benchmark):
    result = benchmark(
        lambda: evaluate_detectors(20, 0.05, trials=50, rng=np.random.default_rng(1))
    )
    assert result
