"""Correlation-engine throughput and group-emit latency at fleet scale.

The engine sits on the fleet event stream of a 64-environment supervisor:
every chunk of every member produces an ``advanced`` event, plus incident
opens/resolves during fault waves.  It must keep up with that stream and
emit fleet incidents promptly — a group is only useful if it lands before
the member incidents would have been diagnosed independently.

This benchmark drives a synthetic 64-env stream (8 shared pools x 8 members
plus one fleet-wide switch) through a :class:`CorrelationEngine`:
periodically one pool's whole cohort co-fires, one chunk later it resolves.
Measured:

* **events/s** — wall throughput of ``observe()`` over the full stream;
* **group-emit latency** — *simulated* seconds between a group's triggering
  open and the watermark at which the group was emitted.  The engine only
  acts when the fleet floor passes an open (that is what makes it
  deterministic), so the inherent bound is one chunk interval — and the
  acceptance criterion is **p95 <= one chunk** at 64 environments.

Results land in ``benchmarks/results/`` as a human table
(``correlation_throughput.txt``) and machine-readable
``BENCH_correlation.json``.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.correlate import CorrelationEngine

N_ENVS = 64
POOLS = 8                      # 8 shared pools x 8 members
CHUNK_S = 1800.0               # simulated seconds per supervision chunk
WINDOW_S = 3600.0              # correlation co-occurrence window
CHUNKS = 200                   # simulated chunks (100 simulated hours)
WAVE_EVERY_CHUNKS = 2          # one pool cohort co-fires every 2 chunks

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _membership() -> dict[str, tuple[str, ...]]:
    envs = [f"env-{i:03d}" for i in range(N_ENVS)]
    per_pool = N_ENVS // POOLS
    membership: dict[str, tuple[str, ...]] = {
        f"pool-{p}": tuple(envs[p * per_pool : (p + 1) * per_pool])
        for p in range(POOLS)
    }
    membership["switch-core"] = tuple(envs)
    return membership


def _synthesize_stream(membership) -> tuple[list[dict], int]:
    """The 64-env fleet event stream: advances + rotating pool-cohort waves."""
    events: list[dict] = []
    envs = membership["switch-core"]
    waves = 0
    counter = 0
    for chunk in range(1, CHUNKS + 1):
        t = chunk * CHUNK_S
        if chunk % WAVE_EVERY_CHUNKS == 0:
            pool = f"pool-{(chunk // WAVE_EVERY_CHUNKS) % POOLS}"
            waves += 1
            for env in membership[pool]:
                counter += 1
                events.append(
                    {
                        "type": "incident_opened",
                        "env": env,
                        "incident_id": f"INC-{env}-{counter}",
                        "opened_at": t - 60.0,
                    }
                )
                events.append(
                    {
                        "type": "incident_resolved",
                        "env": env,
                        "incident_id": f"INC-{env}-{counter}",
                        "resolved_at": t + CHUNK_S - 120.0,
                    }
                )
        for env in envs:
            events.append({"type": "advanced", "env": env, "advanced_s": t})
    return events, waves


def test_bench_correlation_throughput(record_result):
    membership = _membership()
    engine = CorrelationEngine(
        membership,
        window_s=WINDOW_S,
        min_members=3,
        # emit at formation: latency measures the watermark mechanism itself
        drilldown_delay_s=0.0,
    )
    events, waves = _synthesize_stream(membership)

    emit_latencies_s: list[float] = []
    start = time.perf_counter()
    for event in events:
        for group in engine.observe(event):
            emit_latencies_s.append(engine.watermark - group.opened_at)
    wall = time.perf_counter() - start

    groups = engine.fleet_incidents()
    events_per_s = len(events) / wall
    p50 = float(np.percentile(emit_latencies_s, 50))
    p95 = float(np.percentile(emit_latencies_s, 95))

    payload = {
        "benchmark": "correlation_throughput",
        "config": {
            "environments": N_ENVS,
            "pools": POOLS,
            "chunk_s": CHUNK_S,
            "window_s": WINDOW_S,
            "chunks": CHUNKS,
            "wave_every_chunks": WAVE_EVERY_CHUNKS,
        },
        "events": len(events),
        "wall_s": round(wall, 3),
        "events_per_s": round(events_per_s, 1),
        "fleet_incidents": len(groups),
        "waves": waves,
        "p50_emit_latency_s": round(p50, 1),
        "p95_emit_latency_s": round(p95, 1),
        "chunk_interval_s": CHUNK_S,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_correlation.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        f"Correlation engine: {N_ENVS} environments, {POOLS} shared pools, "
        f"{len(events)} fleet events over {CHUNKS} chunks",
        "-" * 78,
        f"throughput          {events_per_s:>12.0f} events/s "
        f"({len(events)} events in {wall * 1000.0:.0f} ms)",
        f"fleet incidents     {len(groups):>12d} (of {waves} injected waves)",
        f"emit latency p50    {p50:>12.0f} simulated s",
        f"emit latency p95    {p95:>12.0f} simulated s "
        f"(target < {CHUNK_S:.0f} s = one chunk)",
    ]
    record_result("correlation_throughput", "\n".join(lines))

    assert len(groups) == waves, "every injected wave must emit one group"
    assert all(len(g.members) == N_ENVS // POOLS for g in groups)
    assert events_per_s > 10_000, f"engine too slow: {events_per_s:.0f} events/s"
    assert p95 <= CHUNK_S, (
        f"p95 group-emit latency {p95:.0f}s exceeds one chunk ({CHUNK_S:.0f}s)"
    )
