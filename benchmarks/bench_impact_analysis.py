"""E9 — Section 5 scenario-1 numbers: impact ≈ 99.8%, COS structure,
threshold sensitivity ablation.
"""

from __future__ import annotations

import pytest

from repro.core.workflow import Diads

V2_LEAVES = {"O4", "O10", "O12", "O14", "O19", "O23", "O25"}
PAPER_COS = {"O2", "O3", "O4", "O6", "O7", "O8", "O17", "O18", "O20", "O21", "O22"}


@pytest.fixture(scope="module")
def report1(scenario1_bundle):
    return Diads.from_bundle(scenario1_bundle).diagnose(scenario1_bundle.query_name)


def test_e9_reproduction(report1, record_result):
    co = report1.module_result("CO")
    ia = report1.module_result("IA")
    ours = set(co.cos)
    lines = [
        "E9 — scenario 1 drill-down numbers",
        "-" * 78,
        f"correlated operators (ours):  {', '.join(sorted(ours, key=lambda x: int(x[1:])))}",
        f"correlated operators (paper): {', '.join(sorted(PAPER_COS, key=lambda x: int(x[1:])))}",
        f"overlap: {len(ours & PAPER_COS)}/{len(PAPER_COS)}"
        f" (extra: {', '.join(sorted(ours - PAPER_COS)) or 'none'};"
        f" missing: {', '.join(sorted(PAPER_COS - ours)) or 'none'})",
        "",
        f"impact of top cause: {report1.top_cause.impact_pct:.1f}%  (paper: 99.8%)",
        f"extra plan time explained: {ia.extra_plan_time:.2f} s",
    ]
    record_result("e9_impact_analysis", "\n".join(lines))

    # both V1 leaves + their ancestor chains present
    assert {"O8", "O22", "O17", "O18", "O20", "O21", "O6", "O7", "O2", "O3"} <= ours
    # at most noise-level false positives from V2
    assert len(ours & V2_LEAVES) <= 2
    # impact effectively explains the whole slowdown
    assert report1.top_cause.impact_pct > 90.0


def test_e9_threshold_sensitivity(scenario1_bundle, record_result):
    """DESIGN §4 ablation: the 0.8 threshold is not a knife's edge."""
    lines = [
        "E9 ablation — anomaly threshold sensitivity (scenario 1)",
        "-" * 70,
        f"{'threshold':<11}{'|COS|':<7}{'V1 leaves in COS':<18}{'top cause correct'}",
        "-" * 70,
    ]
    for threshold in (0.6, 0.7, 0.8, 0.9, 0.95):
        report = Diads.from_bundle(scenario1_bundle, threshold=threshold).diagnose(
            scenario1_bundle.query_name
        )
        co = report.module_result("CO")
        correct = report.top_cause.match.cause_id == "volume-contention-san-misconfig"
        lines.append(
            f"{threshold:<11}{len(co.cos):<7}"
            f"{len(co.cos & {'O8', 'O22'}):<18}{correct}"
        )
        if 0.7 <= threshold <= 0.9:
            assert correct, f"diagnosis broke at threshold {threshold}"
    record_result("e9_ablation_threshold", "\n".join(lines))


def test_e9_impact_uses_self_times(report1):
    """Self-time accounting: impacts cannot exceed 100% by double counting
    a slow leaf through its ancestor chain."""
    ia = report1.module_result("IA")
    for score in ia.impacts:
        assert 0.0 <= score.impact_pct <= 100.0


def test_bench_impact_module(benchmark, scenario1_bundle):
    from repro.core.modules.base import DiagnosisContext
    from repro.core.modules.correlated_operators import CorrelatedOperatorsModule
    from repro.core.modules.dependency_analysis import DependencyAnalysisModule
    from repro.core.modules.impact import ImpactAnalysisModule
    from repro.core.modules.plan_diff import PlanDiffModule
    from repro.core.modules.record_counts import RecordCountsModule
    from repro.core.modules.symptoms_db import SymptomsDatabaseModule

    ctx = DiagnosisContext(
        bundle=scenario1_bundle, query_name=scenario1_bundle.query_name
    )
    PlanDiffModule().run(ctx)
    CorrelatedOperatorsModule().run(ctx)
    RecordCountsModule().run(ctx)
    DependencyAnalysisModule().run(ctx)
    SymptomsDatabaseModule().run(ctx)

    result = benchmark(lambda: ImpactAnalysisModule().run(ctx))
    assert result.impacts
