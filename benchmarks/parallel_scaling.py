"""Parallel scaling: process-backed vs thread-backed fleet advancement.

The tentpole claim for :class:`~repro.runtime.procpool.ProcessWorkerPool` is
that CPU-bound simulation work scales with cores once it escapes the GIL.
This bench drives a synthetic fleet — each "environment" is a pure-Python
spin task that holds the GIL exactly like ``Environment.advance`` does — at
64/256/512/1024 members, with sticky per-environment affinity, on both
backends, and records wall time, throughput, speedup, and parallel
efficiency to ``results/BENCH_parallel.json``.

The speedup/efficiency assertions only gate on hosts with >= 4 cores (a
single-core runner cannot show parallelism — process mode there measures
pure handoff overhead); the JSON artefact is emitted unconditionally so CI
always has the numbers.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runtime import ProcessWorkerPool, WorkerPool

FLEET_SIZES = (64, 256, 512, 1024)
ROUNDS = 3
SPIN_ITERS = 1500

CORES = os.cpu_count() or 1

SPIN_TASK = f"{__name__}:spin"


def spin(payload: dict) -> dict:
    """One synthetic environment chunk: GIL-holding integer arithmetic."""
    acc = int(payload.get("seed", 0))
    for _ in range(int(payload["iters"])):
        acc = (acc * 1103515245 + 12345) % 2147483648
    return {"acc": acc}


def _drive_threads(pool: WorkerPool, fleet: list[str]) -> float:
    start = time.perf_counter()
    for _round in range(ROUNDS):
        pool.map_bounded(
            lambda name: spin({"seed": len(name), "iters": SPIN_ITERS}),
            fleet,
            limit=pool.max_workers,
        )
    return time.perf_counter() - start


def _drive_processes(pool: ProcessWorkerPool, fleet: list[str]) -> float:
    start = time.perf_counter()
    for _round in range(ROUNDS):
        futures = [
            pool.submit_task(
                SPIN_TASK,
                {"seed": len(name), "iters": SPIN_ITERS},
                affinity=name,
            )
            for name in fleet
        ]
        for future in futures:
            future.result()
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def scaling_rows():
    rows = []
    thread_pool = WorkerPool()
    proc_pool = ProcessWorkerPool()
    try:
        # Warm both substrates (worker processes, executor threads) so the
        # measured rounds see steady state, as a long-running fleet would.
        _drive_threads(thread_pool, ["warm"])
        _drive_processes(proc_pool, ["warm"])
        for size in FLEET_SIZES:
            fleet = [f"env-{i:04d}" for i in range(size)]
            t_threads = _drive_threads(thread_pool, fleet)
            t_process = _drive_processes(proc_pool, fleet)
            tasks = size * ROUNDS
            speedup = t_threads / t_process if t_process > 0 else float("inf")
            rows.append(
                {
                    "fleet_size": size,
                    "tasks": tasks,
                    "threads_s": round(t_threads, 4),
                    "process_s": round(t_process, 4),
                    "threads_tasks_per_s": round(tasks / t_threads, 1),
                    "process_tasks_per_s": round(tasks / t_process, 1),
                    "speedup": round(speedup, 3),
                    "efficiency": round(speedup / CORES, 3),
                }
            )
        stats = proc_pool.stats()
        meta = {
            "cores": CORES,
            "processes": stats["processes"],
            "start_method": stats["start_method"],
            "rounds": ROUNDS,
            "spin_iters": SPIN_ITERS,
            "affinity_keys": stats["affinity_keys"],
            "gated": CORES >= 4,
        }
    finally:
        proc_pool.shutdown()
        thread_pool.shutdown()
    return meta, rows


def test_parallel_scaling(scaling_rows, record_result):
    meta, rows = scaling_rows
    lines = [
        "Process-parallel scaling — threads vs procpool "
        f"({meta['cores']} cores, {meta['processes']} workers, "
        f"{meta['start_method']})",
        "-" * 78,
        f"{'fleet':>6} {'threads s':>10} {'process s':>10} "
        f"{'thr t/s':>10} {'proc t/s':>10} {'speedup':>8} {'eff':>6}",
    ]
    for row in rows:
        lines.append(
            f"{row['fleet_size']:>6} {row['threads_s']:>10.3f} "
            f"{row['process_s']:>10.3f} {row['threads_tasks_per_s']:>10.1f} "
            f"{row['process_tasks_per_s']:>10.1f} {row['speedup']:>8.2f} "
            f"{row['efficiency']:>6.2f}"
        )
    if not meta["gated"]:
        lines.append(
            f"(assertions skipped: {meta['cores']} core(s) < 4 — process "
            "mode here measures handoff overhead, not parallelism)"
        )
    record_result("parallel", "\n".join(lines), data={"meta": meta, "rows": rows})

    by_size = {row["fleet_size"]: row for row in rows}
    assert by_size[1024]["tasks"] == 1024 * ROUNDS  # fleet really scaled to 1024
    if meta["gated"]:
        assert by_size[256]["speedup"] >= 3.0, (
            "process backend must be >= 3x threads at 256 environments "
            f"on {meta['cores']} cores, got {by_size[256]['speedup']:.2f}x"
        )
        for size in (512, 1024):
            assert by_size[size]["efficiency"] >= 0.6, (
                f"parallel efficiency at {size} environments must stay >= "
                f"0.6 of {meta['cores']} cores, got "
                f"{by_size[size]['efficiency']:.2f}"
            )


def test_sticky_affinity_caps_hydrations(scaling_rows):
    """Every environment key pinned once: workers saw 1024 + warm keys total,
    spread over all workers — no key migrated between processes."""
    meta, _rows = scaling_rows
    assert meta["affinity_keys"] == max(FLEET_SIZES) + 1
