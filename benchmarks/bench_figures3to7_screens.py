"""E5/E6/E7 — Figures 3-7: the tool's screens and metric inventory.

* Figure 3: query-selection screen (runs with durations + unsatisfactory
  check-boxes),
* Figure 4: the four metric families the collector gathers,
* Figure 5: deployment dataflow (stores populated by the collector),
* Figure 6: APG browser for one operator,
* Figure 7: interactive workflow screen.
"""

from __future__ import annotations

import pytest

from repro.core.apg import build_apg
from repro.core.report import (
    render_apg_browser,
    render_query_table,
    render_workflow_screen,
)
from repro.core.workflow import Diads
from repro.db.metrics import METRIC_FAMILIES


def test_figure3_query_selection_screen(scenario1_bundle, record_result):
    text = render_query_table(scenario1_bundle.stores.runs, scenario1_bundle.query_name)
    record_result("figure3_query_table", text)
    assert "[x]" in text  # unsatisfactory runs marked
    runs = scenario1_bundle.stores.runs.runs(scenario1_bundle.query_name)
    assert len([r for r in runs if r.satisfactory is False]) >= 1


def test_figure4_metric_inventory(scenario1_bundle, record_result):
    """Every metric family of Figure 4 must be represented in the stores."""
    store = scenario1_bundle.stores.metrics
    collected = {metric for _, metric in store.keys()}
    lines = ["Figure 4 — metric families collected", "-" * 70]
    coverage = {}
    for family, names in METRIC_FAMILIES.items():
        present = [m for m in names if m in collected]
        coverage[family] = (len(present), len(names))
        lines.append(f"{family:<10} {len(present)}/{len(names)}: {', '.join(present)}")
    record_result("figure4_metrics", "\n".join(lines))
    for family, (present, _total) in coverage.items():
        assert present >= 5, f"family {family} under-collected"


def test_figure5_deployment_dataflow(scenario1_bundle, record_result):
    """Figure 5's arrows: simulators → collector → stores → DIADS."""
    stores = scenario1_bundle.stores
    lines = [
        "Figure 5 — deployment dataflow (store population)",
        "-" * 70,
        f"metric store:  {len(stores.metrics)} raw samples over "
        f"{len(stores.metrics.keys())} series",
        f"event log:     {len(stores.events)} events",
        f"config store:  scopes {', '.join(stores.config.scopes())}",
        f"run store:     {len(stores.runs)} query executions",
    ]
    record_result("figure5_deployment", "\n".join(lines))
    assert len(stores.metrics) > 0
    assert {"db_catalog", "db_config", "san", "access"} <= set(stores.config.scopes())


def test_figure6_apg_browser(scenario1_bundle, record_result):
    apg = build_apg(scenario1_bundle, scenario1_bundle.query_name)
    text = render_apg_browser(apg, "O23")
    record_result("figure6_apg_browser", text)
    assert ">>> selected" in text


def test_figure7_workflow_screen(scenario1_bundle, record_result):
    session = Diads.from_bundle(scenario1_bundle).interactive(
        scenario1_bundle.query_name
    )
    session.run_next()
    session.run_next()
    text = render_workflow_screen(session)
    record_result("figure7_workflow_screen", text)
    assert "[PD:done]" in text and "[CO:done]" in text and "[CR:NEXT]" in text


def test_bench_render_query_table(benchmark, scenario1_bundle):
    text = benchmark(
        lambda: render_query_table(
            scenario1_bundle.stores.runs, scenario1_bundle.query_name
        )
    )
    assert "Query executions" in text


def test_bench_render_apg_browser(benchmark, scenario1_bundle):
    apg = build_apg(scenario1_bundle, scenario1_bundle.query_name)
    text = benchmark(lambda: render_apg_browser(apg, "O23"))
    assert "O23" in text
