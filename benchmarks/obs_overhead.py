"""Observability overhead gate: tracing + metrics must cost <= 5% throughput.

Reuses the ``supervisor_throughput`` harness (64-environment stub fleet,
heavy-tailed diagnosis latency, barrier-free runtime) and measures
fleet-advance throughput twice: observability off (the default) and fully
on — spans journalling into an in-memory sink plus the metrics registry,
exactly what ``repro watch --stats`` enables.  The gate fails when the
enabled run delivers less than 95% of the disabled run's chunks/s.

Wall-clock benchmarks are noisy on shared CI workers, so the comparison is
best-of-two: each mode is measured up to twice and the gate passes if any
enabled/disabled pairing clears the bar.

Results land in ``benchmarks/results/`` as ``obs_overhead.txt`` and
``BENCH_obs_overhead.json``.
"""

from __future__ import annotations

import supervisor_throughput as harness

from repro.obs import clock as obs_clock
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.storage import MemoryBackend

#: Minimum enabled/disabled throughput ratio (<= 5% overhead).
MIN_RATIO = 0.95

ATTEMPTS = 2


def _measure(enabled: bool) -> dict:
    """One async-runtime throughput window with observability on or off."""
    if enabled:
        obs_clock.enable()
        obs_trace.tracer().reset()
        obs_metrics.registry().reset()
        obs_trace.tracer().set_sink(MemoryBackend())
    else:
        obs_clock.disable()
    try:
        row = harness._measure_async()
    finally:
        obs_trace.tracer().set_sink(None)
        obs_trace.tracer().reset()
        obs_metrics.registry().reset()
        obs_clock.reset()
    row["obs"] = "enabled" if enabled else "disabled"
    return row


def test_bench_obs_overhead(record_result):
    attempts = []
    ratio = 0.0
    for _ in range(ATTEMPTS):
        disabled = _measure(enabled=False)
        enabled = _measure(enabled=True)
        attempts.append((disabled, enabled))
        ratio = max(
            ratio, enabled["chunks_per_s"] / disabled["chunks_per_s"]
        )
        if ratio >= MIN_RATIO:
            break

    lines = [
        "Observability overhead: async-runtime throughput, obs off vs on",
        "-" * 70,
        f"{'obs':<10}{'chunks':>8}{'wall s':>9}{'chunks/s':>11}{'incidents':>11}",
        "-" * 70,
    ]
    for disabled, enabled in attempts:
        for row in (disabled, enabled):
            lines.append(
                f"{row['obs']:<10}{row['chunks']:>8}{row['wall_s']:>9.2f}"
                f"{row['chunks_per_s']:>11.1f}{row['incidents']:>11}"
            )
    lines.append("")
    lines.append(
        f"best enabled/disabled ratio: {ratio:.3f}  (gate: >= {MIN_RATIO})"
    )
    record_result(
        "obs_overhead",
        "\n".join(lines),
        data={
            "attempts": [
                {"disabled": d, "enabled": e} for d, e in attempts
            ],
            "best_ratio": ratio,
            "min_ratio": MIN_RATIO,
        },
    )

    assert ratio >= MIN_RATIO, (
        f"observability costs {(1.0 - ratio):.1%} of fleet throughput "
        f"(gate allows <= {(1.0 - MIN_RATIO):.0%})"
    )


# -- process backend -------------------------------------------------------
#
# Under ``--pool process`` observability additionally pays the cross-process
# envelope: the span context rides out in the task JSON, worker spans buffer
# and ship home piggy-backed on results, and the parent merges them.  The
# stub fleet cannot cross the process boundary (its simulators are live
# objects), so this leg measures the seam directly: round-trips of the
# ``repro.obs.worker:ping`` task, spinning enough per call (~2 ms, the
# thread harness's ADVANCE_COST_S) that the envelope cost is measured
# against a realistic simulation chunk, not an empty echo.  Same gate,
# same best-of-two discipline.

PROC_WORKERS = 2
PROC_TASKS = 100
PROC_SPIN = 50_000


def _measure_process(enabled: bool) -> dict:
    """One process-pool round-trip window with observability on or off."""
    import time

    from repro.runtime.procpool import ProcessWorkerPool

    if enabled:
        obs_clock.enable()
        obs_trace.tracer().reset()
        obs_metrics.registry().reset()
        obs_trace.tracer().set_sink(MemoryBackend())
    else:
        obs_clock.disable()
    pool = ProcessWorkerPool(processes=PROC_WORKERS)
    try:
        # Warm every worker first: process spawn + import cost stays out of
        # the measured window (distinct keys spread over fewest-keys workers).
        for index in range(PROC_WORKERS):
            pool.run_task(
                "repro.obs.worker:ping", {"spin": 1}, affinity=f"warm{index}"
            )
        start = time.perf_counter()
        if enabled:
            with obs_trace.span("iteration", env="bench", sim_t=0.0):
                for n in range(PROC_TASKS):
                    pool.run_task(
                        "repro.obs.worker:ping",
                        {"spin": PROC_SPIN},
                        affinity=f"warm{n % PROC_WORKERS}",
                    )
        else:
            for n in range(PROC_TASKS):
                pool.run_task(
                    "repro.obs.worker:ping",
                    {"spin": PROC_SPIN},
                    affinity=f"warm{n % PROC_WORKERS}",
                )
        wall = time.perf_counter() - start
        if enabled:
            pool.collect_obs()
    finally:
        pool.shutdown()
        obs_trace.tracer().set_sink(None)
        obs_trace.tracer().reset()
        obs_metrics.registry().reset()
        obs_clock.reset()
    return {
        "obs": "enabled" if enabled else "disabled",
        "tasks": PROC_TASKS,
        "wall_s": wall,
        "tasks_per_s": PROC_TASKS / wall if wall > 0 else 0.0,
    }


def test_bench_obs_overhead_process(record_result):
    attempts = []
    ratio = 0.0
    for _ in range(ATTEMPTS):
        disabled = _measure_process(enabled=False)
        enabled = _measure_process(enabled=True)
        attempts.append((disabled, enabled))
        ratio = max(ratio, enabled["tasks_per_s"] / disabled["tasks_per_s"])
        if ratio >= MIN_RATIO:
            break

    lines = [
        "Observability overhead: process-pool task round-trips, obs off vs on",
        "-" * 70,
        f"{'obs':<10}{'tasks':>8}{'wall s':>9}{'tasks/s':>11}",
        "-" * 70,
    ]
    for disabled, enabled in attempts:
        for row in (disabled, enabled):
            lines.append(
                f"{row['obs']:<10}{row['tasks']:>8}{row['wall_s']:>9.2f}"
                f"{row['tasks_per_s']:>11.1f}"
            )
    lines.append("")
    lines.append(
        f"best enabled/disabled ratio: {ratio:.3f}  (gate: >= {MIN_RATIO})"
    )
    record_result(
        "obs",
        "\n".join(lines),
        data={
            "backend": "process",
            "attempts": [
                {"disabled": d, "enabled": e} for d, e in attempts
            ],
            "best_ratio": ratio,
            "min_ratio": MIN_RATIO,
        },
    )

    assert ratio >= MIN_RATIO, (
        f"cross-process observability costs {(1.0 - ratio):.1%} of task "
        f"throughput (gate allows <= {(1.0 - MIN_RATIO):.0%})"
    )
