"""E2 — Table 2: dependency-analysis anomaly scores for V1/V2 metrics.

Paper's Table 2 (threshold 0.8):

    Volume, Metric   | no contention in V2 | contention in V2
    V1, writeIO      | 0.894               | 0.894
    V1, writeTime    | 0.823               | 0.823
    V2, writeIO      | 0.063               | 0.512
    V2, writeTime    | 0.479               | 0.879

Shape to reproduce: V1's metrics anomalous (≥0.8) in both variants; V2's
metrics below threshold, rising (writeTime most) once the bursty V2-side load
is added, yet still below V1's.
"""

from __future__ import annotations

import pytest

from repro.core.workflow import Diads

METRICS = [("V1", "writeIO"), ("V1", "writeTime"), ("V2", "writeIO"), ("V2", "writeTime")]


@pytest.fixture(scope="module")
def da_results(scenario1_bundle, scenario1_burst_bundle):
    plain = Diads.from_bundle(scenario1_bundle).diagnose(
        scenario1_bundle.query_name
    ).module_result("DA")
    burst = Diads.from_bundle(scenario1_burst_bundle).diagnose(
        scenario1_burst_bundle.query_name
    ).module_result("DA")
    return plain, burst


def test_table2_reproduction(da_results, record_result):
    plain, burst = da_results
    lines = [
        "Table 2 — anomaly scores from dependency analysis (threshold 0.8)",
        "-" * 72,
        f"{'volume, metric':<22}{'no contention in V2':>24}{'contention in V2':>24}",
        "-" * 72,
    ]
    for volume, metric in METRICS:
        lines.append(
            f"{volume + ', ' + metric:<22}"
            f"{plain.score(volume, metric):>24.3f}"
            f"{burst.score(volume, metric):>24.3f}"
        )
    record_result("table2_anomaly_scores", "\n".join(lines))

    # V1 anomalous in both variants (paper: 0.894 / 0.823)
    for metric in ("writeIO", "writeTime"):
        assert plain.score("V1", metric) >= 0.8
        assert burst.score("V1", metric) >= 0.8

    # V2 below threshold without extra load (paper: 0.063 / 0.479)
    assert plain.score("V2", "writeIO") < 0.8
    assert plain.score("V2", "writeTime") < 0.8

    # extra bursty load raises V2 scores (paper: 0.512 / 0.879) ...
    assert burst.score("V2", "writeTime") > plain.score("V2", "writeTime")
    # ... but V1 remains the dominant anomaly
    assert burst.score("V1", "writeTime") > burst.score("V2", "writeIO")


def test_v2_false_alarm_does_not_change_diagnosis(scenario1_burst_bundle):
    report = Diads.from_bundle(scenario1_burst_bundle).diagnose(
        scenario1_burst_bundle.query_name
    )
    assert report.top_cause.match.cause_id == "volume-contention-san-misconfig"
    assert report.top_cause.match.binding == "V1"


def test_bench_dependency_analysis(benchmark, scenario1_bundle):
    """Module DA's cost: KDE over every dependency-path component metric."""
    from repro.core.modules.base import DiagnosisContext
    from repro.core.modules.correlated_operators import CorrelatedOperatorsModule
    from repro.core.modules.dependency_analysis import DependencyAnalysisModule
    from repro.core.modules.plan_diff import PlanDiffModule

    def run_da():
        ctx = DiagnosisContext(
            bundle=scenario1_bundle, query_name=scenario1_bundle.query_name
        )
        PlanDiffModule().run(ctx)
        CorrelatedOperatorsModule().run(ctx)
        return DependencyAnalysisModule().run(ctx)

    result = benchmark(run_da)
    assert "V1" in result.ccs
