"""Shared fixtures for the benchmark/reproduction suite.

Each bench regenerates one table or figure of the paper.  The reproduced
artefact is written to ``benchmarks/results/<name>.txt`` (and echoed to
stdout) so the numbers survive pytest's output capturing; EXPERIMENTS.md
summarises paper-vs-measured for all of them.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.lab.scenarios import (
    scenario_concurrent_db_san,
    scenario_data_property_change,
    scenario_lock_contention,
    scenario_plan_regression,
    scenario_san_misconfiguration,
    scenario_two_external_workloads,
)

#: Simulated timeline per scenario (hours). 12h → 12 good + 12 bad runs.
BENCH_HOURS = 12.0

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_result():
    """Writer for reproduced tables/figures: record_result(name, text, data=None).

    Every result lands twice: the human table at ``results/<name>.txt`` and
    a machine-readable ``results/BENCH_<name>.json`` (pass ``data=`` for
    structured rows; without it the JSON still records the rendered text, so
    every benchmark is diffable by tooling).  Under ``REPRO_PROFILE=1`` the
    JSON additionally carries the observability profile — per-span duration
    histograms and the metrics-registry snapshot accumulated so far.
    """
    import json

    from repro.obs import profile_payload, profiling_enabled

    def write(name: str, text: str, data=None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        payload = {"benchmark": name, "text": text}
        if data is not None:
            payload["data"] = data
        if profiling_enabled():
            payload["profile"] = profile_payload()
        (RESULTS_DIR / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        print(f"\n=== {name} (saved to {path}) ===\n{text}\n")

    return write


@pytest.fixture(scope="session")
def scenario1_bundle():
    return scenario_san_misconfiguration(hours=BENCH_HOURS).run()


@pytest.fixture(scope="session")
def scenario1_burst_bundle():
    return scenario_san_misconfiguration(hours=BENCH_HOURS, with_v2_burst=True).run()


@pytest.fixture(scope="session")
def scenario2_bundle():
    return scenario_two_external_workloads(hours=BENCH_HOURS).run()


@pytest.fixture(scope="session")
def scenario3_bundle():
    return scenario_data_property_change(hours=BENCH_HOURS).run()


@pytest.fixture(scope="session")
def scenario4_bundle():
    return scenario_concurrent_db_san(hours=BENCH_HOURS).run()


@pytest.fixture(scope="session")
def scenario5_bundle():
    return scenario_lock_contention(hours=BENCH_HOURS).run()


@pytest.fixture(scope="session")
def scenario_pd_bundle():
    return scenario_plan_regression(hours=BENCH_HOURS).run()
