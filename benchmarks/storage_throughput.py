"""Telemetry-store backend throughput: append/scan ops/s, memory vs JSONL.

One table lands in ``benchmarks/results/storage_throughput.txt``: raw
backend append (single + batched) and scan rates, plus the end-to-end
``MetricStore.record`` rate through each backend — the number that bounds
how many raw observations per wall second a ``repro watch --state-dir``
deployment can absorb.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.monitor import MetricStore
from repro.storage import JsonlBackend, MemoryBackend

N_APPEND = 50_000
BATCH = 500


def _records(n):
    return [
        {"t": 60.0 * i, "k": f"V{i % 8}/readTime", "c": f"V{i % 8}", "m": "readTime", "v": 5.0}
        for i in range(n)
    ]


def _backends(tmp: Path):
    return (
        ("memory", MemoryBackend()),
        ("jsonl", JsonlBackend(tmp / "jsonl")),
    )


def _rate(n, seconds):
    return n / seconds if seconds > 0 else float("inf")


def test_bench_storage_throughput(record_result):
    tmp = Path(tempfile.mkdtemp(prefix="storage-bench-"))
    rows = []
    try:
        records = _records(N_APPEND)
        for name, backend in _backends(tmp):
            start = time.perf_counter()
            for record in records:
                backend.append("metrics", record)
            append_s = time.perf_counter() - start

            start = time.perf_counter()
            for i in range(0, N_APPEND, BATCH):
                backend.append_many("batched", records[i : i + BATCH])
            batch_s = time.perf_counter() - start

            backend.flush()
            start = time.perf_counter()
            scanned = sum(1 for _ in backend.scan("metrics"))
            scan_s = time.perf_counter() - start
            assert scanned == N_APPEND

            start = time.perf_counter()
            keyed = sum(1 for _ in backend.scan("metrics", key="V3/readTime"))
            keyed_s = time.perf_counter() - start
            assert keyed == N_APPEND // 8

            backend.close()
            rows.append(
                (name, _rate(N_APPEND, append_s), _rate(N_APPEND, batch_s),
                 _rate(N_APPEND, scan_s), _rate(N_APPEND, keyed_s))
            )

        # End-to-end MetricStore.record through each backend.
        store_rows = []
        for name, backend in _backends(tmp / "store"):
            store = MetricStore(backend=backend)
            start = time.perf_counter()
            for i in range(N_APPEND):
                store.record(60.0 * i, f"V{i % 8}", "readTime", 5.0)
            record_s = time.perf_counter() - start
            backend.close()
            store_rows.append((name, _rate(N_APPEND, record_s)))

        lines = [
            f"Telemetry backend throughput ({N_APPEND} records, ops/s)",
            "-" * 76,
            f"{'backend':<10}{'append':>13}{'append_many':>13}{'scan':>13}{'scan(key)':>13}",
            "-" * 76,
        ]
        for name, a, b, s, k in rows:
            lines.append(f"{name:<10}{a:>13.0f}{b:>13.0f}{s:>13.0f}{k:>13.0f}")
        lines += [
            "",
            "MetricStore.record end-to-end (raw observations/s)",
            "-" * 44,
        ]
        for name, r in store_rows:
            lines.append(f"{name:<10}{r:>13.0f}")
        record_result("storage_throughput", "\n".join(lines))

        # Sanity: the memory path must stay at least as fast as JSONL.
        assert rows[0][1] >= rows[1][1] * 0.5
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
