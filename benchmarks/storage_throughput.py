"""Telemetry-store backend throughput: append/scan ops/s, memory vs durable.

Results land in ``benchmarks/results/`` twice: a human table
(``storage_throughput.txt``) and machine-readable ``BENCH_storage.json``
(ops/s plus p50/p95 single-append latency per backend) so the perf
trajectory is tracked across PRs.  Covered: raw backend append (single +
batched), full scans, *keyed* scans (where the sqlite backend's
``(keyspace, key, ts)`` index earns its keep against JSONL's whole-segment
reads), and the end-to-end ``MetricStore.record`` rate through each backend
— the number that bounds how many raw observations per wall second a
``repro watch --state-dir`` deployment can absorb.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.monitor import MetricStore
from repro.storage import JsonlBackend, MemoryBackend, SqliteBackend

N_APPEND = 50_000
BATCH = 500

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _records(n):
    return [
        {"t": 60.0 * i, "k": f"V{i % 8}/readTime", "c": f"V{i % 8}", "m": "readTime", "v": 5.0}
        for i in range(n)
    ]


def _backends(tmp: Path):
    return (
        ("memory", MemoryBackend()),
        ("jsonl", JsonlBackend(tmp / "jsonl")),
        ("sqlite", SqliteBackend(tmp / "telemetry.db")),
    )


def _rate(n, seconds):
    return n / seconds if seconds > 0 else float("inf")


def test_bench_storage_throughput(record_result):
    tmp = Path(tempfile.mkdtemp(prefix="storage-bench-"))
    rows = []
    stats: dict[str, dict] = {}
    try:
        records = _records(N_APPEND)
        for name, backend in _backends(tmp):
            latencies = np.empty(N_APPEND)
            for i, record in enumerate(records):
                t0 = time.perf_counter()
                backend.append("metrics", record)
                latencies[i] = time.perf_counter() - t0
            append_s = float(latencies.sum())

            start = time.perf_counter()
            for i in range(0, N_APPEND, BATCH):
                backend.append_many("batched", records[i : i + BATCH])
            batch_s = time.perf_counter() - start

            backend.flush()
            start = time.perf_counter()
            scanned = sum(1 for _ in backend.scan("metrics"))
            scan_s = time.perf_counter() - start
            assert scanned == N_APPEND

            start = time.perf_counter()
            keyed = sum(1 for _ in backend.scan("metrics", key="V3/readTime"))
            keyed_s = time.perf_counter() - start
            assert keyed == N_APPEND // 8

            backend.close()
            row = (
                name, _rate(N_APPEND, append_s), _rate(N_APPEND, batch_s),
                _rate(N_APPEND, scan_s), _rate(N_APPEND, keyed_s),
            )
            rows.append(row)
            stats[name] = {
                "append_ops_s": round(row[1]),
                "append_many_ops_s": round(row[2]),
                "scan_ops_s": round(row[3]),
                "keyed_scan_ops_s": round(row[4]),
                "append_p50_latency_us": round(float(np.percentile(latencies, 50)) * 1e6, 2),
                "append_p95_latency_us": round(float(np.percentile(latencies, 95)) * 1e6, 2),
            }

        # End-to-end MetricStore.record through each backend.
        store_rows = []
        for name, backend in _backends(tmp / "store"):
            store = MetricStore(backend=backend)
            start = time.perf_counter()
            for i in range(N_APPEND):
                store.record(60.0 * i, f"V{i % 8}", "readTime", 5.0)
            record_s = time.perf_counter() - start
            backend.close()
            store_rows.append((name, _rate(N_APPEND, record_s)))
            stats[name]["metric_store_record_ops_s"] = round(_rate(N_APPEND, record_s))

        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_storage.json").write_text(
            json.dumps(
                {
                    "benchmark": "storage_throughput",
                    "config": {"records": N_APPEND, "batch": BATCH, "distinct_keys": 8},
                    "backends": stats,
                },
                indent=2,
            )
            + "\n"
        )

        lines = [
            f"Telemetry backend throughput ({N_APPEND} records, ops/s)",
            "-" * 102,
            f"{'backend':<10}{'append':>13}{'append_many':>13}{'scan':>13}"
            f"{'scan(key)':>13}{'p50 us':>10}{'p95 us':>10}",
            "-" * 102,
        ]
        for name, a, b, s, k in rows:
            lines.append(
                f"{name:<10}{a:>13.0f}{b:>13.0f}{s:>13.0f}{k:>13.0f}"
                f"{stats[name]['append_p50_latency_us']:>10.1f}"
                f"{stats[name]['append_p95_latency_us']:>10.1f}"
            )
        lines += [
            "",
            "MetricStore.record end-to-end (raw observations/s)",
            "-" * 44,
        ]
        for name, r in store_rows:
            lines.append(f"{name:<10}{r:>13.0f}")
        record_result("storage_throughput", "\n".join(lines))

        # Sanity: the memory path must stay at least as fast as JSONL.
        assert rows[0][1] >= rows[1][1] * 0.5
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
