"""repro.serve throughput: REST request rate + SSE fan-out at scale.

Two questions about the long-running fleet service:

* **REST** — how many requests/s does the hand-rolled HTTP/1.1 layer
  sustain from concurrent clients hitting a handler that crosses the
  coordination loop (``/healthz``)?
* **SSE fan-out** — when one tenant's fleet watch emits its event stream,
  can the broker fan every event out to **64 concurrent SSE clients**
  without losing frames and without unbounded lag?  Each client holds a
  bounded queue; the acceptance bar is *completeness* (all 64 clients see
  the identical, gap-free event sequence) and *bounded drain lag* (the
  slowest client finishes within ``LAG_BUDGET_S`` of the watch itself).

Results land in ``benchmarks/results/serve_throughput.txt`` and
machine-readable ``BENCH_serve.json``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

from repro.serve import ServeApp

N_SSE_CLIENTS = 64
REST_THREADS = 8
REST_REQUESTS_PER_THREAD = 50
LAG_BUDGET_S = 5.0

FLEET_SPEC = {
    "scenarios": ["shared-pool-saturation"],
    "hours": 2.0,
    "seed": 7,
    "min_members": 2,
    "chunk_minutes": 30.0,
}


class _Server:
    def __init__(self, root) -> None:
        self.app = ServeApp(root, backend="memory", sse_backlog=256)
        self.thread = threading.Thread(
            target=self.app.serve_forever, args=("127.0.0.1", 0), daemon=True
        )
        self.thread.start()
        deadline = time.time() + 30
        while self.app.bound is None and time.time() < deadline:
            time.sleep(0.01)
        assert self.app.bound is not None, "server never bound"

    def request(self, method: str, path: str, body: dict | None = None):
        host, port = self.app.bound
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(method, path, body=payload)
            response = conn.getresponse()
            raw = response.read()
            return response.status, (json.loads(raw) if raw else None)
        finally:
            conn.close()

    def stop(self) -> None:
        self.app.stop()
        self.thread.join(timeout=30)


class _SseClient(threading.Thread):
    """Reads one tenant's stream until the terminal ``fleet_done`` event."""

    def __init__(self, host: str, port: int, path: str) -> None:
        super().__init__(daemon=True)
        self.conn = http.client.HTTPConnection(host, port, timeout=120)
        self.path = path
        self.seqs: list[int] = []
        self.finished_at: float | None = None
        self.error: str | None = None

    def run(self) -> None:
        try:
            self.conn.request("GET", self.path)
            response = self.conn.getresponse()
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                done = False
                while b"\n\n" in buffer:
                    raw, buffer = buffer.split(b"\n\n", 1)
                    seq = event = None
                    for line in raw.decode().split("\n"):
                        if line.startswith("id: "):
                            seq = int(line[4:])
                        elif line.startswith("event: "):
                            event = line[7:]
                    if seq is not None:
                        self.seqs.append(seq)
                    if event == "fleet_done":
                        done = True
                if done:
                    self.finished_at = time.perf_counter()
                    break
        except Exception as exc:  # pragma: no cover - reported in the table
            self.error = repr(exc)
        finally:
            self.conn.close()


def _bench_rest(server: _Server) -> dict:
    latencies: list[float] = []
    lock = threading.Lock()

    def worker() -> None:
        mine = []
        for _ in range(REST_REQUESTS_PER_THREAD):
            t0 = time.perf_counter()
            status, _ = server.request("GET", "/healthz")
            mine.append(time.perf_counter() - t0)
            assert status == 200
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=worker) for _ in range(REST_THREADS)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    latencies.sort()
    n = len(latencies)
    return {
        "requests": n,
        "threads": REST_THREADS,
        "requests_per_s": n / elapsed,
        "p50_ms": latencies[n // 2] * 1e3,
        "p95_ms": latencies[int(n * 0.95)] * 1e3,
    }


def _bench_sse(server: _Server) -> dict:
    status, _ = server.request("POST", "/v1/tenants", {"tenant_id": "bench"})
    assert status == 201
    status, _ = server.request("POST", "/v1/tenants/bench/fleets", FLEET_SPEC)
    assert status == 201

    host, port = server.app.bound
    clients = [
        _SseClient(host, port, "/v1/tenants/bench/events")
        for _ in range(N_SSE_CLIENTS)
    ]
    for client in clients:
        client.start()
    time.sleep(0.2)  # let every stream attach before events start flowing

    t0 = time.perf_counter()
    status, _ = server.request("POST", "/v1/tenants/bench/watch/start")
    assert status == 200
    deadline = time.time() + 120
    while time.time() < deadline:
        _, watch = server.request("GET", "/v1/tenants/bench/watch")
        if watch["state"] in ("done", "failed", "stopped"):
            break
        time.sleep(0.02)
    assert watch["state"] == "done", watch
    watch_done = time.perf_counter()

    for client in clients:
        client.join(timeout=60)
    errors = [c.error for c in clients if c.error]
    assert not errors, errors
    assert all(c.finished_at is not None for c in clients), "client never finished"

    # Completeness: every client saw the identical gap-free sequence.
    reference = clients[0].seqs
    assert reference == list(range(len(reference))), "stream must be gap-free"
    for client in clients:
        assert client.seqs == reference, "fan-out must be complete for every client"

    lags = sorted(max(0.0, c.finished_at - watch_done) for c in clients)
    frames = len(reference) * N_SSE_CLIENTS
    elapsed = max(c.finished_at for c in clients) - t0
    return {
        "clients": N_SSE_CLIENTS,
        "events": len(reference),
        "frames_delivered": frames,
        "frames_per_s": frames / elapsed,
        "watch_wall_s": watch_done - t0,
        "drain_lag_p50_s": lags[len(lags) // 2],
        "drain_lag_max_s": lags[-1],
        "lag_budget_s": LAG_BUDGET_S,
    }


def test_bench_serve_throughput(record_result, tmp_path):
    server = _Server(tmp_path / "root")
    try:
        rest = _bench_rest(server)
        sse = _bench_sse(server)
    finally:
        server.stop()

    # The acceptance bar: full fan-out with bounded lag.
    assert sse["drain_lag_max_s"] < LAG_BUDGET_S

    text = "\n".join(
        [
            "repro serve throughput",
            "",
            f"REST  /healthz x{rest['requests']} over {rest['threads']} threads: "
            f"{rest['requests_per_s']:8.0f} req/s  "
            f"(p50 {rest['p50_ms']:.2f} ms, p95 {rest['p95_ms']:.2f} ms)",
            f"SSE   {sse['events']} events -> {sse['clients']} clients: "
            f"{sse['frames_delivered']} frames at {sse['frames_per_s']:8.0f} frames/s",
            f"      drain lag p50 {sse['drain_lag_p50_s'] * 1e3:.0f} ms, "
            f"max {sse['drain_lag_max_s'] * 1e3:.0f} ms "
            f"(budget {LAG_BUDGET_S:.0f} s); all clients gap-free and identical",
        ]
    )
    record_result("serve", text, data={"rest": rest, "sse": sse})
