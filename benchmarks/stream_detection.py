"""Streaming subsystem numbers: detection latency + supervisor throughput.

Two tables land in ``benchmarks/results/``
(``stream_detection_latency.txt`` and ``stream_supervisor_throughput.txt``):

* **detection latency** — simulated seconds from fault injection to (a) the
  first detector firing and (b) the first incident carrying a diagnosis, per
  scenario watched by a :class:`FleetSupervisor`;
* **supervisor throughput** — wall-clock cost of supervision: simulated
  hours advanced per wall second and incidents diagnosed, for 1..N
  concurrently watched environments.
"""

from __future__ import annotations

import time

from repro.cli import DEFAULT_WATCH_FLEET, SCENARIOS
from repro.stream import FleetSupervisor

BENCH_HOURS = 8.0

#: The exact fleet `repro watch` ships with, so these numbers describe it.
FLEET = tuple(SCENARIOS[name] for name in DEFAULT_WATCH_FLEET)


def _run_fleet(factories, hours=BENCH_HOURS, max_workers=None):
    supervisor = FleetSupervisor(max_workers=max_workers)
    for factory in factories:
        supervisor.watch_scenario(factory(hours=hours))
    start = time.perf_counter()
    supervisor.run(hours * 3600.0)
    wall = time.perf_counter() - start
    return supervisor, wall


def test_bench_detection_latency(record_result):
    supervisor, _ = _run_fleet(FLEET)
    lines = [
        "Streaming detection latency (simulated seconds after fault injection)",
        "-" * 86,
        f"{'scenario':<34}{'fault@':>8}{'first det':>11}{'latency':>9}"
        f"{'diagnosed@':>12}{'incidents':>10}",
        "-" * 86,
    ]
    rows = []
    for watched in supervisor.watched.values():
        fault_t = watched.info.fault_time
        incidents = watched.manager.incidents
        first_det = min(
            (d.time for i in incidents for d in i.detections), default=None
        )
        first_diag = min(
            (i.diagnosed_at for i in incidents if i.diagnosed_at is not None),
            default=None,
        )
        lines.append(
            f"{watched.name:<34}{fault_t:>8.0f}"
            f"{first_det if first_det is not None else float('nan'):>11.0f}"
            f"{(first_det - fault_t) if first_det is not None else float('nan'):>9.0f}"
            f"{first_diag if first_diag is not None else float('nan'):>12.0f}"
            f"{len(incidents):>10}"
        )
        assert first_det is not None and first_det >= fault_t
        # Detection within two monitoring chunks of the fault.
        assert first_det - fault_t <= 2.0 * supervisor.chunk_s
        rows.append(
            {
                "scenario": watched.name,
                "fault_at_s": fault_t,
                "first_detection_s": first_det,
                "detection_latency_s": first_det - fault_t,
                "first_diagnosed_s": first_diag,
                "incidents": len(incidents),
            }
        )
    record_result("stream_detection_latency", "\n".join(lines), data=rows)


def test_bench_supervisor_throughput(record_result):
    lines = [
        "Fleet supervisor throughput (8 simulated hours per environment)",
        "-" * 78,
        f"{'envs':>5}{'workers':>9}{'wall s':>9}{'sim h/wall s':>14}"
        f"{'incidents':>11}{'diagnosed':>11}",
        "-" * 78,
    ]
    rows = []
    for n_envs, workers in ((1, 1), (2, 2), (4, 4)):
        supervisor, wall = _run_fleet(FLEET[:n_envs], max_workers=workers)
        incidents = supervisor.incidents()
        diagnosed = [i for i in incidents if i.report is not None]
        sim_hours = n_envs * BENCH_HOURS
        lines.append(
            f"{n_envs:>5}{workers:>9}{wall:>9.2f}{sim_hours / wall:>14.1f}"
            f"{len(incidents):>11}{len(diagnosed):>11}"
        )
        assert diagnosed, f"{n_envs}-env fleet diagnosed nothing"
        rows.append(
            {
                "envs": n_envs,
                "workers": workers,
                "wall_s": wall,
                "sim_hours_per_wall_s": sim_hours / wall,
                "incidents": len(incidents),
                "diagnosed": len(diagnosed),
            }
        )
    record_result("stream_supervisor_throughput", "\n".join(lines), data=rows)
