"""E4 — Figure 2: the diagnosis workflow executes end-to-end.

Reproduces the drill-down/roll-up pipeline: per-module summaries and wall
times for both branches of the workflow (same-plan statistical drill-down and
the plan-change analysis branch).
"""

from __future__ import annotations

import time

import pytest

from repro.core.workflow import Diads


def test_figure2_workflow_trace(scenario1_bundle, record_result):
    diads = Diads.from_bundle(scenario1_bundle)
    session = diads.interactive(scenario1_bundle.query_name)
    lines = ["Figure 2 — workflow execution trace (scenario 1)", "-" * 78]
    while not session.finished:
        name = session.pending[0]
        t0 = time.perf_counter()
        result = session.run_next()
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
        lines.append(f"{name:<4} ({elapsed_ms:7.1f} ms)  {result.summary}")
    report = session.report()
    lines.append("-" * 78)
    lines.append(f"verdict: {report.top_cause.describe()}")
    record_result("figure2_workflow", "\n".join(lines))
    assert session.executed == ["PD", "CO", "CR", "DA", "SD", "IA"]


def test_figure2_plan_change_branch(scenario_pd_bundle, record_result):
    diads = Diads.from_bundle(scenario_pd_bundle)
    session = diads.interactive(scenario_pd_bundle.query_name)
    session.run_all()
    lines = ["Figure 2 — plan-change branch (plan regression scenario)", "-" * 78]
    for name in session.executed:
        lines.append(f"{name:<4} {session.ctx.result(name).summary}")
    record_result("figure2_plan_branch", "\n".join(lines))
    assert session.executed == ["PD", "SD", "IA"]


def test_bench_full_workflow(benchmark, scenario1_bundle):
    diads = Diads.from_bundle(scenario1_bundle)
    report = benchmark(lambda: diads.diagnose(scenario1_bundle.query_name))
    assert report.top_cause is not None


def test_bench_interactive_stepping(benchmark, scenario1_bundle):
    diads = Diads.from_bundle(scenario1_bundle)

    def step_all():
        session = diads.interactive(scenario1_bundle.query_name)
        session.run_all()
        return session

    session = benchmark(step_all)
    assert session.finished
