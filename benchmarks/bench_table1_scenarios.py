"""E1 — Table 1: DIADS diagnoses all five fault scenarios correctly.

Regenerates the paper's Table 1 as a results table: per scenario, the
injected problem, the diagnosed root cause, its confidence and impact, and
whether the critical module behaved as the paper describes.
"""

from __future__ import annotations

import pytest

from repro.core.evaluation import evaluate_bundle
from repro.core.workflow import Diads


@pytest.fixture(scope="module")
def evaluations(
    scenario1_bundle,
    scenario2_bundle,
    scenario3_bundle,
    scenario4_bundle,
    scenario5_bundle,
):
    bundles = [
        scenario1_bundle,
        scenario2_bundle,
        scenario3_bundle,
        scenario4_bundle,
        scenario5_bundle,
    ]
    return [evaluate_bundle(b) for b in bundles]


def test_table1_reproduction(evaluations, record_result):
    lines = [
        "Table 1 — experimental scenarios of increasing complexity",
        "-" * 98,
        f"{'#':<3}{'scenario':<32}{'verdict':<9}{'diagnosed root cause (confidence, impact)'}",
        "-" * 98,
    ]
    for i, ev in enumerate(evaluations, start=1):
        impact = f"{ev.top_impact_pct:.1f}%" if ev.top_impact_pct is not None else "n/a"
        lines.append(
            f"{i:<3}{ev.scenario_name:<32}{'OK' if ev.identified else 'MISS':<9}"
            f"{ev.top_cause}[{ev.top_binding or '-'}] ({ev.top_confidence}, {impact})"
        )
        lines.append(f"   injected: {ev.description}")
    record_result("table1_scenarios", "\n".join(lines))
    assert all(ev.identified for ev in evaluations), [
        ev.row() for ev in evaluations if not ev.identified
    ]


def test_scenario_specific_module_roles(evaluations):
    """Table 1's right column: the critical module per scenario."""
    by_name = {ev.scenario_name: ev for ev in evaluations}

    # 1: SD maps symptoms to the correct root cause on the correct volume
    ev1 = by_name["san-misconfiguration"]
    assert ev1.top_binding == "V1"

    # 2: DA prunes V2 — no V2 contention cause at high confidence
    ev2 = by_name["two-external-workloads"]
    assert ev2.report.top_cause.match.binding == "V1"

    # 3: CR identifies the data change, IA keeps contention below it
    ev3 = by_name["data-property-change"]
    assert ev3.report.module_result("CR").data_properties_changed
    data_impact = ev3.report.cause("data-property-change").impact_pct
    for rc in ev3.report.ranked_causes:
        if rc.match.kind == "volume-contention" and rc.impact_pct is not None:
            assert rc.impact_pct < data_impact

    # 4: both causes high confidence, IA ranks them
    ev4 = by_name["concurrent-db-san"]
    assert {"volume-contention-san-misconfig", "data-property-change"} <= set(
        ev4.high_confidence_causes
    )

    # 5: IA gives volume contention low impact, lock contention wins
    ev5 = by_name["lock-contention"]
    assert ev5.top_cause == "lock-contention"


def test_bench_diagnosis_latency(benchmark, scenario1_bundle):
    """How long one full batch diagnosis takes on a day of monitoring data."""
    diads = Diads.from_bundle(scenario1_bundle)
    report = benchmark(lambda: diads.diagnose(scenario1_bundle.query_name))
    assert report.top_cause.match.cause_id == "volume-contention-san-misconfig"
