"""Tests for dependency-path computation and the APG itself."""

from __future__ import annotations

import pytest

from repro.core.apg import build_apg
from repro.core.dependency import compute_dependency_paths


@pytest.fixture
def paths(q2_plan, catalog, testbed):
    return compute_dependency_paths(
        q2_plan, catalog, testbed.topology, testbed.db_server_id
    )


class TestDependencyPaths:
    def test_every_operator_covered(self, paths, q2_plan):
        assert set(paths) == {op.op_id for op in q2_plan.walk()}

    def test_v1_leaf_inner_path(self, paths):
        """The paper's example: an operator on V1 depends on server, HBA,
        switches, subsystem, pool, volume and disks."""
        inner = paths["O8"].inner
        assert {"srv-db", "hba0", "ds6000", "P1", "V1", "db"} <= inner
        assert {"d1", "d2", "d3", "d4"} <= inner
        assert "fcsw-edge" in inner and "fcsw-core" in inner
        assert "V2" not in inner

    def test_o23_paths_match_paper(self, paths):
        """Figure 1: O23's inner path includes pool P2, volume V2, disks 5-10;
        outer path includes V3 and V4 (shared disks)."""
        inner = paths["O23"].inner
        assert {"P2", "V2"} <= inner
        assert {f"d{i}" for i in range(5, 11)} <= inner
        assert paths["O23"].outer == frozenset({"V3", "V4"})

    def test_v1_leaf_has_no_outer_volumes_initially(self, paths):
        assert paths["O8"].outer == frozenset()

    def test_interior_unions_children(self, paths):
        o3 = paths["O3"]
        assert paths["O8"].inner <= o3.inner
        assert paths["O23"].inner <= o3.inner
        assert paths["O23"].outer <= o3.outer

    def test_root_covers_everything(self, paths, q2_plan):
        root = paths["O1"].all_components
        for op in q2_plan.leaves():
            assert paths[op.op_id].all_components <= root


class TestApg:
    def test_build_from_scenario(self, scenario1):
        apg = build_apg(scenario1.bundle, scenario1.query_name)
        assert apg.operator_count == 25
        assert apg.leaf_count == 9

    def test_volumes_used(self, scenario1):
        apg = build_apg(scenario1.bundle, scenario1.query_name)
        assert apg.volumes_used() == {"V1", "V2"}

    def test_leaves_on_volume(self, scenario1):
        apg = build_apg(scenario1.bundle, scenario1.query_name)
        assert set(apg.leaves_on_volume("V1")) == {"O8", "O22"}
        assert len(apg.leaves_on_volume("V2")) == 7

    def test_runs_filtered_by_signature(self, scenario1):
        apg = build_apg(scenario1.bundle, scenario1.query_name)
        signatures = {r.plan_signature for r in apg.runs}
        assert signatures == {apg.plan.signature()}

    def test_annotation_window_and_metrics(self, scenario1):
        apg = build_apg(scenario1.bundle, scenario1.query_name)
        run = apg.runs[-1]
        annotation = apg.annotate("O22", run)
        assert annotation.running_time > 0
        assert "V1" in annotation.component_metrics
        assert "readTime" in annotation.component_metrics["V1"]
        assert "db" in annotation.component_metrics

    def test_annotation_excludes_unrelated_volume(self, scenario1):
        apg = build_apg(scenario1.bundle, scenario1.query_name)
        annotation = apg.annotate("O22", apg.runs[-1])
        # V2 is not on O22's dependency paths (V1 shares no disks with P2)
        assert "V2" not in annotation.component_metrics

    def test_operator_times_by_label(self, scenario1):
        apg = build_apg(scenario1.bundle, scenario1.query_name)
        sat, unsat = apg.operator_times_by_label()
        assert len(sat["O1"]) == len(
            [r for r in apg.runs if r.satisfactory is True]
        )
        # slowdown visible in the root operator
        assert min(unsat["O1"]) > max(sat["O1"])

    def test_unknown_query_raises(self, scenario1):
        with pytest.raises(ValueError):
            build_apg(scenario1.bundle, "no-such-query")

    def test_component_ids_cover_san_and_db(self, scenario1):
        apg = build_apg(scenario1.bundle, scenario1.query_name)
        ids = apg.component_ids()
        assert {"V1", "V2", "P1", "P2", "ds6000", "srv-db", "db"} <= ids

    def test_volume_of_operator(self, scenario1):
        apg = build_apg(scenario1.bundle, scenario1.query_name)
        assert apg.volume_of_operator("O8") == "V1"
        assert apg.volume_of_operator("O3") is None
