"""Tests for the evaluation harnesses and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import SCENARIOS, build_parser, main
from repro.core.evaluation import evaluate_bundle
from repro.stats.evaluation import DetectorScore, evaluate_detectors, sweep_detectors


class TestDetectorEvaluation:
    def test_scores_cover_all_detectors(self):
        scores = evaluate_detectors(10, 0.05, trials=40, rng=np.random.default_rng(0))
        names = {s.detector for s in scores}
        assert {"kde-silverman", "threshold", "zscore", "percentile"} <= names

    def test_rates_bounded(self):
        for s in evaluate_detectors(10, 0.05, trials=40, rng=np.random.default_rng(1)):
            assert 0.0 <= s.accuracy <= 1.0
            assert 0.0 <= s.true_positive_rate <= 1.0
            assert 0.0 <= s.false_positive_rate <= 1.0
            assert 0.0 <= s.f1 <= 1.0

    def test_kde_easy_case_high_accuracy(self):
        scores = evaluate_detectors(40, 0.02, trials=100, rng=np.random.default_rng(2))
        kde = next(s for s in scores if s.detector == "kde-silverman")
        assert kde.accuracy >= 0.9

    def test_sweep_shape(self):
        scores = sweep_detectors(sample_sizes=(5, 10), noise_levels=(0.05,), trials=20)
        points = {(s.detector, s.n_samples) for s in scores}
        assert ("kde-silverman", 5) in points and ("kde-silverman", 10) in points

    def test_scale_parameter(self):
        small = evaluate_detectors(
            20, 0.05, trials=60, rng=np.random.default_rng(3), scale=0.01
        )
        kde = next(s for s in small if s.detector == "kde-silverman")
        assert kde.accuracy >= 0.8  # adaptive bandwidth transfers to tiny scales

    def test_f1_zero_when_no_tp(self):
        score = DetectorScore(
            detector="x", n_samples=5, noise_sigma=0.1,
            accuracy=0.5, true_positive_rate=0.0, false_positive_rate=0.0,
        )
        assert score.f1 == 0.0


class TestScenarioEvaluation:
    def test_evaluate_bundle_identifies(self, scenario1):
        evaluation = evaluate_bundle(scenario1)
        assert evaluation.identified
        assert evaluation.top_binding == "V1"
        assert "OK" in evaluation.row()

    def test_evaluation_row_format(self, scenario1):
        row = evaluate_bundle(scenario1).row()
        assert "san-misconfiguration" in row
        assert "high" in row


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "lock-contention", "--hours", "8"])
        assert args.command == "run" and args.hours == 8.0
        assert parser.parse_args(["list"]).command == "list"
        assert parser.parse_args(["sweep"]).command == "sweep"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_run_command_end_to_end(self, capsys):
        code = main(["run", "san-misconfiguration", "--hours", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "identified" in out
        assert "volume-contention-san-misconfig" in out

    def test_run_with_screens(self, capsys):
        code = main(["run", "data-property-change", "--hours", "6", "--screens"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Annotated Plan Graph" in out
        assert "Query executions" in out

    def test_scenario_registry_complete(self):
        assert len(SCENARIOS) == 14

    def test_fleet_scenario_registry_complete(self):
        from repro.cli import FLEET_SCENARIOS

        assert sorted(FLEET_SCENARIOS) == [
            "coincidental-independent-faults",
            "shared-pool-saturation",
            "shared-switch-degradation",
        ]
