"""Tests for the symptom model, condition DSL and the default codebook."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.symptoms import (
    Condition,
    Confidence,
    RootCauseEntry,
    Symptom,
    SymptomsDatabase,
    default_symptoms_database,
)


def S(sid, time=None):
    return Symptom.make(sid, time=time)


class TestConditionMatching:
    def test_exists(self):
        cond = Condition("a", 50)
        assert cond.matches([S("a")], None, None)
        assert not cond.matches([S("b")], None, None)

    def test_absence(self):
        cond = Condition("a", 50, present=False)
        assert cond.matches([S("b")], None, None)
        assert not cond.matches([S("a")], None, None)

    def test_binding_substitution(self):
        cond = Condition("anomaly:{V}", 50)
        assert cond.matches([S("anomaly:V1")], "V1", None)
        assert not cond.matches([S("anomaly:V1")], "V2", None)

    def test_wildcard(self):
        cond = Condition("volume-metric-anomaly:*", 50)
        assert cond.matches([S("volume-metric-anomaly:V9")], None, None)

    def test_before_onset(self):
        cond = Condition("event", 50, before_onset=True)
        assert cond.matches([S("event", time=10.0)], None, 20.0)
        assert not cond.matches([S("event", time=30.0)], None, 20.0)

    def test_before_onset_ignores_timeless(self):
        cond = Condition("event", 50, before_onset=True)
        assert cond.matches([S("event")], None, 20.0)

    def test_weight_positive(self):
        with pytest.raises(ValueError):
            Condition("a", 0)


class TestEntries:
    def test_weights_must_sum_to_100(self):
        with pytest.raises(ValueError):
            RootCauseEntry(
                cause_id="x",
                description="",
                conditions=(Condition("a", 60), Condition("b", 20)),
            )

    def test_score_partial(self):
        entry = RootCauseEntry(
            cause_id="x",
            description="",
            conditions=(Condition("a", 60), Condition("b", 40)),
        )
        assert entry.score([S("a")]) == 60.0
        assert entry.score([S("a"), S("b")]) == 100.0
        assert entry.score([]) == 0.0

    def test_confidence_bands(self):
        assert Confidence.from_score(85) is Confidence.HIGH
        assert Confidence.from_score(80) is Confidence.HIGH
        assert Confidence.from_score(79.9) is Confidence.MEDIUM
        assert Confidence.from_score(50) is Confidence.MEDIUM
        assert Confidence.from_score(49.9) is Confidence.LOW


class TestDatabase:
    def test_duplicate_entry_rejected(self):
        db = SymptomsDatabase()
        entry = RootCauseEntry(
            cause_id="x", description="", conditions=(Condition("a", 100),)
        )
        db.add(entry)
        with pytest.raises(ValueError):
            db.add(entry)

    def test_remove_and_get(self):
        db = default_symptoms_database()
        db.get("lock-contention")
        db.remove("lock-contention")
        with pytest.raises(KeyError):
            db.get("lock-contention")

    def test_evaluate_sorted_by_score(self):
        db = default_symptoms_database()
        matches = db.evaluate([S("lock-wait-anomaly"), S("operators-anomalous")], ["V1"])
        scores = [m.score for m in matches]
        assert scores == sorted(scores, reverse=True)

    def test_per_volume_binding_selects_best(self):
        db = default_symptoms_database()
        symptoms = [
            S("volume-metric-anomaly:V1"),
            S("operators-anomalous-volume:V1"),
            S("new-volume-on-shared-disks:V1"),
            S("zone-or-lun-change"),
            S("volume-perf-degraded-event:V1"),
        ]
        matches = db.evaluate(symptoms, ["V1", "V2"])
        top = matches[0]
        assert top.cause_id == "volume-contention-san-misconfig"
        assert top.binding == "V1"
        assert top.confidence is Confidence.HIGH

    def test_scenario1_medium_db_workload_alternative(self):
        """The paper: 'V1's contention due to a change in database workload
        got a medium confidence score' — no db-io-increase symptom."""
        db = default_symptoms_database()
        symptoms = [
            S("volume-metric-anomaly:V1"),
            S("operators-anomalous-volume:V1"),
        ]
        match = next(
            m
            for m in db.evaluate(symptoms, ["V1"])
            if m.cause_id == "volume-contention-db-workload"
        )
        assert match.confidence is Confidence.MEDIUM

    def test_plan_change_blocks_contention_entries(self):
        db = default_symptoms_database()
        symptoms = [
            S("volume-metric-anomaly:V1"),
            S("operators-anomalous-volume:V1"),
            S("new-volume-on-shared-disks:V1"),
            S("zone-or-lun-change"),
            S("volume-perf-degraded-event:V1"),
            S("plan-changed"),
        ]
        match = next(
            m
            for m in db.evaluate(symptoms, ["V1"])
            if m.cause_id == "volume-contention-san-misconfig"
        )
        assert match.score == 95.0  # loses the ¬plan-changed weight

    def test_default_db_covers_table1_causes(self):
        ids = {e.cause_id for e in default_symptoms_database().entries}
        assert {
            "volume-contention-san-misconfig",
            "volume-contention-external-workload",
            "data-property-change",
            "lock-contention",
            "plan-regression-index-drop",
        } <= ids

    def test_all_default_entries_normalised(self):
        for entry in default_symptoms_database().entries:
            assert sum(c.weight for c in entry.conditions) == pytest.approx(100.0)


class TestProperties:
    symptom_ids = st.lists(
        st.sampled_from(
            [
                "volume-metric-anomaly:V1",
                "operators-anomalous-volume:V1",
                "operators-anomalous",
                "record-count-anomaly",
                "lock-wait-anomaly",
                "db-io-increase",
                "plan-changed",
                "zone-or-lun-change",
            ]
        ),
        max_size=8,
        unique=True,
    )

    @given(symptom_ids)
    @settings(max_examples=50, deadline=None)
    def test_scores_always_in_range(self, sids):
        db = default_symptoms_database()
        for match in db.evaluate([S(x) for x in sids], ["V1", "V2"]):
            assert 0.0 <= match.score <= 100.0

    @given(symptom_ids)
    @settings(max_examples=50, deadline=None)
    def test_monotone_more_symptoms_never_lower_positive_only_entries(self, sids):
        """Entries without absence-conditions can only gain score."""
        db = default_symptoms_database()
        entry = db.get("volume-contention-db-workload")
        positive_only = RootCauseEntry(
            cause_id="pos",
            description="",
            conditions=tuple(c for c in entry.conditions if c.present)
            + (Condition("pad", 10),),
        ) if sum(c.weight for c in entry.conditions if c.present) == 90 else None
        if positive_only is None:
            return
        base = positive_only.score([S(x) for x in sids], binding="V1")
        more = positive_only.score(
            [S(x) for x in sids] + [S("db-io-increase")], binding="V1"
        )
        assert more >= base
