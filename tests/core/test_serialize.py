"""Tests for JSON serialization of plans, APGs and reports."""

from __future__ import annotations

import json

import pytest

from repro.core.apg import build_apg
from repro.core.serialize import (
    apg_to_dict,
    plan_from_dict,
    plan_to_dict,
    report_to_dict,
)
from repro.core.workflow import Diads
from repro.db.plans import canonical_q2_plan


class TestPlanRoundTrip:
    def test_roundtrip_preserves_signature(self, q2_plan):
        restored = plan_from_dict(plan_to_dict(q2_plan))
        assert restored.signature() == q2_plan.signature()
        assert restored.size == 25

    def test_roundtrip_preserves_fields(self, q2_plan):
        restored = plan_from_dict(plan_to_dict(q2_plan))
        o22 = restored.find("O22")
        original = q2_plan.find("O22")
        assert o22.table == original.table
        assert o22.index == original.index
        assert o22.loops == original.loops
        assert o22.est_rows == original.est_rows

    def test_json_dumpable(self, q2_plan):
        text = json.dumps(plan_to_dict(q2_plan))
        assert '"O23"' in text

    def test_missing_optional_fields_defaulted(self):
        restored = plan_from_dict({"op_id": "O1", "op_type": "Limit"})
        assert restored.est_rows == 1.0 and restored.children == []


class TestApgSerialization:
    def test_structure(self, scenario1):
        apg = build_apg(scenario1, scenario1.query_name)
        data = apg_to_dict(apg)
        assert data["operator_count"] == 25
        assert data["volumes_used"] == ["V1", "V2"]
        assert set(data["dependency"]["O23"]["outer"]) == {"V3", "V4"}
        assert len(data["runs"]) == len(apg.runs)
        json.dumps(data)  # must be JSON-safe

    def test_annotations_included_on_demand(self, scenario1):
        apg = build_apg(scenario1, scenario1.query_name)
        slim = apg_to_dict(apg)
        fat = apg_to_dict(apg, include_annotations=True)
        assert "annotations" not in slim
        assert "V1" in fat["annotations"]["O22"]["components"]
        json.dumps(fat)


class TestReportSerialization:
    @pytest.fixture(scope="class")
    def report(self, scenario1):
        return Diads.from_bundle(scenario1).diagnose(scenario1.query_name)

    def test_causes_ranked_and_typed(self, report):
        data = report_to_dict(report)
        assert data["causes"][0]["cause_id"] == "volume-contention-san-misconfig"
        assert data["causes"][0]["confidence"] == "high"
        assert data["causes"][0]["impact_pct"] > 90

    def test_modules_and_symptoms_present(self, report):
        data = report_to_dict(report)
        assert set(data["modules"]) == {"PD", "CO", "CR", "DA", "SD", "IA"}
        sids = {s["sid"] for s in data["symptoms"]}
        assert "volume-metric-anomaly:V1" in sids

    def test_json_dumpable(self, report):
        json.dumps(report_to_dict(report))
