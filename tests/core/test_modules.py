"""Per-module tests for the diagnosis workflow, driven by scenario 1."""

from __future__ import annotations

import pytest

from repro.core.modules.base import DiagnosisContext
from repro.core.modules.correlated_operators import CorrelatedOperatorsModule, kde_anomaly
from repro.core.modules.dependency_analysis import DependencyAnalysisModule
from repro.core.modules.impact import ImpactAnalysisModule, self_times
from repro.core.modules.plan_diff import PlanDiffModule
from repro.core.modules.record_counts import RecordCountsModule, two_sided_anomaly
from repro.core.modules.symptoms_db import SymptomsDatabaseModule, extract_symptoms


@pytest.fixture(scope="module")
def ctx1(scenario1):
    """Scenario-1 context with the full pipeline already executed."""
    ctx = DiagnosisContext(bundle=scenario1.bundle, query_name=scenario1.query_name)
    PlanDiffModule().run(ctx)
    CorrelatedOperatorsModule().run(ctx)
    RecordCountsModule().run(ctx)
    DependencyAnalysisModule().run(ctx)
    SymptomsDatabaseModule().run(ctx)
    ImpactAnalysisModule().run(ctx)
    return ctx


class TestContext:
    def test_requires_labelled_runs(self, scenario1):
        with pytest.raises(ValueError):
            DiagnosisContext(bundle=scenario1.bundle, query_name="missing")

    def test_onset_after_last_satisfactory(self, ctx1):
        assert ctx1.onset > ctx1.last_satisfactory_time

    def test_result_accessors(self, ctx1):
        assert ctx1.result("CO").module == "CO"
        with pytest.raises(KeyError):
            ctx1.result("XX")


class TestScoringHelpers:
    def test_kde_anomaly_level_shift(self):
        assert kde_anomaly([10.0, 10.2, 9.8, 10.1], [14.0, 14.2]) > 0.99

    def test_kde_anomaly_no_shift(self):
        score = kde_anomaly([10.0, 10.2, 9.8, 10.1], [10.05])
        assert 0.1 < score < 0.9

    def test_kde_anomaly_empty_inputs(self):
        assert kde_anomaly([], [1.0]) == 0.0
        assert kde_anomaly([1.0], []) == 0.0

    def test_two_sided_detects_both_directions(self):
        sat = [100.0, 101.0, 99.0, 100.5]
        assert two_sided_anomaly(sat, [150.0]) > 0.95
        assert two_sided_anomaly(sat, [50.0]) > 0.95
        assert two_sided_anomaly(sat, [100.2]) < 0.5

    def test_two_sided_constant_counts(self):
        assert two_sided_anomaly([100.0] * 5, [100.0]) == pytest.approx(0.0, abs=1e-6)
        assert two_sided_anomaly([100.0] * 5, [150.0]) == pytest.approx(1.0, abs=1e-6)


class TestPD:
    def test_same_plan_branch(self, ctx1):
        pd = ctx1.result("PD")
        assert not pd.plans_differ
        assert pd.shared_plan is not None
        assert ctx1.apg is not None

    def test_plan_change_branch(self, scenario_pd):
        ctx = DiagnosisContext(
            bundle=scenario_pd.bundle, query_name=scenario_pd.query_name
        )
        pd = PlanDiffModule().run(ctx)
        assert pd.plans_differ
        confirmed = pd.confirmed_causes
        assert len(confirmed) == 1
        assert confirmed[0].kind == "index_dropped"
        assert confirmed[0].component == "ix_partsupp_suppkey"

    def test_config_change_cause_confirmed(self, scenario_pd_config):
        ctx = DiagnosisContext(
            bundle=scenario_pd_config.bundle, query_name=scenario_pd_config.query_name
        )
        pd = PlanDiffModule().run(ctx)
        assert pd.plans_differ
        assert any(
            c.kind == "db_config_changed" and c.confirmed for c in pd.causes
        )


class TestCO:
    def test_v1_leaves_in_cos(self, ctx1):
        co = ctx1.result("CO")
        assert {"O8", "O22"} <= co.cos

    def test_ancestor_propagation(self, ctx1):
        """Event propagation: ancestors of the slow V1 leaves score high."""
        co = ctx1.result("CO")
        assert {"O17", "O18", "O20", "O21", "O3", "O2"} <= co.cos

    def test_most_v2_leaves_not_in_cos(self, ctx1):
        co = ctx1.result("CO")
        v2_leaves = {"O4", "O10", "O12", "O14", "O19", "O23", "O25"}
        assert len(v2_leaves & co.cos) <= 2

    def test_scores_bounded(self, ctx1):
        co = ctx1.result("CO")
        assert all(0.0 <= s <= 1.0 for s in co.scores.values())
        assert len(co.scores) == 25

    def test_top_returns_sorted(self, ctx1):
        top = ctx1.result("CO").top(5)
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)


class TestCR:
    def test_no_data_change_in_scenario1(self, ctx1):
        cr = ctx1.result("CR")
        assert not cr.data_properties_changed

    def test_data_change_detected_in_scenario3(self, scenario3):
        ctx = DiagnosisContext(bundle=scenario3.bundle, query_name=scenario3.query_name)
        PlanDiffModule().run(ctx)
        CorrelatedOperatorsModule().run(ctx)
        cr = RecordCountsModule().run(ctx)
        assert cr.data_properties_changed
        # the partsupp leaves are the shifted ones
        assert {"O4", "O19"} & cr.crs


class TestDA:
    def test_v1_metrics_anomalous(self, ctx1):
        da = ctx1.result("DA")
        assert da.score("V1", "writeTime") >= 0.8
        assert da.score("V1", "writeIO") >= 0.8

    def test_v2_metrics_normal(self, ctx1):
        da = ctx1.result("DA")
        assert da.score("V2", "writeIO") < 0.8

    def test_v1_in_ccs(self, ctx1):
        da = ctx1.result("DA")
        assert "V1" in da.ccs
        assert "V2" not in da.ccs

    def test_p1_disks_flagged(self, ctx1):
        da = ctx1.result("DA")
        assert {"d1", "d2", "d3", "d4"} & da.components_with_anomalies()

    def test_findings_include_correlation(self, ctx1):
        da = ctx1.result("DA")
        finding = da.findings[("V1", "readTime")]
        assert abs(finding.best_correlation) >= 0.5
        assert finding.correlated_operator is not None


class TestSD:
    def test_symptom_extraction_core_set(self, ctx1):
        sd = ctx1.result("SD")
        sids = {s.sid for s in sd.symptoms}
        assert "operators-anomalous-volume:V1" in sids
        assert "volume-metric-anomaly:V1" in sids
        assert "new-volume-on-shared-disks:V1" in sids
        assert "zone-or-lun-change" in sids
        assert "most-volume-leaves-normal:V2" in sids

    def test_high_confidence_root_cause(self, ctx1):
        sd = ctx1.result("SD")
        high = sd.high_confidence()
        assert [m.cause_id for m in high] == ["volume-contention-san-misconfig"]
        assert high[0].binding == "V1"

    def test_db_workload_alternative_medium(self, ctx1):
        """Paper: the db-workload contention entry lands at medium."""
        sd = ctx1.result("SD")
        match = sd.match("volume-contention-db-workload")
        assert match.confidence.value == "medium"

    def test_extract_symptoms_standalone(self, ctx1):
        symptoms = extract_symptoms(ctx1)
        assert {s.sid for s in symptoms} == {s.sid for s in ctx1.result("SD").symptoms}


class TestIA:
    def test_impact_near_total_for_true_cause(self, ctx1):
        """Paper: impact score 99.8% for the V1-contention root cause."""
        ia = ctx1.result("IA")
        assert ia.impact_of("volume-contention-san-misconfig") > 90.0

    def test_extra_plan_time_positive(self, ctx1):
        assert ctx1.result("IA").extra_plan_time > 0

    def test_ranked_puts_high_confidence_first(self, ctx1):
        ranked = ctx1.result("IA").ranked()
        assert ranked[0].confidence == "high"

    def test_self_times_sum_to_duration(self, ctx1):
        run = ctx1.apg.runs[-1]
        selves = self_times(ctx1.apg.plan, run)
        assert sum(selves.values()) == pytest.approx(run.duration, rel=1e-6)
