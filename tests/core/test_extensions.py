"""Tests for the Section-7 extensions: self-healing, symptoms-DB evolution,
and the extension scenarios (CPU, buffer pool, RAID rebuild)."""

from __future__ import annotations

import pytest

from repro.core import Diads, SelfHealer, suggest_entry, suggest_from_reports
from repro.core.symptoms import SymptomsDatabase, default_symptoms_database
from repro.lab.scenarios import (
    ScenarioBundle,
    scenario_buffer_pool,
    scenario_cpu_saturation,
    scenario_raid_rebuild,
    scenario_san_misconfiguration,
)

HOURS = 10.0


@pytest.fixture(scope="module")
def cpu_bundle():
    return scenario_cpu_saturation(hours=HOURS).run()


@pytest.fixture(scope="module")
def buffer_bundle():
    return scenario_buffer_pool(hours=HOURS).run()


@pytest.fixture(scope="module")
def raid_bundle():
    return scenario_raid_rebuild(hours=HOURS).run()


class TestExtensionScenarios:
    def test_cpu_saturation_diagnosed(self, cpu_bundle):
        report = Diads.from_bundle(cpu_bundle).diagnose(cpu_bundle.query_name)
        assert report.top_cause.match.cause_id == "cpu-saturation"
        assert report.top_cause.match.confidence.value == "high"

    def test_cpu_scenario_volume_metrics_stay_clean(self, cpu_bundle):
        report = Diads.from_bundle(cpu_bundle).diagnose(cpu_bundle.query_name)
        sd = report.module_result("SD")
        sids = {s.sid for s in sd.symptoms}
        assert "server-cpu-anomaly" in sids
        assert not any(s.startswith("volume-metric-anomaly") for s in sids)

    def test_buffer_pool_diagnosed(self, buffer_bundle):
        report = Diads.from_bundle(buffer_bundle).diagnose(buffer_bundle.query_name)
        assert report.top_cause.match.cause_id == "buffer-pool-thrashing"
        sd = report.module_result("SD")
        sids = {s.sid for s in sd.symptoms}
        assert {"buffer-hit-drop", "db-io-increase"} <= sids

    def test_buffer_pool_ranks_above_contention(self, buffer_bundle):
        """The extra physical I/O does load the volumes, but the thrashing
        cause must outrank any induced-contention interpretation."""
        report = Diads.from_bundle(buffer_bundle).diagnose(buffer_bundle.query_name)
        ids = [rc.match.cause_id for rc in report.ranked_causes]
        for cause in ids:
            if cause == "buffer-pool-thrashing":
                break
            assert not cause.startswith("volume-contention"), ids

    def test_raid_rebuild_diagnosed(self, raid_bundle):
        report = Diads.from_bundle(raid_bundle).diagnose(raid_bundle.query_name)
        assert report.top_cause.match.cause_id == "raid-rebuild-degradation"
        assert report.top_cause.match.binding == "V1"


class TestSelfHealer:
    def _run_and_diagnose(self, scenario):
        env = scenario.build()
        bundle = env.run(scenario.duration_s)
        bundle.stores.runs.label_by_window(
            scenario.query_name, scenario.info.fault_time, scenario.duration_s + 1
        )
        sb = ScenarioBundle(
            info=scenario.info, bundle=bundle, query_name=scenario.query_name
        )
        report = Diads.from_bundle(sb).diagnose(scenario.query_name)
        return env, report

    def test_recommendation_matches_cause(self):
        env, report = self._run_and_diagnose(
            scenario_san_misconfiguration(hours=HOURS)
        )
        fixes = SelfHealer().recommend(report)
        assert len(fixes) == 1
        assert fixes[0].layer == "san"
        assert "V1" in fixes[0].fix_id

    def test_recommend_is_side_effect_free(self):
        env, report = self._run_and_diagnose(
            scenario_san_misconfiguration(hours=HOURS)
        )
        workloads_before = [(w.name, w.end) for w in env.external]
        SelfHealer().recommend(report)
        assert [(w.name, w.end) for w in env.external] == workloads_before

    def test_apply_heals_the_environment(self):
        """After healing, continued simulation returns to baseline speed."""
        scenario = scenario_san_misconfiguration(hours=HOURS)
        env, report = self._run_and_diagnose(scenario)
        applied = SelfHealer().apply(report, env, at_time=scenario.duration_s)
        assert applied and applied[0].cause_id == "volume-contention-san-misconfig"

        env.run(2 * 3600.0, start_s=scenario.duration_s)
        runs = env.stores.runs.runs(scenario.query_name)
        pre_fault = [r.duration for r in runs if r.start_time < scenario.info.fault_time]
        healed = [r.duration for r in runs if r.start_time >= scenario.duration_s]
        assert healed
        assert max(healed) < 1.2 * max(pre_fault)

    def test_low_confidence_causes_get_no_fix(self, cpu_bundle):
        report = Diads.from_bundle(cpu_bundle).diagnose(cpu_bundle.query_name)
        fixes = SelfHealer().recommend(report)
        # only the high-confidence cpu cause is actionable
        assert [f.fix_id for f in fixes] == ["evict-cpu-hog"]

    def test_min_confidence_validation(self):
        with pytest.raises(ValueError):
            SelfHealer(min_confidence="low")


class TestEvolution:
    @pytest.fixture(scope="class")
    def uncovered_report(self, scenario1):
        """Scenario 1 diagnosed with an EMPTY symptoms database."""
        return Diads.from_bundle(scenario1, symptoms_db=SymptomsDatabase()).diagnose(
            scenario1.query_name
        )

    def test_suggests_entry_when_uncovered(self, uncovered_report):
        suggestion = suggest_entry(uncovered_report)
        assert suggestion is not None
        patterns = {c.pattern for c in suggestion.entry.conditions}
        assert "volume-metric-anomaly:{V}" in patterns
        assert "new-volume-on-shared-disks:{V}" in patterns

    def test_suggested_entry_weights_normalised(self, uncovered_report):
        suggestion = suggest_entry(uncovered_report)
        total = sum(c.weight for c in suggestion.entry.conditions)
        assert total == pytest.approx(100.0)

    def test_adopted_entry_reaches_high_confidence(self, scenario1, uncovered_report):
        db = SymptomsDatabase()
        db.add(suggest_entry(uncovered_report).entry)
        report = Diads.from_bundle(scenario1, symptoms_db=db).diagnose(
            scenario1.query_name
        )
        assert report.top_cause.match.confidence.value == "high"
        assert report.top_cause.match.binding == "V1"

    def test_no_suggestion_when_codebook_covers(self, scenario1):
        report = Diads.from_bundle(
            scenario1, symptoms_db=default_symptoms_database()
        ).diagnose(scenario1.query_name)
        assert suggest_entry(report) is None

    def test_batch_suggestions_require_support(self, scenario1):
        empty_db_report = Diads.from_bundle(
            scenario1, symptoms_db=SymptomsDatabase()
        ).diagnose(scenario1.query_name)
        assert suggest_from_reports([empty_db_report], min_support=2) == []
        merged = suggest_from_reports(
            [empty_db_report, empty_db_report], min_support=2
        )
        assert len(merged) == 1
        assert merged[0].support == 2
