"""Tests for the pluggable pipeline engine: registry, DAG scheduling, batch.

Covers the redesign's acceptance criteria: third-party modules registered
via ``@register_module`` run inside ``Diads.diagnose()`` with no engine
edits, and ``diagnose_many`` over a fleet of queries returns reports
identical to per-query ``diagnose()`` calls.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.core.baselines import SanOnlyDiagnoser, baseline_pipeline
from repro.core.modules.base import DiagnosisContext, ModuleResult
from repro.core.pipeline import (
    DEFAULT_MODULES,
    DiagnosisPipeline,
    DiagnosisRequest,
    PipelineError,
    default_pipeline,
)
from repro.core.registry import (
    ModuleRegistry,
    RegistryError,
    default_registry,
    register_module,
)
from repro.core.serialize import report_to_dict
from repro.core.workflow import MODULE_ORDER, Diads
from repro.core.evaluation import evaluate_bundle, evaluate_bundles


class _StubModule:
    """Minimal registrable module for registry/DAG tests."""

    def __init__(self, name: str, requires=(), after=(), gate=None, provides=None) -> None:
        self.name = name
        self.requires = tuple(requires)
        self.after = tuple(after)
        if gate is not None:
            self.gate = gate
        if provides is not None:
            self.provides = provides

    def run(self, ctx: DiagnosisContext) -> ModuleResult:
        result = ModuleResult(module=self.name, summary="stub ran")
        ctx.set_result(result)
        return result


class TestRegistry:
    def test_paper_modules_are_registered(self):
        registry = default_registry()
        for name in DEFAULT_MODULES:
            assert name in registry

    def test_register_and_create(self):
        registry = ModuleRegistry()
        registry.register(lambda: _StubModule("X1"), name="X1")
        module = registry.create("X1")
        assert module.name == "X1"

    def test_duplicate_registration_rejected(self):
        registry = ModuleRegistry()
        registry.register(lambda: _StubModule("X1"), name="X1")
        with pytest.raises(RegistryError):
            registry.register(lambda: _StubModule("X1"), name="X1")
        registry.register(lambda: _StubModule("X1"), name="X1", replace=True)

    def test_unknown_module_lists_known(self):
        with pytest.raises(RegistryError, match="PD"):
            default_registry().create("no-such-module")

    def test_nameless_factory_rejected(self):
        with pytest.raises(RegistryError):
            ModuleRegistry().register(lambda: _StubModule("X"))


class TestDagScheduling:
    def test_default_order_matches_figure2(self):
        assert default_pipeline().order == ("PD", "CO", "CR", "DA", "SD", "IA")
        assert MODULE_ORDER == ("PD", "CO", "CR", "DA", "SD", "IA")

    def test_listing_order_is_irrelevant(self):
        shuffled = DiagnosisPipeline(["IA", "SD", "DA", "CR", "CO", "PD"])
        assert shuffled.order == default_pipeline().order

    def test_cycle_detected(self):
        a = _StubModule("A", requires=("B",))
        b = _StubModule("B", requires=("A",))
        with pytest.raises(PipelineError, match="cycle"):
            DiagnosisPipeline([a, b])

    def test_missing_requirement_detected(self):
        with pytest.raises(PipelineError, match="requires"):
            DiagnosisPipeline([_StubModule("A", requires=("Z",))])

    def test_duplicate_module_detected(self):
        with pytest.raises(PipelineError, match="twice"):
            DiagnosisPipeline([_StubModule("A"), _StubModule("A")])

    def test_soft_after_ignored_when_absent(self):
        pipeline = DiagnosisPipeline([_StubModule("A", after=("Z", "B")), _StubModule("B")])
        assert pipeline.order == ("B", "A")

    def test_provides_resolves_requires_edges(self, scenario1):
        """A drop-in replacement advertises the key it fills via provides."""

        from repro.core.modules import COResult

        class FakeCO:
            """Replacement fills the CO key with a COResult-shaped payload."""

            name = "CO2"
            provides = "CO"
            requires = ("PD",)

            def run(self, ctx):
                result = COResult(
                    module="CO", summary="replacement COS", scores={}, cos=set()
                )
                ctx.set_result(result)
                return result

        pipeline = DiagnosisPipeline(["PD", FakeCO(), "SD", "IA"])
        assert pipeline.order.index("CO2") > pipeline.order.index("PD")
        report = pipeline.diagnose(scenario1)
        assert report.context.result("CO").summary == "replacement COS"

    def test_duplicate_provides_detected(self):
        with pytest.raises(PipelineError, match="both provide"):
            DiagnosisPipeline(
                [_StubModule("A"), _StubModule("B", provides="A")]
            )


class TestGating:
    def test_plans_differ_gates_drilldown_modules(self, scenario_pd):
        report = Diads.from_bundle(scenario_pd).diagnose(scenario_pd.query_name)
        assert set(report.context.results) == {"PD", "SD", "IA"}
        assert report.skipped["CO"] == "gated"
        assert report.skipped["CR"] == "gated"
        assert report.skipped["DA"] == "gated"

    def test_shared_plan_passes_gates(self, scenario1):
        report = Diads.from_bundle(scenario1).diagnose(scenario1.query_name)
        assert report.skipped == {}
        assert set(report.context.results) == set(DEFAULT_MODULES)

    def test_bypass_cascades_to_hard_dependents(self, scenario1):
        """DA hard-requires CO: bypassing CO must skip DA, not crash it."""
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        session.bypass("CO")
        session.run_all()
        assert "CO" not in session.ctx.results
        assert "DA" not in session.ctx.results  # cascaded, engine never ran it
        assert "SD" in session.ctx.results  # soft dependency: still runs
        assert session.executed == ["PD", "CR", "SD", "IA"]

    def test_gate_skip_recorded_in_batch_report(self, scenario_pd):
        pipeline = default_pipeline()
        report = pipeline.diagnose(scenario_pd)
        assert report.skipped["DA"] == "gated"
        assert report_to_dict(report)["skipped"]["CO"] == "gated"


class TestInteractiveSession:
    def test_pending_follows_pipeline_order(self, scenario1):
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        assert session.pending == list(MODULE_ORDER)
        session.run_next()
        assert session.pending == list(MODULE_ORDER[1:])

    def test_gates_reshape_pending_after_pd(self, scenario_pd):
        session = Diads.from_bundle(scenario_pd).interactive(scenario_pd.query_name)
        session.run_next()  # PD discovers the plan change
        assert session.pending == ["SD", "IA"]
        session.run_all()
        assert session.executed == ["PD", "SD", "IA"]

    def test_edit_then_rerun_roundtrip(self, scenario1):
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        session.run_next()  # PD
        session.run_next()  # CO
        edited = session.edit("CO", lambda co: co.cos.clear())
        assert edited.cos == set()
        restored = session.rerun("CO")
        assert restored.cos  # recomputed from the monitoring data

    def test_edit_before_execution_raises(self, scenario1):
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        with pytest.raises(KeyError):
            session.edit("CO", lambda co: None)

    def test_bypassed_modules_reported_as_skipped(self, scenario1):
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        session.bypass("CR")
        session.run_all()
        report = session.report()
        assert report.skipped["CR"] == "bypassed"

    def test_interactive_skipped_matches_batch(self, scenario_pd):
        """Gated/cascaded modules get the same bookkeeping as batch mode."""
        batch = Diads.from_bundle(scenario_pd).diagnose(scenario_pd.query_name)
        session = Diads.from_bundle(scenario_pd).interactive(scenario_pd.query_name)
        session.run_all()
        assert session.report().skipped == batch.skipped

    def test_bypass_cascade_recorded_in_report(self, scenario1):
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        session.bypass("CO")
        session.run_all()
        skipped = session.report().skipped
        assert skipped["CO"] == "bypassed"
        assert skipped["DA"].startswith("upstream CO unavailable")

    def test_bypass_pd_degrades_gracefully(self, scenario1):
        """SD reads PD optionally: bypassing PD still yields a diagnosis
        from events/metrics instead of crashing or skipping everything."""
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        session.bypass("PD")
        session.run_all()
        assert session.executed == ["SD"]  # drill-down + IA need the APG
        report = session.report()
        assert report.ranked_causes  # symptoms still matched
        assert report.skipped["CO"].startswith("upstream PD unavailable")
        assert report.skipped["IA"].startswith("upstream PD unavailable")


@register_module
class _TicketNoteModule:
    """Third-party drill-down: annotates the diagnosis with COS size.

    Registered at import time via ``@register_module`` — the acceptance
    check that plug-ins run inside ``Diads.diagnose()`` with no engine
    edits.
    """

    name = "NOTE"
    requires = ("CO",)
    after = ("SD",)

    def run(self, ctx: DiagnosisContext) -> ModuleResult:
        co = ctx.result("CO")
        result = ModuleResult(
            module=self.name,
            summary=f"ticket note: {len(co.cos)} operators implicated",
        )
        ctx.set_result(result)
        return result


class TestThirdPartyModules:
    def test_registered_plugin_runs_inside_diagnose(self, scenario1):
        diads = Diads.from_bundle(
            scenario1, modules=[*DEFAULT_MODULES, "NOTE"]
        )
        assert diads.pipeline.order.index("NOTE") > diads.pipeline.order.index("SD")
        report = diads.diagnose(scenario1.query_name)
        note = report.context.result("NOTE")
        assert "operators implicated" in note.summary
        # the classic six still ran and the diagnosis is unchanged
        assert report.top_cause.match.cause_id in scenario1.info.ground_truth

    def test_plugin_inherits_gate_cascades(self, scenario_pd):
        diads = Diads.from_bundle(
            scenario_pd, modules=[*DEFAULT_MODULES, "NOTE"]
        )
        report = diads.diagnose(scenario_pd.query_name)
        assert "NOTE" not in report.context.results
        assert report.skipped["NOTE"].startswith("upstream CO unavailable")

    def test_plugin_instance_without_registration(self, scenario1):
        class Inline:
            name = "INLINE"
            requires = ("PD",)

            def run(self, ctx):
                result = ModuleResult(module="INLINE", summary="ran inline")
                ctx.set_result(result)
                return result

        report = Diads.from_bundle(
            scenario1, modules=[*DEFAULT_MODULES, Inline()]
        ).diagnose(scenario1.query_name)
        assert report.context.result("INLINE").summary == "ran inline"


class TestBatchDiagnosis:
    def test_diagnose_many_matches_sequential(
        self,
        scenario1,
        scenario1_burst,
        scenario2,
        scenario3,
        scenario4,
        scenario5,
        scenario_pd,
        scenario_pd_config,
    ):
        """Fleet acceptance: batch over 8 queries == per-query diagnose()."""
        bundles = [
            scenario1,
            scenario1_burst,
            scenario2,
            scenario3,
            scenario4,
            scenario5,
            scenario_pd,
            scenario_pd_config,
        ]
        pipeline = default_pipeline()
        sequential = [pipeline.diagnose(b) for b in bundles]
        batched = pipeline.diagnose_many(bundles, max_workers=8)
        assert len(batched) == 8
        for seq, bat in zip(sequential, batched):
            assert report_to_dict(seq) == report_to_dict(bat)
            assert seq.skipped == bat.skipped

    def test_request_normalisation(self, scenario1):
        req = DiagnosisRequest.of((scenario1, scenario1.query_name))
        assert req.bundle is scenario1.bundle
        req2 = DiagnosisRequest.of(scenario1)
        assert req2.query_name == scenario1.query_name

    def test_diads_diagnose_many_defaults_to_all_queries(self, scenario1):
        diads = Diads.from_bundle(scenario1)
        assert diads.queries() == [scenario1.query_name]
        reports = diads.diagnose_many(max_workers=2)
        assert [r.query_name for r in reports] == [scenario1.query_name]

    def test_report_cache_and_refresh(self, scenario1):
        diads = Diads.from_bundle(scenario1)
        first = diads.diagnose(scenario1.query_name)
        assert diads.diagnose(scenario1.query_name) is first
        assert diads.diagnose(scenario1.query_name, refresh=True) is not first

    def test_diagnose_many_reuses_cache(self, scenario1):
        diads = Diads.from_bundle(scenario1)
        first = diads.diagnose(scenario1.query_name)
        reports = diads.diagnose_many([scenario1.query_name])
        assert reports[0] is first  # cached, not re-diagnosed

    def test_threshold_mutation_invalidates_cache(self, scenario1):
        diads = Diads.from_bundle(scenario1)
        first = diads.diagnose(scenario1.query_name)
        diads.threshold = 0.9
        second = diads.diagnose(scenario1.query_name)
        assert second is not first
        assert second.context.threshold == 0.9

    def test_symptoms_db_mutation_takes_effect(self, scenario1):
        from repro.core.symptoms import default_symptoms_database

        diads = Diads.from_bundle(scenario1)
        first = diads.diagnose(scenario1.query_name)
        custom = default_symptoms_database()
        diads.symptoms_db = custom
        second = diads.diagnose(scenario1.query_name)
        assert second is not first  # cache cleared, pipeline rebuilt
        assert diads.modules()["SD"].database is custom

    def test_symptoms_db_swap_rejected_on_custom_pipeline(self, scenario1):
        from repro.core.symptoms import default_symptoms_database

        diads = Diads.from_bundle(scenario1, modules=list(DEFAULT_MODULES))
        with pytest.raises(ValueError, match="custom"):
            diads.symptoms_db = default_symptoms_database()

    def test_sequential_fallback_single_worker(self, scenario1, scenario5):
        pipeline = default_pipeline()
        reports = pipeline.diagnose_many([scenario1, scenario5], max_workers=1)
        assert [r.query_name for r in reports] == [
            scenario1.query_name,
            scenario5.query_name,
        ]


class TestBaselinePipelines:
    def test_baseline_pipeline_matches_facade(self, scenario1):
        findings = SanOnlyDiagnoser().diagnose(
            scenario1.bundle, scenario1.query_name
        )
        pipeline = baseline_pipeline("san-only")
        report = pipeline.diagnose(scenario1.bundle, scenario1.query_name)
        assert report.context.result("SAN_ONLY").findings == findings

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError, match="unknown baseline"):
            baseline_pipeline("voodoo")

    def test_baselines_are_registered(self):
        registry = default_registry()
        assert "SAN_ONLY" in registry and "DB_ONLY" in registry
        assert "CORR_ONLY" in registry

    def test_correlation_only_works_without_satisfactory_runs(self):
        """Seed semantics: pure correlation needs >=3 labelled runs, not
        both labels — the facade must not require a diagnosis context."""
        from repro.core.baselines import CorrelationOnlyDiagnoser
        from repro.lab.scenarios import scenario_san_misconfiguration

        sb = scenario_san_misconfiguration(hours=5).run()
        runs = sb.bundle.stores.runs
        for run in runs.runs(sb.query_name):
            runs.mark(run.run_id, False)  # relabel: nothing satisfactory
        findings = CorrelationOnlyDiagnoser().diagnose(sb.bundle, sb.query_name)
        assert isinstance(findings, list)  # pipeline path would raise
        from repro.core.baselines import SanOnlyDiagnoser

        assert SanOnlyDiagnoser().diagnose(sb.bundle, sb.query_name) == []


class TestEvaluationBatch:
    def test_evaluate_bundles_matches_single(self, scenario1, scenario5):
        batch = evaluate_bundles([scenario1, scenario5], max_workers=2)
        singles = [evaluate_bundle(scenario1), evaluate_bundle(scenario5)]
        for got, want in zip(batch, singles):
            assert got.scenario_name == want.scenario_name
            assert got.identified == want.identified
            assert got.top_cause == want.top_cause
            assert got.top_impact_pct == want.top_impact_pct


class TestCliBatch:
    def test_parser_accepts_batch(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["batch", "san-misconfiguration", "--max-workers", "4", "--json"]
        )
        assert args.command == "batch" and args.json and args.max_workers == 4

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert cli_main(["batch", "nonsense"]) == 2
        assert "unknown scenarios" in capsys.readouterr().err

    def test_batch_json_roundtrip(self, capsys):
        assert cli_main(["batch", "san-misconfiguration", "--hours", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["scenario"] == "san-misconfiguration"
        assert payload[0]["causes"][0]["cause_id"] == "volume-contention-san-misconfig"

    def test_batch_table_output(self, capsys):
        assert cli_main(["batch", "san-misconfiguration", "--hours", "6"]) == 0
        out = capsys.readouterr().out
        assert "queries diagnosed across 1 bundle(s)" in out
        assert "volume-contention-san-misconfig" in out
