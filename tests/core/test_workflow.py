"""Tests for batch/interactive workflow, reports, baselines and what-if."""

from __future__ import annotations

import pytest

from repro.core.baselines import (
    CorrelationOnlyDiagnoser,
    DbOnlyDiagnoser,
    SanOnlyDiagnoser,
)
from repro.core.report import (
    render_apg_browser,
    render_apg_overview,
    render_query_table,
    render_workflow_screen,
)
from repro.core.apg import build_apg
from repro.core.whatif import WhatIfAnalyzer
from repro.core.workflow import Diads


@pytest.fixture(scope="module")
def report1(scenario1):
    return Diads.from_bundle(scenario1).diagnose(scenario1.query_name)


class TestBatchWorkflow:
    def test_top_cause_is_ground_truth(self, report1, scenario1):
        assert report1.top_cause.match.cause_id in scenario1.info.ground_truth
        assert report1.top_cause.match.binding == "V1"

    def test_every_module_ran(self, report1):
        for name in ("PD", "CO", "CR", "DA", "SD", "IA"):
            assert name in report1.context.results

    def test_cause_lookup(self, report1):
        ranked = report1.cause("volume-contention-san-misconfig")
        assert ranked.impact_pct is not None and ranked.impact_pct > 90

    def test_plan_branch_skips_statistical_modules(self, scenario_pd):
        report = Diads.from_bundle(scenario_pd).diagnose(scenario_pd.query_name)
        assert "CO" not in report.context.results
        assert report.top_cause.match.cause_id == "plan-regression-index-drop"
        assert report.top_cause.impact_pct == 100.0

    def test_render_mentions_cause_and_modules(self, report1):
        text = report1.render()
        assert "volume-contention-san-misconfig" in text
        assert "[CO]" in text and "[IA]" in text
        assert "Symptoms observed" in text


class TestInteractiveWorkflow:
    def test_step_through_matches_batch(self, scenario1, report1):
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        steps = []
        while not session.finished:
            result = session.run_next()
            steps.append(result.module)
        assert steps == ["PD", "CO", "CR", "DA", "SD", "IA"]
        interactive = session.report()
        assert (
            interactive.top_cause.match.cause_id
            == report1.top_cause.match.cause_id
        )

    def test_plan_branch_shortens_pipeline(self, scenario_pd):
        session = Diads.from_bundle(scenario_pd).interactive(scenario_pd.query_name)
        session.run_all()
        assert session.executed == ["PD", "SD", "IA"]

    def test_edit_result_feeds_downstream(self, scenario1):
        """Removing the V1 leaves from COS suppresses the V1 symptoms."""
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        session.run_next()  # PD
        session.run_next()  # CO
        session.edit("CO", lambda co: co.cos.difference_update({"O8", "O22"}))
        session.run_all()
        sd = session.ctx.result("SD")
        assert "operators-anomalous-volume:V1" not in {s.sid for s in sd.symptoms}

    def test_rerun_restores_edited_result(self, scenario1):
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        session.run_next()
        session.run_next()
        session.edit("CO", lambda co: co.cos.clear())
        assert session.ctx.result("CO").cos == set()
        session.rerun("CO")
        assert {"O8", "O22"} <= session.ctx.result("CO").cos

    def test_rerun_requires_prior_execution(self, scenario1):
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        with pytest.raises(ValueError):
            session.rerun("CO")

    def test_bypass(self, scenario1):
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        session.run_next()  # PD
        session.run_next()  # CO
        session.bypass("CR")
        session.run_all()
        assert "CR" not in session.ctx.results
        assert "SD" in session.ctx.results

    def test_bypass_after_execution_rejected(self, scenario1):
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        session.run_next()
        with pytest.raises(ValueError):
            session.bypass("PD")


class TestRenderers:
    def test_query_table(self, scenario1):
        text = render_query_table(scenario1.bundle.stores.runs, scenario1.query_name)
        assert "Unsatisfactory" in text
        assert "[x]" in text and "q2-report#" in text

    def test_apg_overview_matches_figure1(self, scenario1):
        apg = build_apg(scenario1.bundle, scenario1.query_name)
        text = render_apg_overview(apg)
        assert "operators: 25 (9 leaves)" in text
        assert "ts_supplier -> V1" in text
        assert "inner:" in text and "outer:" in text

    def test_apg_browser(self, scenario1):
        apg = build_apg(scenario1.bundle, scenario1.query_name)
        text = render_apg_browser(apg, "O22")
        assert ">>> selected" in text
        assert "V1" in text

    def test_workflow_screen_progression(self, scenario1):
        session = Diads.from_bundle(scenario1).interactive(scenario1.query_name)
        before = render_workflow_screen(session)
        assert "[PD:NEXT]" in before
        session.run_next()
        after = render_workflow_screen(session)
        assert "[PD:done]" in after and "[CO:NEXT]" in after


class TestBaselines:
    def test_san_only_flags_both_volumes_in_burst_variant(self, scenario1_burst):
        findings = SanOnlyDiagnoser().diagnose(
            scenario1_burst.bundle, scenario1_burst.query_name
        )
        targets = [f.target for f in findings]
        assert "V1" in targets and "V2" in targets
        # ...and prefers V2 ("most of the data is on V2")
        assert targets.index("V2") < targets.index("V1")

    def test_db_only_emits_false_positives(self, scenario1):
        findings = DbOnlyDiagnoser().diagnose(scenario1.bundle, scenario1.query_name)
        causes = {f.cause for f in findings}
        assert "slow-operators" in causes
        assert "suboptimal-buffer-pool" in causes  # the false positive
        assert not any("V1" in f.target for f in findings)  # blind to the SAN

    def test_correlation_only_floods(self, scenario1):
        findings = CorrelationOnlyDiagnoser().diagnose(
            scenario1.bundle, scenario1.query_name
        )
        assert len(findings) >= 5  # event flooding: many correlated metrics
        components = {f.target.split(".")[0] for f in findings}
        assert len(components) >= 3  # spread across unrelated components


class TestWhatIf:
    def test_replan_predicts_index_recreation_fixes_regression(self, scenario_pd):
        # the fault dropped the index; what-if: create it again
        analyzer = WhatIfAnalyzer(scenario_pd.bundle)
        original = scenario_pd.bundle.initial_catalog.index("ix_partsupp_suppkey")
        outcome = analyzer.replan_under(
            scenario_pd.query_name, create_indexes=(original,)
        )
        assert outcome.plan_changes
        assert outcome.hypothetical_cost < outcome.current_cost

    def test_replan_no_change_without_hypothesis(self, scenario_pd):
        analyzer = WhatIfAnalyzer(scenario_pd.bundle)
        outcome = analyzer.replan_under(scenario_pd.query_name)
        assert not outcome.plan_changes

    def test_add_workload_predicts_slowdown_on_used_volume(self, scenario1):
        analyzer = WhatIfAnalyzer(scenario1.bundle)
        outcome = analyzer.add_workload(
            scenario1.query_name, "V2", read_iops=150.0, write_iops=150.0
        )
        assert outcome.slowdown_pct > 5.0
        assert outcome.volume_latency_after["V2"] > outcome.volume_latency_before["V2"]

    def test_add_workload_on_isolated_pool_harmless(self, scenario1):
        analyzer = WhatIfAnalyzer(scenario1.bundle)
        outcome = analyzer.add_workload(
            scenario1.query_name, "V1", read_iops=0.0, write_iops=0.0
        )
        assert abs(outcome.slowdown_pct) < 1.0

    def test_missing_spec_raises(self, scenario1):
        analyzer = WhatIfAnalyzer(scenario1.bundle)
        with pytest.raises(ValueError):
            analyzer.replan_under(scenario1.query_name)
