"""Protocol conformance for both first-class backends + JSONL crash safety."""

from __future__ import annotations

import json

import pytest

from repro.storage import JsonlBackend, MemoryBackend, SqliteBackend, StorageBackend


def _fill(backend):
    backend.append("metrics", {"t": 0.0, "k": "V1/readTime", "v": 1.0})
    backend.append("metrics", {"t": 60.0, "k": "V1/readTime", "v": 2.0})
    backend.append("metrics", {"t": 120.0, "k": "V2/readTime", "v": 3.0})
    backend.append_many(
        "events",
        [{"t": 30.0, "k": "V1", "kind": "x"}, {"t": 90.0, "k": "V2", "kind": "y"}],
    )
    return backend


@pytest.fixture(params=["memory", "jsonl", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend()
    elif request.param == "jsonl":
        b = JsonlBackend(tmp_path / "seg")
        yield b
        b.close()
    else:
        b = SqliteBackend(tmp_path / "telemetry.db")
        yield b
        b.close()


class TestProtocolConformance:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, StorageBackend)

    def test_append_scan_preserves_order(self, backend):
        _fill(backend)
        values = [r["v"] for r in backend.scan("metrics")]
        assert values == [1.0, 2.0, 3.0]

    def test_scan_by_key(self, backend):
        _fill(backend)
        assert [r["v"] for r in backend.scan("metrics", key="V1/readTime")] == [1.0, 2.0]
        assert [r["v"] for r in backend.scan("metrics", key="nope")] == []

    def test_scan_by_time_window(self, backend):
        _fill(backend)
        assert [r["v"] for r in backend.scan("metrics", start=60.0)] == [2.0, 3.0]
        assert [r["v"] for r in backend.scan("metrics", end=60.0)] == [1.0, 2.0]
        assert [r["v"] for r in backend.scan("metrics", start=60.0, end=60.0)] == [2.0]
        assert [r["v"] for r in backend.scan("metrics", key="V1/readTime", start=30.0)] == [2.0]

    def test_keyspaces_isolated_and_sorted(self, backend):
        _fill(backend)
        assert backend.keyspaces() == ["events", "metrics"]
        assert [r["kind"] for r in backend.scan("events")] == ["x", "y"]
        assert list(backend.scan("missing")) == []

    def test_append_many_returns_count(self, backend):
        n = backend.append_many("bulk", [{"t": float(i)} for i in range(17)])
        assert n == 17
        assert len(list(backend.scan("bulk"))) == 17

    def test_append_after_close_raises(self, backend):
        backend.close()
        with pytest.raises(ValueError):
            backend.append("metrics", {"t": 0.0})


class TestJsonlDurability:
    def test_reopen_replays_identically(self, tmp_path):
        root = tmp_path / "seg"
        original = _fill(JsonlBackend(root))
        before = {ks: list(original.scan(ks)) for ks in original.keyspaces()}
        original.close()

        reopened = JsonlBackend(root)
        after = {ks: list(reopened.scan(ks)) for ks in reopened.keyspaces()}
        assert json.dumps(before, sort_keys=True) == json.dumps(after, sort_keys=True)
        reopened.close()

    def test_reopen_without_close_still_replays(self, tmp_path):
        """A killed process never calls close(); flush-on-scan + append-only
        segments must still leave every record recoverable."""
        root = tmp_path / "seg"
        b = JsonlBackend(root)
        _fill(b)
        list(b.scan("metrics"))  # forces the segment flush a scan performs
        # no close(): simulate SIGKILL by dropping the object
        del b
        reopened = JsonlBackend(root)
        assert [r["v"] for r in reopened.scan("metrics")] == [1.0, 2.0, 3.0]
        reopened.close()

    def test_torn_trailing_line_is_discarded_and_truncated(self, tmp_path):
        root = tmp_path / "seg"
        b = _fill(JsonlBackend(root))
        b.close()
        segment = root / "metrics.jsonl"
        with segment.open("ab") as fh:
            fh.write(b'{"t": 999.0, "k": "V9/readTime", "v":')  # crash mid-append
        torn_size = segment.stat().st_size

        reopened = JsonlBackend(root)
        assert [r["v"] for r in reopened.scan("metrics")] == [1.0, 2.0, 3.0]
        # reading never mutates: a query process must not truncate a file a
        # live writer may still own
        assert segment.stat().st_size == torn_size
        # the first *append* reclaims the tail and lands on a clean boundary
        reopened.append("metrics", {"t": 180.0, "k": "V2/readTime", "v": 4.0})
        reopened.close()
        again = JsonlBackend(root)
        assert [r["v"] for r in again.scan("metrics")] == [1.0, 2.0, 3.0, 4.0]
        again.close()

    def test_corrupt_tail_json_is_discarded(self, tmp_path):
        root = tmp_path / "seg"
        b = _fill(JsonlBackend(root))
        b.close()
        with (root / "metrics.jsonl").open("ab") as fh:
            fh.write(b"not json at all\n")
        reopened = JsonlBackend(root)
        assert [r["v"] for r in reopened.scan("metrics")] == [1.0, 2.0, 3.0]
        reopened.close()

    def test_manifest_written_atomically_on_flush(self, tmp_path):
        root = tmp_path / "seg"
        b = _fill(JsonlBackend(root))
        b.flush()
        manifest = json.loads((root / "MANIFEST.json").read_text())
        assert manifest["keyspaces"]["metrics"]["records"] == 3
        assert not (root / ".MANIFEST.json.tmp").exists()
        b.close()

    def test_read_only_open_never_writes(self, tmp_path):
        """A query process (e.g. `repro incidents` on a live watch dir) must
        leave the writer's files — manifest included — untouched."""
        root = tmp_path / "seg"
        _fill(JsonlBackend(root)).close()
        (root / "MANIFEST.json").unlink()
        sizes = {p.name: p.stat().st_size for p in root.glob("*.jsonl")}

        reader = JsonlBackend(root)
        list(reader.scan("metrics"))
        reader.flush()
        reader.close()
        assert not (root / "MANIFEST.json").exists()
        assert {p.name: p.stat().st_size for p in root.glob("*.jsonl")} == sizes

    def test_invalid_keyspace_names_rejected(self, tmp_path):
        b = JsonlBackend(tmp_path / "seg")
        for bad in ("", "../evil", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                b.append(bad, {"t": 0.0})
        b.close()

    def test_index_tracks_counts_and_keys(self, tmp_path):
        b = _fill(JsonlBackend(tmp_path / "seg"))
        assert b.count("metrics") == 3
        assert b.keys("metrics") == ["V1/readTime", "V2/readTime"]
        assert len(b) == 5
        b.close()

    def test_scan_appends_during_iteration_are_not_lost(self, tmp_path):
        b = JsonlBackend(tmp_path / "seg")
        b.append_many("metrics", [{"t": float(i), "v": float(i)} for i in range(10)])
        seen = []
        for rec in b.scan("metrics"):
            seen.append(rec["v"])
            if len(seen) == 1:
                b.append("metrics", {"t": 99.0, "v": 99.0})
        # the in-flight scan is bounded to its snapshot ...
        assert seen == [float(i) for i in range(10)]
        # ... but the appended record is durable and visible to a new scan
        assert [r["v"] for r in b.scan("metrics")][-1] == 99.0
        b.close()


class TestSqliteBackend:
    def test_reopen_replays_identically(self, tmp_path):
        path = tmp_path / "telemetry.db"
        original = _fill(SqliteBackend(path))
        before = {ks: list(original.scan(ks)) for ks in original.keyspaces()}
        original.close()

        reopened = SqliteBackend(path)
        after = {ks: list(reopened.scan(ks)) for ks in reopened.keyspaces()}
        assert json.dumps(before, sort_keys=True) == json.dumps(after, sort_keys=True)
        reopened.close()

    def test_keyed_scan_uses_the_index(self, tmp_path):
        """The whole point over JSONL: keyed reads are index lookups, not
        full-keyspace scans."""
        b = _fill(SqliteBackend(tmp_path / "telemetry.db"))
        plan = " ".join(
            row[-1]
            for row in b._conn.execute(
                "EXPLAIN QUERY PLAN SELECT payload FROM records "
                "WHERE ks = ? AND k = ? ORDER BY seq",
                ("metrics", "V1/readTime"),
            )
        )
        assert "idx_records_ks_key_ts" in plan
        assert "SCAN records" not in plan.replace("USING INDEX", "")
        b.close()

    def test_time_window_scan_uses_the_ts_index(self, tmp_path):
        b = _fill(SqliteBackend(tmp_path / "telemetry.db"))
        plan = " ".join(
            row[-1]
            for row in b._conn.execute(
                "EXPLAIN QUERY PLAN SELECT payload FROM records "
                "WHERE ks = ? AND t >= ? ORDER BY seq",
                ("metrics", 60.0),
            )
        )
        assert "idx_records_ks" in plan  # either composite index qualifies
        b.close()

    def test_introspection_counts_and_keys(self, tmp_path):
        b = _fill(SqliteBackend(tmp_path / "telemetry.db"))
        assert b.count("metrics") == 3
        assert b.count("metrics", key="V1/readTime") == 2
        assert b.keys("metrics") == ["V1/readTime", "V2/readTime"]
        assert len(b) == 5
        b.close()

    def test_concurrent_appends_from_threads(self, tmp_path):
        import threading

        b = SqliteBackend(tmp_path / "telemetry.db")

        def write(worker):
            for i in range(50):
                b.append("metrics", {"t": float(i), "k": f"w{worker}", "v": i})

        threads = [threading.Thread(target=write, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert b.count("metrics") == 200
        assert [r["v"] for r in b.scan("metrics", key="w2")] == list(range(50))
        b.close()

    def test_records_without_timestamp_or_key(self, tmp_path):
        b = SqliteBackend(tmp_path / "telemetry.db")
        b.append("misc", {"note": "no reserved fields at all"})
        b.append("misc", {"t": 5.0, "note": "timestamped"})
        assert [r["note"] for r in b.scan("misc")] == [
            "no reserved fields at all",
            "timestamped",
        ]
        # a time window excludes the timestamp-less record (matches() rules)
        assert [r["note"] for r in b.scan("misc", start=0.0)] == ["timestamped"]
        b.close()

    def test_telemetry_store_opens_sqlite(self, tmp_path):
        from repro.storage import TelemetryStore

        store = TelemetryStore.open(tmp_path / "state", backend="sqlite")
        store.metrics.record(0.0, "V1", "readTime", 5.0)
        store.metrics.record(300.0, "V1", "readTime", 6.0)
        store.close()

        reopened = TelemetryStore.open(tmp_path / "state", backend="sqlite")
        series = reopened.metrics.series("V1", "readTime")
        assert len(series) == 2
        reopened.close()
        with pytest.raises(ValueError, match="unknown backend"):
            TelemetryStore.open(tmp_path / "state", backend="redis")


class TestFleetEventLogConformance:
    """The durable fleet event log rides the same backend contract: any
    conformant backend can carry the ``fleet_events`` keyspace."""

    EVENTS = [
        {"type": "advanced", "env": "env-a", "clock": 1800.0, "advanced_s": 1800.0},
        {"type": "incident_opened", "env": "env-a", "incident_id": "INC-env-a-1",
         "opened_at": 1750.0},
        {"type": "fleet_done", "advanced_s": 1800.0, "skew_s": 0.0},
    ]

    def test_append_and_tail_any_backend(self, backend):
        from repro.stream import FleetEventLog

        log = FleetEventLog(backend)
        for event in self.EVENTS:
            log.append(event)
        records = list(log.tail())
        assert [r["event"]["type"] for r in records] == [
            "advanced", "incident_opened", "fleet_done",
        ]
        assert [r["seq"] for r in records] == [0, 1, 2]
        # t comes from the event's own simulated time; env routes the key
        assert records[1]["t"] == 1750.0 and records[1]["k"] == "env-a"
        assert records[2]["t"] == 1800.0 and "k" not in records[2]
        # incremental tailing
        assert [r["seq"] for r in log.tail(after_seq=1)] == [2]
        assert log.events(env="env-a", kind="incident_opened")[0][
            "incident_id"
        ] == "INC-env-a-1"

    def test_seq_continues_across_reopen_when_durable(self, tmp_path):
        from repro.stream import FleetEventLog

        log = FleetEventLog.open(tmp_path)
        for event in self.EVENTS:
            log.append(event)
        log.close()
        reopened = FleetEventLog.open(tmp_path)
        assert reopened.last_seq == 2
        reopened.append({"type": "advanced", "env": "env-b", "clock": 3600.0})
        assert [r["seq"] for r in reopened.tail()] == [0, 1, 2, 3]
        reopened.close()

    def test_live_tailer_survives_writer_kill_and_resume(self, tmp_path):
        """SSE-style consumers hold their *own* backend handle and poll
        ``tail(after_seq)``: they must keep seeing events appended by a
        separate writer handle, across the writer being killed (handle
        abandoned after flush, never closed) and resumed (fresh handle that
        continues numbering).  At-least-once with monotone ``seq`` is the
        contract."""
        from repro.stream import FleetEventLog

        state = tmp_path / "state"
        writer = FleetEventLog.open(state)
        for i in range(3):
            writer.append({"type": "advanced", "env": "env-a", "clock": 60.0 * i})
        writer.flush()

        tailer = FleetEventLog(JsonlBackend(state / FleetEventLog.KEYSPACE))
        assert [r["seq"] for r in tailer.tail()] == [0, 1, 2]

        # The writer keeps going *after* the tailer opened: a reader's index
        # is frozen at replay time, so only the refresh inside ``tail()``
        # makes these visible.
        for i in range(3, 6):
            writer.append({"type": "advanced", "env": "env-a", "clock": 60.0 * i})
        writer.flush()
        assert [r["seq"] for r in tailer.tail(after_seq=2)] == [3, 4, 5]

        # Kill the writer and resume it elsewhere; the tailer never reopens.
        del writer
        resumed = FleetEventLog.open(state)
        assert resumed.last_seq == 5
        resumed.append({"type": "advanced", "env": "env-a", "clock": 360.0})
        resumed.flush()
        assert [r["seq"] for r in tailer.tail(after_seq=5)] == [6]
        seqs = [r["seq"] for r in tailer.tail()]
        assert seqs == sorted(seqs) == list(range(7))
        resumed.close()
        tailer.close()

    def test_live_tailer_follows_separate_sqlite_handle(self, tmp_path):
        """The same follow-the-writer contract over sqlite: a second
        connection's scans see every committed append without an explicit
        refresh hook."""
        from repro.stream import FleetEventLog

        db = tmp_path / "telemetry.db"
        writer = FleetEventLog(SqliteBackend(db))
        writer.append({"type": "advanced", "env": "env-a", "clock": 0.0})
        writer.flush()

        tailer = FleetEventLog(SqliteBackend(db))
        assert [r["seq"] for r in tailer.tail()] == [0]

        writer.append({"type": "incident_opened", "env": "env-a",
                       "incident_id": "INC-env-a-1", "opened_at": 30.0})
        writer.flush()
        assert [r["seq"] for r in tailer.tail(after_seq=0)] == [1]
        writer.close()
        tailer.close()
