"""Lossless round trips for the shared object-graph serializers."""

from __future__ import annotations

import json

from repro.db.optimizer.cost import DbConfig
from repro.db.query import tpch_q2_spec
from repro.db.tpch import build_tpch_catalog
from repro.san.builder import build_testbed
from repro.storage import (
    access_from_dict,
    access_to_dict,
    catalog_from_dict,
    catalog_to_dict,
    dbconfig_from_dict,
    dbconfig_to_dict,
    spec_from_dict,
    spec_to_dict,
    topology_from_dict,
    topology_to_dict,
)
from repro.storage import testbed_from_dict as load_testbed
from repro.storage import testbed_to_dict as dump_testbed


def _json_round(payload):
    """Force a pass through real JSON — tuples become lists, keys strings."""
    return json.loads(json.dumps(payload))


def test_dbconfig_round_trip():
    config = DbConfig().with_changes(work_mem_kb=65536, enable_nestloop=False)
    restored = dbconfig_from_dict(_json_round(dbconfig_to_dict(config)))
    assert restored == config


def test_catalog_round_trip_keeps_stats_snapshot_drops():
    catalog = build_tpch_catalog()
    data = _json_round(catalog_to_dict(catalog))
    restored = catalog_from_dict(data)
    # the diff-oriented snapshot is equal ...
    assert restored.snapshot() == catalog.snapshot()
    # ... and so is what snapshot() drops: widths and column statistics
    for table in catalog.tables:
        other = restored.table(table.name)
        assert other.row_width == table.row_width
        assert other.columns == table.columns
    assert {i.name for i in restored.indexes} == {i.name for i in catalog.indexes}
    # second serialisation is byte-identical (stable ordering)
    assert json.dumps(catalog_to_dict(restored), sort_keys=True) == json.dumps(
        data, sort_keys=True
    )


def test_spec_round_trip():
    spec = tpch_q2_spec()
    restored = spec_from_dict(_json_round(spec_to_dict(spec)))
    assert restored == spec


def test_topology_round_trip_preserves_structure_and_attrs():
    testbed = build_testbed()
    restored = topology_from_dict(_json_round(topology_to_dict(testbed.topology)))
    assert restored.snapshot() == testbed.topology.snapshot()
    assert restored.validate() == []
    # typed attributes survive (not just the snapshot's type/name view)
    disk = restored.get("d1")
    original = testbed.topology.get("d1")
    assert disk.max_iops == original.max_iops
    assert disk.service_time_ms == original.service_time_ms
    # path queries still work on the rebuilt graph
    path = [c.component_id for c in restored.io_path("srv-db", "V1")]
    orig = [c.component_id for c in testbed.topology.io_path("srv-db", "V1")]
    assert path == orig


def test_access_round_trip():
    testbed = build_testbed()
    restored = access_from_dict(_json_round(access_to_dict(testbed.access)))
    assert restored.snapshot() == testbed.access.snapshot()
    assert restored.can_access(testbed.topology, "srv-db", "V1")


def test_testbed_round_trip():
    testbed = build_testbed()
    restored = load_testbed(_json_round(dump_testbed(testbed)))
    assert restored.db_server_id == testbed.db_server_id
    assert restored.volume_ids == testbed.volume_ids
    assert restored.topology.snapshot() == testbed.topology.snapshot()
    assert restored.access.snapshot() == testbed.access.snapshot()


def test_core_serialize_reexports():
    """Back-compat: the historical import site still offers the names."""
    from repro.core import serialize

    assert serialize.plan_to_dict is not None
    assert serialize.run_to_dict is serialize.run_to_dict
    for name in ("plan_from_dict", "run_from_dict", "catalog_to_dict",
                 "testbed_from_dict", "spec_to_dict", "dbconfig_from_dict"):
        assert hasattr(serialize, name)
