"""TelemetryStore facade: back-compat, durability, byte-identical replay."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.db.plans import OpType, PlanOperator
from repro.db.executor import OperatorRuntime, QueryRun
from repro.monitor import MonitoringStores
from repro.san.events import SanEvent, SanEventKind
from repro.storage import MemoryBackend, TelemetryStore


def _make_run(run_id: str, start: float, satisfactory=None) -> QueryRun:
    plan = PlanOperator(op_id="O1", op_type=OpType.SEQ_SCAN, table="orders")
    return QueryRun(
        run_id=run_id,
        query_name="q2-report",
        plan=plan,
        start_time=start,
        operators={
            "O1": OperatorRuntime(
                op_id="O1",
                op_type=OpType.SEQ_SCAN,
                table="orders",
                volume_id="V1",
                start=start,
                stop=start + 42.0,
                actual_rows=1000.0,
                est_rows=900.0,
                self_time=42.0,
                inclusive_time=42.0,
                io_time=30.0,
                cpu_time=12.0,
            )
        },
        db_metrics={"cpuTime": 12.0, "bufferHitRatio": 0.9},
        satisfactory=satisfactory,
    )


def _populate(store, rng: np.random.Generator) -> None:
    for i in range(200):
        t = 60.0 * i
        store.metrics.record(t, "V1", "readTime", float(rng.uniform(4, 8)))
        store.metrics.record(t, "V2", "writeTime", float(rng.uniform(1, 3)))
    store.runs.add(_make_run("q2#1", 100.0))
    store.runs.add(_make_run("q2#2", 2000.0))
    store.runs.mark("q2#1", True)
    store.runs.mark("q2#2", False)
    store.config.take_snapshot(0.0, "db_config", {"work_mem_kb": 4096})
    store.config.take_snapshot(5000.0, "db_config", {"work_mem_kb": 65536})
    store.config.take_snapshot(0.0, "san", {"zones": {"z1": ["p0", "p1"]}})
    store.events.add_san_event(
        SanEvent(
            time=4000.0,
            kind=SanEventKind.ZONE_CHANGED,
            component_id="fcsw-edge",
            details={"zone": "z1"},
        )
    )
    store.events.add_db_event(4500.0, "index_dropped", "db", index="idx_orders")


def _views(store) -> dict:
    """Everything DIADS reads, as one JSON-able structure."""
    return {
        "series": {
            f"{cid}/{metric}": [(s.time, s.value) for s in store.metrics.series(cid, metric)]
            for cid, metric in store.metrics.keys()
        },
        "runs": [
            (r.run_id, r.start_time, r.satisfactory, sorted(r.db_metrics.items()))
            for r in store.runs.runs()
        ],
        "events": [e.describe() for e in store.events.events],
        "config_changes": [
            c.describe() for c in store.config.changes_between(0.0, 10_000.0)
        ],
    }


class TestFacade:
    def test_is_a_monitoring_stores(self):
        store = TelemetryStore.in_memory()
        assert isinstance(store, MonitoringStores)

    def test_bare_construction_has_no_backend(self):
        assert TelemetryStore().backend is None

    def test_in_memory_journals_through_one_backend(self):
        store = TelemetryStore.in_memory()
        assert isinstance(store.backend, MemoryBackend)
        _populate(store, np.random.default_rng(0))
        assert set(store.backend.keyspaces()) == {"metrics", "runs", "config", "events"}

    def test_memory_backend_is_zero_copy(self):
        store = TelemetryStore.in_memory()
        store.metrics.record(0.0, "V1", "readTime", 1.0)
        rec = next(iter(store.backend.scan("metrics")))
        assert rec["c"] == "V1" and rec["v"] == 1.0

    def test_all_stores_share_the_backend(self):
        store = TelemetryStore.in_memory()
        assert (
            store.metrics.backend
            is store.runs.backend
            is store.config.backend
            is store.events.backend
            is store.backend
        )


class TestJsonlRoundTrip:
    def test_views_byte_identical_after_reopen(self, tmp_path):
        store = TelemetryStore.open(tmp_path / "tel", seed=7)
        _populate(store, np.random.default_rng(7))
        before = _views(store)
        store.close()

        reopened = TelemetryStore.open(tmp_path / "tel", seed=7)
        assert json.dumps(before, sort_keys=True) == json.dumps(
            _views(reopened), sort_keys=True
        )
        reopened.close()

    @pytest.mark.parametrize("seed", [0, 1, 13])
    def test_property_random_streams_round_trip(self, tmp_path, seed):
        """Property test: any write sequence → reopen → identical views."""
        rng = np.random.default_rng(seed)
        store = TelemetryStore.open(tmp_path / f"tel{seed}", seed=seed)
        for i in range(int(rng.integers(50, 300))):
            cid = f"V{int(rng.integers(1, 5))}"
            metric = ["readTime", "writeTime", "readIO"][int(rng.integers(0, 3))]
            store.metrics.record(float(rng.uniform(0, 50_000)), cid, metric, float(rng.uniform(0, 10)))
        for i in range(int(rng.integers(1, 6))):
            store.runs.add(_make_run(f"r#{i}", float(i) * 500.0, bool(rng.integers(0, 2))))
        store.config.take_snapshot(
            float(rng.uniform(0, 1000)), "db_config", {"x": int(rng.integers(0, 9))}
        )
        before = _views(store)
        store.close()

        reopened = TelemetryStore.open(tmp_path / f"tel{seed}", seed=seed)
        assert json.dumps(before, sort_keys=True) == json.dumps(
            _views(reopened), sort_keys=True
        )
        reopened.close()

    def test_reopen_then_continue_appending(self, tmp_path):
        store = TelemetryStore.open(tmp_path / "tel", seed=3)
        store.metrics.record(0.0, "V1", "readTime", 5.0)
        store.close()
        second = TelemetryStore.open(tmp_path / "tel", seed=3)
        second.metrics.record(600.0, "V1", "readTime", 6.0)
        assert len(second.metrics.series("V1", "readTime")) == 2
        second.close()
        third = TelemetryStore.open(tmp_path / "tel", seed=3)
        assert len(third.metrics.series("V1", "readTime")) == 2
        third.close()

    def test_run_labels_survive_reopen(self, tmp_path):
        store = TelemetryStore.open(tmp_path / "tel")
        store.runs.add(_make_run("a", 0.0))
        store.runs.add(_make_run("b", 10.0))
        store.runs.mark("a", True)
        store.runs.mark("b", False)
        store.runs.mark("b", True)  # re-label: last write wins on replay
        store.close()
        reopened = TelemetryStore.open(tmp_path / "tel")
        assert reopened.runs.get("a").satisfactory is True
        assert reopened.runs.get("b").satisfactory is True
        reopened.close()

    def test_tap_labelled_runs_are_journalled(self, tmp_path):
        """A run tap that writes run.satisfactory directly (the streaming
        SLO detector does) must still reach the durability journal."""
        from repro.monitor import Collector

        store = TelemetryStore.open(tmp_path / "tel")
        collector = Collector(stores=store)
        collector.add_run_tap(lambda run: setattr(run, "satisfactory", False))
        collector.collect_query_run(_make_run("q2#1", 100.0))
        store.close()

        reopened = TelemetryStore.open(tmp_path / "tel")
        assert reopened.runs.get("q2#1").satisfactory is False
        reopened.close()

    def test_context_manager_closes(self, tmp_path):
        with TelemetryStore.open(tmp_path / "tel") as store:
            store.metrics.record(0.0, "V1", "readTime", 5.0)
        with pytest.raises(ValueError):
            store.backend.append("metrics", {"t": 1.0})
