"""Unit tests for the execution substrate: pools, scheduler, queues, clocks."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.runtime import (
    ClockVector,
    Scheduler,
    TaskQueue,
    TaskTimeout,
    WorkerPool,
    reset_shared_pool,
    shared_pool,
)


class TestWorkerPool:
    def test_submit_returns_future(self):
        with WorkerPool(2) as pool:
            assert pool.submit(lambda: 41 + 1).result() == 42

    def test_map_bounded_preserves_order(self):
        with WorkerPool(4) as pool:
            out = pool.map_bounded(lambda x: x * x, range(20), limit=3)
        assert out == [x * x for x in range(20)]

    def test_map_bounded_limits_in_flight(self):
        active = 0
        peak = 0
        lock = threading.Lock()

        def job(_):
            nonlocal active, peak
            with lock:
                active += 1
                peak = max(peak, active)
            time.sleep(0.01)
            with lock:
                active -= 1

        with WorkerPool(8) as pool:
            pool.map_bounded(job, range(24), limit=3)
        assert peak <= 3

    def test_map_bounded_empty_and_zero_limit(self):
        """limit=0 (the empty-fleet sizing bug) clamps to 1, never raises."""
        with WorkerPool(2) as pool:
            assert pool.map_bounded(lambda x: x, [], limit=0) == []
            assert pool.map_bounded(lambda x: x + 1, [1, 2], limit=0) == [2, 3]

    def test_map_bounded_propagates_errors(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("x was 3")
            return x

        with WorkerPool(2) as pool:
            with pytest.raises(RuntimeError, match="x was 3"):
                pool.map_bounded(boom, range(6))

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_submit_after_shutdown_raises(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)

    def test_shared_pool_is_process_wide_and_resettable(self):
        a = shared_pool()
        assert shared_pool() is a
        reset_shared_pool()
        b = shared_pool()
        assert b is not a and not b.closed


class TestWorkerPoolStats:
    def test_fresh_pool_reports_zeroes(self):
        with WorkerPool(2) as pool:
            assert pool.stats() == {
                "backend": "threads",
                "max_workers": 2,
                "submitted": 0,
                "queued": 0,
                "active": 0,
                "completed": 0,
                "failed": 0,
                "cancelled": 0,
                "utilisation": 0.0,
            }

    def test_active_and_utilisation_while_running(self):
        started = threading.Event()
        release = threading.Event()

        def blocked():
            started.set()
            release.wait(5.0)

        with WorkerPool(2) as pool:
            future = pool.submit(blocked)
            assert started.wait(5.0)
            mid = pool.stats()
            assert mid["submitted"] == 1
            assert mid["active"] == 1
            assert mid["utilisation"] == pytest.approx(0.5)
            release.set()
            future.result()
            done = pool.stats()
            assert done["completed"] == 1
            assert done["active"] == 0
            assert done["queued"] == 0

    def test_failed_tasks_counted_separately(self):
        with WorkerPool(1) as pool:
            future = pool.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                future.result()
            stats = pool.stats()
            assert stats["failed"] == 1
            assert stats["completed"] == 0
            assert stats["active"] == 0

    def test_queued_reflects_backlog_behind_busy_workers(self):
        started = threading.Event()
        release = threading.Event()

        def blocked():
            started.set()
            release.wait(5.0)

        with WorkerPool(1) as pool:
            first = pool.submit(blocked)
            assert started.wait(5.0)
            backlog = [pool.submit(lambda: None) for _ in range(3)]
            mid = pool.stats()
            assert mid["queued"] == 3
            release.set()
            first.result()
            for future in backlog:
                future.result()
            assert pool.stats()["queued"] == 0
            assert pool.stats()["completed"] == 4


class TestScheduler:
    def test_run_returns_coroutine_result(self):
        async def main():
            return "done"

        assert Scheduler().run(main()) == "done"

    def test_call_bridges_blocking_work(self):
        scheduler = Scheduler()

        async def main():
            return await scheduler.call(sum, [1, 2, 3])

        assert scheduler.run(main()) == 6

    def test_call_propagates_exception(self):
        scheduler = Scheduler()

        def boom():
            raise KeyError("nope")

        async def main():
            await scheduler.call(boom)

        with pytest.raises(KeyError):
            scheduler.run(main())

    def test_call_timeout_raises_task_timeout(self):
        scheduler = Scheduler()

        async def main():
            await scheduler.call(time.sleep, 5.0, timeout=0.05)

        start = time.perf_counter()
        with pytest.raises(TaskTimeout):
            scheduler.run(main())
        assert time.perf_counter() - start < 2.0  # did not wait the 5 s out

    def test_tasks_interleave_while_pool_work_runs(self):
        """Coordination stays responsive while blocking work is in flight."""
        scheduler = Scheduler()
        ticks = []

        async def ticker():
            for i in range(5):
                ticks.append(i)
                await asyncio.sleep(0.005)

        async def main():
            t = scheduler.spawn(ticker())
            await scheduler.call(time.sleep, 0.05)
            await t

        scheduler.run(main())
        assert ticks == list(range(5))

    def test_spawn_and_gather(self):
        scheduler = Scheduler()

        async def double(x):
            await asyncio.sleep(0)
            return x * 2

        async def main():
            return await scheduler.gather(*(double(i) for i in range(4)))

        assert scheduler.run(main()) == [0, 2, 4, 6]


class TestTaskQueue:
    def test_backpressure_suspends_producer(self):
        """put() must not buffer past maxsize: the producer waits for drain."""
        scheduler = Scheduler()
        in_queue_high_water = []

        async def main():
            gate = asyncio.Event()

            async def handler(item):
                await gate.wait()

            queue = TaskQueue(handler, workers=1, maxsize=2).start()
            # worker takes one item; two more fill the buffer
            for i in range(3):
                await queue.put(i)
            producer = asyncio.get_running_loop().create_task(queue.put(99))
            await asyncio.sleep(0.02)
            assert not producer.done()  # suspended: queue is full
            in_queue_high_water.append(len(queue))
            gate.set()
            await producer
            await queue.close()
            return queue.processed

        assert scheduler.run(main()) == 4
        assert in_queue_high_water == [2]

    def test_handler_error_reraised_on_close(self):
        scheduler = Scheduler()

        async def main():
            async def handler(item):
                if item == "bad":
                    raise ValueError("poisoned item")

            queue = TaskQueue(handler, workers=2, maxsize=4).start()
            await queue.put("ok")
            await queue.put("bad")
            await queue.put("ok")
            with pytest.raises(ValueError, match="poisoned"):
                await queue.close()
            return queue.processed

        assert scheduler.run(main()) == 2  # the two good items still ran

    def test_invalid_sizes_rejected(self):
        async def handler(item):
            pass

        with pytest.raises(ValueError):
            TaskQueue(handler, workers=0)
        with pytest.raises(ValueError):
            TaskQueue(handler, maxsize=0)

    def test_put_after_close_raises(self):
        scheduler = Scheduler()

        async def main():
            async def handler(item):
                pass

            queue = TaskQueue(handler, workers=1, maxsize=2).start()
            await queue.put("only")
            await queue.close()
            with pytest.raises(RuntimeError, match="closed"):
                await queue.put("late")
            return queue.processed

        assert scheduler.run(main()) == 1

    def test_close_drains_full_backlog_first(self):
        """close() handles every already-enqueued item before stopping."""
        scheduler = Scheduler()
        handled: list[int] = []

        async def main():
            async def handler(item):
                await asyncio.sleep(0)
                handled.append(item)

            queue = TaskQueue(handler, workers=1, maxsize=4).start()
            for i in range(4):  # fill the buffer to maxsize
                await queue.put(i)
            await queue.close()
            return queue.processed

        assert scheduler.run(main()) == 4
        assert sorted(handled) == [0, 1, 2, 3]

    def test_join_waits_for_drain_without_closing(self):
        scheduler = Scheduler()

        async def main():
            async def handler(item):
                await asyncio.sleep(0.001)

            queue = TaskQueue(handler, workers=2, maxsize=4).start()
            await queue.put(1)
            await queue.put(2)
            await queue.join()
            assert len(queue) == 0
            await queue.put(3)  # still open: join() is not close()
            await queue.close()
            return queue.processed

        assert scheduler.run(main()) == 3


class TestClockVector:
    def test_advance_and_aggregates(self):
        clocks = ClockVector()
        clocks.advance("a", 100.0)
        clocks.advance("b", 250.0)
        assert clocks.min_clock == 100.0
        assert clocks.max_clock == 250.0
        assert clocks.skew == 150.0
        assert clocks["a"] == 100.0 and clocks.get("c") == 0.0

    def test_monotonicity_enforced(self):
        clocks = ClockVector({"a": 10.0})
        clocks.advance("a", 10.0)  # staying put is fine
        with pytest.raises(ValueError, match="backwards"):
            clocks.advance("a", 5.0)
        with pytest.raises(ValueError, match="negative"):
            clocks.advance("b", -1.0)

    def test_merge_is_elementwise_max(self):
        clocks = ClockVector({"a": 10.0, "b": 20.0})
        clocks.merge({"a": 15.0, "b": 5.0, "c": 7.0})
        assert clocks == {"a": 15.0, "b": 20.0, "c": 7.0}

    def test_round_trip_and_empty(self):
        clocks = ClockVector({"b": 2.0, "a": 1.0})
        assert ClockVector.from_dict(clocks.to_dict()) == clocks
        empty = ClockVector()
        assert empty.min_clock == 0.0 and empty.skew == 0.0
