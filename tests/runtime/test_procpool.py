"""ProcessWorkerPool: affinity routing, JSON handoff, stats, lifecycle.

The task functions live at module scope so workers can resolve them by
dotted name (``tests.runtime.test_procpool:echo``); under the default
``fork`` start method the already-imported module is inherited, so no
import path gymnastics are needed in the child.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.runtime import (
    ProcessWorkerPool,
    ProcpoolPayloadError,
    WorkerPool,
    resolve_pool_backend,
    reset_shared_pool,
    shared_pool,
)

HERE = "tests.runtime.test_procpool"


# -- worker-side task fixtures ----------------------------------------------
def echo(payload: dict) -> dict:
    return {"echo": payload, "pid": os.getpid()}


def kapow(payload: dict) -> dict:
    raise ValueError("kapow")


def unjsonable(payload: dict) -> dict:
    return {"obj": object()}


def die(payload: dict) -> dict:
    os._exit(3)


@pytest.fixture()
def pool():
    pool = ProcessWorkerPool(processes=2)
    try:
        yield pool
    finally:
        pool.shutdown()


class TestProcessWorkerPool:
    def test_round_trip_runs_in_another_process(self, pool):
        out = pool.run_task(f"{HERE}:echo", {"x": [1, 2, {"y": "z"}]})
        assert out["echo"] == {"x": [1, 2, {"y": "z"}]}
        assert out["pid"] != os.getpid()

    def test_sticky_affinity_pins_keys_and_balances(self, pool):
        pids: dict[str, set[int]] = {}
        for _round in range(3):
            for key in ("a", "b", "c", "d"):
                out = pool.run_task(f"{HERE}:echo", {"k": key}, affinity=key)
                pids.setdefault(key, set()).add(out["pid"])
        # Same key always lands in the same worker process...
        assert all(len(seen) == 1 for seen in pids.values())
        # ...and four keys over two workers balance two apiece.
        stats = pool.stats()
        assert stats["affinity_keys"] == 4
        assert sorted(w["affinity_keys"] for w in stats["workers"]) == [2, 2]
        assert sum(w["tasks_routed"] for w in stats["workers"]) == 12
        assert all(w["handoff_bytes"] > 0 for w in stats["workers"])

    def test_unjsonable_payload_fails_fast(self, pool):
        with pytest.raises(ProcpoolPayloadError, match="procpool-discipline"):
            pool.submit_task(f"{HERE}:echo", {"x": object()})

    def test_unjsonable_result_fails_the_future(self, pool):
        with pytest.raises(RuntimeError, match="not JSON-able"):
            pool.run_task(f"{HERE}:unjsonable", {})

    def test_worker_exception_carries_traceback(self, pool):
        with pytest.raises(RuntimeError, match="kapow") as excinfo:
            pool.run_task(f"{HERE}:kapow", {})
        assert "ValueError" in str(excinfo.value)

    def test_bad_task_name_rejected_in_worker(self, pool):
        with pytest.raises(RuntimeError, match="pkg.mod:fn"):
            pool.run_task("no-colon-here", {})

    def test_thread_front_still_runs_callables(self, pool):
        assert pool.submit(lambda: 41 + 1).result() == 42
        assert pool.map_bounded(lambda x: x * x, range(8), limit=3) == [
            x * x for x in range(8)
        ]

    def test_stats_shape(self, pool):
        fresh = pool.stats()
        assert fresh["backend"] == "process"
        assert fresh["processes"] == 2
        # Lazy start: no processes exist until the first submit_task.
        assert [w["pid"] for w in fresh["workers"]] == [None, None]
        pool.run_task(f"{HERE}:echo", {})
        live = pool.stats()
        assert all(w["alive"] and w["pid"] for w in live["workers"])
        assert live["start_method"] in ("fork", "spawn", "forkserver")

    def test_dead_worker_fails_inflight_future(self, pool):
        pool.run_task(f"{HERE}:echo", {}, affinity="victim")
        future = pool.submit_task(f"{HERE}:die", {}, affinity="victim")
        with pytest.raises(RuntimeError, match="died"):
            future.result(timeout=10.0)

    def test_submit_after_shutdown_raises(self):
        pool = ProcessWorkerPool(processes=1)
        pool.run_task(f"{HERE}:echo", {})
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit_task(f"{HERE}:echo", {})


class TestBackendSelection:
    def test_explicit_choices(self):
        assert resolve_pool_backend("threads") == "threads"
        assert resolve_pool_backend("process") == "process"

    def test_invalid_choice_rejected(self):
        with pytest.raises(ValueError):
            resolve_pool_backend("fibers")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "process")
        assert resolve_pool_backend() == "process"
        monkeypatch.delenv("REPRO_POOL")
        assert resolve_pool_backend() == "threads"

    def test_auto_scales_with_cores_and_fleet(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_pool_backend("auto", fleet_size=256) == "process"
        assert resolve_pool_backend("auto", fleet_size=2) == "threads"
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_pool_backend("auto", fleet_size=256) == "threads"

    def test_shared_pool_switches_backend(self):
        reset_shared_pool()
        try:
            a = shared_pool(backend="threads")
            assert a.backend == "threads"
            b = shared_pool(backend="process")
            assert b.backend == "process" and b is not a
            assert a.closed
            # No explicit backend: keep whatever is live.
            assert shared_pool() is b
        finally:
            reset_shared_pool()


class TestStatsUnderCancellation:
    """Regression: queued drifted (and was clamped) when tasks were cancelled."""

    def test_cancelled_task_counted_exactly_once(self):
        started = threading.Event()
        release = threading.Event()

        def blocked():
            started.set()
            release.wait(5.0)

        with WorkerPool(1) as pool:
            first = pool.submit(blocked)
            assert started.wait(5.0)
            backlog = [pool.submit(lambda: None) for _ in range(3)]
            assert pool.stats()["queued"] == 3
            assert backlog[-1].cancel()
            mid = pool.stats()
            assert mid["queued"] == 2
            assert mid["cancelled"] == 1
            release.set()
            first.result()
            for future in backlog[:-1]:
                future.result()
            done = pool.stats()
            assert done["queued"] == 0
            assert done["cancelled"] == 1
            assert done["completed"] == 3
            # The books balance exactly — no clamp hiding drift.
            assert done["submitted"] == (
                done["queued"]
                + done["active"]
                + done["completed"]
                + done["failed"]
                + done["cancelled"]
            )

    def test_many_cancellations_never_go_negative(self):
        release = threading.Event()
        with WorkerPool(1) as pool:
            first = pool.submit(release.wait, 5.0)
            backlog = [pool.submit(lambda: None) for _ in range(10)]
            cancelled = sum(1 for f in backlog if f.cancel())
            release.set()
            first.result()
            for future in backlog:
                if not future.cancelled():
                    future.result()
            stats = pool.stats()
            assert stats["queued"] == 0
            assert stats["cancelled"] == cancelled
            assert stats["completed"] == 1 + (10 - cancelled)
