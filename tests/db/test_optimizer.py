"""Tests for the cost-based optimizer: paths, joins, plan flips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.optimizer import CostModel, DbConfig, Optimizer, best_access_path, candidate_paths
from repro.db.plans import OpType
from repro.db.query import JoinEdge, Predicate, QuerySpec, simple_report_query, tpch_q2_spec
from repro.db.tpch import build_tpch_catalog


@pytest.fixture
def model(catalog):
    return CostModel(catalog=catalog)


class TestCostModel:
    def test_seq_scan_cost_scales_with_pages(self, model, catalog):
        small = model.seq_scan(catalog.table("nation"))
        big = model.seq_scan(catalog.table("partsupp"))
        assert big.cost > 100 * small.cost

    def test_index_scan_cheap_for_selective(self, model, catalog):
        table = catalog.table("part")
        index = catalog.index("pk_part")
        selective = model.index_scan(table, index, 1e-5)
        full = model.seq_scan(table)
        assert selective.cost < full.cost

    def test_index_scan_expensive_for_unselective(self, model, catalog):
        table = catalog.table("part")
        index = catalog.index("pk_part")
        unselective = model.index_scan(table, index, 0.9)
        full = model.seq_scan(table)
        assert unselective.cost > full.cost

    def test_random_page_cost_raises_index_cost(self, catalog):
        cheap = CostModel(catalog, DbConfig(random_page_cost=1.0))
        pricey = CostModel(catalog, DbConfig(random_page_cost=40.0))
        table = catalog.table("partsupp")
        index = catalog.index("ix_partsupp_suppkey")
        assert (
            pricey.index_scan(table, index, 0.001).cost
            > cheap.index_scan(table, index, 0.001).cost
        )

    def test_hash_join_spills_over_work_mem(self, catalog):
        small_mem = CostModel(catalog, DbConfig(work_mem_kb=64))
        big_mem = CostModel(catalog, DbConfig(work_mem_kb=1 << 20))
        from repro.db.optimizer.cost import AccessEstimate

        outer = AccessEstimate(cost=100.0, rows=10_000)
        inner = AccessEstimate(cost=100.0, rows=50_000)
        assert (
            small_mem.hash_join(outer, inner, 1000).cost
            > big_mem.hash_join(outer, inner, 1000).cost
        )

    def test_join_cardinality_system_r(self, model):
        assert model.join_cardinality(1000, 1000, 100, 10) == pytest.approx(10_000)

    def test_config_immutable_update(self):
        base = DbConfig()
        changed = base.with_changes(random_page_cost=10.0)
        assert base.random_page_cost == 4.0
        assert changed.random_page_cost == 10.0


class TestAccessPaths:
    def test_seq_scan_always_candidate(self, model):
        query = simple_report_query()
        paths = candidate_paths(model, query, "supplier")
        assert any(p.op_type is OpType.SEQ_SCAN for p in paths)

    def test_index_candidate_requires_predicate(self, model):
        query = simple_report_query()
        # partsupp has indexes but no filter predicate in this query
        paths = candidate_paths(model, query, "partsupp")
        assert all(p.op_type is OpType.SEQ_SCAN for p in paths)

    def test_index_scan_disabled_by_config(self, catalog):
        query = QuerySpec(
            name="q",
            tables=["part"],
            predicates=[Predicate("part", "p_size", 1.0 / 50.0)],
        )
        on = CostModel(catalog, DbConfig(enable_indexscan=True))
        off = CostModel(catalog, DbConfig(enable_indexscan=False))
        assert any(
            p.op_type is OpType.INDEX_SCAN for p in candidate_paths(on, query, "part")
        )
        assert all(
            p.op_type is OpType.SEQ_SCAN for p in candidate_paths(off, query, "part")
        )

    def test_best_path_selective_picks_index(self, catalog):
        query = QuerySpec(
            name="q",
            tables=["part"],
            predicates=[Predicate("part", "p_size", 1.0 / 50.0)],
        )
        best = best_access_path(CostModel(catalog), query, "part")
        assert best.op_type is OpType.INDEX_SCAN
        assert best.index.name == "ix_part_size"


class TestOptimizerPlans:
    def test_q2_plan_covers_all_tables(self, catalog):
        plan = Optimizer(catalog).plan(tpch_q2_spec())
        assert plan.tables_used() == {"part", "partsupp", "supplier", "nation", "region"}

    def test_each_table_scanned_exactly_once(self, catalog):
        plan = Optimizer(catalog).plan(tpch_q2_spec())
        scans = [op.table for op in plan.walk() if op.op_type.is_scan]
        assert sorted(scans) == sorted(set(scans))

    def test_shaping_operators(self, catalog):
        plan = Optimizer(catalog).plan(tpch_q2_spec())
        assert plan.op_type is OpType.LIMIT
        assert plan.children[0].op_type is OpType.SORT

    def test_preorder_ids(self, catalog):
        plan = Optimizer(catalog).plan(tpch_q2_spec())
        ids = [op.op_id for op in plan.walk()]
        assert ids == [f"O{i}" for i in range(1, len(ids) + 1)]

    def test_deterministic(self, catalog):
        a = Optimizer(catalog).plan(tpch_q2_spec())
        b = Optimizer(catalog).plan(tpch_q2_spec())
        assert a.signature() == b.signature()

    def test_baseline_uses_index_nestloop(self, catalog):
        plan = Optimizer(catalog).plan(simple_report_query())
        assert any(
            op.op_type is OpType.INDEX_SCAN and op.table == "partsupp"
            for op in plan.walk()
        )

    def test_index_drop_flips_plan(self, catalog):
        before = Optimizer(catalog).plan(simple_report_query())
        clone = catalog.clone()
        clone.drop_index("ix_partsupp_suppkey")
        after = Optimizer(clone).plan(simple_report_query())
        assert before.signature() != after.signature()
        assert any(
            op.op_type is OpType.SEQ_SCAN and op.table == "partsupp"
            for op in after.walk()
        )

    def test_random_page_cost_flips_plan(self, catalog):
        before = Optimizer(catalog).plan(simple_report_query())
        after = Optimizer(catalog, DbConfig(random_page_cost=40.0)).plan(
            simple_report_query()
        )
        assert before.signature() != after.signature()

    def test_stats_change_can_flip_plan(self, catalog):
        """Shrinking supplier's filter NDV makes the outer huge → hash join."""
        before = Optimizer(catalog).plan(simple_report_query())
        clone = catalog.clone()
        clone.update_row_count("supplier", 2_000_000)
        after = Optimizer(clone).plan(simple_report_query())
        # more suppliers → more probes → nested loop loses
        assert before.signature() != after.signature()

    def test_replan_helper(self, catalog):
        opt = Optimizer(catalog)
        alt = opt.replan(simple_report_query(), config=DbConfig(random_page_cost=40.0))
        assert alt.signature() != opt.plan(simple_report_query()).signature()

    def test_single_table_query(self, catalog):
        query = QuerySpec(
            name="single",
            tables=["part"],
            predicates=[Predicate("part", "p_size", 1.0 / 50.0)],
        )
        plan = Optimizer(catalog).plan(query)
        assert plan.op_type.is_scan

    def test_cross_join_fallback(self, catalog):
        query = QuerySpec(name="cross", tables=["region", "nation"])
        plan = Optimizer(catalog).plan(query)
        assert plan.tables_used() == {"region", "nation"}


class TestProperties:
    @given(
        st.floats(min_value=0.5, max_value=64.0),
        st.integers(min_value=1024, max_value=1 << 20),
    )
    @settings(max_examples=20, deadline=None)
    def test_plans_always_valid(self, random_page_cost, work_mem_kb):
        catalog = build_tpch_catalog()
        config = DbConfig(random_page_cost=random_page_cost, work_mem_kb=work_mem_kb)
        plan = Optimizer(catalog, config).plan(tpch_q2_spec())
        scans = [op.table for op in plan.walk() if op.op_type.is_scan]
        assert sorted(scans) == ["nation", "part", "partsupp", "region", "supplier"]
        assert all(op.est_rows >= 1.0 or not op.is_leaf for op in plan.walk())
