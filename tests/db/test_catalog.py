"""Tests for the catalog and the TPC-H schema factory."""

from __future__ import annotations

import pytest

from repro.db.catalog import (
    Catalog,
    CatalogError,
    Column,
    Index,
    Table,
    Tablespace,
)
from repro.db.tpch import TPCH_BASE_ROWS, build_tpch_catalog


class TestCatalogBasics:
    def test_tablespace_required_for_table(self):
        cat = Catalog()
        with pytest.raises(CatalogError):
            cat.add_table(
                Table(name="t", row_count=1, row_width=10, tablespace="missing")
            )

    def test_duplicate_table_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.add_table(
                Table(name="part", row_count=1, row_width=10, tablespace="ts_main")
            )

    def test_volume_of_table(self, catalog):
        assert catalog.volume_of_table("supplier") == "V1"
        assert catalog.volume_of_table("part") == "V2"

    def test_tables_on_volume(self, catalog):
        v1_tables = {t.name for t in catalog.tables_on_volume("V1")}
        assert v1_tables == {"supplier"}
        v2_tables = {t.name for t in catalog.tables_on_volume("V2")}
        assert {"part", "partsupp", "nation", "region"} <= v2_tables

    def test_pages_derived_from_rows(self, catalog):
        partsupp = catalog.table("partsupp")
        assert partsupp.pages == pytest.approx(
            partsupp.row_count / (8192 // partsupp.row_width), rel=0.01
        )

    def test_unknown_table_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("nope")

    def test_unknown_column_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("part").column("nope")

    def test_update_row_count(self, catalog):
        catalog.update_row_count("part", 123)
        assert catalog.table("part").row_count == 123

    def test_negative_row_count_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.update_row_count("part", -1)


class TestIndexes:
    def test_default_indexes_present(self, catalog):
        assert catalog.has_index("pk_supplier")
        assert catalog.has_index("ix_partsupp_suppkey")

    def test_drop_and_create(self, catalog):
        dropped = catalog.drop_index("ix_partsupp_suppkey")
        assert not catalog.has_index("ix_partsupp_suppkey")
        catalog.create_index(dropped)
        assert catalog.has_index("ix_partsupp_suppkey")

    def test_drop_unknown_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop_index("nope")

    def test_create_on_unknown_column_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.create_index(Index(name="bad", table="part", column="ghost"))

    def test_indexes_on_filters_by_column(self, catalog):
        found = catalog.indexes_on("partsupp", "ps_suppkey")
        assert [i.name for i in found] == ["ix_partsupp_suppkey"]

    def test_index_height_grows_with_rows(self):
        idx = Index(name="i", table="t", column="c")
        assert idx.height(100) <= idx.height(10_000_000)


class TestSnapshotsAndClone:
    def test_snapshot_reflects_drop(self, catalog):
        before = catalog.snapshot()
        catalog.drop_index("pk_part")
        after = catalog.snapshot()
        assert "pk_part" in before["indexes"]
        assert "pk_part" not in after["indexes"]

    def test_clone_is_independent(self, catalog):
        clone = catalog.clone()
        clone.drop_index("pk_part")
        clone.update_row_count("part", 1)
        assert catalog.has_index("pk_part")
        assert catalog.table("part").row_count != 1

    def test_clone_preserves_layout(self, catalog):
        clone = catalog.clone()
        assert clone.volume_of_table("supplier") == "V1"


class TestTpchFactory:
    def test_row_counts_at_sf1(self, catalog):
        assert catalog.table("supplier").row_count == TPCH_BASE_ROWS["supplier"]
        assert catalog.table("partsupp").row_count == TPCH_BASE_ROWS["partsupp"]

    def test_region_nation_do_not_scale(self):
        cat = build_tpch_catalog(scale=3.0)
        assert cat.table("region").row_count == 5
        assert cat.table("nation").row_count == 25
        assert cat.table("part").row_count == 600_000

    def test_big_tables_optional(self):
        small = build_tpch_catalog()
        with pytest.raises(CatalogError):
            small.table("lineitem")
        big = build_tpch_catalog(include_big_tables=True)
        assert big.table("lineitem").row_count == TPCH_BASE_ROWS["lineitem"]

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            build_tpch_catalog(scale=0)

    def test_custom_layout(self):
        cat = build_tpch_catalog(layout={"ts_supplier": "VX", "ts_main": "VY"})
        assert cat.volume_of_table("supplier") == "VX"
        assert cat.volume_of_table("part") == "VY"

    def test_column_validation(self):
        with pytest.raises(ValueError):
            Column(name="c", ndv=0)
        with pytest.raises(ValueError):
            Column(name="c", null_fraction=1.5)
