"""Tests for the analytical executor: timings, windows, record counts, loads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.buffer import BufferModel
from repro.db.executor import Executor
from repro.db.locks import LockManager
from repro.db.plans import canonical_q2_plan

FLAT = {"V1": 4.0, "V2": 4.0}
V1_SLOW = {"V1": 40.0, "V2": 4.0}


@pytest.fixture
def executor(catalog):
    return Executor(catalog, noise_sigma=0.0)  # deterministic for unit tests


def run_once(executor, plan, latencies, **kw):
    return executor.execute(
        plan, 100.0, latencies, rng=np.random.default_rng(0), **kw
    )


class TestBasics:
    def test_all_operators_timed(self, executor, q2_plan):
        run = run_once(executor, q2_plan, FLAT)
        assert set(run.operators) == {f"O{i}" for i in range(1, 26)}

    def test_duration_is_root_inclusive(self, executor, q2_plan):
        run = run_once(executor, q2_plan, FLAT)
        assert run.duration == pytest.approx(run.operators["O1"].inclusive_time)
        assert run.end_time == pytest.approx(run.start_time + run.duration)

    def test_inclusive_equals_self_plus_children(self, executor, q2_plan):
        run = run_once(executor, q2_plan, FLAT)
        for op in q2_plan.walk():
            rt = run.operators[op.op_id]
            children = sum(run.operators[c.op_id].inclusive_time for c in op.children)
            assert rt.inclusive_time == pytest.approx(rt.self_time + children)

    def test_windows_nest(self, executor, q2_plan):
        run = run_once(executor, q2_plan, FLAT)
        for op in q2_plan.walk():
            parent = run.operators[op.op_id]
            for child in op.children:
                c = run.operators[child.op_id]
                assert parent.start <= c.start and c.stop <= parent.stop + 1e-9

    def test_sibling_windows_sequential(self, executor, q2_plan):
        run = run_once(executor, q2_plan, FLAT)
        o3 = q2_plan.find("O3")
        first, second = o3.children
        assert run.operators[first.op_id].stop <= run.operators[second.op_id].start + 1e-9

    def test_leaves_carry_volume(self, executor, q2_plan):
        run = run_once(executor, q2_plan, FLAT)
        assert run.operators["O8"].volume_id == "V1"
        assert run.operators["O4"].volume_id == "V2"
        assert run.operators["O3"].volume_id is None


class TestLatencySensitivity:
    def test_v1_latency_slows_v1_leaves_only(self, executor, q2_plan):
        base = run_once(executor, q2_plan, FLAT)
        slow = run_once(executor, q2_plan, V1_SLOW)
        assert slow.operators["O22"].io_time > 5 * base.operators["O22"].io_time
        assert slow.operators["O4"].io_time == pytest.approx(
            base.operators["O4"].io_time, rel=0.01
        )

    def test_propagation_to_ancestors(self, executor, q2_plan):
        base = run_once(executor, q2_plan, FLAT)
        slow = run_once(executor, q2_plan, V1_SLOW)
        for ancestor in ["O21", "O20", "O18", "O17", "O3", "O2", "O1"]:
            assert (
                slow.operators[ancestor].inclusive_time
                > base.operators[ancestor].inclusive_time
            )

    def test_self_time_of_interior_unchanged(self, executor, q2_plan):
        base = run_once(executor, q2_plan, FLAT)
        slow = run_once(executor, q2_plan, V1_SLOW)
        assert slow.operators["O21"].self_time == pytest.approx(
            base.operators["O21"].self_time, rel=0.05
        )


class TestDataMultipliers:
    def test_record_counts_scale(self, executor, q2_plan):
        base = run_once(executor, q2_plan, FLAT)
        grown = run_once(
            executor, q2_plan, FLAT, data_multipliers={"partsupp": 1.5}
        )
        assert grown.operators["O4"].actual_rows == pytest.approx(
            1.5 * base.operators["O4"].actual_rows
        )
        # supplier leaf unaffected
        assert grown.operators["O22"].actual_rows == pytest.approx(
            base.operators["O22"].actual_rows
        )

    def test_multiplier_propagates_to_ancestors(self, executor, q2_plan):
        grown = run_once(executor, q2_plan, FLAT, data_multipliers={"partsupp": 2.0})
        base = run_once(executor, q2_plan, FLAT)
        assert grown.operators["O18"].actual_rows > base.operators["O18"].actual_rows

    def test_more_data_more_io(self, executor, q2_plan):
        base = run_once(executor, q2_plan, FLAT)
        grown = run_once(executor, q2_plan, FLAT, data_multipliers={"partsupp": 1.5})
        assert grown.operators["O4"].physical_reads > base.operators["O4"].physical_reads


class TestLocks:
    def test_lock_wait_added_to_table_leaves(self, catalog, q2_plan):
        locks = LockManager()
        locks.add_contention("supplier", 0.0, 1e9, mean_wait_ms=2000.0)
        executor = Executor(catalog, locks=locks, noise_sigma=0.0)
        run = run_once(executor, q2_plan, FLAT)
        assert run.operators["O22"].lock_wait > 0
        assert run.operators["O4"].lock_wait == 0.0
        assert run.db_metrics["lockWaitTime"] > 0

    def test_no_wait_outside_window(self, catalog, q2_plan):
        locks = LockManager()
        locks.add_contention("supplier", 1e6, 2e6, mean_wait_ms=2000.0)
        executor = Executor(catalog, locks=locks, noise_sigma=0.0)
        run = run_once(executor, q2_plan, FLAT)  # at t=100
        assert run.operators["O22"].lock_wait == 0.0


class TestDbMetrics:
    def test_metric_families_present(self, executor, q2_plan):
        run = run_once(executor, q2_plan, FLAT)
        for key in (
            "blocksRead", "bufferHits", "seqScans", "indexScans",
            "locksHeld", "lockWaitTime", "cpuTime", "planRunningTime",
        ):
            assert key in run.db_metrics

    def test_scan_counts(self, executor, q2_plan):
        run = run_once(executor, q2_plan, FLAT)
        # nation x2, region x2, partsupp x2 sequential; supplier x2 + part via index
        assert run.db_metrics["seqScans"] == 6.0
        assert run.db_metrics["indexScans"] == 3.0

    def test_blocks_plus_hits_equals_logical(self, executor, q2_plan):
        run = run_once(executor, q2_plan, FLAT)
        logical = sum(rt.logical_reads for rt in run.operators.values())
        assert run.db_metrics["blocksRead"] + run.db_metrics["bufferHits"] == pytest.approx(
            logical
        )


class TestVolumeLoadEstimate:
    def test_volumes_covered(self, executor, q2_plan):
        loads = executor.estimate_volume_load(q2_plan, duration_s=10.0)
        assert set(loads) == {"V1", "V2"}

    def test_iops_scale_inverse_with_duration(self, executor, q2_plan):
        fast = executor.estimate_volume_load(q2_plan, duration_s=10.0)
        slow = executor.estimate_volume_load(q2_plan, duration_s=100.0)
        assert fast["V2"]["read_iops"] == pytest.approx(10 * slow["V2"]["read_iops"])

    def test_v2_dominated_by_sequential(self, executor, q2_plan):
        loads = executor.estimate_volume_load(q2_plan, duration_s=10.0)
        assert loads["V2"]["sequential_fraction"] > 0.5

    def test_multipliers_increase_load(self, executor, q2_plan):
        base = executor.estimate_volume_load(q2_plan, 10.0)
        grown = executor.estimate_volume_load(
            q2_plan, 10.0, data_multipliers={"partsupp": 2.0}
        )
        assert grown["V2"]["read_iops"] > base["V2"]["read_iops"]


class TestNoise:
    def test_noise_perturbs_times(self, catalog, q2_plan):
        noisy = Executor(catalog, noise_sigma=0.05)
        a = noisy.execute(q2_plan, 0.0, FLAT, rng=np.random.default_rng(1))
        b = noisy.execute(q2_plan, 0.0, FLAT, rng=np.random.default_rng(2))
        assert a.duration != b.duration

    def test_seeded_noise_reproducible(self, catalog, q2_plan):
        noisy = Executor(catalog, noise_sigma=0.05)
        a = noisy.execute(q2_plan, 0.0, FLAT, rng=np.random.default_rng(3))
        b = noisy.execute(q2_plan, 0.0, FLAT, rng=np.random.default_rng(3))
        assert a.duration == b.duration


class TestBufferModel:
    def test_small_table_fully_cached(self, catalog):
        buffer = BufferModel(cache_mb=96.0)
        assert buffer.hit_ratio(catalog.table("nation")) == buffer.max_hit

    def test_large_table_partial(self, catalog):
        buffer = BufferModel(cache_mb=96.0)
        ratio = buffer.hit_ratio(catalog.table("partsupp"))
        assert buffer.min_hit <= ratio < buffer.max_hit

    def test_hot_access_boosts(self, catalog):
        buffer = BufferModel(cache_mb=16.0)
        table = catalog.table("partsupp")
        assert buffer.hit_ratio(table, hot=True) >= buffer.hit_ratio(table, hot=False)

    def test_physical_reads_validation(self, catalog):
        buffer = BufferModel()
        with pytest.raises(ValueError):
            buffer.physical_reads(catalog.table("nation"), -1.0)
