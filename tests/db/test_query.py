"""Tests for query specifications."""

from __future__ import annotations

import pytest

from repro.db.query import (
    JoinEdge,
    Predicate,
    QuerySpec,
    simple_report_query,
    tpch_q2_spec,
)


class TestPredicate:
    def test_selectivity_bounds(self):
        with pytest.raises(ValueError):
            Predicate("t", "c", 0.0)
        with pytest.raises(ValueError):
            Predicate("t", "c", 1.5)
        assert Predicate("t", "c", 1.0).selectivity == 1.0


class TestJoinEdge:
    def test_touches_and_other(self):
        edge = JoinEdge("a", "x", "b", "y")
        assert edge.touches("a") and edge.touches("b") and not edge.touches("c")
        assert edge.other("a") == "b"
        assert edge.column_for("b") == "y"

    def test_unrelated_table_raises(self):
        edge = JoinEdge("a", "x", "b", "y")
        with pytest.raises(ValueError):
            edge.other("c")
        with pytest.raises(ValueError):
            edge.column_for("c")


class TestQuerySpec:
    def test_requires_tables(self):
        with pytest.raises(ValueError):
            QuerySpec(name="q", tables=[])

    def test_rejects_duplicate_tables(self):
        with pytest.raises(ValueError):
            QuerySpec(name="q", tables=["a", "a"])

    def test_rejects_dangling_predicate(self):
        with pytest.raises(ValueError):
            QuerySpec(
                name="q", tables=["a"], predicates=[Predicate("ghost", "c", 0.5)]
            )

    def test_rejects_dangling_join(self):
        with pytest.raises(ValueError):
            QuerySpec(
                name="q",
                tables=["a"],
                joins=[JoinEdge("a", "x", "ghost", "y")],
            )

    def test_combined_selectivity_multiplies(self):
        spec = QuerySpec(
            name="q",
            tables=["a"],
            predicates=[Predicate("a", "c1", 0.5), Predicate("a", "c2", 0.1)],
        )
        assert spec.selectivity_of("a") == pytest.approx(0.05)
        assert spec.selectivity_of("other") == 1.0

    def test_join_edges_between(self):
        spec = tpch_q2_spec()
        edges = spec.join_edges_between({"supplier"}, {"nation"})
        assert len(edges) == 1
        assert edges[0].column_for("nation") == "n_nationkey"
        assert spec.join_edges_between({"part"}, {"region"}) == []


class TestCannedSpecs:
    def test_q2_spec_shape(self):
        spec = tpch_q2_spec()
        assert set(spec.tables) == {"part", "partsupp", "supplier", "nation", "region"}
        assert spec.limit == 100 and spec.order_by

    def test_report_query_shape(self):
        spec = simple_report_query()
        assert set(spec.tables) == {"supplier", "partsupp"}
        assert spec.selectivity_of("supplier") < 0.05
