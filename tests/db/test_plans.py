"""Tests for plan trees, diffing, and the canonical Figure-1 Q2 plan."""

from __future__ import annotations

import pytest

from repro.db.plans import (
    OpType,
    PlanOperator,
    canonical_q2_plan,
    diff_plans,
    render_plan,
)


def tiny_plan() -> PlanOperator:
    scan = PlanOperator(op_id="O2", op_type=OpType.SEQ_SCAN, table="t", est_rows=10)
    return PlanOperator(op_id="O1", op_type=OpType.SORT, children=[scan], est_rows=10)


class TestTraversal:
    def test_walk_preorder(self):
        ids = [op.op_id for op in tiny_plan().walk()]
        assert ids == ["O1", "O2"]

    def test_leaves(self):
        assert [op.op_id for op in tiny_plan().leaves()] == ["O2"]

    def test_find(self):
        assert tiny_plan().find("O2").table == "t"
        with pytest.raises(KeyError):
            tiny_plan().find("O9")

    def test_parent_map(self):
        parents = tiny_plan().parent_map()
        assert parents == {"O1": None, "O2": "O1"}

    def test_ancestors(self):
        plan = canonical_q2_plan()
        assert plan.ancestors_of("O8") == ["O7", "O6", "O3", "O2", "O1"]
        with pytest.raises(KeyError):
            plan.ancestors_of("O99")

    def test_subtree_ids(self):
        plan = canonical_q2_plan()
        sub = plan.subtree_ids("O17")
        assert "O22" in sub and "O8" not in sub

    def test_clone_deep(self):
        plan = tiny_plan()
        other = plan.clone()
        other.children[0].table = "changed"
        assert plan.children[0].table == "t"


class TestSignatures:
    def test_signature_ignores_estimates(self):
        a, b = tiny_plan(), tiny_plan()
        b.est_rows = 999
        assert a.signature() == b.signature()

    def test_signature_sees_structure(self):
        a = tiny_plan()
        b = tiny_plan()
        b.children[0].op_type = OpType.INDEX_SCAN
        assert a.signature() != b.signature()

    def test_diff_same(self):
        diff = diff_plans(tiny_plan(), tiny_plan())
        assert diff.same
        assert diff.describe() == "plans identical"

    def test_diff_scan_change(self):
        a, b = tiny_plan(), tiny_plan()
        b.children[0].op_type = OpType.INDEX_SCAN
        diff = diff_plans(a, b)
        assert not diff.same
        assert any("t" in s for s in diff.changed_scans)


class TestCanonicalQ2:
    """Every structural constraint the paper states about Figure 1."""

    def test_25_operators_9_leaves(self, q2_plan):
        assert q2_plan.size == 25
        assert len(q2_plan.leaves()) == 9

    def test_supplier_leaves_are_o8_o22(self, q2_plan):
        supplier_leaves = {
            op.op_id for op in q2_plan.leaves() if op.table == "supplier"
        }
        assert supplier_leaves == {"O8", "O22"}

    def test_seven_leaves_on_v2_tables(self, q2_plan):
        v2_tables = {"part", "partsupp", "nation", "region"}
        v2_leaves = [op for op in q2_plan.leaves() if op.table in v2_tables]
        assert len(v2_leaves) == 7

    def test_o4_is_partsupp_leaf(self, q2_plan):
        o4 = q2_plan.find("O4")
        assert o4.is_leaf and o4.table == "partsupp"

    def test_o23_is_part_index_scan(self, q2_plan):
        o23 = q2_plan.find("O23")
        assert o23.op_type is OpType.INDEX_SCAN
        assert o23.table == "part"

    def test_o22_ancestor_chain(self, q2_plan):
        assert q2_plan.ancestors_of("O22") == ["O21", "O20", "O18", "O17", "O3", "O2", "O1"]

    def test_all_ids_unique_and_complete(self, q2_plan):
        ids = [op.op_id for op in q2_plan.walk()]
        assert sorted(ids) == sorted(f"O{i}" for i in range(1, 26))

    def test_tables_used(self, q2_plan):
        assert q2_plan.tables_used() == {
            "part", "partsupp", "supplier", "nation", "region"
        }

    def test_row_scale(self):
        scaled = canonical_q2_plan(row_scale=2.0)
        base = canonical_q2_plan()
        assert scaled.find("O4").est_rows == 2 * base.find("O4").est_rows

    def test_leaf_ids_on_tables(self, q2_plan):
        assert q2_plan.leaf_ids_on_tables({"supplier"}) == {"O8", "O22"}


class TestRender:
    def test_render_contains_all_ids(self, q2_plan):
        text = render_plan(q2_plan)
        for i in range(1, 26):
            assert f"O{i} " in text

    def test_render_annotations(self, q2_plan):
        text = render_plan(q2_plan, annotate=lambda op: "LEAF" if op.is_leaf else "")
        assert text.count("[LEAF]") == 9

    def test_render_tree_structure(self):
        text = render_plan(tiny_plan())
        assert "└─" in text
