"""Tests for join-method enumeration including the sort-merge path."""

from __future__ import annotations

import pytest

from repro.db.optimizer import DbConfig, Optimizer
from repro.db.plans import OpType
from repro.db.query import simple_report_query, tpch_q2_spec


class TestMergeJoin:
    def test_merge_join_chosen_when_alternatives_disabled(self, catalog):
        clone = catalog.clone()
        clone.drop_index("ix_partsupp_suppkey")
        config = DbConfig(enable_hashjoin=False, enable_nestloop=False)
        plan = Optimizer(clone, config).plan(simple_report_query())
        assert any(op.op_type is OpType.MERGE_JOIN for op in plan.walk())

    def test_merge_join_inputs_sorted(self, catalog):
        config = DbConfig(enable_hashjoin=False, enable_nestloop=False)
        plan = Optimizer(catalog, config).plan(simple_report_query())
        merge = next(op for op in plan.walk() if op.op_type is OpType.MERGE_JOIN)
        assert all(child.op_type is OpType.SORT for child in merge.children)

    def test_hash_preferred_when_enabled(self, catalog):
        clone = catalog.clone()
        clone.drop_index("ix_partsupp_suppkey")
        plan = Optimizer(clone).plan(simple_report_query())
        # with everything enabled the hash join should win on this shape
        assert any(op.op_type is OpType.HASH_JOIN for op in plan.walk())
        assert not any(op.op_type is OpType.MERGE_JOIN for op in plan.walk())

    def test_q2_valid_without_hash_or_nestloop(self, catalog):
        config = DbConfig(enable_hashjoin=False, enable_nestloop=False)
        plan = Optimizer(catalog, config).plan(tpch_q2_spec())
        scans = sorted(op.table for op in plan.walk() if op.op_type.is_scan)
        assert scans == ["nation", "part", "partsupp", "region", "supplier"]

    def test_disabling_methods_changes_cost_upward(self, catalog):
        spec = simple_report_query()
        free = Optimizer(catalog).plan(spec)
        restricted = Optimizer(
            catalog, DbConfig(enable_hashjoin=False, enable_nestloop=False)
        ).plan(spec)

        def total_cost(plan):
            return max(op.est_cost for op in plan.walk())

        assert total_cost(restricted) >= total_cost(free)
