"""repro lint: one positive + one negative fixture per checker, pragmas, CLI."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.devtools.lint import (
    CHECKER_NAMES,
    Finding,
    guarded_fields_of,
    lint_paths,
    lint_source,
    main,
    render_findings,
)

#: Path prefixes that place a fixture inside / outside the simulated world.
SIM = "src/repro/lab/fixture.py"
NONSIM = "src/repro/core/fixture.py"


def lint(source: str, path: str = SIM, **kwargs) -> list[Finding]:
    return lint_source(textwrap.dedent(source), path, **kwargs)


def checks(findings: list[Finding]) -> list[str]:
    return [f.check for f in findings]


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_wall_clock_read_flagged(self):
        findings = lint(
            """
            import time

            def tick():
                return time.time()
            """
        )
        assert checks(findings) == ["determinism"]
        assert findings[0].line == 5
        assert "time.time" in findings[0].message

    def test_import_alias_resolved(self):
        findings = lint(
            """
            import time as clock

            def tick():
                return clock.monotonic()
            """
        )
        assert checks(findings) == ["determinism"]

    def test_datetime_now_flagged(self):
        findings = lint(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        )
        assert checks(findings) == ["determinism"]

    def test_unseeded_default_rng_flagged_seeded_clean(self):
        bad = lint(
            """
            import numpy as np

            def draw():
                return np.random.default_rng().normal()
            """
        )
        assert checks(bad) == ["determinism"]
        assert "unseeded" in bad[0].message

        good = lint(
            """
            import numpy as np

            def draw(seed):
                return np.random.default_rng(seed).normal()
            """
        )
        assert good == []

    def test_stdlib_global_rng_flagged_seeded_instance_clean(self):
        bad = lint(
            """
            import random

            def draw():
                return random.random()
            """
        )
        assert checks(bad) == ["determinism"]

        good = lint(
            """
            import random

            def make(seed):
                return random.Random(seed)
            """
        )
        assert good == []

    def test_numpy_legacy_global_flagged(self):
        findings = lint(
            """
            import numpy as np

            def shuffle(items):
                np.random.shuffle(items)
            """
        )
        assert checks(findings) == ["determinism"]

    def test_only_simulation_packages_checked(self):
        source = """
        import time

        def tick():
            return time.time()
        """
        assert lint(source, path=NONSIM) == []
        assert checks(lint(source, path="src/repro/cli.py")) == ["determinism"]


# ---------------------------------------------------------------------------
# executor-discipline
# ---------------------------------------------------------------------------


class TestExecutorDiscipline:
    SOURCE = """
    from concurrent.futures import ThreadPoolExecutor

    def fan_out(tasks):
        with ThreadPoolExecutor(max_workers=4) as pool:
            return list(pool.map(str, tasks))
    """

    def test_raw_executor_flagged(self):
        findings = lint(self.SOURCE, path=NONSIM)
        assert checks(findings) == ["executor-discipline"]
        assert "shared_pool" in findings[0].message

    def test_thread_constructor_flagged(self):
        findings = lint(
            """
            import threading

            def spawn(fn):
                threading.Thread(target=fn).start()
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["executor-discipline"]

    def test_pools_module_exempt(self):
        assert lint(self.SOURCE, path="src/repro/runtime/pools.py") == []

    def test_procpool_module_exempt(self):
        source = """
        import multiprocessing

        def spawn(fn):
            ctx = multiprocessing.get_context("fork")
            multiprocessing.Process(target=fn).start()
        """
        assert lint(source, path="src/repro/runtime/procpool.py") == []

    def test_multiprocessing_primitives_flagged(self):
        findings = lint(
            """
            import multiprocessing

            def plumbing():
                return multiprocessing.Queue(), multiprocessing.get_context()
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["executor-discipline", "executor-discipline"]


# ---------------------------------------------------------------------------
# procpool-discipline
# ---------------------------------------------------------------------------


class TestProcpoolDiscipline:
    def test_lambda_payload_flagged(self):
        findings = lint(
            """
            def kick(pool, env):
                pool.submit_task("mod:task", lambda: env.advance(), affinity="a")
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["procpool-discipline"]
        assert "lambda" in findings[0].message

    def test_nested_lambda_in_payload_flagged(self):
        findings = lint(
            """
            def kick(pool):
                pool.submit_task("mod:task", {"cb": lambda x: x}, affinity="a")
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["procpool-discipline"]

    def test_bare_self_payload_flagged(self):
        findings = lint(
            """
            class Proxy:
                def kick(self, pool):
                    pool.submit_task("mod:task", self, affinity="a")
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["procpool-discipline"]
        assert "object graph" in findings[0].message

    def test_non_string_task_flagged(self):
        findings = lint(
            """
            def kick(pool):
                pool.submit_task(42, {"x": 1})
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["procpool-discipline"]
        assert "dotted" in findings[0].message

    def test_json_document_payload_clean(self):
        assert (
            lint(
                """
                TASK = "repro.stream.worker:advance_env"

                class Proxy:
                    def kick(self, pool):
                        pool.submit_task(
                            TASK,
                            {"spec": self.spec, "chunk_s": 1800.0},
                            affinity=self.name,
                        )
                """,
                path=NONSIM,
            )
            == []
        )

    def test_procpool_module_exempt(self):
        assert (
            lint(
                """
                def run_task(self, task, payload):
                    return self.submit_task(task, payload).result()
                """,
                path="src/repro/runtime/procpool.py",
            )
            == []
        )


# ---------------------------------------------------------------------------
# checkpoint-pairing
# ---------------------------------------------------------------------------


class TestCheckpointPairing:
    def test_one_sided_pair_flagged(self):
        findings = lint(
            """
            class Engine:
                def state_dict(self):
                    return {}
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["checkpoint-pairing"]
        assert "load_state" in findings[0].message

    def test_complete_pair_clean(self):
        assert (
            lint(
                """
                class Engine:
                    def state_dict(self):
                        return {}

                    def load_state(self, state):
                        pass
                """,
                path=NONSIM,
            )
            == []
        )

    def test_assignment_alias_counts(self):
        # ``load_state = _restore`` style aliases satisfy the pair.
        assert (
            lint(
                """
                def _restore(self, state):
                    pass

                class Engine:
                    def state_dict(self):
                        return {}

                    load_state = _restore
                """,
                path=NONSIM,
            )
            == []
        )

    def test_same_module_inheritance_resolved(self):
        # Engine inherits load_state from Base, so overriding only
        # state_dict does not break the pair.
        assert (
            lint(
                """
                class Base:
                    def state_dict(self):
                        return {}

                    def load_state(self, state):
                        pass

                class Engine(Base):
                    def state_dict(self):
                        return {"extra": 1}
                """,
                path=NONSIM,
            )
            == []
        )

    def test_unresolvable_base_stays_quiet(self):
        # The missing half may live on the imported base; no false alarm.
        assert (
            lint(
                """
                from elsewhere import Base

                class Engine(Base):
                    def state_dict(self):
                        return {}
                """,
                path=NONSIM,
            )
            == []
        )


# ---------------------------------------------------------------------------
# serializer-completeness
# ---------------------------------------------------------------------------


class TestSerializerCompleteness:
    SOURCE = """
    def incident_to_dict(incident):
        return {}
    """

    def test_missing_inverse_flagged(self):
        findings = lint(self.SOURCE, path="src/repro/storage/serializers.py")
        assert checks(findings) == ["serializer-completeness"]
        assert "incident_from_dict" in findings[0].message

    def test_complete_pair_clean(self):
        assert (
            lint(
                """
                def incident_to_dict(incident):
                    return {}

                def incident_from_dict(payload):
                    return None
                """,
                path="src/repro/storage/serializers.py",
            )
            == []
        )

    def test_only_serializers_module_checked(self):
        assert lint(self.SOURCE, path=NONSIM) == []


# ---------------------------------------------------------------------------
# keyspace-literal
# ---------------------------------------------------------------------------


class TestKeyspaceLiteral:
    def test_class_attribute_literal_flagged(self):
        findings = lint(
            """
            class RunJournal:
                KEYSPACE = "runs"
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["keyspace-literal"]

    def test_registry_reference_clean(self):
        assert (
            lint(
                """
                from repro.storage.keyspaces import RUNS

                class RunJournal:
                    KEYSPACE = RUNS
                """,
                path=NONSIM,
            )
            == []
        )

    def test_parameter_default_literal_flagged(self):
        findings = lint(
            """
            def open_store(path, *, keyspace="metrics"):
                pass
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["keyspace-literal"]

    def test_call_keyword_literal_flagged(self):
        findings = lint(
            """
            def dump(backend):
                return list(backend.scan(keyspace="events"))
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["keyspace-literal"]

    def test_registry_module_itself_exempt(self):
        assert (
            lint(
                """
                class Anything:
                    KEYSPACE = "metrics"
                """,
                path="src/repro/storage/keyspaces.py",
            )
            == []
        )


# ---------------------------------------------------------------------------
# guarded-fields
# ---------------------------------------------------------------------------


class TestGuardedFields:
    def test_unlocked_rebind_flagged(self):
        findings = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    # guarded-by: _lock
                    self._cache = {}
                    self._lock = threading.Lock()

                def invalidate(self):
                    self._cache = {}
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["guarded-fields"]
        assert "_lock" in findings[0].message

    def test_locked_mutation_clean(self):
        assert (
            lint(
                """
                import threading

                class Store:
                    def __init__(self):
                        # guarded-by: _lock
                        self._cache = {}
                        self._lock = threading.Lock()

                    def invalidate(self):
                        with self._lock:
                            self._cache = {}
                """,
                path=NONSIM,
            )
            == []
        )

    def test_container_mutator_call_flagged(self):
        findings = lint(
            """
            import threading

            class Store:
                def __init__(self):
                    # guarded-by: _lock
                    self._items = []
                    self._lock = threading.Lock()

                def push(self, item):
                    self._items.append(item)
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["guarded-fields"]

    def test_init_exempt(self):
        # Construction happens before the object escapes to other threads.
        assert (
            lint(
                """
                import threading

                class Store:
                    def __init__(self):
                        # guarded-by: _lock
                        self._cache = {}
                        self._lock = threading.Lock()
                        self._cache = {"warm": True}
                """,
                path=NONSIM,
            )
            == []
        )

    def test_dataclass_annotation_binds(self):
        findings = lint(
            """
            import threading
            from dataclasses import dataclass, field

            @dataclass
            class Store:
                # guarded-by: _lock
                _cache: dict = field(default_factory=dict)
                _lock: threading.Lock = field(default_factory=threading.Lock)

                def invalidate(self):
                    self._cache.clear()
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["guarded-fields"]

    def test_guarded_fields_of_mapping(self):
        mapping = guarded_fields_of(
            textwrap.dedent(
                """
                class Store:
                    def __init__(self):
                        # guarded-by: _lock
                        self._cache = {}
                        self._plain = 0
                """
            )
        )
        assert mapping == {"Store": {"_cache": "_lock"}}


# ---------------------------------------------------------------------------
# pragmas, strict mode, selection
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# obs-discipline
# ---------------------------------------------------------------------------


class TestObsDiscipline:
    def test_wall_clock_call_outside_obs_flagged(self):
        findings = lint(
            """
            from repro.obs.clock import wall_clock

            def measure():
                return wall_clock()
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["obs-discipline"]
        assert "wall_clock" in findings[0].message

    def test_wall_clock_inside_obs_package_exempt(self):
        findings = lint(
            """
            from .clock import wall_clock

            def bracket():
                return wall_clock()
            """,
            path="src/repro/obs/trace.py",
        )
        assert findings == []

    def test_span_outside_with_statement_flagged(self):
        findings = lint(
            """
            from repro.obs import span

            def manual():
                open_span = span("advance")
                return open_span
            """,
            path=NONSIM,
        )
        assert checks(findings) == ["obs-discipline"]
        assert "with span" in findings[0].message

    def test_span_as_with_item_clean(self):
        findings = lint(
            """
            from repro.obs import span

            def bracketed():
                with span("advance", env="db1"):
                    pass
            """,
            path=NONSIM,
        )
        assert findings == []

    def test_span_in_async_with_clean(self):
        findings = lint(
            """
            from repro.obs import span

            async def bracketed():
                with span("advance") as s:
                    s.annotate(count=1)
            """,
            path=NONSIM,
        )
        assert findings == []

    def test_obs_clock_module_exempt_from_determinism(self):
        # The one sanctioned monotonic read lives in obs/clock.py; the same
        # call in any other obs module is still a determinism finding.
        source = """
        import time

        def wall_clock():
            return time.perf_counter()
        """
        assert lint(source, path="src/repro/obs/clock.py") == []
        findings = lint(source, path="src/repro/obs/metrics.py")
        assert "determinism" in checks(findings)


class TestServeDiscipline:
    SERVE = "src/repro/serve/fixture.py"

    def test_blocking_store_call_in_handler_flagged(self):
        findings = lint(
            """
            async def incidents(request):
                return list(store.scan("incidents"))
            """,
            path=self.SERVE,
        )
        assert checks(findings) == ["serve-discipline"]
        assert "scan" in findings[0].message

    def test_sleep_and_open_in_handler_flagged(self):
        findings = lint(
            """
            import time

            async def handler(request):
                time.sleep(1.0)
                with open("x") as f:
                    return f.read()
            """,
            path=self.SERVE,
        )
        assert checks(findings) == ["serve-discipline"] * 2

    def test_scheduler_dispatch_is_clean(self):
        findings = lint(
            """
            from functools import partial

            async def incidents(request):
                return await app.scheduler.call(partial(query, "incidents"))
            """,
            path=self.SERVE,
        )
        assert findings == []

    def test_sync_helper_in_serve_module_exempt(self):
        # Blocking work belongs in sync functions (dispatched via
        # Scheduler.call); only coroutine bodies are constrained.
        findings = lint(
            """
            def query(store):
                return store.history(env=None)
            """,
            path=self.SERVE,
        )
        assert findings == []

    def test_nested_sync_function_exempt(self):
        findings = lint(
            """
            async def handler(request):
                def blocking():
                    return store.replay()
                return await app.scheduler.call(blocking)
            """,
            path=self.SERVE,
        )
        assert findings == []

    def test_prefixed_backend_minted_outside_registry_flagged(self):
        source = """
        from repro.storage.prefix import PrefixedBackend

        def view(backend):
            return PrefixedBackend(backend, "t_acme__")
        """
        findings = lint(source, path=self.SERVE)
        assert checks(findings) == ["serve-discipline"]
        assert "PrefixedBackend" in findings[0].message
        assert lint(source, path="src/repro/serve/tenants.py") == []

    def test_other_packages_exempt(self):
        findings = lint(
            """
            async def handler(request):
                return list(store.scan("incidents"))
            """,
            path=NONSIM,
        )
        assert findings == []


class TestPragmas:
    def test_line_pragma_suppresses(self):
        findings = lint(
            """
            import time

            def tick():
                return time.time()  # repro-lint: disable=determinism
            """
        )
        assert findings == []

    def test_file_pragma_suppresses(self):
        findings = lint(
            """\
            # repro-lint: disable=determinism
            import time

            def tick():
                return time.time()
            """
        )
        assert findings == []

    def test_pragma_only_covers_named_check(self):
        findings = lint(
            """
            import time

            def tick():
                return time.time()  # repro-lint: disable=executor-discipline
            """
        )
        assert checks(findings) == ["determinism"]

    def test_stale_pragma_reported_in_strict(self):
        findings = lint(
            """
            def quiet():
                return 1  # repro-lint: disable=determinism
            """,
            strict=True,
        )
        assert checks(findings) == ["stale-pragma"]

    def test_used_pragma_not_stale(self):
        findings = lint(
            """
            import time

            def tick():
                return time.time()  # repro-lint: disable=determinism
            """,
            strict=True,
        )
        assert findings == []

    def test_select_subset(self):
        source = """
        import time
        from concurrent.futures import ThreadPoolExecutor

        def tick():
            ThreadPoolExecutor()
            return time.time()
        """
        only_exec = lint(source, select=["executor-discipline"])
        assert checks(only_exec) == ["executor-discipline"]

    def test_unknown_select_raises(self):
        with pytest.raises(ValueError, match="unknown checker"):
            lint("x = 1", select=["no-such-check"])

    def test_parse_error_is_a_finding(self):
        findings = lint("def broken(:\n")
        assert checks(findings) == ["parse-error"]


# ---------------------------------------------------------------------------
# the merged tree is clean; the CLI gates on findings
# ---------------------------------------------------------------------------


class TestRunner:
    def test_src_tree_is_clean_strict(self):
        assert lint_paths(["src"], strict=True) == []

    def test_render_clean_and_summary(self):
        assert render_findings([]) == "repro lint: clean"
        finding = Finding(path="p.py", line=3, col=1, check="determinism", message="m")
        report = render_findings([finding])
        assert "p.py:3:1: [determinism] m" in report
        assert "1 finding(s)" in report

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0

        dirty = tmp_path / "lab" / "dirty.py"
        dirty.parent.mkdir()
        dirty.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "[determinism]" in out

        assert main(["--select", "no-such-check", str(clean)]) == 2
        assert main([str(tmp_path / "missing.txt")]) == 2

    def test_cli_json_output(self, tmp_path, capsys):
        dirty = tmp_path / "lab" / "dirty.py"
        dirty.parent.mkdir()
        dirty.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main(["--json", str(dirty)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["check"] == "determinism"
        assert payload[0]["line"] == 4

    def test_checker_names_stable(self):
        # The README / CONTRIBUTING documentation names these literally.
        assert CHECKER_NAMES == (
            "determinism",
            "executor-discipline",
            "checkpoint-pairing",
            "serializer-completeness",
            "keyspace-literal",
            "guarded-fields",
            "obs-discipline",
            "serve-discipline",
            "procpool-discipline",
        )


class TestObsWorkerDiscipline:
    """Worker-side task modules only emit spans through the buffered API."""

    WORKER = "src/repro/stream/worker.py"

    def test_direct_span_in_worker_module_flagged(self):
        findings = lint(
            """
            from repro.obs import span

            def advance_env(payload):
                with span("advance"):
                    pass
            """,
            path=self.WORKER,
        )
        assert checks(findings) == ["obs-discipline"]
        assert "worker_span" in findings[0].message

    def test_worker_span_in_worker_module_clean(self):
        findings = lint(
            """
            from repro.obs import worker as obs_worker

            def advance_env(payload):
                with obs_worker.worker_span("worker.advance"):
                    pass
            """,
            path=self.WORKER,
        )
        assert findings == []

    def test_set_sink_in_worker_module_flagged(self):
        findings = lint(
            """
            from repro.obs import trace as obs_trace

            def hydrate(payload):
                obs_trace.tracer().set_sink(payload)
            """,
            path=self.WORKER,
        )
        assert checks(findings) == ["obs-discipline"]
        assert "sink" in findings[0].message

    def test_unclosed_worker_span_flagged_everywhere(self):
        findings = lint(
            """
            from repro.obs import worker as obs_worker

            def leak():
                s = obs_worker.worker_span("worker.leak")
                return s
            """,
            path=self.WORKER,
        )
        assert checks(findings) == ["obs-discipline"]
        assert "with worker_span" in findings[0].message

    def test_direct_span_outside_worker_modules_still_clean(self):
        findings = lint(
            """
            from repro.obs import span

            def supervise():
                with span("tick"):
                    pass
            """,
            path=NONSIM,
        )
        assert findings == []
