"""Runtime sanitizer: lock-order graph, task scopes, guarded-field checks.

Deliberate violations are planted inside :func:`sanitize.recording` scopes,
so the process-wide registry (asserted clean after every test when the CI
sanitizer job runs with ``REPRO_SANITIZE=1``) never sees them.
"""

from __future__ import annotations

import threading

import pytest

from repro.devtools import sanitize
from repro.devtools.sanitize import TrackedLock, task_scope, track_lock
from repro.monitor.timeseries import MetricStore
from repro.runtime.pools import WorkerPool
from repro.storage.backend import MemoryBackend


@pytest.fixture
def enabled():
    """Force the sanitizer on for one test, restoring the prior state after."""
    previous = sanitize._forced
    sanitize.enable()
    yield
    sanitize._forced = previous


@pytest.fixture
def disabled():
    previous = sanitize._forced
    sanitize.disable()
    yield
    sanitize._forced = previous


# ---------------------------------------------------------------------------
# enablement + pass-through
# ---------------------------------------------------------------------------


class TestEnablement:
    def test_env_flag(self, monkeypatch, disabled):
        sanitize._forced = None
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize.is_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.is_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize.is_enabled()

    def test_track_lock_passthrough_when_disabled(self, disabled):
        inner = threading.Lock()
        assert track_lock(inner, "x") is inner

    def test_track_lock_wraps_when_enabled(self, enabled):
        wrapped = track_lock(threading.Lock(), "x")
        assert isinstance(wrapped, TrackedLock)
        # Idempotent: wrapping a TrackedLock returns it unchanged.
        assert track_lock(wrapped, "x") is wrapped

    def test_instrument_noop_when_disabled(self, disabled):
        store = MetricStore()
        assert type(store) is MetricStore
        assert isinstance(store._cache_lock, type(threading.Lock()))


# ---------------------------------------------------------------------------
# lock-order graph
# ---------------------------------------------------------------------------


class TestLockOrder:
    def test_inversion_reported(self):
        with sanitize.recording() as seen:
            a = TrackedLock(threading.Lock(), "A")
            b = TrackedLock(threading.Lock(), "B")
            with a:
                with b:
                    pass
            with b:
                with a:  # opposite order: deadlock under the right schedule
                    pass
        kinds = [v.kind for v in seen]
        assert kinds == ["lock-order"]
        assert "'A'" in seen[0].message and "'B'" in seen[0].message

    def test_consistent_order_clean(self):
        with sanitize.recording() as seen:
            a = TrackedLock(threading.Lock(), "A")
            b = TrackedLock(threading.Lock(), "B")
            for _ in range(3):
                with a:
                    with b:
                        pass
        assert seen == []

    def test_reentrant_same_name_clean(self):
        with sanitize.recording() as seen:
            lock = TrackedLock(threading.RLock(), "R")
            with lock:
                with lock:
                    pass
        assert seen == []
        assert sanitize.held_locks() == ()

    def test_held_locks_tracks_nesting(self):
        with sanitize.recording():
            a = TrackedLock(threading.Lock(), "A")
            b = TrackedLock(threading.Lock(), "B")
            with a:
                assert sanitize.held_locks() == ("A",)
                with b:
                    assert sanitize.held_locks() == ("A", "B")
                assert sanitize.held_locks() == ("A",)
            assert sanitize.held_locks() == ()


# ---------------------------------------------------------------------------
# task scopes
# ---------------------------------------------------------------------------


class TestTaskScope:
    def test_violations_attributed_to_task(self):
        with sanitize.recording() as seen:
            a = TrackedLock(threading.Lock(), "A")
            b = TrackedLock(threading.Lock(), "B")
            with a, b:
                pass
            with task_scope("diagnose:Q2"):
                with b, a:
                    pass
        assert [v.kind for v in seen] == ["lock-order"]
        assert seen[0].task == "diagnose:Q2"

    def test_leaked_lock_reported(self):
        with sanitize.recording() as seen:
            lock = TrackedLock(threading.Lock(), "L")
            with task_scope("leaky"):
                lock.acquire()
            lock.release()  # clean up thread-local state for later tests
        assert [v.kind for v in seen] == ["lock-leak"]
        assert "L" in seen[0].message

    def test_pool_tasks_run_in_scope(self, enabled):
        with WorkerPool(max_workers=2) as pool:
            assert pool.submit(sanitize.current_task).result() is not None
        assert sanitize.current_task() is None

    def test_pool_tasks_unscoped_when_disabled(self, disabled):
        with WorkerPool(max_workers=2) as pool:
            assert pool.submit(sanitize.current_task).result() is None


# ---------------------------------------------------------------------------
# guarded-field instrumentation
# ---------------------------------------------------------------------------


class TestInstrumentGuarded:
    def test_unguarded_rebind_flagged(self, enabled):
        with sanitize.recording() as seen:
            store = MetricStore()
            store._raw = {}  # rebinding a guarded field without the lock
        assert [v.kind for v in seen] == ["unguarded-mutation"]
        assert "MetricStore._raw" in seen[0].message

    def test_rebind_under_lock_clean(self, enabled):
        with sanitize.recording() as seen:
            store = MetricStore()
            with store._cache_lock:
                store._cache = {}
        assert seen == []

    def test_unannotated_fields_unchecked(self, enabled):
        with sanitize.recording() as seen:
            store = MetricStore()
            store.seed = 7  # not a guarded field
        assert seen == []

    def test_normal_store_usage_clean(self, enabled):
        with sanitize.recording() as seen:
            store = MetricStore(interval_s=60.0, noise_sigma=0.0)
            store.record(30.0, "V1", "readTime", 4.0)
            store.append_many([(90.0, "V1", "readTime", 6.0)])
            assert [s.value for s in store.series("V1", "readTime")] == [4.0, 6.0]
        assert seen == []

    def test_memory_backend_clean_under_instrumentation(self, enabled):
        with sanitize.recording() as seen:
            backend = MemoryBackend()
            assert type(backend).__name__ == "SanitizedMemoryBackend"
            backend.append("metrics", {"t": 1.0, "k": "a"})
            assert list(backend.scan("metrics")) == [{"t": 1.0, "k": "a"}]
        assert seen == []

    def test_concurrent_ingest_and_read_clean(self, enabled):
        # The real contention pattern: collector appends racing series()
        # cache fills across pool threads.
        with sanitize.recording() as seen:
            store = MetricStore(interval_s=60.0)
            with WorkerPool(max_workers=4) as pool:
                writes = [
                    pool.submit(store.record, float(i), "V1", "readTime", 1.0)
                    for i in range(50)
                ]
                reads = [
                    pool.submit(store.series, "V1", "readTime") for _ in range(50)
                ]
                for future in writes + reads:
                    future.result()
        assert seen == []


# ---------------------------------------------------------------------------
# registry surface
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_recording_isolates_global_registry(self):
        baseline = len(sanitize.violations())
        with sanitize.recording() as seen:
            a = TrackedLock(threading.Lock(), "A")
            b = TrackedLock(threading.Lock(), "B")
            with a, b:
                pass
            with b, a:
                pass
            assert len(seen) == 1
        assert len(sanitize.violations()) == baseline

    def test_violation_render_mentions_kind_and_task(self):
        violation = sanitize.SanitizerViolation(
            kind="lock-order", message="m", task="t", location="f.py:1"
        )
        assert violation.render() == "lock-order [task t]: m (f.py:1)"
