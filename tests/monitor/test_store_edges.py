"""Edge cases for ConfigStore.diff and EventLog.in_window (+ journalling)."""

from __future__ import annotations

from repro.monitor import ConfigStore, EventLog, EventRecord
from repro.storage import MemoryBackend


class TestConfigStoreDiffEdges:
    def test_empty_scope_diff_is_empty(self):
        store = ConfigStore()
        assert store.diff("never-snapshotted", 0.0, 100.0) == []
        assert store.changes_between(0.0, 100.0) == []

    def test_t0_equals_t1_yields_no_changes(self):
        store = ConfigStore()
        store.take_snapshot(10.0, "db_config", {"work_mem_kb": 4096})
        store.take_snapshot(50.0, "db_config", {"work_mem_kb": 65536})
        for t in (5.0, 10.0, 30.0, 50.0, 99.0):
            assert store.diff("db_config", t, t) == []

    def test_window_before_first_snapshot(self):
        store = ConfigStore()
        store.take_snapshot(100.0, "san", {"zones": 1})
        # both endpoints precede every snapshot: both sides resolve to {}
        assert store.diff("san", 0.0, 50.0) == []
        # spanning the first snapshot reports everything as "added"
        changes = store.diff("san", 0.0, 100.0)
        assert [c.kind for c in changes] == ["added"]

    def test_out_of_order_snapshot_times_are_sorted(self):
        store = ConfigStore()
        store.take_snapshot(100.0, "db_config", {"x": 3})
        store.take_snapshot(10.0, "db_config", {"x": 1})   # arrives late
        store.take_snapshot(50.0, "db_config", {"x": 2})
        assert store.snapshot_at("db_config", 10.0) == {"x": 1}
        assert store.snapshot_at("db_config", 60.0) == {"x": 2}
        changes = store.diff("db_config", 10.0, 100.0)
        assert len(changes) == 1 and changes[0].before == 1 and changes[0].after == 3

    def test_diff_across_scopes_does_not_leak(self):
        store = ConfigStore()
        store.take_snapshot(0.0, "a", {"k": 1})
        store.take_snapshot(10.0, "b", {"k": 2})
        # scope "a" is unchanged across the window; only "b" appeared in it
        assert store.diff("a", 0.0, 20.0) == []
        assert [c.scope for c in store.changes_between(5.0, 20.0)] == ["b"]

    def test_out_of_order_snapshots_survive_replay(self):
        backend = MemoryBackend()
        store = ConfigStore(backend=backend)
        store.take_snapshot(100.0, "db_config", {"x": 3})
        store.take_snapshot(10.0, "db_config", {"x": 1})
        fresh = ConfigStore(backend=backend)
        fresh.replay_from_backend()
        assert fresh.snapshot_at("db_config", 20.0) == {"x": 1}
        assert fresh.snapshot_at("db_config", 200.0) == {"x": 3}


class TestEventLogWindowEdges:
    @staticmethod
    def _log():
        log = EventLog()
        for t in (10.0, 20.0, 30.0):
            log.add(EventRecord(time=t, kind="dml_batch", component_id="db", layer="db"))
        return log

    def test_empty_log(self):
        assert EventLog().in_window(0.0, 100.0) == []

    def test_window_bounds_are_inclusive(self):
        log = self._log()
        assert [e.time for e in log.in_window(10.0, 30.0)] == [10.0, 20.0, 30.0]
        assert [e.time for e in log.in_window(10.0, 20.0)] == [10.0, 20.0]

    def test_degenerate_window_start_equals_end(self):
        log = self._log()
        assert [e.time for e in log.in_window(20.0, 20.0)] == [20.0]
        assert log.in_window(15.0, 15.0) == []

    def test_inverted_window_is_empty(self):
        assert self._log().in_window(30.0, 10.0) == []

    def test_out_of_order_adds_come_back_sorted(self):
        log = EventLog()
        for t in (30.0, 10.0, 20.0):
            log.add(EventRecord(time=t, kind="dml_batch", component_id="db", layer="db"))
        assert [e.time for e in log.in_window(0.0, 100.0)] == [10.0, 20.0, 30.0]

    def test_events_round_trip_through_backend(self):
        backend = MemoryBackend()
        log = EventLog(backend=backend)
        log.add_db_event(5.0, "index_created", "db", index="idx1")
        log.add(EventRecord(time=1.0, kind="dml_batch", component_id="db", layer="db"))
        fresh = EventLog(backend=backend)
        fresh.replay_from_backend()
        assert [e.describe() for e in fresh.events] == [e.describe() for e in log.events]
