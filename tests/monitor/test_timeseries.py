"""Tests for the noisy, bucketed metric store — the paper's monitoring blur."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.timeseries import MetricStore, Sample


def make_store(**kw) -> MetricStore:
    defaults = dict(interval_s=300.0, noise_sigma=0.0, seed=0)
    defaults.update(kw)
    return MetricStore(**defaults)


class TestBucketing:
    def test_bucket_mean(self):
        store = make_store()
        for t, v in [(0, 10.0), (60, 20.0), (120, 30.0)]:
            store.record(t, "c", "m", v)
        series = store.series("c", "m")
        assert len(series) == 1
        assert series[0].value == pytest.approx(20.0)
        assert series[0].time == pytest.approx(150.0)  # bucket midpoint

    def test_buckets_split_on_interval(self):
        store = make_store()
        store.record(10, "c", "m", 1.0)
        store.record(310, "c", "m", 3.0)
        series = store.series("c", "m")
        assert [s.value for s in series] == [1.0, 3.0]

    def test_burst_averaged_away(self):
        """A 1-tick burst inside a 5-tick bucket shrinks by the duty cycle —
        the monitoring inaccuracy of Section 1.1."""
        store = make_store()
        for i in range(5):
            store.record(i * 60.0, "c", "m", 100.0 if i == 2 else 0.0)
        assert store.series("c", "m")[0].value == pytest.approx(20.0)

    def test_empty_series(self):
        assert make_store().series("c", "m") == []

    def test_len_counts_raw(self):
        store = make_store()
        store.record(0, "a", "m", 1.0)
        store.record(1, "a", "m", 1.0)
        assert len(store) == 2


class TestNoise:
    def test_noise_deterministic_per_seed(self):
        a, b = make_store(noise_sigma=0.1), make_store(noise_sigma=0.1)
        for store in (a, b):
            store.record(0, "c", "m", 10.0)
        assert a.series("c", "m")[0].value == b.series("c", "m")[0].value

    def test_noise_differs_across_seeds(self):
        a = make_store(noise_sigma=0.1, seed=1)
        b = make_store(noise_sigma=0.1, seed=2)
        for store in (a, b):
            store.record(0, "c", "m", 10.0)
        assert a.series("c", "m")[0].value != b.series("c", "m")[0].value

    def test_noise_never_negative(self):
        store = make_store(noise_sigma=3.0)  # absurd sigma, clamped at zero
        store.record(0, "c", "m", 10.0)
        assert store.series("c", "m")[0].value >= 0.0

    def test_zero_sigma_exact(self):
        store = make_store(noise_sigma=0.0)
        store.record(0, "c", "m", 42.0)
        assert store.series("c", "m")[0].value == 42.0

    def test_cache_invalidated_on_record(self):
        store = make_store()
        store.record(0, "c", "m", 10.0)
        assert store.series("c", "m")[0].value == 10.0
        store.record(60, "c", "m", 30.0)
        assert store.series("c", "m")[0].value == pytest.approx(20.0)


class TestWindows:
    def test_values_between(self):
        store = make_store()
        for t in range(0, 1200, 60):
            store.record(t, "c", "m", float(t))
        values = store.values_between("c", "m", 0, 600)
        assert len(values) == 2  # buckets with midpoints 150, 450

    def test_window_mean_narrow_window_uses_overlap(self):
        """A window narrower than a bucket still resolves (with blur)."""
        store = make_store()
        store.record(0, "c", "m", 10.0)
        store.record(60, "c", "m", 10.0)
        assert store.window_mean("c", "m", 10.0, 20.0) == pytest.approx(10.0)

    def test_window_mean_none_when_empty(self):
        assert make_store().window_mean("c", "m", 0, 100) is None


class TestValidation:
    def test_bad_interval(self):
        with pytest.raises(ValueError):
            MetricStore(interval_s=0)

    def test_bad_sigma(self):
        with pytest.raises(ValueError):
            MetricStore(noise_sigma=-0.1)

    def test_introspection(self):
        store = make_store()
        store.record(0, "V1", "readTime", 1.0)
        store.record(0, "V1", "writeTime", 1.0)
        assert store.components() == {"V1"}
        assert store.metrics_for("V1") == {"readTime", "writeTime"}
        assert store.keys() == [("V1", "readTime"), ("V1", "writeTime")]


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10_000),
                st.floats(min_value=0, max_value=1e6),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_series_sorted_and_within_range(self, points):
        store = make_store()
        for t, v in points:
            store.record(t, "c", "m", v)
        series = store.series("c", "m")
        times = [s.time for s in series]
        assert times == sorted(times)
        lo = min(v for _, v in points)
        hi = max(v for _, v in points)
        for sample in series:
            assert lo - 1e-6 <= sample.value <= hi + 1e-6


class TestAppendMany:
    def test_batch_equals_singles(self):
        a, b = make_store(), make_store()
        observations = [
            (float(t), "V1", "readTime", float(v))
            for t, v in enumerate([5.0, 6.0, 7.0, 8.0])
        ]
        for obs in observations:
            a.record(*obs)
        assert b.append_many(observations) == 4
        assert a.series("V1", "readTime") == b.series("V1", "readTime")

    def test_invalidates_series_cache(self):
        store = make_store()
        store.record(0.0, "V1", "readTime", 10.0)
        before = store.series("V1", "readTime")
        store.append_many([(600.0, "V1", "readTime", 20.0)])
        after = store.series("V1", "readTime")
        assert len(after) == len(before) + 1

    def test_concurrent_appends_and_reads(self):
        """Streaming writers + diagnosing readers must not lose samples or
        serve stale cached series (the observer-tap append path shares the
        store lock with batch reads)."""
        import threading

        store = make_store()
        n_writers, per_writer = 4, 200
        errors = []

        def writer(wid: int) -> None:
            for i in range(per_writer):
                store.append_many(
                    [(float(wid * per_writer + i), "V1", "readTime", 1.0)]
                )

        def reader() -> None:
            try:
                for _ in range(200):
                    series = store.series("V1", "readTime")
                    times = [s.time for s in series]
                    if times != sorted(times):
                        errors.append("unsorted series")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(n_writers)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(store) == n_writers * per_writer
        # Final read must see every write (no stale cache left behind).
        assert sum(
            1 for _ in store.series("V1", "readTime")
        ) == len({int(t // 300.0) for t in range(n_writers * per_writer)})
