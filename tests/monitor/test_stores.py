"""Tests for event log, config store, run store and collector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.executor import Executor
from repro.db.plans import canonical_q2_plan
from repro.monitor.collector import Collector, MonitoringStores
from repro.monitor.configstore import ConfigStore, flatten
from repro.monitor.events import EventLog, EventRecord
from repro.monitor.runstore import RunStore
from repro.san.events import SanEvent, SanEventKind
from repro.san.iomodel import IoSimulator, VolumeLoad


class TestEventLog:
    def test_add_and_sort(self):
        log = EventLog()
        log.add(EventRecord(time=10, kind="dml_batch", component_id="t", layer="db"))
        log.add(EventRecord(time=5, kind="dml_batch", component_id="t", layer="db"))
        assert [e.time for e in log.events] == [5, 10]

    def test_san_event_conversion(self):
        log = EventLog()
        record = log.add_san_event(
            SanEvent(3.0, SanEventKind.VOLUME_CREATED, "Vx", {"pool": "P1"})
        )
        assert record.layer == "san"
        assert record.kind == "volume_created"
        assert record.details["pool"] == "P1"

    def test_db_event_kind_validation(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.add_db_event(0.0, "made_up_kind", "x")

    def test_window_query(self):
        log = EventLog()
        for t in (1.0, 5.0, 9.0):
            log.add_db_event(t, "dml_batch", "t")
        assert len(log.in_window(2.0, 8.0)) == 1

    def test_kind_and_component_query(self):
        log = EventLog()
        log.add_db_event(0.0, "index_dropped", "ix_a")
        log.add_db_event(1.0, "dml_batch", "t")
        assert len(log.of_kind("index_dropped")) == 1
        assert len(log.for_component("ix_a")) == 1
        assert len(log.before(0.5)) == 1


class TestConfigStore:
    def test_flatten_nested(self):
        flat = flatten({"a": {"b": 1, "c": [2, 3]}})
        assert flat == {"a.b": 1, "a.c[0]": 2, "a.c[1]": 3}

    def test_diff_detects_change(self):
        store = ConfigStore()
        store.take_snapshot(0.0, "db", {"x": 1, "y": 2})
        store.take_snapshot(10.0, "db", {"x": 1, "y": 3, "z": 4})
        changes = store.diff("db", 0.0, 10.0)
        paths = {c.path: c.kind for c in changes}
        assert paths == {"y": "modified", "z": "added"}

    def test_diff_detects_removal(self):
        store = ConfigStore()
        store.take_snapshot(0.0, "db", {"x": 1})
        store.take_snapshot(10.0, "db", {})
        [change] = store.diff("db", 0.0, 10.0)
        assert change.kind == "removed"
        assert "removed" in change.describe()

    def test_snapshot_at_picks_latest_before(self):
        store = ConfigStore()
        store.take_snapshot(0.0, "db", {"x": 1})
        store.take_snapshot(20.0, "db", {"x": 2})
        assert store.snapshot_at("db", 10.0) == {"x": 1}
        assert store.snapshot_at("db", 25.0) == {"x": 2}
        assert store.snapshot_at("db", -5.0) is None

    def test_changes_between_all_scopes(self):
        store = ConfigStore()
        store.take_snapshot(0.0, "a", {"k": 1})
        store.take_snapshot(0.0, "b", {"k": 1})
        store.take_snapshot(10.0, "a", {"k": 2})
        changes = store.changes_between(0.0, 10.0)
        assert len(changes) == 1 and changes[0].scope == "a"


def make_run(catalog, run_id="r1", start=0.0, duration_scale=1.0):
    executor = Executor(catalog, noise_sigma=0.0)
    return executor.execute(
        canonical_q2_plan(),
        start,
        {"V1": 4.0 * duration_scale, "V2": 4.0 * duration_scale},
        run_id=run_id,
        query_name="q",
        rng=np.random.default_rng(0),
    )


class TestRunStore:
    def test_add_get(self, catalog):
        store = RunStore()
        run = make_run(catalog)
        store.add(run)
        assert store.get("r1") is run
        assert len(store) == 1

    def test_duplicate_rejected(self, catalog):
        store = RunStore()
        store.add(make_run(catalog))
        with pytest.raises(ValueError):
            store.add(make_run(catalog))

    def test_runs_sorted_by_start(self, catalog):
        store = RunStore()
        store.add(make_run(catalog, "b", start=100.0))
        store.add(make_run(catalog, "a", start=0.0))
        assert [r.run_id for r in store.runs("q")] == ["a", "b"]

    def test_label_by_duration(self, catalog):
        store = RunStore()
        store.add(make_run(catalog, "fast", start=0.0))
        store.add(make_run(catalog, "slow", start=100.0, duration_scale=10.0))
        threshold = store.get("fast").duration * 1.5
        good, bad = store.label_by_duration("q", threshold)
        assert (good, bad) == (1, 1)
        assert store.get("slow").satisfactory is False

    def test_label_by_window(self, catalog):
        store = RunStore()
        store.add(make_run(catalog, "early", start=0.0))
        store.add(make_run(catalog, "late", start=1000.0))
        store.label_by_window("q", 500.0, 2000.0)
        assert store.get("early").satisfactory is True
        assert store.get("late").satisfactory is False

    def test_mark_direct(self, catalog):
        store = RunStore()
        store.add(make_run(catalog))
        store.mark("r1", satisfactory=False)
        assert store.unsatisfactory_runs("q") == [store.get("r1")]

    def test_unknown_run(self):
        with pytest.raises(KeyError):
            RunStore().get("nope")


class TestCollector:
    def test_san_collection(self, testbed):
        stores = MonitoringStores()
        collector = Collector(stores=stores)
        sample = IoSimulator(testbed.topology).simulate({"V1": VolumeLoad(read_iops=50)})
        collector.collect_san(0.0, sample)
        assert ("V1", "readTime") in stores.metrics.keys()

    def test_query_run_collection(self, catalog):
        stores = MonitoringStores()
        collector = Collector(stores=stores)
        run = make_run(catalog)
        collector.collect_query_run(run)
        assert len(stores.runs) == 1
        assert ("db", "blocksRead") in stores.metrics.keys()

    def test_server_metrics_cover_figure4(self, testbed):
        stores = MonitoringStores()
        Collector(stores=stores).collect_server(0.0, "srv-db", cpu_pct=50.0)
        recorded = stores.metrics.metrics_for("srv-db")
        assert {"cpuUsagePct", "physicalMemoryUsagePct", "threads"} <= recorded

    def test_network_metrics_cover_figure4(self):
        stores = MonitoringStores()
        Collector(stores=stores).collect_network(0.0, "sw", bytes_moved=1e6)
        recorded = stores.metrics.metrics_for("sw")
        assert {"bytesTransmitted", "errorFrames", "crcErrors"} <= recorded


class TestCollectorTap:
    """The streaming tap: observers see every append without polling."""

    def test_metric_tap_sees_every_san_append(self, testbed):
        stores = MonitoringStores()
        collector = Collector(stores=stores)
        seen = []
        collector.add_metric_tap(lambda t, cid, m, v: seen.append((cid, m)))
        sample = IoSimulator(testbed.topology).simulate({"V1": VolumeLoad(read_iops=50)})
        collector.collect_san(0.0, sample)
        assert len(seen) == len(stores.metrics)
        assert ("V1", "readTime") in seen

    def test_run_tap_sees_recorded_runs(self, catalog):
        stores = MonitoringStores()
        collector = Collector(stores=stores)
        seen = []
        collector.add_run_tap(seen.append)
        run = make_run(catalog)
        collector.collect_query_run(run)
        assert seen == [run]

    def test_tap_fires_on_singles_and_heartbeats(self):
        stores = MonitoringStores()
        collector = Collector(stores=stores)
        seen = []
        collector.add_metric_tap(lambda t, cid, m, v: seen.append(m))
        collector.collect_db_tick(0.0, locks_held=3.0)
        collector.collect_server(0.0, "srv-db", cpu_pct=10.0)
        assert "locksHeld" in seen and "cpuUsagePct" in seen

    def test_remove_tap(self):
        stores = MonitoringStores()
        collector = Collector(stores=stores)
        seen = []
        tap = collector.add_metric_tap(lambda t, cid, m, v: seen.append(m))
        collector.collect_db_tick(0.0, locks_held=1.0)
        collector.remove_tap(tap)
        collector.collect_db_tick(60.0, locks_held=1.0)
        assert len(seen) == 1

    def test_untapped_collector_unchanged(self, testbed):
        """No observers: the collector behaves exactly like the seed's."""
        stores = MonitoringStores()
        collector = Collector(stores=stores)
        sample = IoSimulator(testbed.topology).simulate({"V1": VolumeLoad(read_iops=50)})
        collector.collect_san(0.0, sample)
        assert len(stores.metrics) == len(sample.values)
