"""Tests for zoning and LUN mapping/masking."""

from __future__ import annotations

import pytest

from repro.san.events import SanEvent, SanEventKind
from repro.san.zoning import AccessControl, LunMapping, ZoningConfig


class TestZoning:
    def test_create_and_query(self):
        zoning = ZoningConfig()
        zoning.create_zone("z1", {"a", "b"})
        assert zoning.ports_zoned_together("a", "b")
        assert not zoning.ports_zoned_together("a", "c")

    def test_duplicate_zone_rejected(self):
        zoning = ZoningConfig()
        zoning.create_zone("z1")
        with pytest.raises(ValueError):
            zoning.create_zone("z1")

    def test_zone_membership_mutation(self):
        zoning = ZoningConfig()
        zone = zoning.create_zone("z1", {"a"})
        zone.add("b")
        assert zoning.ports_zoned_together("a", "b")
        zone.remove("b")
        assert not zoning.ports_zoned_together("a", "b")

    def test_delete_zone(self):
        zoning = ZoningConfig()
        zoning.create_zone("z1", {"a", "b"})
        zoning.delete_zone("z1")
        assert not zoning.ports_zoned_together("a", "b")

    def test_unknown_zone_raises(self):
        with pytest.raises(KeyError):
            ZoningConfig().zone("nope")

    def test_snapshot_sorted(self):
        zoning = ZoningConfig()
        zoning.create_zone("z", {"b", "a"})
        assert zoning.snapshot() == {"z": ["a", "b"]}


class TestLunMapping:
    def test_map_and_query(self):
        lun = LunMapping()
        lun.map_volume("V1", "srv")
        assert lun.is_mapped("V1", "srv")
        assert lun.servers_for("V1") == {"srv"}
        assert lun.volumes_for("srv") == {"V1"}

    def test_unmap(self):
        lun = LunMapping()
        lun.map_volume("V1", "srv")
        lun.unmap_volume("V1", "srv")
        assert not lun.is_mapped("V1", "srv")

    def test_unmapped_empty(self):
        assert LunMapping().servers_for("nope") == set()


class TestAccessControl:
    def test_testbed_db_server_access(self, testbed):
        assert testbed.access.can_access(testbed.topology, "srv-db", "V1")
        assert testbed.access.can_access(testbed.topology, "srv-db", "V2")

    def test_unmapped_volume_denied(self, testbed):
        assert not testbed.access.can_access(testbed.topology, "srv-db", "V3")

    def test_unknown_server_denied(self, testbed):
        assert not testbed.access.can_access(testbed.topology, "ghost", "V1")

    def test_masking_without_zoning_fails(self, testbed):
        # map the volume but remove every zone: ports no longer zoned together
        testbed.access.lun_mapping.map_volume("V3", "srv-db")
        testbed.access.zoning.delete_zone("zone-db")
        assert not testbed.access.can_access(testbed.topology, "srv-db", "V3")

    def test_server_ports_found(self, testbed):
        ports = testbed.access.server_ports(testbed.topology, "srv-db")
        assert {p.component_id for p in ports} == {"hba0-p0", "hba0-p1"}

    def test_snapshot_includes_both_parts(self, testbed):
        snap = testbed.access.snapshot()
        assert "zones" in snap and "lun_mapping" in snap


class TestSanEvents:
    def test_describe_includes_details(self):
        event = SanEvent(
            time=120.0,
            kind=SanEventKind.VOLUME_CREATED,
            component_id="Vx",
            details={"pool": "P1"},
        )
        text = event.describe()
        assert "volume_created" in text and "pool=P1" in text and "Vx" in text

    def test_kinds_cover_scenarios(self):
        kinds = {k.value for k in SanEventKind}
        assert {
            "volume_created",
            "zone_changed",
            "lun_mapped",
            "raid_rebuild_started",
            "volume_perf_degraded",
        } <= kinds
