"""Tests for the SAN topology graph and the canonical testbed."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.san.builder import TopologyBuilder, build_testbed
from repro.san.components import ComponentType, Disk, StoragePool, Volume
from repro.san.topology import SanTopology, TopologyError


class TestBasicGraph:
    def test_add_and_get(self):
        topo = SanTopology()
        topo.add(Disk(component_id="d1", name="d1"))
        assert topo.get("d1").name == "d1"
        assert "d1" in topo
        assert len(topo) == 1

    def test_duplicate_rejected(self):
        topo = SanTopology()
        topo.add(Disk(component_id="d1", name="d1"))
        with pytest.raises(TopologyError):
            topo.add(Disk(component_id="d1", name="other"))

    def test_unknown_get_raises(self):
        with pytest.raises(TopologyError):
            SanTopology().get("nope")

    def test_connect_and_children(self):
        topo = SanTopology()
        topo.add(StoragePool(component_id="p", name="p", subsystem_id="s"))
        topo.add(Disk(component_id="d", name="d", pool_id="p"))
        topo.connect("p", "d")
        assert [c.component_id for c in topo.children("p")] == ["d"]
        assert [c.component_id for c in topo.parents("d")] == ["p"]

    def test_connect_idempotent(self):
        topo = SanTopology()
        topo.add(StoragePool(component_id="p", name="p"))
        topo.add(Disk(component_id="d", name="d"))
        topo.connect("p", "d")
        topo.connect("p", "d")
        assert len(topo.children("p")) == 1

    def test_connect_unknown_raises(self):
        topo = SanTopology()
        topo.add(Disk(component_id="d", name="d"))
        with pytest.raises(TopologyError):
            topo.connect("d", "ghost")

    def test_remove_cleans_edges(self):
        topo = SanTopology()
        topo.add(StoragePool(component_id="p", name="p"))
        topo.add(Disk(component_id="d", name="d"))
        topo.connect("p", "d")
        topo.remove("d")
        assert topo.children("p") == []
        assert "d" not in topo

    def test_disconnect(self):
        topo = SanTopology()
        topo.add(StoragePool(component_id="p", name="p"))
        topo.add(Disk(component_id="d", name="d"))
        topo.connect("p", "d")
        topo.disconnect("p", "d")
        assert topo.children("p") == []


class TestTestbed:
    def test_structure_matches_figure1(self, testbed):
        topo = testbed.topology
        assert {v.component_id for v in topo.volumes} == {"V1", "V2", "V3", "V4"}
        assert {p.component_id for p in topo.pools} == {"P1", "P2"}
        assert len(topo.disks) == 10
        assert len(topo.switches) == 2

    def test_pool_disks(self, testbed):
        topo = testbed.topology
        assert {d.component_id for d in topo.disks_of_pool("P1")} == {
            "d1", "d2", "d3", "d4"
        }
        assert {d.component_id for d in topo.disks_of_pool("P2")} == {
            f"d{i}" for i in range(5, 11)
        }

    def test_volume_disks_default_to_pool(self, testbed):
        disks = testbed.topology.disks_of_volume("V1")
        assert {d.component_id for d in disks} == {"d1", "d2", "d3", "d4"}

    def test_sharing_volumes_on_p2(self, testbed):
        sharing = testbed.topology.volumes_sharing_disks("V2")
        assert {v.component_id for v in sharing} == {"V3", "V4"}

    def test_v1_initially_shares_with_nobody(self, testbed):
        assert testbed.topology.volumes_sharing_disks("V1") == []

    def test_fabric_path(self, testbed):
        path = testbed.topology.fabric_path("srv-db", "V2")
        ids = [c.component_id for c in path]
        assert ids[0] == "srv-db"
        assert ids[-1] == "ds6000"
        assert "fcsw-edge" in ids and "fcsw-core" in ids

    def test_io_path_ends_with_disks(self, testbed):
        path = testbed.topology.io_path("srv-db", "V1")
        ids = [c.component_id for c in path]
        assert "P1" in ids and "V1" in ids
        assert {"d1", "d2", "d3", "d4"} <= set(ids)

    def test_no_path_raises(self, testbed):
        testbed.topology.add(
            Volume(component_id="Vx", name="Vx", pool_id="P1")
        )
        testbed.topology.connect("P1", "Vx")
        with pytest.raises(TopologyError):
            testbed.topology.fabric_path("ghost-server", "Vx")

    def test_subsystem_of_volume(self, testbed):
        assert testbed.topology.subsystem_of_volume("V1").component_id == "ds6000"

    def test_validate_clean(self, testbed):
        assert testbed.topology.validate() == []

    def test_snapshot_shape(self, testbed):
        snap = testbed.topology.snapshot()
        assert "V1" in snap["volume_pools"]
        assert snap["volume_pools"]["V1"] == "P1"
        assert any(e == ("P1", "V1") for e in snap["edges"])

    def test_new_volume_changes_sharing(self, testbed):
        topo = testbed.topology
        topo.add(Volume(component_id="Vprime", name="Vprime", pool_id="P1"))
        topo.connect("P1", "Vprime")
        sharing = {v.component_id for v in topo.volumes_sharing_disks("V1")}
        assert "Vprime" in sharing


class TestBuilder:
    def test_builder_roundtrip(self):
        b = TopologyBuilder()
        b.server("s1").hba("h1", "s1", ports=1).switch("sw1")
        b.subsystem("ss1", ports=1).pool("p1", "ss1")
        b.disks("p1", ["dA", "dB"]).volume("v1", "p1")
        b.cable("h1-p0", "sw1").cable("sw1", "ss1")
        b.zone("z", ["h1-p0", "ss1-p0"]).lun("v1", "s1")
        assert b.topology.validate() == []
        assert b.access.can_access(b.topology, "s1", "v1")

    def test_validate_catches_missing_disks(self):
        b = TopologyBuilder()
        b.subsystem("ss", ports=0).pool("p", "ss").volume("v", "p")
        assert any("no disks" in p for p in b.topology.validate())


class TestProperties:
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_sharing_is_symmetric(self, n_disks, n_volumes):
        b = TopologyBuilder()
        b.subsystem("ss", ports=0).pool("p", "ss")
        b.disks("p", [f"d{i}" for i in range(n_disks)])
        for i in range(n_volumes):
            b.volume(f"v{i}", "p")
        topo = b.topology
        for a in topo.volumes:
            for other in topo.volumes_sharing_disks(a.component_id):
                back = {
                    v.component_id
                    for v in topo.volumes_sharing_disks(other.component_id)
                }
                assert a.component_id in back

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_io_path_visits_each_component_once(self, n_disks):
        b = TopologyBuilder()
        b.server("s").hba("h", "s", ports=1).switch("sw")
        b.subsystem("ss", ports=0).pool("p", "ss")
        b.disks("p", [f"d{i}" for i in range(n_disks)]).volume("v", "p")
        b.cable("h-p0", "sw").cable("sw", "ss")
        path = b.topology.io_path("s", "v")
        ids = [c.component_id for c in path]
        assert len(ids) == len(set(ids))
