"""Tests for the analytical I/O model — the contention mechanics everything
else rides on."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.san.builder import build_testbed
from repro.san.components import Volume
from repro.san.iomodel import IoSimulator, VolumeLoad, scaled


@pytest.fixture
def sim(testbed):
    return IoSimulator(testbed.topology)


class TestVolumeLoad:
    def test_add_merges_iops(self):
        merged = VolumeLoad(read_iops=10) + VolumeLoad(read_iops=5, write_iops=3)
        assert merged.read_iops == 15
        assert merged.write_iops == 3

    def test_add_weights_sequential_fraction(self):
        a = VolumeLoad(read_iops=10, sequential_fraction=1.0)
        b = VolumeLoad(read_iops=10, sequential_fraction=0.0)
        assert (a + b).sequential_fraction == pytest.approx(0.5)

    def test_negative_iops_rejected(self):
        with pytest.raises(ValueError):
            VolumeLoad(read_iops=-1)

    def test_bad_sequential_fraction_rejected(self):
        with pytest.raises(ValueError):
            VolumeLoad(sequential_fraction=1.5)

    def test_scaled(self):
        load = scaled(VolumeLoad(read_iops=10, write_iops=4), 2.0)
        assert load.read_iops == 20 and load.write_iops == 8

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            scaled(VolumeLoad(), -1.0)


class TestLatencyModel:
    def test_quiesced_latency_near_service_time(self, sim):
        sample = sim.quiesced_sample()
        # unloaded: fabric + cache + disk service time, all small
        assert 1.0 < sample.volume_read_latency("V1") < 10.0

    def test_latency_grows_with_load(self, sim):
        low = sim.simulate({"V1": VolumeLoad(read_iops=50)})
        high = sim.simulate({"V1": VolumeLoad(read_iops=500)})
        assert high.volume_read_latency("V1") > low.volume_read_latency("V1")

    def test_latency_bounded_at_saturation(self, sim):
        crazy = sim.simulate({"V1": VolumeLoad(read_iops=1e9)})
        assert crazy.volume_read_latency("V1") < 1e4

    def test_sequential_reads_hit_cache_more(self, sim):
        random = sim.simulate({"V2": VolumeLoad(read_iops=200, sequential_fraction=0.0)})
        seq = sim.simulate({"V2": VolumeLoad(read_iops=200, sequential_fraction=1.0)})
        assert seq.volume_read_latency("V2") < random.volume_read_latency("V2")
        assert seq.get("ds6000", "cacheHitRate") > random.get("ds6000", "cacheHitRate")

    def test_unknown_volume_ignored(self, sim):
        sample = sim.simulate({"ghost": VolumeLoad(read_iops=100)})
        assert sample.volume_read_latency("V1") > 0


class TestContention:
    """The crux: shared disks couple volumes, separate pools do not."""

    def test_shared_disk_contention(self, testbed):
        sim = IoSimulator(testbed.topology)
        testbed.topology.add(Volume(component_id="Vp", name="Vp", pool_id="P1"))
        testbed.topology.connect("P1", "Vp")
        base = sim.simulate({"V1": VolumeLoad(read_iops=50)})
        contended = sim.simulate(
            {"V1": VolumeLoad(read_iops=50), "Vp": VolumeLoad(write_iops=240)}
        )
        assert contended.volume_read_latency("V1") > 3 * base.volume_read_latency("V1")

    def test_cross_pool_isolation(self, sim):
        base = sim.simulate({"V1": VolumeLoad(read_iops=50)})
        loaded = sim.simulate(
            {"V1": VolumeLoad(read_iops=50), "V2": VolumeLoad(write_iops=240)}
        )
        assert loaded.volume_read_latency("V1") == pytest.approx(
            base.volume_read_latency("V1"), rel=0.01
        )

    def test_backend_write_counters_roll_up_shared_traffic(self, testbed):
        """V1's back-end writeIO must reflect V'-bound writes (Table 2)."""
        sim = IoSimulator(testbed.topology)
        testbed.topology.add(Volume(component_id="Vp", name="Vp", pool_id="P1"))
        testbed.topology.connect("P1", "Vp")
        sample = sim.simulate({"Vp": VolumeLoad(write_iops=100)})
        assert sample.get("V1", "writeIO") > 0
        assert sample.get("V1", "frontendWriteIO") == 0.0

    def test_raid_write_penalty_amplifies_backend(self, sim, testbed):
        sample = sim.simulate({"V1": VolumeLoad(write_iops=100)})
        pool = testbed.topology.pool_of_volume("V1")
        backend = sample.get("V1", "writeIO")
        # write-cache absorbs some, RAID5 multiplies the rest by 4
        assert backend > 100.0

    def test_rebuild_degrades_capacity(self, sim):
        base = sim.simulate({"V1": VolumeLoad(read_iops=200)})
        sim.start_rebuild("d1", capacity_factor=0.3)
        degraded = sim.simulate({"V1": VolumeLoad(read_iops=200)})
        sim.finish_rebuild("d1")
        recovered = sim.simulate({"V1": VolumeLoad(read_iops=200)})
        assert degraded.volume_read_latency("V1") > base.volume_read_latency("V1")
        assert recovered.volume_read_latency("V1") == pytest.approx(
            base.volume_read_latency("V1"), rel=0.01
        )

    def test_rebuild_validation(self, sim):
        with pytest.raises(ValueError):
            sim.start_rebuild("d1", capacity_factor=0.0)


class TestMetricsEmission:
    def test_every_volume_gets_core_metrics(self, sim, testbed):
        sample = sim.simulate({"V1": VolumeLoad(read_iops=10)})
        for volume in testbed.topology.volumes:
            for metric in ("readIO", "writeIO", "readTime", "writeTime", "totalIOs"):
                assert (volume.component_id, metric) in sample.values

    def test_disk_metrics(self, sim):
        sample = sim.simulate({"V1": VolumeLoad(read_iops=100)})
        assert sample.get("d1", "iops") > 0
        assert 0.0 <= sample.get("d1", "utilisation") <= 0.95

    def test_pool_rollup(self, sim):
        sample = sim.simulate({"V1": VolumeLoad(read_iops=100)})
        assert sample.get("P1", "totalIOs") > 0
        assert sample.get("P2", "totalIOs") == 0.0

    def test_subsystem_cache_rate(self, sim):
        sample = sim.simulate({"V2": VolumeLoad(read_iops=100, sequential_fraction=1.0)})
        assert sample.get("ds6000", "cacheHitRate") > 0.5

    def test_metrics_for(self, sim):
        sample = sim.simulate({"V1": VolumeLoad(read_iops=10)})
        metrics = sample.metrics_for("V1")
        assert "readTime" in metrics and "writeIO" in metrics


class TestProperties:
    @given(st.floats(min_value=0, max_value=400), st.floats(min_value=0, max_value=400))
    @settings(max_examples=30, deadline=None)
    def test_latency_monotone_in_load(self, a, b):
        testbed = build_testbed()
        sim = IoSimulator(testbed.topology)
        lo, hi = min(a, b), max(a, b)
        low = sim.simulate({"V1": VolumeLoad(read_iops=lo)})
        high = sim.simulate({"V1": VolumeLoad(read_iops=hi)})
        assert (
            high.volume_read_latency("V1") >= low.volume_read_latency("V1") - 1e-9
        )

    @given(st.floats(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_all_metrics_finite_nonnegative(self, iops):
        testbed = build_testbed()
        sim = IoSimulator(testbed.topology)
        sample = sim.simulate({"V2": VolumeLoad(read_iops=iops, write_iops=iops / 2)})
        for value in sample.values.values():
            assert value >= 0.0
            assert value == value  # not NaN
