"""Integration tests: DIADS diagnoses every Table-1 scenario correctly.

These are the paper's headline results — each scenario's ground-truth root
cause must come out on top, with the per-scenario module behaviour Table 1
describes ("Critical Role of DIADS Modules in Diagnosis").
"""

from __future__ import annotations

import pytest

from repro.core.workflow import Diads


def diagnose(scenario_bundle):
    return Diads.from_bundle(scenario_bundle).diagnose(scenario_bundle.query_name)


class TestScenario1SanMisconfiguration:
    def test_root_cause_identified(self, scenario1):
        report = diagnose(scenario1)
        top = report.top_cause
        assert top.match.cause_id == "volume-contention-san-misconfig"
        assert top.match.binding == "V1"
        assert top.match.confidence.value == "high"

    def test_impact_near_total(self, scenario1):
        """Paper: 'an impact score of 99.8% for the high-confidence root
        cause found'."""
        report = diagnose(scenario1)
        assert report.top_cause.impact_pct > 90.0

    def test_pd_and_cr_report_no_changes(self, scenario1):
        report = diagnose(scenario1)
        assert not report.module_result("PD").plans_differ
        assert not report.module_result("CR").data_properties_changed

    def test_cos_matches_paper_structure(self, scenario1):
        """Paper's COS: V1 leaves (O8, O22) + 8 propagated ancestors +
        possibly a noise false positive."""
        cos = report = diagnose(scenario1).module_result("CO").cos
        assert {"O8", "O22"} <= cos
        assert {"O2", "O3", "O6", "O7", "O17", "O18", "O20", "O21"} <= cos
        v2_leaves = {"O4", "O10", "O12", "O14", "O19", "O23", "O25"}
        assert len(cos & v2_leaves) <= 2  # at most noise false positives

    def test_alternative_causes_ranked_lower(self, scenario1):
        report = diagnose(scenario1)
        ids = [rc.match.cause_id for rc in report.ranked_causes]
        assert ids.index("volume-contention-san-misconfig") < ids.index(
            "volume-contention-db-workload"
        )


class TestScenario1BurstVariant:
    """Table 2's second column: extra bursty V2 load must not fool DIADS."""

    def test_still_diagnoses_v1(self, scenario1_burst):
        report = diagnose(scenario1_burst)
        assert report.top_cause.match.cause_id == "volume-contention-san-misconfig"
        assert report.top_cause.match.binding == "V1"

    def test_v2_anomaly_scores_rise_but_stay_below_v1(self, scenario1_burst):
        da = diagnose(scenario1_burst).module_result("DA")
        assert da.score("V1", "writeTime") > da.score("V2", "writeIO")

    def test_v2_leaf_operators_still_mostly_normal(self, scenario1_burst):
        co = diagnose(scenario1_burst).module_result("CO")
        v2_leaves = {"O4", "O10", "O12", "O14", "O19", "O23", "O25"}
        assert len(co.cos & v2_leaves) <= 2


class TestScenario2ExternalWorkloads:
    def test_root_cause(self, scenario2):
        report = diagnose(scenario2)
        assert report.top_cause.match.cause_id == "volume-contention-external-workload"
        assert report.top_cause.match.binding == "V1"

    def test_da_prunes_v2_symptoms(self, scenario2):
        """Table 1: 'DA prunes out the unrelated symptoms and events for
        volume V2.'"""
        report = diagnose(scenario2)
        sd = report.module_result("SD")
        sids = {s.sid for s in sd.symptoms}
        assert "operators-anomalous-volume:V1" in sids
        # V2 has an off-window workload: its operators must stay clean
        co = report.module_result("CO")
        v2_leaves = {"O4", "O10", "O12", "O14", "O19", "O23", "O25"}
        assert len(co.cos & v2_leaves) <= 2

    def test_no_misconfig_false_positive(self, scenario2):
        report = diagnose(scenario2)
        misconfig = report.cause("volume-contention-san-misconfig")
        assert misconfig.match.confidence.value != "high"


class TestScenario3DataPropertyChange:
    def test_root_cause(self, scenario3):
        report = diagnose(scenario3)
        assert report.top_cause.match.cause_id == "data-property-change"

    def test_cr_identifies_symptoms(self, scenario3):
        """Table 1: 'CR identifies the important symptoms'."""
        cr = diagnose(scenario3).module_result("CR")
        assert cr.data_properties_changed
        assert {"O4", "O19"} & cr.crs

    def test_ia_rules_out_volume_contention(self, scenario3):
        """Table 1: 'IA rules out volume contention as a root cause'."""
        report = diagnose(scenario3)
        data_impact = report.cause("data-property-change").impact_pct
        for rc in report.ranked_causes:
            if rc.match.kind == "volume-contention" and rc.impact_pct is not None:
                assert rc.impact_pct < data_impact


class TestScenario4Concurrent:
    def test_both_problems_identified(self, scenario4):
        """Table 1: 'Both problems identified; IA correctly ranks them.'"""
        report = diagnose(scenario4)
        high_ids = {
            rc.match.cause_id
            for rc in report.ranked_causes
            if rc.match.confidence.value == "high"
        }
        assert {"volume-contention-san-misconfig", "data-property-change"} <= high_ids

    def test_impacts_rank_both_causes(self, scenario4):
        report = diagnose(scenario4)
        misconfig = report.cause("volume-contention-san-misconfig").impact_pct
        data = report.cause("data-property-change").impact_pct
        assert misconfig is not None and data is not None
        assert misconfig > 10.0 and data > 10.0


class TestScenario5LockContention:
    def test_root_cause(self, scenario5):
        report = diagnose(scenario5)
        assert report.top_cause.match.cause_id == "lock-contention"
        assert report.top_cause.match.confidence.value == "high"

    def test_volume_contention_low_impact(self, scenario5):
        """Table 1: 'IA identifies volume contention as low impact.'"""
        report = diagnose(scenario5)
        lock_impact = report.cause("lock-contention").impact_pct
        for rc in report.ranked_causes:
            if rc.match.kind == "volume-contention" and rc.impact_pct is not None:
                assert rc.impact_pct < lock_impact

    def test_lock_symptoms_extracted(self, scenario5):
        sd = diagnose(scenario5).module_result("SD")
        sids = {s.sid for s in sd.symptoms}
        assert "lock-wait-anomaly" in sids


class TestScenarioPlanRegression:
    def test_index_drop_pinpointed(self, scenario_pd):
        report = diagnose(scenario_pd)
        assert report.top_cause.match.cause_id == "plan-regression-index-drop"
        pd = report.module_result("PD")
        assert any(
            c.confirmed and c.component == "ix_partsupp_suppkey" for c in pd.causes
        )

    def test_config_change_pinpointed(self, scenario_pd_config):
        report = diagnose(scenario_pd_config)
        assert report.top_cause.match.cause_id == "plan-regression-config-change"


class TestRobustnessObservations:
    """Section 5's bullet-point observations."""

    def test_works_without_symptoms_database(self, scenario1):
        """'DIADS produces good results even when the symptoms database is
        incomplete' — CO/DA alone must still narrow the search to V1."""
        from repro.core.symptoms import SymptomsDatabase

        report = Diads.from_bundle(scenario1, symptoms_db=SymptomsDatabase()).diagnose(
            scenario1.query_name
        )
        da = report.module_result("DA")
        assert "V1" in da.ccs and "V2" not in da.ccs
        co = report.module_result("CO")
        assert {"O8", "O22"} <= co.cos

    def test_diagnosis_stable_across_seeds(self):
        """The headline result must not be a lucky seed."""
        from repro.lab.scenarios import scenario_san_misconfiguration

        for seed in (101, 202):
            bundle = scenario_san_misconfiguration(hours=8.0, seed=seed).run()
            report = Diads.from_bundle(bundle).diagnose(bundle.query_name)
            assert report.top_cause.match.cause_id == "volume-contention-san-misconfig"
            assert report.top_cause.match.binding == "V1"
