"""Cross-cutting invariants, property-tested over randomised configurations.

These guard the contracts the diagnosis pipeline relies on, independent of
any particular scenario: executor accounting identities, environment
determinism, impact-score bounds, config-diff round trips.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modules.impact import self_times
from repro.core.workflow import Diads
from repro.db.executor import Executor
from repro.db.plans import canonical_q2_plan
from repro.db.tpch import build_tpch_catalog
from repro.monitor.configstore import ConfigStore, flatten


class TestExecutorAccounting:
    @given(
        v1=st.floats(min_value=0.5, max_value=80.0),
        v2=st.floats(min_value=0.5, max_value=80.0),
        mult=st.floats(min_value=0.5, max_value=3.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_self_times_partition_duration(self, v1, v2, mult, seed):
        """Σ self times == root inclusive time, for any latencies/data."""
        catalog = build_tpch_catalog()
        executor = Executor(catalog, noise_sigma=0.03)
        plan = canonical_q2_plan()
        run = executor.execute(
            plan,
            0.0,
            {"V1": v1, "V2": v2},
            data_multipliers={"partsupp": mult},
            rng=np.random.default_rng(seed),
        )
        selves = self_times(plan, run)
        assert sum(selves.values()) == pytest.approx(run.duration, rel=1e-9)
        assert all(v >= 0.0 for v in selves.values())

    @given(
        v1=st.floats(min_value=0.5, max_value=80.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_higher_latency_never_speeds_up(self, v1, seed):
        catalog = build_tpch_catalog()
        executor = Executor(catalog, noise_sigma=0.0)
        plan = canonical_q2_plan()
        rng_a, rng_b = np.random.default_rng(seed), np.random.default_rng(seed)
        base = executor.execute(plan, 0.0, {"V1": v1, "V2": 4.0}, rng=rng_a)
        slower = executor.execute(plan, 0.0, {"V1": v1 * 2, "V2": 4.0}, rng=rng_b)
        assert slower.duration >= base.duration - 1e-9

    @given(mult=st.floats(min_value=1.0, max_value=4.0))
    @settings(max_examples=20, deadline=None)
    def test_record_counts_monotone_in_data(self, mult):
        catalog = build_tpch_catalog()
        executor = Executor(catalog, noise_sigma=0.0)
        plan = canonical_q2_plan()
        base = executor.execute(
            plan, 0.0, {"V1": 4.0, "V2": 4.0}, rng=np.random.default_rng(0)
        )
        grown = executor.execute(
            plan,
            0.0,
            {"V1": 4.0, "V2": 4.0},
            data_multipliers={"partsupp": mult},
            rng=np.random.default_rng(0),
        )
        for op_id, count in grown.record_counts().items():
            assert count >= base.record_counts()[op_id] - 1e-9


class TestImpactBounds:
    @pytest.mark.parametrize(
        "fixture_name",
        ["scenario1", "scenario2", "scenario3", "scenario4", "scenario5"],
    )
    def test_impacts_within_bounds_all_scenarios(self, fixture_name, request):
        bundle = request.getfixturevalue(fixture_name)
        report = Diads.from_bundle(bundle).diagnose(bundle.query_name)
        ia = report.module_result("IA")
        assert ia.extra_plan_time > 0
        for score in ia.impacts:
            assert 0.0 <= score.impact_pct <= 100.0

    @pytest.mark.parametrize(
        "fixture_name",
        ["scenario1", "scenario2", "scenario3", "scenario4", "scenario5"],
    )
    def test_exactly_ground_truth_is_top(self, fixture_name, request):
        bundle = request.getfixturevalue(fixture_name)
        report = Diads.from_bundle(bundle).diagnose(bundle.query_name)
        assert report.top_cause.match.cause_id in bundle.info.ground_truth


class TestConfigFlattenProperties:
    nested = st.recursive(
        st.one_of(st.integers(), st.booleans(), st.text(max_size=6)),
        lambda children: st.dictionaries(
            st.text(min_size=1, max_size=5).filter(lambda s: "." not in s),
            children,
            max_size=4,
        ),
        max_leaves=12,
    )

    @given(nested)
    @settings(max_examples=50, deadline=None)
    def test_flatten_leaves_are_scalars(self, value):
        flat = flatten(value)
        for leaf in flat.values():
            assert not isinstance(leaf, (dict, list, tuple))

    @given(nested, nested)
    @settings(max_examples=50, deadline=None)
    def test_diff_empty_iff_equal_flat(self, a, b):
        store = ConfigStore()
        store.take_snapshot(0.0, "s", a if isinstance(a, dict) else {"v": a})
        store.take_snapshot(10.0, "s", b if isinstance(b, dict) else {"v": b})
        changes = store.diff("s", 0.0, 10.0)
        flat_a = flatten(a if isinstance(a, dict) else {"v": a})
        flat_b = flatten(b if isinstance(b, dict) else {"v": b})
        assert (not changes) == (flat_a == flat_b)

    @given(nested)
    @settings(max_examples=30, deadline=None)
    def test_self_diff_empty(self, value):
        store = ConfigStore()
        snapshot = value if isinstance(value, dict) else {"v": value}
        store.take_snapshot(0.0, "s", snapshot)
        store.take_snapshot(5.0, "s", snapshot)
        assert store.diff("s", 0.0, 5.0) == []


class TestEnvironmentDeterminism:
    def test_same_seed_same_diagnosis(self):
        from repro.lab.scenarios import scenario_san_misconfiguration

        reports = []
        for _ in range(2):
            bundle = scenario_san_misconfiguration(hours=6.0, seed=55).run()
            report = Diads.from_bundle(bundle).diagnose(bundle.query_name)
            reports.append(report)
        a, b = reports
        assert a.top_cause.match.display_id == b.top_cause.match.display_id
        assert a.top_cause.impact_pct == pytest.approx(b.top_cause.impact_pct)
        co_a = a.module_result("CO").scores
        co_b = b.module_result("CO").scores
        assert co_a == co_b
