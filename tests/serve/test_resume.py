"""Acceptance: a SIGKILLed-and-restarted server resumes every tenant's
watch, and the histories it produces match an uninterrupted run.

The server runs as a real subprocess (``python -m repro.cli serve``) on a
jsonl state root.  Two tenants watch the same shared-pool fleet under
different seeds; the server is SIGKILLed while both watches are mid-run,
restarted on the same root, and both watches must finish on their own.

Comparison follows the repo's established resume-parity contract
(tests/correlate/test_fleet_correlation.py): the fleet-incident history is
byte-for-byte identical, and per-env incidents are identical on their
deterministic projection (detection-absorption counts under a correlator
are wall-dependent; identity, timing, and reports are not).
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

HOURS = 12.0
# A cooldown spanning the whole watch keeps every incident single-episode,
# which is what makes histories wall-independent (same configuration the
# correlate resume-parity suite relies on).
SPECS = {
    "acme": {
        "scenarios": ["shared-pool-saturation"],
        "hours": HOURS,
        "seed": 7,
        "min_members": 2,
        "chunk_minutes": 30.0,
        "cooldown_minutes": HOURS * 60.0,
    },
    "globex": {
        "scenarios": ["shared-pool-saturation"],
        "hours": HOURS,
        "seed": 13,
        "min_members": 2,
        "chunk_minutes": 30.0,
        "cooldown_minutes": HOURS * 60.0,
    },
}


class ServerProc:
    """A ``repro serve`` subprocess; the bound port comes from serve.json."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.proc: subprocess.Popen | None = None
        self.port: int | None = None

    def start(self, timeout: float = 60.0) -> None:
        manifest = self.root / "serve.json"
        if manifest.exists():
            manifest.unlink()
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--state-root",
                str(self.root),
                "--port",
                "0",
                "--backend",
                "jsonl",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        deadline = time.time() + timeout
        while time.time() < deadline:
            if self.proc.poll() is not None:
                out = self.proc.stdout.read().decode()
                raise AssertionError(f"server exited during startup:\n{out}")
            try:
                data = json.loads(manifest.read_text())
            except (OSError, ValueError):
                data = None
            if data is not None and data.get("pid") == self.proc.pid:
                self.port = data["port"]
                return
            time.sleep(0.05)
        raise AssertionError("server never published serve.json")

    def request(
        self, method: str, path: str, body: dict | None = None, timeout: float = 30.0
    ) -> tuple[int, dict | None]:
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(method, path, body=payload)
            response = conn.getresponse()
            raw = response.read()
            return response.status, (json.loads(raw) if raw else None)
        finally:
            conn.close()

    def wait_watch(self, tenant_id: str, timeout: float = 120.0) -> dict:
        deadline = time.time() + timeout
        while time.time() < deadline:
            status, watch = self.request("GET", f"/v1/tenants/{tenant_id}/watch")
            assert status == 200, (tenant_id, status, watch)
            if watch["state"] in ("done", "failed", "stopped"):
                return watch
            time.sleep(0.05)
        raise AssertionError(f"watch for {tenant_id} never finished: {watch}")

    def sigkill(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def terminate(self) -> None:
        if self.proc is None or self.proc.poll() is not None:
            return
        self.proc.terminate()
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - safety net
            self.proc.kill()
            self.proc.wait(timeout=30)


def _start_all_watches(server: ServerProc) -> None:
    for tenant_id, spec in SPECS.items():
        status, _ = server.request("POST", "/v1/tenants", {"tenant_id": tenant_id})
        assert status == 201
        status, _ = server.request(f"POST", f"/v1/tenants/{tenant_id}/fleets", spec)
        assert status == 201
        status, _ = server.request("POST", f"/v1/tenants/{tenant_id}/watch/start")
        assert status == 200


def _histories(server: ServerProc) -> dict:
    out = {}
    for tenant_id in SPECS:
        status, incidents = server.request(
            "GET", f"/v1/tenants/{tenant_id}/incidents"
        )
        assert status == 200
        status, fleet = server.request(
            "GET", f"/v1/tenants/{tenant_id}/fleet-incidents"
        )
        assert status == 200
        out[tenant_id] = {
            "incidents": json.dumps(
                _incident_projection(incidents["incidents"]), sort_keys=True
            ),
            "fleet": json.dumps(fleet["fleet_incidents"], sort_keys=True),
        }
    return out


def _incident_projection(tickets: list[dict]) -> list[dict]:
    return [
        {
            "incident_id": t["incident_id"],
            "env": t["env"],
            "target": t["target"],
            "state": t["state"],
            "opened_at": t["opened_at"],
            "resolved_at": t["resolved_at"],
            "report": t["report"],
        }
        for t in tickets
    ]


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """Uninterrupted control run in its own state root."""
    server = ServerProc(tmp_path_factory.mktemp("reference"))
    server.start()
    try:
        _start_all_watches(server)
        for tenant_id in SPECS:
            final = server.wait_watch(tenant_id)
            assert final["state"] == "done", (tenant_id, final)
        histories = _histories(server)
    finally:
        server.terminate()
    for tenant_id in SPECS:
        assert histories[tenant_id]["fleet"] != "[]", tenant_id
    return histories


def test_sigkilled_server_resumes_every_watch_identically(tmp_path, reference):
    root = tmp_path / "root"
    server = ServerProc(root)
    server.start()
    try:
        _start_all_watches(server)

        # Kill only once every watch is genuinely mid-run: past its first
        # checkpointed chunk but nowhere near the 12-simulated-hour target.
        deadline = time.time() + 120
        while time.time() < deadline:
            watches = {}
            for tenant_id in SPECS:
                status, watch = server.request(
                    "GET", f"/v1/tenants/{tenant_id}/watch"
                )
                assert status == 200
                watches[tenant_id] = watch
            if all(
                w["state"] == "running" and w["advanced_s"] >= 3600.0
                for w in watches.values()
            ):
                break
            assert not any(
                w["state"] in ("done", "failed") for w in watches.values()
            ), f"watch finished before the kill window: {watches}"
            time.sleep(0.01)
        else:
            raise AssertionError(f"kill window never opened: {watches}")

        server.sigkill()

        # The durable tenant manifest still says both watches are running.
        manifest = json.loads((root / "tenants.json").read_text())
        running = {
            tid: t["watch"]["running"] for tid, t in manifest["tenants"].items()
        }
        assert running == {"acme": True, "globex": True}

        # Restart on the same root: every tenant's watch resumes by itself —
        # no API calls other than polling for completion.
        server = ServerProc(root)
        server.start()
        for tenant_id in SPECS:
            final = server.wait_watch(tenant_id)
            assert final["state"] == "done", (tenant_id, final)
            assert final["advanced_s"] == final["target_s"] == HOURS * 3600.0

        assert _histories(server) == reference
    finally:
        server.terminate()
