"""SSE streaming: framing, resume, catch-up, and slow-client disconnect."""

from __future__ import annotations

import http.client
import json
import time

from repro.serve import sse_frame

FLEET_SPEC = {
    "scenarios": ["shared-pool-saturation"],
    "hours": 2.0,
    "seed": 7,
    "min_members": 2,
    "chunk_minutes": 30.0,
}


def test_sse_frame_format():
    rec = {"t": 1.5, "seq": 7, "event": {"type": "incident_opened", "env": "e"}}
    frame = sse_frame(rec).decode()
    lines = frame.split("\n")
    assert lines[0] == "id: 7"
    assert lines[1] == "event: incident_opened"
    assert lines[2].startswith("data: ")
    assert frame.endswith("\n\n")
    assert json.loads(lines[2][len("data: "):]) == rec


class SseReader:
    """A blocking SSE consumer over http.client; frames parsed eagerly."""

    def __init__(self, server, path: str, headers: dict | None = None) -> None:
        host, port = server.address
        self.conn = http.client.HTTPConnection(host, port, timeout=60)
        self.conn.request("GET", path, headers=headers or {})
        self.response = self.conn.getresponse()
        self._buffer = b""

    def read_frames(self, count: int, timeout: float = 60.0) -> list[dict]:
        """Parse ``count`` data frames (comment-only frames are skipped)."""
        frames: list[dict] = []
        deadline = time.time() + timeout
        while len(frames) < count and time.time() < deadline:
            chunk = self.response.read1(65536)
            if not chunk:
                break
            self._buffer += chunk
            while b"\n\n" in self._buffer:
                raw, self._buffer = self._buffer.split(b"\n\n", 1)
                frame = self._parse(raw.decode())
                if frame is not None:
                    frames.append(frame)
        return frames[:count]

    @staticmethod
    def _parse(raw: str) -> dict | None:
        fields: dict = {}
        for line in raw.split("\n"):
            if line.startswith("id: "):
                fields["id"] = int(line[4:])
            elif line.startswith("event: "):
                fields["event"] = line[7:]
            elif line.startswith("data: "):
                fields["data"] = json.loads(line[6:])
        return fields or None

    def close(self) -> None:
        self.conn.close()


def _run_watch(server, tenant_id: str = "acme", spec: dict = FLEET_SPEC) -> None:
    server.request("POST", "/v1/tenants", {"tenant_id": tenant_id})
    status, _ = server.request(f"POST", f"/v1/tenants/{tenant_id}/fleets", spec)
    assert status == 201
    status, _ = server.request("POST", f"/v1/tenants/{tenant_id}/watch/start")
    assert status == 200


def test_live_stream_sees_incident_events(server):
    _run_watch(server)
    reader = SseReader(server, "/v1/tenants/acme/events")
    try:
        frames = reader.read_frames(10)
        assert len(frames) == 10
        seqs = [f["id"] for f in frames]
        assert seqs == sorted(seqs), "event ids must be monotone"
        assert all(f["data"]["seq"] == f["id"] for f in frames)
    finally:
        reader.close()
    server.wait_watch("acme")
    status, payload = server.request("GET", "/v1/tenants/acme/incidents")
    assert payload["incidents"]


def test_catchup_after_watch_done_and_last_event_id_resume(server):
    _run_watch(server)
    server.wait_watch("acme")

    # Late attach: the whole history is served from the journal.
    reader = SseReader(server, "/v1/tenants/acme/events")
    first = reader.read_frames(5)
    reader.close()
    assert [f["id"] for f in first] == list(range(5))
    incident_types = {f["event"] for f in first}
    assert incident_types <= {
        "watch_started",
        "advanced",
        "incident_opened",
        "diagnosis_started",
        "incident_resolved",
        "fleet_incident_opened",
        "fleet_incident_grew",
        "fleet_incident_resolved",
        "fleet_diagnosis_started",
        "watch_stopped",
    }

    # Resume from seq 2 via Last-Event-ID: replay starts at 3.
    reader = SseReader(
        server, "/v1/tenants/acme/events", headers={"Last-Event-ID": "2"}
    )
    resumed = reader.read_frames(3)
    reader.close()
    assert [f["id"] for f in resumed] == [3, 4, 5]

    # ?after= behaves identically (and wins over the header).
    reader = SseReader(
        server,
        "/v1/tenants/acme/events?after=4",
        headers={"Last-Event-ID": "1"},
    )
    resumed = reader.read_frames(2)
    reader.close()
    assert [f["id"] for f in resumed] == [5, 6]


def test_slow_client_is_kicked_not_buffered():
    """A client whose socket never drains fills its bounded queue and is
    disconnected; the publish path never suspends on it."""
    import asyncio

    from repro.runtime import Scheduler
    from repro.serve.stream import SseBroker

    class StuckWriter:
        """Pathological peer: accepts writes, never drains."""

        def __init__(self) -> None:
            self.closed = False
            self.drains = 0

        def write(self, data: bytes) -> None:
            pass

        async def drain(self) -> None:
            # The greeting frame drains fine (socket buffer empty); every
            # frame after that blocks forever (peer stopped reading).
            self.drains += 1
            if self.drains > 1:
                await asyncio.Event().wait()

        def close(self) -> None:
            self.closed = True

    class FakeLog:
        def __init__(self) -> None:
            self.records: list[dict] = []
            self.last_record: dict | None = None

        @property
        def last_seq(self) -> int:
            return len(self.records) - 1

        def append(self, event: dict) -> None:
            rec = {"t": 0.0, "seq": len(self.records), "event": event}
            self.records.append(rec)
            self.last_record = rec

        def tail(self, after_seq: int = -1):
            return iter([r for r in self.records if r["seq"] > after_seq])

    scheduler = Scheduler()

    async def main() -> tuple:
        broker = SseBroker(scheduler, backlog=2)
        broker.bind(FakeLog())
        writer = StuckWriter()
        pump = scheduler.spawn(broker.attach(writer, after_seq=-1))
        await asyncio.sleep(0)  # let attach register
        assert len(broker.clients) == 1
        (client,) = broker.clients.values()
        # Publish far more than the backlog: offer() must go False and the
        # client must be kicked — publish itself never suspends.
        for i in range(10):
            broker.event_log.append({"type": "tick", "n": i})
            broker.publish()
        await asyncio.wait_for(client.closed.wait(), timeout=5)
        assert client.reason == "slow"
        assert writer.closed
        await asyncio.wait_for(pump, timeout=10)  # detaches and returns
        return client, broker

    client, broker = scheduler.run(main())
    assert broker.clients == {}
