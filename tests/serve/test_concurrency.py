"""Acceptance: 16 tenants create fleets, run watches, and stream SSE from
one server process concurrently."""

from __future__ import annotations

import threading

from .test_sse import SseReader

TENANTS = [f"tenant-{i:02d}" for i in range(16)]

SPEC = {
    "scenarios": ["san-misconfiguration"],
    "hours": 1.0,
    "chunk_minutes": 30.0,
    "seed": 11,
}


def test_sixteen_tenants_watch_and_stream_concurrently(server):
    # Create all tenants + fleets up front, then start every watch; all 16
    # supervisors run as sibling task groups on the one coordination loop.
    for tid in TENANTS:
        status, _ = server.request("POST", "/v1/tenants", {"tenant_id": tid})
        assert status == 201
        status, _ = server.request("POST", f"/v1/tenants/{tid}/fleets", SPEC)
        assert status == 201

    readers = {tid: SseReader(server, f"/v1/tenants/{tid}/events") for tid in TENANTS}
    try:
        for tid in TENANTS:
            status, _ = server.request("POST", f"/v1/tenants/{tid}/watch/start")
            assert status == 200

        # Consume each tenant's stream on its own thread while watches run.
        frames: dict[str, list] = {}
        errors: list = []

        def consume(tid: str) -> None:
            try:
                frames[tid] = readers[tid].read_frames(4, timeout=120)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((tid, exc))

        threads = [threading.Thread(target=consume, args=(tid,)) for tid in TENANTS]
        for thread in threads:
            thread.start()
        for tid in TENANTS:
            final = server.wait_watch(tid, timeout=120)
            assert final["state"] == "done", (tid, final)
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors

        for tid in TENANTS:
            got = frames.get(tid, [])
            assert len(got) == 4, f"{tid} streamed {len(got)} frames"
            seqs = [f["id"] for f in got]
            assert seqs == sorted(seqs)
            # Every streamed record belongs to this tenant's own single-env
            # fleet — identical env names across tenants notwithstanding.
            envs = {f["data"]["event"].get("env") for f in got} - {None}
            assert envs <= {"san-misconfiguration"}, (tid, envs)
    finally:
        for reader in readers.values():
            reader.close()

    # Identical scenarios, isolated histories: every tenant diagnosed its
    # own incident and sees exactly its own tickets.
    for tid in TENANTS:
        status, payload = server.request("GET", f"/v1/tenants/{tid}/incidents")
        assert status == 200
        assert len(payload["incidents"]) == 1
        assert payload["incidents"][0]["env"] == "san-misconfiguration"
