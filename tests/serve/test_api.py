"""REST API end-to-end against a live in-process server."""

from __future__ import annotations


SPEC = {
    "scenarios": ["san-misconfiguration"],
    "hours": 1.0,
    "chunk_minutes": 30.0,
}

FLEET_SPEC = {
    "scenarios": ["shared-pool-saturation"],
    "hours": 2.0,
    "seed": 7,
    "min_members": 2,
    "chunk_minutes": 30.0,
}


def test_healthz_and_scenarios(server):
    status, payload = server.request("GET", "/healthz")
    assert status == 200 and payload["ok"] is True
    status, catalog = server.request("GET", "/v1/scenarios")
    assert status == 200
    assert "san-misconfiguration" in catalog["scenarios"]
    assert "shared-pool-saturation" in catalog["fleet_scenarios"]


def test_tenant_crud(server):
    status, tenant = server.request("POST", "/v1/tenants", {"tenant_id": "acme"})
    assert status == 201
    assert tenant["prefix"] == "t_acme__"
    assert tenant["watch"] == {"state": "none"}

    status, _ = server.request("POST", "/v1/tenants", {"tenant_id": "acme"})
    assert status == 409
    status, _ = server.request("POST", "/v1/tenants", {"tenant_id": "Bad Id"})
    assert status == 400
    status, _ = server.request("POST", "/v1/tenants", {"nope": 1})
    assert status == 400

    status, listing = server.request("GET", "/v1/tenants")
    assert status == 200
    assert [t["tenant_id"] for t in listing["tenants"]] == ["acme"]

    status, got = server.request("GET", "/v1/tenants/acme")
    assert status == 200 and got["tenant_id"] == "acme"
    status, _ = server.request("GET", "/v1/tenants/ghost")
    assert status == 404

    status, deleted = server.request("DELETE", "/v1/tenants/acme")
    assert status == 200 and deleted == {"deleted": "acme"}
    status, _ = server.request("GET", "/v1/tenants/acme")
    assert status == 404


def test_fleet_spec_validation(server):
    server.request("POST", "/v1/tenants", {"tenant_id": "acme"})
    for bad in (
        {"scenarios": []},
        {"scenarios": ["nope"]},
        {"scenarios": ["san-misconfiguration", "san-misconfiguration"]},
        {"scenarios": ["san-misconfiguration"], "hours": -1},
        {"scenarios": ["san-misconfiguration"], "frobnicate": True},
        "not a dict",
    ):
        status, payload = server.request("POST", "/v1/tenants/acme/fleets", bad)
        assert status == 400, bad
        assert "error" in payload

    status, created = server.request("POST", "/v1/tenants/acme/fleets", FLEET_SPEC)
    assert status == 201
    assert created["spec"]["seed"] == 7
    assert len(created["members"]) == 8  # the shared pool's member envs


def test_watch_lifecycle_and_history(server):
    server.request("POST", "/v1/tenants", {"tenant_id": "acme"})

    # No fleet yet: starting is a conflict.
    status, _ = server.request("POST", "/v1/tenants/acme/watch/start")
    assert status == 409

    status, _ = server.request("POST", "/v1/tenants/acme/fleets", FLEET_SPEC)
    assert status == 201
    status, watch = server.request("GET", "/v1/tenants/acme/watch")
    assert status == 200 and watch["state"] == "idle"

    status, started = server.request("POST", "/v1/tenants/acme/watch/start")
    assert status == 200
    assert started["state"] in ("pending", "running", "done")

    # Double-start and fleet replacement while running are conflicts
    # (unless the tiny watch already finished).
    status, _ = server.request("POST", "/v1/tenants/acme/watch/start")
    assert status in (409, 200)

    final = server.wait_watch("acme")
    assert final["state"] == "done"
    assert final["advanced_s"] == final["target_s"] == 7200.0

    status, payload = server.request("GET", "/v1/tenants/acme/incidents")
    assert status == 200
    incidents = payload["incidents"]
    assert incidents, "the saturation fleet must open incidents"
    assert all(t["env"].startswith("pool-env-") for t in incidents)

    status, payload = server.request("GET", "/v1/tenants/acme/fleet-incidents")
    assert status == 200
    fleet_incidents = payload["fleet_incidents"]
    assert fleet_incidents, "correlated saturation must form a fleet incident"
    assert fleet_incidents[0]["component_id"] == "P1"

    # Filters pass through to the store queries.
    status, payload = server.request(
        "GET", "/v1/tenants/acme/incidents?env=pool-env-00"
    )
    assert status == 200
    assert all(t["env"] == "pool-env-00" for t in payload["incidents"])
    status, _ = server.request("GET", "/v1/tenants/acme/incidents?since=nope")
    assert status == 400

    # Stopping a finished watch is a conflict, not a crash.
    status, _ = server.request("POST", "/v1/tenants/acme/watch/stop")
    assert status == 409


def test_stop_running_watch(server):
    server.request("POST", "/v1/tenants", {"tenant_id": "acme"})
    spec = dict(FLEET_SPEC, hours=500.0)  # long enough to still be running
    server.request("POST", "/v1/tenants/acme/fleets", spec)
    status, _ = server.request("POST", "/v1/tenants/acme/watch/start")
    assert status == 200
    status, stopped = server.request(
        "POST", "/v1/tenants/acme/watch/stop", timeout=60.0
    )
    assert status == 200
    assert stopped["state"] == "stopped"
    assert 0.0 < stopped["advanced_s"] < 500.0 * 3600.0
    # A stopped watch can be restarted; it picks up from its checkpoint.
    status, restarted = server.request("POST", "/v1/tenants/acme/watch/start")
    assert status == 200


def test_incident_history_of_unknown_tenant_is_404(server):
    status, _ = server.request("GET", "/v1/tenants/ghost/incidents")
    assert status == 404
    status, _ = server.request("GET", "/v1/tenants/ghost/events")
    assert status == 404
