"""The hand-rolled HTTP layer: router semantics and wire-level parsing."""

from __future__ import annotations

import socket

import pytest

from repro.serve.http import HttpError, Request, Response, Router


# ---------------------------------------------------------------------------
# router
# ---------------------------------------------------------------------------
async def _ok(request):  # pragma: no cover - never awaited here
    return Response(200)


def test_router_matches_literals_and_params():
    router = Router()
    router.add("GET", "/v1/tenants", _ok)
    router.add("GET", "/v1/tenants/{tenant_id}/watch", _ok)
    handler, params = router.resolve("GET", "/v1/tenants")
    assert params == {}
    handler, params = router.resolve("GET", "/v1/tenants/acme/watch")
    assert params == {"tenant_id": "acme"}


def test_router_unescapes_params():
    router = Router()
    router.add("GET", "/v1/tenants/{tenant_id}", _ok)
    _, params = router.resolve("GET", "/v1/tenants/a%2Fb")
    assert params == {"tenant_id": "a/b"}


def test_router_404_vs_405():
    router = Router()
    router.add("GET", "/v1/tenants", _ok)
    with pytest.raises(HttpError) as excinfo:
        router.resolve("POST", "/v1/tenants")
    assert excinfo.value.status == 405
    with pytest.raises(HttpError) as excinfo:
        router.resolve("GET", "/nope")
    assert excinfo.value.status == 404


def test_request_json_errors_are_400():
    request = Request("POST", "/x", {}, {}, b"not json")
    with pytest.raises(HttpError) as excinfo:
        request.json()
    assert excinfo.value.status == 400
    with pytest.raises(HttpError) as excinfo:
        Request("POST", "/x", {}, {}, b"").json()
    assert excinfo.value.status == 400


def test_response_encoding_sets_length_and_close():
    head, body = Response(200, {"a": 1}).encode()
    text = head.decode()
    assert text.startswith("HTTP/1.1 200 OK\r\n")
    assert f"Content-Length: {len(body)}" in text
    assert "Connection: close" in text
    assert "Content-Type: application/json" in text
    assert body == b'{"a": 1}\n'


# ---------------------------------------------------------------------------
# wire level, against a live server
# ---------------------------------------------------------------------------
def _raw(server, payload: bytes, timeout: float = 10.0) -> bytes:
    host, port = server.address
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def test_malformed_request_line_is_400(server):
    assert b"400 Bad Request" in _raw(server, b"GARBAGE\r\n\r\n")


def test_query_strings_and_unknown_paths(server):
    raw = _raw(server, b"GET /nope?x=1 HTTP/1.1\r\nHost: t\r\n\r\n")
    assert b"404 Not Found" in raw
    assert b"no such resource" in raw


def test_oversized_body_is_413(server):
    headers = b"POST /v1/tenants HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n"
    assert b"413" in _raw(server, headers)


def test_bad_content_length_is_400(server):
    raw = _raw(server, b"POST /v1/tenants HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
    assert b"400 Bad Request" in raw


def test_healthz_over_raw_socket(server):
    raw = _raw(server, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
    assert b"200 OK" in raw
    assert b'"ok": true' in raw
