"""Fixtures for the serve suite: a real server on a real socket.

The server runs exactly as production does — ``ServeApp.serve_forever`` on
its own thread (tests are outside ``src/``, so the executor-discipline lint
does not apply), binding port 0 and exposing a tiny JSON request helper.
"""

from __future__ import annotations

import json
import http.client
import threading
import time

import pytest

from repro.serve import ServeApp


class ServeHandle:
    """One running server + a blocking JSON client against it."""

    def __init__(self, app: ServeApp, thread: threading.Thread) -> None:
        self.app = app
        self.thread = thread

    @property
    def address(self) -> tuple[str, int]:
        assert self.app.bound is not None
        return self.app.bound

    def request(
        self,
        method: str,
        path: str,
        body: dict | list | None = None,
        headers: dict | None = None,
        timeout: float = 30.0,
    ) -> tuple[int, dict | list | None]:
        host, port = self.address
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            conn.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers=headers or {},
            )
            response = conn.getresponse()
            raw = response.read()
            return response.status, json.loads(raw) if raw else None
        finally:
            conn.close()

    def wait_watch(
        self, tenant_id: str, states=("done", "failed", "stopped"), timeout: float = 60.0
    ) -> dict:
        deadline = time.time() + timeout
        while time.time() < deadline:
            status, payload = self.request("GET", f"/v1/tenants/{tenant_id}/watch")
            assert status == 200
            if payload["state"] in states:
                return payload
            time.sleep(0.05)
        raise AssertionError(f"watch for {tenant_id!r} never reached {states}")

    def stop(self) -> None:
        self.app.stop()
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "server thread failed to stop"


def start_server(state_root, *, backend: str = "memory", **app_kwargs) -> ServeHandle:
    app = ServeApp(state_root, backend=backend, **app_kwargs)
    thread = threading.Thread(
        target=app.serve_forever, args=("127.0.0.1", 0), daemon=True
    )
    thread.start()
    deadline = time.time() + 30
    while app.bound is None:
        assert time.time() < deadline, "server never bound"
        assert thread.is_alive(), "server thread died during startup"
        time.sleep(0.01)
    return ServeHandle(app, thread)


@pytest.fixture
def make_incident():
    """Minimal Incident factory for store-level isolation tests."""
    from repro.stream import Incident
    from repro.stream.detectors import Detection

    def build(incident_id: str, *, env: str = "env-0", opened_at: float = 0.0):
        return Incident(
            incident_id=incident_id,
            env_name=env,
            key=(env, "V1/readTime"),
            opened_at=opened_at,
            detections=[
                Detection(
                    time=opened_at,
                    detector="ewma-drift",
                    target="V1/readTime",
                    value=10.0,
                    expected=5.0,
                    magnitude=1.5,
                    kind="drift",
                )
            ],
        )

    return build


@pytest.fixture
def server(tmp_path):
    handle = start_server(tmp_path / "root")
    yield handle
    handle.stop()


@pytest.fixture
def jsonl_server(tmp_path):
    handle = start_server(tmp_path / "root", backend="jsonl")
    yield handle
    handle.stop()
