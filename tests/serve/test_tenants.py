"""Tenant registry: ids, prefixes, and the durable manifest."""

from __future__ import annotations

import json

import pytest

from repro.serve import Tenant, TenantRegistry
from repro.storage import MemoryBackend
from repro.storage.prefix import PrefixedBackend


@pytest.fixture
def registry(tmp_path):
    return TenantRegistry(tmp_path / "root", MemoryBackend())


def test_create_assigns_prefix_and_persists(registry):
    tenant = registry.create("acme")
    assert tenant.prefix == "t_acme__"
    assert registry.manifest_path.exists()
    data = json.loads(registry.manifest_path.read_text())
    assert data["tenants"]["acme"]["prefix"] == "t_acme__"
    assert "acme" in registry
    assert len(registry) == 1


@pytest.mark.parametrize(
    "bad", ["", "Acme", "a space", "-leading", "_leading", "a" * 33, "a/b", "a.b"]
)
def test_invalid_tenant_ids_rejected(registry, bad):
    with pytest.raises(ValueError):
        registry.create(bad)


def test_duplicate_tenant_rejected(registry):
    registry.create("acme")
    with pytest.raises(ValueError, match="already exists"):
        registry.create("acme")


def test_get_unknown_raises_keyerror(registry):
    with pytest.raises(KeyError):
        registry.get("ghost")


def test_list_orders_by_creation(registry):
    for tid in ("zeta", "alpha", "mid"):
        registry.create(tid)
    assert [t.tenant_id for t in registry.list()] == ["zeta", "alpha", "mid"]


def test_manifest_survives_reload(tmp_path):
    backend = MemoryBackend()
    registry = TenantRegistry(tmp_path / "root", backend)
    registry.create("acme")
    registry.set_watch("acme", {"spec": {"scenarios": ["x"]}, "running": True})
    registry.create("globex")

    reloaded = TenantRegistry(tmp_path / "root", backend)
    assert {t.tenant_id for t in reloaded.list()} == {"acme", "globex"}
    assert reloaded.get("acme").watch == {
        "spec": {"scenarios": ["x"]},
        "running": True,
    }
    # Creation sequence continues across reloads: a recreated id gets a new seq.
    fresh = reloaded.create("initech")
    assert fresh.created_seq > reloaded.get("globex").created_seq


def test_delete_removes_tenant_and_state_dir(tmp_path):
    registry = TenantRegistry(tmp_path / "root", MemoryBackend())
    tenant = registry.create("acme")
    state_dir = registry.tenant_dir(tenant)
    (state_dir / "checkpoint.json").write_text("{}")
    registry.delete("acme")
    assert "acme" not in registry
    assert not state_dir.exists()
    with pytest.raises(KeyError):
        registry.delete("acme")


def test_backend_for_is_a_prefixed_view(registry):
    tenant = registry.create("acme")
    view = registry.backend_for(tenant)
    assert isinstance(view, PrefixedBackend)
    assert view.prefix == "t_acme__"
    assert view.inner is registry.shared_backend


def test_tenant_roundtrip():
    tenant = Tenant(
        tenant_id="acme",
        prefix="t_acme__",
        created_seq=3,
        watch={"spec": {"scenarios": []}, "running": False},
    )
    assert Tenant.from_dict(tenant.to_dict()) == tenant
