"""Service telemetry surface: Prometheus exposition and /healthz contract."""

from __future__ import annotations

import http.client

from repro.obs.prometheus import CONTENT_TYPE

SPEC = {
    "scenarios": ["san-misconfiguration"],
    "hours": 1.0,
    "chunk_minutes": 30.0,
}


def raw_request(server, method: str, path: str) -> tuple[int, dict, bytes]:
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        conn.request(method, path)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def test_metrics_json_stays_default(server):
    status, payload = server.request("GET", "/metrics")
    assert status == 200
    assert "pool" in payload and "metrics" in payload
    # Telemetry refresh runs at scrape time: the fleet gauge is present
    # even before any watch has started.
    assert payload["metrics"]["gauges"]["serve.tenants"] == 0.0


def test_metrics_prometheus_format(server):
    server.request("POST", "/v1/tenants", {"tenant_id": "acme"})
    status, headers, body = raw_request(server, "GET", "/metrics?format=prometheus")
    assert status == 200
    assert headers["Content-Type"] == CONTENT_TYPE
    text = body.decode("utf-8")
    assert "# TYPE repro_serve_tenants gauge" in text
    assert "repro_serve_tenants 1" in text
    # Every sample line parses as `name[{labels}] value`.
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        float(line.rsplit(" ", 1)[1])


def test_per_tenant_gauges_after_watch(server):
    server.request("POST", "/v1/tenants", {"tenant_id": "acme"})
    status, _ = server.request("POST", "/v1/tenants/acme/fleets", SPEC)
    assert status == 201
    status, _ = server.request("POST", "/v1/tenants/acme/watch/start")
    assert status == 200
    server.wait_watch("acme")
    _, _, body = raw_request(server, "GET", "/metrics?format=prometheus")
    text = body.decode("utf-8")
    # The session's watch-health gauges carry the tenant label.
    assert 'repro_clock_skew_s{tenant="acme"}' in text
    assert 'repro_inflight_diagnoses{tenant="acme"}' in text
    # Request counters are tenant-tagged by the dispatcher.
    assert 'repro_requests{tenant="acme"}' in text


def test_healthz_liveness_and_readiness(server):
    status, payload = server.request("GET", "/healthz")
    assert status == 200 and payload["ok"] is True

    # No sessions: ready.
    status, payload = server.request("GET", "/healthz?ready=1")
    assert status == 200 and payload.get("ready") is True

    # A session still hydrating (or wedged) makes the server not-ready —
    # 503 so a load balancer stops routing, while plain liveness stays 200.
    class _FakeSession:
        state = "pending"

    server.app.sessions["ghost"] = _FakeSession()
    try:
        status, payload = server.request("GET", "/healthz?ready=1")
        assert status == 503
        assert payload["ok"] is False
        assert payload["not_ready"] == {"pending": 1}
        status, _ = server.request("GET", "/healthz")
        assert status == 200
    finally:
        server.app.sessions.pop("ghost", None)
