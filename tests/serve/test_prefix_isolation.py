"""Per-tenant keyspace isolation over one shared backend.

Two tenants run the *same* scenario with the *same* environment names under
one state root; every read through one tenant's view must see only that
tenant's records — on every durable backend plus the in-memory one.
"""

from __future__ import annotations

import pytest

from repro.correlate import FleetIncidentStore
from repro.serve import TenantRegistry
from repro.storage import JsonlBackend, MemoryBackend, SqliteBackend
from repro.stream import FleetEventLog, IncidentStore


def _open_backend(kind: str, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    if kind == "jsonl":
        return JsonlBackend(tmp_path / "shared")
    return SqliteBackend(tmp_path / "shared.db")


BACKENDS = ("memory", "jsonl", "sqlite")


@pytest.mark.parametrize("kind", BACKENDS)
def test_event_logs_are_isolated(kind, tmp_path):
    shared = _open_backend(kind, tmp_path)
    registry = TenantRegistry(tmp_path / "root", shared)
    acme = registry.backend_for(registry.create("acme"))
    globex = registry.backend_for(registry.create("globex"))

    log_a = FleetEventLog(acme)
    log_b = FleetEventLog(globex)
    # Identical env names, identical event shapes — only the prefix differs.
    for i in range(5):
        log_a.append({"type": "tick", "env": "env-0", "n": i, "tenant": "acme"})
    for i in range(3):
        log_b.append({"type": "tick", "env": "env-0", "n": i, "tenant": "globex"})

    got_a = list(log_a.tail(-1))
    got_b = list(log_b.tail(-1))
    assert [r["event"]["tenant"] for r in got_a] == ["acme"] * 5
    assert [r["event"]["tenant"] for r in got_b] == ["globex"] * 3
    # Sequences are per-tenant, each starting from zero.
    assert [r["seq"] for r in got_a] == list(range(5))
    assert [r["seq"] for r in got_b] == list(range(3))
    shared.close()


@pytest.mark.parametrize("kind", BACKENDS)
def test_incident_stores_are_isolated(kind, tmp_path, make_incident):
    shared = _open_backend(kind, tmp_path)
    registry = TenantRegistry(tmp_path / "root", shared)
    acme = registry.backend_for(registry.create("acme"))
    globex = registry.backend_for(registry.create("globex"))

    store_a = IncidentStore(acme)
    store_b = IncidentStore(globex)
    # Same incident id, same env name — only the tenant prefix differs.
    incident_a = make_incident("INC-1", env="env-0", opened_at=10.0)
    incident_b = make_incident("INC-1", env="env-0", opened_at=20.0)
    store_a.record("open", incident_a, 10.0)
    store_b.record("open", incident_b, 20.0)

    assert [t["opened_at"] for t in store_a.history()] == [10.0]
    assert [t["opened_at"] for t in store_b.history()] == [20.0]

    # Fresh stores over fresh views fold only their own journal (durable
    # backends replay from storage; memory folds live).
    fresh_a = IncidentStore(registry.backend_for(registry.get("acme")))
    if getattr(shared, "durable", False):
        assert [t["opened_at"] for t in fresh_a.history()] == [10.0]
    shared.close()


@pytest.mark.parametrize("kind", BACKENDS)
def test_keyspace_listing_is_scoped(kind, tmp_path):
    shared = _open_backend(kind, tmp_path)
    registry = TenantRegistry(tmp_path / "root", shared)
    acme = registry.backend_for(registry.create("acme"))
    globex = registry.backend_for(registry.create("globex"))

    FleetEventLog(acme).append({"type": "tick"})
    log_b = FleetEventLog(globex)
    log_b.append({"type": "tick"})
    FleetIncidentStore(globex)  # query-only store: no keyspace until written

    assert acme.keyspaces() == [FleetEventLog.KEYSPACE]
    assert globex.keyspaces() == [FleetEventLog.KEYSPACE]
    # The shared backend sees both tenants' prefixed keyspaces side by side.
    names = set(shared.keyspaces())
    assert f"t_acme__{FleetEventLog.KEYSPACE}" in names
    assert f"t_globex__{FleetEventLog.KEYSPACE}" in names
    shared.close()
