"""DiagnosisBundle.save/load round trip + durable environment stores."""

from __future__ import annotations

import json

import pytest

from repro.core import Diads
from repro.core.serialize import report_to_dict
from repro.lab.environment import DiagnosisBundle, Environment
from repro.lab.scenarios import scenario_san_misconfiguration
from repro.storage import TelemetryStore


@pytest.fixture(scope="module")
def scenario_bundle():
    return scenario_san_misconfiguration(hours=6.0).run()


class TestBundleSaveLoad:
    def test_round_trip_preserves_views(self, tmp_path, scenario_bundle):
        bundle = scenario_bundle.bundle
        bundle.save(tmp_path / "b")
        loaded = DiagnosisBundle.load(tmp_path / "b")

        key = bundle.stores.metrics.keys()[0]
        assert loaded.stores.metrics.series(*key) == bundle.stores.metrics.series(*key)
        assert [r.run_id for r in loaded.stores.runs.runs()] == [
            r.run_id for r in bundle.stores.runs.runs()
        ]
        assert [r.satisfactory for r in loaded.stores.runs.runs()] == [
            r.satisfactory for r in bundle.stores.runs.runs()
        ]
        assert len(loaded.stores.events.events) == len(bundle.stores.events.events)
        assert loaded.catalog.snapshot() == bundle.catalog.snapshot()
        assert loaded.initial_catalog.snapshot() == bundle.initial_catalog.snapshot()
        assert loaded.db_config == bundle.db_config
        assert loaded.query_names == bundle.query_names
        assert set(loaded.query_specs) == set(bundle.query_specs)
        assert loaded.topology.snapshot() == bundle.topology.snapshot()

    def test_loaded_bundle_diagnoses_identically(self, tmp_path, scenario_bundle):
        bundle = scenario_bundle.bundle
        query = scenario_bundle.query_name
        bundle.save(tmp_path / "b")
        loaded = DiagnosisBundle.load(tmp_path / "b")

        original = report_to_dict(Diads.from_bundle(bundle).diagnose(query))
        restored = report_to_dict(Diads.from_bundle(loaded).diagnose(query))
        assert json.dumps(original, sort_keys=True) == json.dumps(
            restored, sort_keys=True
        )
        assert original["causes"], "scenario should produce ranked causes"

    def test_save_refuses_overwrite_unless_asked(self, tmp_path, scenario_bundle):
        bundle = scenario_bundle.bundle
        bundle.save(tmp_path / "b")
        with pytest.raises(FileExistsError):
            bundle.save(tmp_path / "b")
        bundle.save(tmp_path / "b", overwrite=True)  # replaces cleanly
        loaded = DiagnosisBundle.load(tmp_path / "b")
        assert len(loaded.stores.runs.runs()) == len(bundle.stores.runs.runs())


class TestEnvironmentWithDurableStores:
    def test_injected_telemetry_store_records_and_reopens(self, tmp_path):
        from repro.db.tpch import build_tpch_catalog
        from repro.san.builder import build_testbed

        stores = TelemetryStore.open(tmp_path / "tel", seed=11)
        env = Environment(
            testbed=build_testbed(),
            catalog=build_tpch_catalog(),
            seed=11,
            stores=stores,
        )
        env.advance(1800.0)
        key = stores.metrics.keys()[0]
        before = stores.metrics.series(*key)
        assert before, "environment should have recorded telemetry"
        stores.close()

        reopened = TelemetryStore.open(tmp_path / "tel", seed=11)
        assert reopened.metrics.series(*key) == before
        assert reopened.config.scopes() == stores.config.scopes()
        reopened.close()
