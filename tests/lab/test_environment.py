"""Tests for the environment orchestration and fault injector."""

from __future__ import annotations

import pytest

from repro.db.plans import canonical_q2_plan
from repro.db.tpch import build_tpch_catalog
from repro.lab.environment import Environment
from repro.lab.faults import FaultInjector
from repro.lab.workloads import QueryJob
from repro.san.builder import build_testbed


def small_env(seed=1, **kw) -> Environment:
    env = Environment(
        testbed=build_testbed(),
        catalog=build_tpch_catalog(),
        seed=seed,
        **kw,
    )
    env.add_job(
        QueryJob(
            name="q2-report",
            period_s=1800.0,
            first_run_s=600.0,
            pinned_plan=canonical_q2_plan(),
        )
    )
    return env


HOURS_2 = 2 * 3600.0


class TestRunLoop:
    def test_runs_recorded_on_schedule(self):
        env = small_env()
        bundle = env.run(HOURS_2)
        runs = bundle.stores.runs.runs("q2-report")
        assert len(runs) == 4  # 600, 2400, 4200, 6000
        assert [r.start_time for r in runs] == [600.0, 2400.0, 4200.0, 6000.0]

    def test_metrics_collected_every_tick(self):
        env = small_env()
        bundle = env.run(HOURS_2)
        series = bundle.stores.metrics.series("V1", "readTime")
        assert len(series) == pytest.approx(HOURS_2 / 300.0, abs=2)

    def test_config_snapshot_taken_at_start(self):
        env = small_env()
        bundle = env.run(HOURS_2)
        assert bundle.stores.config.snapshot_at("db_catalog", 1.0) is not None
        assert bundle.stores.config.snapshot_at("san", 1.0) is not None

    def test_deterministic_given_seed(self):
        a = small_env(seed=5).run(HOURS_2)
        b = small_env(seed=5).run(HOURS_2)
        da = [r.duration for r in a.stores.runs.runs("q2-report")]
        db = [r.duration for r in b.stores.runs.runs("q2-report")]
        assert da == db

    def test_seed_changes_outcomes(self):
        a = small_env(seed=5).run(HOURS_2)
        b = small_env(seed=6).run(HOURS_2)
        da = [r.duration for r in a.stores.runs.runs("q2-report")]
        db = [r.duration for r in b.stores.runs.runs("q2-report")]
        assert da != db

    def test_bundle_exposes_query_specs(self):
        bundle = small_env().run(HOURS_2)
        assert bundle.query_names == ["q2-report"]
        assert bundle.query_specs["q2-report"] is None  # pinned plan job

    def test_server_metrics_present(self):
        bundle = small_env().run(HOURS_2)
        assert ("srv-db", "cpuUsagePct") in bundle.stores.metrics.keys()


class TestFaults:
    def test_san_misconfiguration_mutates_topology_and_logs(self):
        env = small_env()
        FaultInjector(env).san_misconfiguration(at=1800.0)
        bundle = env.run(HOURS_2)
        assert "Vprime" in bundle.topology
        kinds = {e.kind for e in bundle.stores.events.events}
        assert {"volume_created", "zone_changed", "lun_mapped"} <= kinds
        # config snapshot refreshed after the change
        assert bundle.stores.config.diff("san", 0.0, 1900.0)

    def test_misconfiguration_slows_query(self):
        env = small_env()
        FaultInjector(env).san_misconfiguration(at=3600.0)
        bundle = env.run(HOURS_2)
        runs = bundle.stores.runs.runs("q2-report")
        before = [r.duration for r in runs if r.start_time < 3600.0]
        after = [r.duration for r in runs if r.start_time > 3600.0]
        assert min(after) > 1.5 * max(before)

    def test_degradation_trigger_event_emitted(self):
        env = small_env()
        FaultInjector(env).san_misconfiguration(at=1800.0)
        bundle = env.run(HOURS_2)
        assert bundle.stores.events.of_kind("volume_perf_degraded")

    def test_data_property_change(self):
        env = small_env()
        FaultInjector(env).data_property_change(at=3600.0, table="partsupp", multiplier=1.5)
        bundle = env.run(HOURS_2)
        runs = bundle.stores.runs.runs("q2-report")
        before = [r for r in runs if r.start_time < 3600.0][-1]
        after = [r for r in runs if r.start_time > 3600.0][-1]
        assert after.record_counts()["O4"] == pytest.approx(
            1.5 * before.record_counts()["O4"], rel=0.01
        )
        assert bundle.stores.events.of_kind("dml_batch")

    def test_data_change_with_stats_update_changes_catalog(self):
        env = small_env()
        FaultInjector(env).data_property_change(
            at=1800.0, table="partsupp", multiplier=2.0, update_stats=True
        )
        bundle = env.run(HOURS_2)
        assert bundle.catalog.table("partsupp").row_count == 1_600_000
        assert bundle.stores.events.of_kind("stats_updated")

    def test_lock_contention_adds_wait(self):
        env = small_env()
        FaultInjector(env).lock_contention(
            at=3600.0, table="supplier", mean_wait_s=2.0, until=HOURS_2
        )
        bundle = env.run(HOURS_2)
        runs = bundle.stores.runs.runs("q2-report")
        after = [r for r in runs if r.start_time > 3600.0]
        assert any(r.db_metrics["lockWaitTime"] > 0 for r in after)

    def test_raid_rebuild_start_and_finish(self):
        env = small_env()
        FaultInjector(env).raid_rebuild(at=600.0, disk_id="d1", duration_s=1200.0)
        bundle = env.run(HOURS_2)
        kinds = [e.kind for e in bundle.stores.events.events]
        assert "raid_rebuild_started" in kinds and "raid_rebuild_finished" in kinds
        assert env.iosim.rebuilding_disks == set()

    def test_drop_index_logged_and_applied(self):
        env = small_env()
        FaultInjector(env).drop_index(at=600.0, index_name="ix_partsupp_suppkey")
        bundle = env.run(HOURS_2)
        assert not bundle.catalog.has_index("ix_partsupp_suppkey")
        assert bundle.stores.events.of_kind("index_dropped")

    def test_config_change_applied(self):
        env = small_env()
        FaultInjector(env).change_db_config(at=600.0, random_page_cost=40.0)
        bundle = env.run(HOURS_2)
        assert bundle.db_config.random_page_cost == 40.0
        assert bundle.initial_config.random_page_cost == 4.0


class TestAdvanceClock:
    """Incremental advance(): continuous clock, bounded tick overshoot."""

    def _env(self):
        from repro.db.plans import canonical_q2_plan
        from repro.db.tpch import build_tpch_catalog
        from repro.lab.environment import Environment
        from repro.lab.workloads import QueryJob
        from repro.san.builder import build_testbed

        env = Environment(testbed=build_testbed(), catalog=build_tpch_catalog())
        env.add_job(
            QueryJob(
                name="q", period_s=1800.0, first_run_s=600.0,
                pinned_plan=canonical_q2_plan(),
            )
        )
        return env

    def test_fractional_chunks_do_not_compound_drift(self):
        env = self._env()
        for _ in range(86):
            env.advance(42.0)
        # 86 * 42 = 3612 requested; overshoot bounded by one tick.
        assert 3612.0 <= env.clock <= 3612.0 + env.tick_s

    def test_restarting_the_clock_is_rejected(self):
        env = self._env()
        env.run(3600.0)
        with pytest.raises(ValueError):
            env.run(3600.0, start_s=10800.0)

    def test_continuing_at_current_clock_is_allowed(self):
        env = self._env()
        env.run(3600.0)
        env.run(3600.0, start_s=3600.0)  # seed-style two-phase run
        assert env.clock == 7200.0

    def test_advance_chunks_yields_at_boundaries_and_matches_one_shot(self):
        """The cooperative generator: same timeline as a single advance,
        control returned after every (clamped) chunk."""
        chunked = self._env()
        clocks = list(chunked.advance_chunks(3900.0, 1800.0))
        assert clocks == [1800.0, 3600.0, 3900.0]  # final chunk clamped
        one_shot = self._env()
        one_shot.advance(3900.0)
        runs_a = [(r.run_id, r.duration) for r in chunked.stores.runs.runs()]
        runs_b = [(r.run_id, r.duration) for r in one_shot.stores.runs.runs()]
        assert runs_a == runs_b and chunked.clock == one_shot.clock
        with pytest.raises(ValueError):
            list(self._env().advance_chunks(100.0, 0.0))

    def test_advance_is_serialised_across_threads(self):
        """Re-entrancy guard: concurrent advance() calls queue on the
        per-environment lock instead of interleaving simulation ticks."""
        import threading

        env = self._env()
        errors = []

        def worker():
            try:
                for _ in range(5):
                    env.advance(600.0)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # 4 workers x 5 chunks x 600 s, every tick simulated exactly once
        assert env.clock == 4 * 5 * 600.0
