"""Tests for workload definitions."""

from __future__ import annotations

import math

import pytest

from repro.db.plans import canonical_q2_plan
from repro.db.query import simple_report_query
from repro.lab.workloads import ExternalWorkload, QueryJob
from repro.san.iomodel import VolumeLoad


class TestQueryJob:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            QueryJob(name="q", period_s=10.0)
        with pytest.raises(ValueError):
            QueryJob(
                name="q",
                period_s=10.0,
                pinned_plan=canonical_q2_plan(),
                spec=simple_report_query(),
            )

    def test_due_at_basic(self):
        job = QueryJob(name="q", period_s=100.0, first_run_s=50.0,
                       pinned_plan=canonical_q2_plan())
        assert job.due_at(0.0, 60.0) == [50.0]
        assert job.due_at(60.0, 120.0) == []
        assert job.due_at(140.0, 260.0) == [150.0, 250.0]

    def test_due_before_first_run_empty(self):
        job = QueryJob(name="q", period_s=100.0, first_run_s=500.0,
                       pinned_plan=canonical_q2_plan())
        assert job.due_at(0.0, 400.0) == []

    def test_positive_period_required(self):
        with pytest.raises(ValueError):
            QueryJob(name="q", period_s=0.0, pinned_plan=canonical_q2_plan())


class TestExternalWorkload:
    def test_steady_active_in_range(self):
        w = ExternalWorkload(
            name="w", volume_id="V1", load=VolumeLoad(read_iops=10), start=100.0, end=200.0
        )
        assert w.load_at(50.0) is None
        assert w.load_at(150.0) is not None
        assert w.load_at(250.0) is None

    def test_bursty_duty_cycle(self):
        w = ExternalWorkload(
            name="w",
            volume_id="V1",
            load=VolumeLoad(read_iops=10),
            start=0.0,
            pattern="bursty",
            duty_cycle=0.25,
            burst_period_s=100.0,
        )
        active = sum(1 for t in range(0, 1000) if w.load_at(float(t)) is not None)
        assert active == 250

    def test_active_when_gate(self):
        w = ExternalWorkload(
            name="w",
            volume_id="V1",
            load=VolumeLoad(read_iops=10),
            active_when=lambda t: t % 2 == 0,
        )
        assert w.load_at(2.0) is not None
        assert w.load_at(3.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ExternalWorkload(name="w", volume_id="V", load=VolumeLoad(), pattern="weird")
        with pytest.raises(ValueError):
            ExternalWorkload(name="w", volume_id="V", load=VolumeLoad(), duty_cycle=0.0)
        with pytest.raises(ValueError):
            ExternalWorkload(name="w", volume_id="V", load=VolumeLoad(), burst_period_s=0.0)

    def test_open_ended_by_default(self):
        w = ExternalWorkload(name="w", volume_id="V1", load=VolumeLoad(read_iops=1))
        assert w.end == math.inf
        assert w.load_at(1e9) is not None
