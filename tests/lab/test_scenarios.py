"""Tests for scenario metadata, construction and the bundle proxy."""

from __future__ import annotations

import pytest

from repro.core.symptoms import default_symptoms_database
from repro.lab.scenarios import (
    QUERY_NAME,
    all_table1_scenarios,
    scenario_buffer_pool,
    scenario_concurrent_db_san,
    scenario_cpu_saturation,
    scenario_data_property_change,
    scenario_lock_contention,
    scenario_plan_regression,
    scenario_raid_rebuild,
    scenario_san_misconfiguration,
    scenario_two_external_workloads,
)

ALL_FACTORIES = [
    scenario_san_misconfiguration,
    scenario_two_external_workloads,
    scenario_data_property_change,
    scenario_concurrent_db_san,
    scenario_lock_contention,
    scenario_plan_regression,
    scenario_cpu_saturation,
    scenario_buffer_pool,
    scenario_raid_rebuild,
]


class TestMetadata:
    def test_table1_has_five_scenarios_in_order(self):
        scenarios = all_table1_scenarios()
        assert [s.info.scenario_id for s in scenarios] == [1, 2, 3, 4, 5]

    def test_fault_time_is_midpoint(self):
        scenario = scenario_san_misconfiguration(hours=10)
        assert scenario.info.fault_time == 5 * 3600.0
        assert scenario.duration_s == 10 * 3600.0

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_ground_truth_exists_in_default_codebook(self, factory):
        """Every scenario's injected cause has a codebook entry to find."""
        entry_ids = {e.cause_id for e in default_symptoms_database().entries}
        scenario = factory(hours=6)
        for cause in scenario.info.ground_truth:
            assert cause in entry_ids, cause

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_names_and_descriptions_nonempty(self, factory):
        info = factory(hours=6).info
        assert info.name and info.description
        assert info.critical_modules

    def test_plan_regression_via_validation(self):
        with pytest.raises(ValueError):
            scenario_plan_regression(via="chaos")


class TestScenarioRun:
    def test_labels_split_at_fault_time(self, scenario1):
        runs = scenario1.stores.runs.runs(QUERY_NAME)
        for run in runs:
            expected = run.start_time < scenario1.info.fault_time
            assert run.satisfactory is expected

    def test_burst_variant_changes_name(self):
        scenario = scenario_san_misconfiguration(hours=6, with_v2_burst=True)
        assert "v2-burst" in scenario.info.name

    def test_background_workloads_present(self):
        env = scenario_san_misconfiguration(hours=6).build()
        names = {w.name for w in env.external}
        assert {"background-V3", "background-V4"} <= names


class TestBundleProxy:
    def test_proxy_matches_inner_bundle(self, scenario1):
        inner = scenario1.bundle
        assert scenario1.stores is inner.stores
        assert scenario1.topology is inner.topology
        assert scenario1.catalog is inner.catalog
        assert scenario1.db_config is inner.db_config
        assert scenario1.initial_catalog is inner.initial_catalog
        assert scenario1.query_names == inner.query_names
        assert scenario1.query_specs == inner.query_specs

    def test_info_carried(self, scenario1):
        assert scenario1.info.scenario_id == 1
        assert scenario1.query_name == QUERY_NAME


class TestStreamingScenarios:
    def test_flapping_metadata(self):
        from repro.lab.scenarios import scenario_flapping_san_misconfiguration

        scenario = scenario_flapping_san_misconfiguration(hours=6.0)
        assert scenario.info.ground_truth == ("volume-contention-san-misconfig",)
        assert scenario.info.fault_time == 6.0 * 3600.0 / 2.0

    def test_flapping_build_flaps_the_workload(self):
        from repro.lab.scenarios import scenario_flapping_san_misconfiguration

        scenario = scenario_flapping_san_misconfiguration(
            hours=6.0, period_s=3600.0, duty_cycle=0.5
        )
        env = scenario.build()
        env.run(6.0 * 3600.0)
        fault_t = scenario.info.fault_time
        workloads = [w for w in env.external if w.name == "app-workload-Vprime"]
        assert len(workloads) >= 2  # one per on-window
        on = workloads[0]
        assert on.load_at(fault_t + 60.0) is not None
        # Off-window: no app workload offers load mid-way through the period.
        off_t = fault_t + 2400.0
        assert all(w.load_at(off_t) is None for w in workloads)

    def test_staggered_metadata_and_fault_times(self):
        from repro.lab.scenarios import scenario_staggered_dual_faults

        scenario = scenario_staggered_dual_faults(hours=9.0)
        assert set(scenario.info.ground_truth) == {
            "volume-contention-san-misconfig", "data-property-change",
        }
        env = scenario.build()
        env.run(9.0 * 3600.0)
        end_t = 9.0 * 3600.0
        dml = [e for e in env.stores.events.of_kind("dml_batch")]
        assert dml and dml[0].time == pytest.approx(2.0 * end_t / 3.0, abs=60.0)
        created = env.stores.events.of_kind("volume_created")
        assert created and created[0].time == pytest.approx(end_t / 3.0, abs=60.0)

    def test_flapping_offline_labels_match_degradation(self):
        """Scenario.run() must label only on-window (degraded) runs bad —
        off-window runs are healthy and stay satisfactory."""
        from repro.lab.scenarios import scenario_flapping_san_misconfiguration

        bundle = scenario_flapping_san_misconfiguration(hours=8.0).run()
        sat = bundle.stores.runs.satisfactory_runs(bundle.query_name)
        unsat = bundle.stores.runs.unsatisfactory_runs(bundle.query_name)
        assert sat and unsat
        # Clean separation: every labelled-bad run is slower than every
        # labelled-good run, with a clear degradation margin.
        slowest_good = max(r.duration for r in sat)
        fastest_bad = min(r.duration for r in unsat)
        assert fastest_bad > 1.5 * slowest_good
