"""Tests for the CPU-saturation and buffer-pool faults and rebuild peer load."""

from __future__ import annotations

import pytest

from repro.db.plans import canonical_q2_plan
from repro.db.tpch import build_tpch_catalog
from repro.lab.environment import Environment
from repro.lab.faults import FaultInjector
from repro.lab.workloads import QueryJob
from repro.san.builder import build_testbed
from repro.san.iomodel import IoSimulator, VolumeLoad


def small_env(seed=1) -> Environment:
    env = Environment(testbed=build_testbed(), catalog=build_tpch_catalog(), seed=seed)
    env.add_job(
        QueryJob(
            name="q2-report",
            period_s=1800.0,
            first_run_s=600.0,
            pinned_plan=canonical_q2_plan(),
        )
    )
    return env


HOURS_2 = 2 * 3600.0


class TestCpuSaturationFault:
    def test_cpu_multiplier_slows_runs(self):
        env = small_env()
        FaultInjector(env).cpu_saturation(
            at=3600.0, until=HOURS_2, cpu_multiplier=5.0, server_pct=70.0
        )
        bundle = env.run(HOURS_2)
        runs = bundle.stores.runs.runs("q2-report")
        before = [r for r in runs if r.start_time < 3600.0]
        after = [r for r in runs if r.start_time > 3600.0]
        assert min(r.duration for r in after) > max(r.duration for r in before)
        assert after[-1].db_metrics["cpuTime"] > 3.0 * before[-1].db_metrics["cpuTime"]

    def test_server_metric_reflects_hog(self):
        env = small_env()
        FaultInjector(env).cpu_saturation(
            at=3600.0, until=HOURS_2, cpu_multiplier=2.0, server_pct=70.0
        )
        bundle = env.run(HOURS_2)
        store = bundle.stores.metrics
        before = store.values_between("srv-db", "cpuUsagePct", 0.0, 3600.0)
        after = store.values_between("srv-db", "cpuUsagePct", 3600.0, HOURS_2)
        assert sum(after) / len(after) > sum(before) / len(before) + 30.0

    def test_executor_validates_multiplier(self, catalog):
        from repro.db.executor import Executor

        with pytest.raises(ValueError):
            Executor(catalog).execute(
                canonical_q2_plan(), 0.0, {"V1": 4.0, "V2": 4.0}, cpu_multiplier=0.0
            )


class TestBufferPoolFault:
    def test_shrink_increases_physical_io(self):
        env = small_env()
        FaultInjector(env).shrink_buffer_pool(at=3600.0, new_cache_mb=8.0)
        bundle = env.run(HOURS_2)
        runs = bundle.stores.runs.runs("q2-report")
        before = [r for r in runs if r.start_time < 3600.0][-1]
        after = [r for r in runs if r.start_time > 3600.0][-1]
        assert after.db_metrics["blocksRead"] > 1.5 * before.db_metrics["blocksRead"]
        assert after.db_metrics["bufferHits"] < before.db_metrics["bufferHits"]
        assert bundle.stores.events.of_kind("db_config_changed")


class TestRebuildPeerLoad:
    def test_rebuild_loads_whole_pool(self, testbed):
        sim = IoSimulator(testbed.topology)
        base = sim.simulate({"V1": VolumeLoad(read_iops=50)})
        sim.start_rebuild("d1", capacity_factor=0.5)
        degraded = sim.simulate({"V1": VolumeLoad(read_iops=50)})
        # peers d2..d4 carry rebuild reads even though they are healthy
        for disk in ("d2", "d3", "d4"):
            assert degraded.get(disk, "iops") > base.get(disk, "iops") + 30.0
        # other pool untouched
        assert degraded.get("d5", "iops") == pytest.approx(base.get("d5", "iops"))
