"""Tests for the CPU-saturation and buffer-pool faults and rebuild peer load."""

from __future__ import annotations

import pytest

from repro.db.plans import canonical_q2_plan
from repro.db.tpch import build_tpch_catalog
from repro.lab.environment import Environment
from repro.lab.faults import FaultInjector
from repro.lab.workloads import QueryJob
from repro.san.builder import build_testbed
from repro.san.iomodel import IoSimulator, VolumeLoad


def small_env(seed=1) -> Environment:
    env = Environment(testbed=build_testbed(), catalog=build_tpch_catalog(), seed=seed)
    env.add_job(
        QueryJob(
            name="q2-report",
            period_s=1800.0,
            first_run_s=600.0,
            pinned_plan=canonical_q2_plan(),
        )
    )
    return env


HOURS_2 = 2 * 3600.0


class TestCpuSaturationFault:
    def test_cpu_multiplier_slows_runs(self):
        env = small_env()
        FaultInjector(env).cpu_saturation(
            at=3600.0, until=HOURS_2, cpu_multiplier=5.0, server_pct=70.0
        )
        bundle = env.run(HOURS_2)
        runs = bundle.stores.runs.runs("q2-report")
        before = [r for r in runs if r.start_time < 3600.0]
        after = [r for r in runs if r.start_time > 3600.0]
        assert min(r.duration for r in after) > max(r.duration for r in before)
        assert after[-1].db_metrics["cpuTime"] > 3.0 * before[-1].db_metrics["cpuTime"]

    def test_server_metric_reflects_hog(self):
        env = small_env()
        FaultInjector(env).cpu_saturation(
            at=3600.0, until=HOURS_2, cpu_multiplier=2.0, server_pct=70.0
        )
        bundle = env.run(HOURS_2)
        store = bundle.stores.metrics
        before = store.values_between("srv-db", "cpuUsagePct", 0.0, 3600.0)
        after = store.values_between("srv-db", "cpuUsagePct", 3600.0, HOURS_2)
        assert sum(after) / len(after) > sum(before) / len(before) + 30.0

    def test_executor_validates_multiplier(self, catalog):
        from repro.db.executor import Executor

        with pytest.raises(ValueError):
            Executor(catalog).execute(
                canonical_q2_plan(), 0.0, {"V1": 4.0, "V2": 4.0}, cpu_multiplier=0.0
            )


class TestBufferPoolFault:
    def test_shrink_increases_physical_io(self):
        env = small_env()
        FaultInjector(env).shrink_buffer_pool(at=3600.0, new_cache_mb=8.0)
        bundle = env.run(HOURS_2)
        runs = bundle.stores.runs.runs("q2-report")
        before = [r for r in runs if r.start_time < 3600.0][-1]
        after = [r for r in runs if r.start_time > 3600.0][-1]
        assert after.db_metrics["blocksRead"] > 1.5 * before.db_metrics["blocksRead"]
        assert after.db_metrics["bufferHits"] < before.db_metrics["bufferHits"]
        assert bundle.stores.events.of_kind("db_config_changed")


class TestRebuildPeerLoad:
    def test_rebuild_loads_whole_pool(self, testbed):
        sim = IoSimulator(testbed.topology)
        base = sim.simulate({"V1": VolumeLoad(read_iops=50)})
        sim.start_rebuild("d1", capacity_factor=0.5)
        degraded = sim.simulate({"V1": VolumeLoad(read_iops=50)})
        # peers d2..d4 carry rebuild reads even though they are healthy
        for disk in ("d2", "d3", "d4"):
            assert degraded.get(disk, "iops") > base.get(disk, "iops") + 30.0
        # other pool untouched
        assert degraded.get("d5", "iops") == pytest.approx(base.get("d5", "iops"))


class TestIntermittentCombinator:
    def test_windows_cover_duty_cycle(self):
        env = small_env()
        injector = FaultInjector(env)
        windows = injector.intermittent(
            at=3600.0, until=3600.0 + 4 * 1200.0, period_s=1200.0, duty_cycle=0.5,
            fault=injector.external_contention, volume_id="V3", read_iops=100.0,
        )
        assert windows == [
            (3600.0, 4200.0), (4800.0, 5400.0), (6000.0, 6600.0), (7200.0, 7800.0)
        ]

    def test_wrapped_workload_flaps(self):
        """The offered load must be on inside on-windows, off outside."""
        env = small_env()
        injector = FaultInjector(env)
        injector.intermittent(
            at=0.0, until=4800.0, period_s=2400.0, duty_cycle=0.5,
            fault=injector.external_contention, volume_id="V3", read_iops=100.0,
        )
        env.run(4800.0)
        active = [w for w in env.external if w.name == "contention-V3"]
        assert len(active) == 2
        assert active[0].load_at(600.0) is not None
        assert active[0].load_at(1800.0) is None  # off-window
        assert active[1].load_at(3000.0) is not None

    def test_wraps_san_misconfiguration_idempotently(self):
        """Re-applied misconfiguration must not duplicate the volume or its
        creation events — only the offending workload windows."""
        env = small_env()
        injector = FaultInjector(env)
        injector.intermittent(
            at=1800.0, until=1800.0 + 3 * 1200.0, period_s=1200.0, duty_cycle=0.5,
            fault=injector.san_misconfiguration, write_iops=200.0,
        )
        env.run(3 * 3600.0)
        volumes = [v for v in env.testbed.topology.volumes if v.component_id == "Vprime"]
        assert len(volumes) == 1
        creations = env.stores.events.of_kind("volume_created")
        assert len(creations) == 1
        workloads = [w for w in env.external if w.name == "app-workload-Vprime"]
        assert len(workloads) == 3

    def test_rejects_bad_params(self):
        injector = FaultInjector(small_env())
        with pytest.raises(ValueError):
            injector.intermittent(
                at=0.0, until=100.0, period_s=0.0, duty_cycle=0.5,
                fault=injector.external_contention, volume_id="V3",
            )
        with pytest.raises(ValueError):
            injector.intermittent(
                at=0.0, until=100.0, period_s=60.0, duty_cycle=0.0,
                fault=injector.external_contention, volume_id="V3",
            )
