"""Scheduler/sync equivalence + kill/resume under overlapped diagnosis.

The barrier-free runtime must be *semantically invisible*: a seeded fleet
supervised by the asyncio scheduler (environments on independent clocks,
diagnoses overlapping other members' advances) must produce exactly the
incidents — same detections, same clocks, same ranked root causes — as the
PR-3 sequential path (the barriered ``tick`` loop).  And a run stopped
mid-flight must resume from its clock-vector checkpoint into a history that
is byte-for-byte the uninterrupted one.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import SCENARIOS
from repro.stream import FleetSupervisor, IncidentStore

HOURS = 6.0

#: Eight seeded environments spanning SAN, DB, and combined fault classes.
EIGHT_ENV_FLEET = (
    "san-misconfiguration",
    "flapping-san-misconfiguration",
    "two-external-workloads",
    "data-property-change",
    "lock-contention",
    "cpu-saturation",
    "buffer-pool-thrashing",
    "raid-rebuild",
)


def _fleet_supervisor(names, *, max_workers=None, state_dir=None, **kwargs):
    supervisor = FleetSupervisor(
        chunk_s=1800.0,
        cooldown_s=7200.0,
        max_workers=max_workers,
        state_dir=state_dir,
        **kwargs,
    )
    for name in names:
        supervisor.watch_scenario(SCENARIOS[name](hours=HOURS), name=name)
    return supervisor


def _history(supervisor):
    return json.dumps([i.to_dict() for i in supervisor.incidents()], sort_keys=True)


class TestSchedulerSyncEquivalence:
    @pytest.fixture(scope="class")
    def sequential_history(self):
        """The PR-3 sequential path: barriered ticks, one worker."""
        supervisor = _fleet_supervisor(EIGHT_ENV_FLEET, max_workers=1)
        elapsed = 0.0
        while elapsed < HOURS * 3600.0:
            step = min(supervisor.chunk_s, HOURS * 3600.0 - elapsed)
            supervisor.tick(step)
            elapsed += step
        history = _history(supervisor)
        assert json.loads(history), "seeded fleet must open incidents"
        return history

    def test_async_runtime_matches_sequential_path(self, sequential_history):
        """Same seeded 8-env fleet under run(): identical incidents and
        ranked root causes, byte-for-byte."""
        supervisor = _fleet_supervisor(EIGHT_ENV_FLEET)
        supervisor.run(HOURS * 3600.0)
        assert _history(supervisor) == sequential_history
        # every environment genuinely reached the target on its own clock
        assert supervisor.advanced_s == HOURS * 3600.0
        assert supervisor.clocks.skew == 0.0

    def test_inflight_diagnosis_cap_does_not_change_history(
        self, sequential_history
    ):
        """--max-inflight-diagnoses throttles wall-clock scheduling only."""
        supervisor = _fleet_supervisor(EIGHT_ENV_FLEET, max_inflight_diagnoses=1)
        supervisor.run(HOURS * 3600.0)
        assert _history(supervisor) == sequential_history


class TestStopAndResumeUnderOverlap:
    """Kill (graceful stop) and resume while diagnoses overlap advances."""

    FLEET = ("flapping-san-misconfiguration", "san-misconfiguration")

    @pytest.fixture(scope="class")
    def reference_history(self):
        supervisor = _fleet_supervisor(self.FLEET)
        supervisor.run(HOURS * 3600.0)
        history = _history(supervisor)
        assert any(t["report"] for t in json.loads(history)), "reference must diagnose"
        return history

    def test_stopped_and_resumed_history_identical(self, tmp_path, reference_history):
        state = tmp_path / "state"
        first = _fleet_supervisor(self.FLEET, state_dir=state)

        def stop_after_two_hours(event):
            if event["type"] == "advanced" and event["advanced_s"] >= 2.0 * 3600.0:
                first.stop()

        first.run(HOURS * 3600.0, on_event=stop_after_two_hours)
        stopped_at = first.advanced_s
        assert 0 < stopped_at < HOURS * 3600.0, "run should have stopped early"
        del first  # no clean shutdown beyond the final checkpoint flush

        second = _fleet_supervisor(self.FLEET, state_dir=state)
        assert second.has_checkpoint()
        covered = second.resume()
        assert covered == stopped_at
        second.run(HOURS * 3600.0 - covered)

        assert _history(second) == reference_history
        # the durable journal converged to the same history
        journal = IncidentStore.open(state)
        assert (
            json.dumps(journal.history(), sort_keys=True) == reference_history
        )
        journal.close()

    def test_checkpoint_carries_clock_vector(self, tmp_path):
        state = tmp_path / "state"
        supervisor = _fleet_supervisor(self.FLEET, state_dir=state)
        supervisor.run(2.0 * 3600.0)
        payload = json.loads((state / "checkpoint.json").read_text())
        assert payload["version"] == 2
        assert set(payload["clocks"]) == set(self.FLEET)
        assert payload["advanced_s"] == min(payload["clocks"].values())
        for name, env_state in payload["environments"].items():
            assert env_state["advanced_s"] == payload["clocks"][name]

    def test_flusher_batches_checkpoints_off_the_hot_loop(self, tmp_path):
        """Mid-run checkpoints come from the dirty-flag flusher, not the
        advance path: with a tiny interval we must observe checkpoint
        events while the fleet is still advancing."""
        state = tmp_path / "state"
        supervisor = _fleet_supervisor(
            self.FLEET, state_dir=state, checkpoint_interval_s=0.05
        )
        kinds = []
        supervisor.run(3.0 * 3600.0, on_event=lambda e: kinds.append(e["type"]))
        assert "checkpoint" in kinds
        assert kinds.index("checkpoint") < len(kinds) - 1, (
            "a checkpoint should land before the run finishes"
        )

    def test_failed_environment_quiesces_fleet_before_final_checkpoint(
        self, tmp_path
    ):
        """A raising diagnosis must not leave sibling environments advancing
        while the quiesce checkpoint is written: run() propagates the error
        only after every task wound down, and the checkpoint it leaves
        behind is consistent enough to resume from."""
        state = tmp_path / "state"
        supervisor = _fleet_supervisor(self.FLEET, state_dir=state)

        class _PoisonedPipeline:
            def submit_many(self, requests, pool=None):
                def boom(_req=None):
                    raise RuntimeError("pipeline exploded")

                return [pool.submit(boom) for _ in requests]

        supervisor.pipeline = _PoisonedPipeline()
        with pytest.raises(RuntimeError, match="pipeline exploded"):
            supervisor.run(HOURS * 3600.0)
        # every environment stopped at an iteration boundary (no env is
        # mid-chunk)
        for watched in supervisor.watched.values():
            assert watched.env.clock == watched.advanced_s

        # The quiesce checkpoint persists iteration-BOUNDARY snapshots (the
        # failing environment's last consistent one — possibly one chunk
        # behind its live clock), and resumes cleanly from there.
        second = _fleet_supervisor(self.FLEET, state_dir=state)
        covered = second.resume()
        assert 0 < covered <= supervisor.advanced_s
        second.run(HOURS * 3600.0 - covered)
        assert second.advanced_s == HOURS * 3600.0

    def test_legacy_v1_checkpoint_still_resumes(self, tmp_path):
        """A PR-3 checkpoint (single fleet-wide duration, no clock vector)
        resumes as a uniform vector."""
        state = tmp_path / "state"
        first = _fleet_supervisor(self.FLEET, state_dir=state)
        first.run(2.0 * 3600.0)
        payload = json.loads((state / "checkpoint.json").read_text())
        payload["version"] = 1
        payload.pop("clocks")
        for env_state in payload["environments"].values():
            env_state.pop("advanced_s")
        (state / "checkpoint.json").write_text(json.dumps(payload))

        second = _fleet_supervisor(self.FLEET, state_dir=state)
        assert second.resume() == 2.0 * 3600.0
        assert second.clocks.skew == 0.0
