"""Durable incident history, detector state freeze/thaw, and watch resume."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.lab.scenarios import scenario_flapping_san_misconfiguration
from repro.stream import (
    CusumDetector,
    Detection,
    DetectorBank,
    EwmaDriftDetector,
    FleetSupervisor,
    Incident,
    IncidentManager,
    IncidentState,
    IncidentStore,
    ResponseTimeSloDetector,
    ThresholdSloDetector,
    default_detector_factory,
)
from repro.storage import MemoryBackend


def _detection(t: float, target: str = "V1/readTime", magnitude: float = 1.5) -> Detection:
    return Detection(
        time=t,
        detector="ewma-drift",
        target=target,
        value=10.0,
        expected=5.0,
        magnitude=magnitude,
        kind="drift",
    )


# ---------------------------------------------------------------------------
# detector state freeze/thaw
# ---------------------------------------------------------------------------
class TestDetectorState:
    def _drive(self, detector, samples):
        return [detector.update(t, v) for t, v in samples]

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ThresholdSloDetector(limit=5.0, min_consecutive=2),
            lambda: EwmaDriftDetector(warmup=20, min_consecutive=2),
            lambda: CusumDetector(warmup=20, threshold=6.0),
        ],
    )
    def test_mid_stream_snapshot_restores_future(self, factory):
        """A restored twin must produce the identical detection stream."""
        rng = np.random.default_rng(5)
        quiet = [(60.0 * i, float(rng.normal(3.0, 0.2))) for i in range(60)]
        loud = [(60.0 * (60 + i), float(rng.normal(9.0, 0.2))) for i in range(40)]

        original = factory()
        self._drive(original, quiet)
        state = json.loads(json.dumps(original.state_dict()))  # JSON-able

        twin = factory()
        twin.load_state(state)
        out_original = self._drive(original, loud)
        out_twin = self._drive(twin, loud)
        assert [d and d.to_dict() for d in out_original] == [
            d and d.to_dict() for d in out_twin
        ]
        assert any(out_original), "fixture should actually detect the shift"

    def test_response_time_detector_state(self):
        class Run:  # minimal QueryRun stand-in
            def __init__(self, duration, end):
                self.query_name = "q"
                self.run_id = f"q#{end}"
                self.duration = duration
                self.end_time = end
                self.satisfactory = None

        original = ResponseTimeSloDetector(factor=1.3, baseline_runs=3, query_name="q")
        for i in range(3):
            original.observe_run(Run(100.0, 100.0 * i))
        state = original.state_dict()

        twin = ResponseTimeSloDetector(factor=1.3, baseline_runs=3, query_name="q")
        twin.load_state(state)
        assert twin.baseline_duration == original.baseline_duration
        breach = Run(200.0, 1000.0)
        detection = twin.observe_run(breach)
        assert detection is not None and breach.satisfactory is False

    def test_bank_state_round_trip(self):
        factory = default_detector_factory(warmup=5, min_consecutive=1)
        bank = DetectorBank(factory=factory)
        rng = np.random.default_rng(2)
        for i in range(30):
            bank.observe(60.0 * i, "V1", "readTime", float(rng.normal(3, 0.1)))
            bank.observe(60.0 * i, "V1", "readIO", 1.0)  # ignored by policy
        state = json.loads(json.dumps(bank.state_dict()))

        twin = DetectorBank(factory=factory)
        twin.load_state(state)
        assert set(twin.detectors) == set(bank.detectors)
        assert twin._ignored == bank._ignored
        spike = 50.0
        a = bank.observe(9999.0, "V1", "readTime", spike)
        b = twin.observe(9999.0, "V1", "readTime", spike)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.to_dict() == b.to_dict()


# ---------------------------------------------------------------------------
# incident round trip + durable store
# ---------------------------------------------------------------------------
class TestIncidentRoundTrip:
    def test_to_from_dict_fixed_point(self):
        incident = Incident(
            incident_id="INC-env-1",
            env_name="env",
            key=("env", "V1/readTime"),
            opened_at=100.0,
            detections=[_detection(100.0), _detection(160.0, magnitude=4.5)],
            deduped=1,
        )
        incident.begin_diagnosis(200.0)
        incident.resolve(300.0)
        ticket = incident.to_dict()
        assert Incident.from_dict(ticket).to_dict() == ticket

    def test_restored_incident_reports_top_cause_from_data(self):
        ticket = Incident(
            incident_id="i",
            env_name="e",
            key=("e", "t"),
            opened_at=0.0,
            detections=[_detection(0.0)],
        ).to_dict()
        ticket["report"] = {"causes": [{"cause_id": "lock-contention"}]}
        assert Incident.from_dict(ticket).top_cause_id == "lock-contention"


class TestIncidentStore:
    def test_transitions_journalled_and_history_folds(self, tmp_path):
        store = IncidentStore.open(tmp_path)
        manager = IncidentManager("env-a", cooldown_s=600.0, store=store)
        incident = manager.observe(_detection(100.0))
        manager.observe(_detection(160.0))  # absorbed into the live incident
        manager.begin_diagnosis(incident, 200.0)
        manager.resolve(incident, 300.0)

        events = [rec["event"] for rec in store.transitions(incident.incident_id)]
        assert events == ["open", "absorb", "diagnosing", "resolved"]
        history = store.history()
        assert len(history) == 1
        assert history[0]["state"] == "resolved"
        assert history[0]["deduped"] == 1

    def test_history_survives_reopen(self, tmp_path):
        store = IncidentStore.open(tmp_path)
        manager = IncidentManager("env-a", store=store)
        incident = manager.observe(_detection(100.0))
        manager.resolve(incident, 300.0)
        before = store.history()
        store.close()

        reopened = IncidentStore.open(tmp_path)
        assert reopened.history() == before
        assert [i.incident_id for i in reopened.incidents()] == [incident.incident_id]
        reopened.close()

    def test_history_filters(self, tmp_path):
        store = IncidentStore.open(tmp_path)
        a = IncidentManager("env-a", store=store)
        b = IncidentManager("env-b", store=store)
        first = a.observe(_detection(100.0))
        a.resolve(first, 200.0)
        b.observe(_detection(5000.0, target="V2/readTime"))

        assert len(store.history()) == 2
        assert [t["env"] for t in store.history(env="env-b")] == ["env-b"]
        assert [t["state"] for t in store.history(state=IncidentState.RESOLVED)] == [
            "resolved"
        ]
        assert [t["opened_at"] for t in store.history(since=1000.0)] == [5000.0]
        store.close()


class TestManagerStateRoundTrip:
    def test_dedup_cooldown_counter_survive(self):
        manager = IncidentManager("env", cooldown_s=600.0)
        first = manager.observe(_detection(100.0))
        manager.observe(_detection(150.0))          # dedup
        manager.resolve(first, 200.0)
        assert manager.observe(_detection(300.0)) is None   # cooldown
        live = manager.observe(_detection(1000.0))          # reopened
        assert live is not None

        state = json.loads(json.dumps(manager.state_dict()))
        twin = IncidentManager("env", cooldown_s=600.0)
        twin.restore(state)

        assert [i.to_dict() for i in twin.incidents] == [
            i.to_dict() for i in manager.incidents
        ]
        assert twin.suppressed == 1
        # dedup continues against the restored live incident
        assert twin.observe(_detection(1100.0)) is None
        assert twin.incidents[-1].deduped == 1
        # the id counter continues where it left off
        twin.resolve(twin.incidents[-1], 1200.0)
        fresh = twin.observe(_detection(9999.0))
        assert fresh.incident_id == "INC-env-3"


# ---------------------------------------------------------------------------
# the acceptance criterion: killed-and-resumed == uninterrupted
# ---------------------------------------------------------------------------
class TestWatchResume:
    HOURS = 6.0

    @staticmethod
    def _supervisor(state_dir=None):
        sup = FleetSupervisor(chunk_s=1800.0, cooldown_s=7200.0, state_dir=state_dir)
        sup.watch_scenario(
            scenario_flapping_san_misconfiguration(hours=TestWatchResume.HOURS)
        )
        return sup

    @pytest.fixture(scope="class")
    def reference_history(self):
        sup = self._supervisor()
        sup.run(self.HOURS * 3600.0)
        history = [i.to_dict() for i in sup.incidents()]
        assert any(t["report"] for t in history), "reference run must diagnose"
        return history

    @pytest.mark.parametrize("kill_after_hours", [3.0, 5.0])
    def test_killed_and_resumed_history_identical(
        self, tmp_path, reference_history, kill_after_hours
    ):
        state = tmp_path / "state"
        first = self._supervisor(state)
        first.run(kill_after_hours * 3600.0)
        del first  # SIGKILL: no clean shutdown, no close()

        second = self._supervisor(state)
        assert second.has_checkpoint()
        covered = second.resume()
        assert covered == kill_after_hours * 3600.0
        second.run(self.HOURS * 3600.0 - covered)

        resumed = [i.to_dict() for i in second.incidents()]
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            reference_history, sort_keys=True
        )
        # the durable journal converged to the same history
        journal = IncidentStore.open(state)
        assert json.dumps(journal.history(), sort_keys=True) == json.dumps(
            reference_history, sort_keys=True
        )
        journal.close()

    def test_resume_refuses_mismatched_fleet(self, tmp_path):
        state = tmp_path / "state"
        first = self._supervisor(state)
        first.run(2.0 * 3600.0)
        del first

        wrong = FleetSupervisor(chunk_s=1800.0, state_dir=state)
        wrong.watch_scenario(
            scenario_flapping_san_misconfiguration(hours=self.HOURS),
            name="some-other-name",
        )
        with pytest.raises(ValueError, match="does not match"):
            wrong.resume()

    def test_resume_refuses_mismatched_meta(self, tmp_path):
        state = tmp_path / "state"
        first = FleetSupervisor(
            chunk_s=1800.0, state_dir=state, checkpoint_meta={"hours": 6.0}
        )
        first.watch_scenario(scenario_flapping_san_misconfiguration(hours=self.HOURS))
        first.run(2.0 * 3600.0)
        del first

        second = FleetSupervisor(
            chunk_s=1800.0, state_dir=state, checkpoint_meta={"hours": 8.0}
        )
        second.watch_scenario(scenario_flapping_san_misconfiguration(hours=self.HOURS))
        with pytest.raises(ValueError, match="different run configuration"):
            second.resume()

    def test_resume_before_any_tick_required(self, tmp_path):
        state = tmp_path / "state"
        first = self._supervisor(state)
        first.run(2.0 * 3600.0)
        del first
        second = self._supervisor(state)
        second.tick()
        with pytest.raises(ValueError, match="before any tick"):
            second.resume()


class TestDeltaJournal:
    def test_absorb_records_are_deltas_not_full_tickets(self, tmp_path):
        """Journal growth is linear in detections, not quadratic."""
        store = IncidentStore.open(tmp_path)
        manager = IncidentManager("env", store=store)
        manager.observe(_detection(100.0))
        for i in range(50):
            manager.observe(_detection(100.0 + i + 1))
        for rec in store.transitions():
            if rec["event"] == "absorb":
                assert "incident" not in rec and "detection" in rec
        ticket = store.history()[0]
        assert len(ticket["detections"]) == 51 and ticket["deduped"] == 50
        store.close()
        reopened = IncidentStore.open(tmp_path)
        assert reopened.history() == [ticket]
        reopened.close()

    def test_refolding_duplicate_transitions_is_idempotent(self, tmp_path):
        """A resumed supervisor deterministically re-journals the killed
        tick's transitions; folding the duplicates must not change tickets."""
        store = IncidentStore.open(tmp_path)
        manager = IncidentManager("env", store=store)
        incident = manager.observe(_detection(100.0))
        manager.observe(_detection(160.0))
        manager.begin_diagnosis(incident, 200.0)
        manager.resolve(incident, 300.0)
        once = store.history()
        # replay of the killed tick: identical transitions journalled again
        for rec in list(store.transitions()):
            store.backend.append(store.KEYSPACE, rec)
        store.close()
        reopened = IncidentStore.open(tmp_path)
        assert reopened.history() == once
        reopened.close()


class TestManagerJournalsThroughAnyBackend:
    def test_memory_backend_journal(self):
        store = IncidentStore(MemoryBackend())
        manager = IncidentManager("env", store=store)
        incident = manager.observe(_detection(1.0))
        manager.resolve(incident, 2.0)
        assert [r["event"] for r in store.transitions()] == ["open", "resolved"]
        assert store.history()[0]["state"] == "resolved"
