"""Online detector behaviour on synthetic step/ramp/noise series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.executor import OperatorRuntime, QueryRun
from repro.db.plans import OpType, PlanOperator

SCAN = OpType.SEQ_SCAN
from repro.stream import (
    CusumDetector,
    DetectorBank,
    EwmaDriftDetector,
    ResponseTimeSloDetector,
    ThresholdSloDetector,
    default_detector_factory,
)


def feed(detector, values, t0: float = 0.0, dt: float = 60.0):
    """Feed a series; returns (sample_index, detection) pairs."""
    out = []
    for i, value in enumerate(values):
        detection = detector.update(t0 + i * dt, float(value))
        if detection is not None:
            out.append((i, detection))
    return out


def noise(n: int, mean: float = 10.0, sigma: float = 0.5, seed: int = 1):
    return np.random.default_rng(seed).normal(mean, sigma, size=n)


# ---------------------------------------------------------------------------
# ThresholdSloDetector
# ---------------------------------------------------------------------------
class TestThresholdSlo:
    def test_fires_after_min_consecutive(self):
        det = ThresholdSloDetector(limit=10.0, min_consecutive=3)
        hits = feed(det, [5, 11, 12, 13, 14])
        assert [i for i, _ in hits] == [3]
        assert hits[0][1].magnitude == pytest.approx(13 / 10)

    def test_single_spike_debounced(self):
        det = ThresholdSloDetector(limit=10.0, min_consecutive=2)
        assert feed(det, [5, 20, 5, 20, 5, 20]) == []

    def test_fires_once_per_excursion(self):
        det = ThresholdSloDetector(limit=10.0, min_consecutive=1)
        hits = feed(det, [20, 20, 20, 5, 20, 20])
        assert [i for i, _ in hits] == [0, 4]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ThresholdSloDetector(limit=0.0)
        with pytest.raises(ValueError):
            ThresholdSloDetector(limit=1.0, min_consecutive=0)


# ---------------------------------------------------------------------------
# EwmaDriftDetector
# ---------------------------------------------------------------------------
class TestEwmaDrift:
    def test_detects_step_immediately(self):
        det = EwmaDriftDetector()
        series = np.concatenate([noise(60), noise(40, mean=20.0, seed=2)])
        hits = feed(det, series)
        assert hits, "step never detected"
        first = hits[0][0]
        assert 60 <= first <= 62, f"detection latency too high: {first}"

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_no_false_positive_on_pure_noise(self, seed):
        det = EwmaDriftDetector()
        assert feed(det, noise(1000, seed=seed)) == []

    def test_detects_slow_ramp_late(self):
        """A ramp is partially tracked by the EWMA, so detection comes after
        the ramp has run away from the slowly-adapting baseline."""
        det = EwmaDriftDetector(alpha=0.02)
        ramp = 10.0 + np.maximum(0, np.arange(300) - 60) * 0.1
        series = ramp + noise(300, mean=0.0, sigma=0.25)
        hits = feed(det, series)
        assert hits and hits[0][0] > 60

    def test_min_consecutive_debounces_single_tick_spike(self):
        det = EwmaDriftDetector(min_consecutive=2)
        series = list(noise(60))
        series[45] = 100.0  # one-tick spike (a query run), then back to normal
        assert feed(det, series) == []

    def test_min_consecutive_fires_on_sustained_excursion(self):
        det = EwmaDriftDetector(min_consecutive=3)
        series = np.concatenate([noise(60), noise(10, mean=20.0, seed=2)])
        hits = feed(det, series)
        assert [i for i, _ in hits] == [62]  # third anomalous sample

    def test_fires_once_per_excursion(self):
        det = EwmaDriftDetector()
        series = np.concatenate([noise(60), noise(60, mean=25.0, seed=3)])
        hits = feed(det, series)
        assert len(hits) == 1

    def test_sustained_shift_not_absorbed(self):
        """The degraded level must keep looking anomalous (no re-learning)."""
        det = EwmaDriftDetector()
        feed(det, np.concatenate([noise(60), noise(120, mean=25.0, seed=4)]))
        # After 120 degraded samples a *recovery* back to the old baseline
        # must not itself look anomalous upward.
        late = det.update(10_000.0, 10.0)
        assert late is None or late.details["z"] < 0


# ---------------------------------------------------------------------------
# CusumDetector
# ---------------------------------------------------------------------------
class TestCusum:
    def test_detects_small_persistent_shift(self):
        """A 2-sigma mean shift — too small for the EWMA's 5-sigma gate —
        accumulates and fires within a couple of dozen samples."""
        det = CusumDetector()
        series = np.concatenate([noise(60), noise(40, mean=11.0, seed=5)])
        hits = feed(det, series)
        assert hits, "small shift never detected"
        assert 60 <= hits[0][0] <= 85

    @pytest.mark.parametrize("seed", [1, 2, 3, 5, 6])
    def test_no_false_positive_on_pure_noise(self, seed):
        """CUSUM has a finite average run length by construction, so this
        asserts over spans well inside the no-shift ARL, not forever."""
        det = CusumDetector()
        assert feed(det, noise(400, seed=seed)) == []

    def test_statistic_resets_after_firing(self):
        det = CusumDetector(warmup=10)
        for i, value in enumerate(noise(10, seed=7)):
            assert det.update(i * 60.0, float(value)) is None
        hit = None
        i = 10
        while hit is None:
            hit = det.update(i * 60.0, 14.0)
            i += 1
        assert det.s_pos == 0.0 and det.s_neg == 0.0

    def test_detects_two_separate_shifts(self):
        det = CusumDetector()
        series = np.concatenate(
            [noise(40, seed=8), noise(12, mean=13.0, seed=9),
             noise(40, seed=10), noise(12, mean=13.0, seed=11)]
        )
        hits = [i for i, _ in feed(det, series)]
        assert any(40 <= i < 52 for i in hits), hits
        assert any(92 <= i < 104 for i in hits), hits
        assert not any(52 <= i < 92 for i in hits), hits

    def test_detects_downward_shift(self):
        det = CusumDetector()
        series = np.concatenate([noise(40, seed=12), noise(30, mean=7.0, seed=13)])
        hits = feed(det, series)
        assert hits and hits[0][1].details["direction"] == "down"


# ---------------------------------------------------------------------------
# ResponseTimeSloDetector (the administrator replacement)
# ---------------------------------------------------------------------------
def make_run(run_id: str, start: float, duration: float, query: str = "q") -> QueryRun:
    plan = PlanOperator(op_id="O1", op_type=SCAN, table="t")
    runtime = OperatorRuntime(
        op_id="O1", op_type=SCAN, table="t", volume_id="V1",
        start=start, stop=start + duration, actual_rows=1.0, est_rows=1.0,
        self_time=duration, inclusive_time=duration,
    )
    return QueryRun(
        run_id=run_id, query_name=query, plan=plan, start_time=start,
        operators={"O1": runtime},
    )


class TestResponseTimeSlo:
    def test_marks_baseline_satisfactory_and_breaches_unsatisfactory(self):
        det = ResponseTimeSloDetector(factor=1.5, baseline_runs=3)
        runs = [make_run(f"r{i}", i * 100.0, 10.0) for i in range(3)]
        runs += [make_run("bad", 300.0, 30.0), make_run("ok", 400.0, 11.0)]
        detections = [det.observe_run(r) for r in runs]
        assert [r.satisfactory for r in runs] == [True, True, True, False, True]
        assert detections[:3] == [None, None, None]
        assert detections[3] is not None and detections[3].kind == "slo"
        assert detections[4] is None

    def test_detection_carries_run_identity(self):
        det = ResponseTimeSloDetector(factor=1.2, baseline_runs=2)
        for i in range(2):
            det.observe_run(make_run(f"r{i}", i * 100.0, 10.0))
        detection = det.observe_run(make_run("slow", 200.0, 25.0))
        assert detection.target == "run:q"
        assert detection.details["run_id"] == "slow"
        assert detection.magnitude == pytest.approx(25.0 / 12.0)

    def test_ignores_other_queries(self):
        det = ResponseTimeSloDetector(factor=1.2, baseline_runs=1, query_name="mine")
        other = make_run("x", 0.0, 99.0, query="other")
        assert det.observe_run(other) is None
        assert other.satisfactory is None

    def test_healthy_runs_refine_baseline(self):
        det = ResponseTimeSloDetector(factor=1.5, baseline_runs=2)
        det.observe_run(make_run("a", 0.0, 10.0))
        det.observe_run(make_run("b", 100.0, 10.0))
        det.observe_run(make_run("c", 200.0, 12.0))  # healthy, absorbed
        assert det.baseline_duration == pytest.approx((10 + 10 + 12) / 3)

    def test_series_update_unsupported(self):
        with pytest.raises(NotImplementedError):
            ResponseTimeSloDetector().update(0.0, 1.0)


# ---------------------------------------------------------------------------
# DetectorBank
# ---------------------------------------------------------------------------
class TestDetectorBank:
    def test_routes_and_materialises_lazily(self):
        bank = DetectorBank(factory=default_detector_factory(warmup=5))
        for i in range(30):
            bank.observe(i * 60.0, "V1", "readTime", 10.0)
            bank.observe(i * 60.0, "V1", "cpuUsagePct", 50.0)  # ignored
        assert set(bank.detectors) == {("V1", "readTime")}
        assert bank.detectors[("V1", "readTime")].target == "V1/readTime"

    def test_detects_per_series(self):
        bank = DetectorBank(
            factory=default_detector_factory(warmup=5, min_consecutive=1)
        )
        hits = []
        for i in range(40):
            v1 = 10.0 if i < 20 else 50.0
            for cid, value in (("V1", v1), ("V2", 10.0)):
                d = bank.observe(i * 60.0, cid, "readTime", value + 0.01 * (i % 3))
                if d is not None:
                    hits.append(d)
        assert {d.target for d in hits} == {"V1/readTime"}

    def test_new_component_mid_stream(self):
        """A volume created mid-simulation gets its own detector."""
        bank = DetectorBank(factory=default_detector_factory(warmup=3))
        for i in range(10):
            bank.observe(i * 60.0, "V1", "readTime", 10.0)
        bank.observe(600.0, "Vprime", "readTime", 5.0)
        assert ("Vprime", "readTime") in bank.detectors
