"""Recovery-aware incident closure.

With ``recovery=True`` the detectors emit ``kind="recovery"`` detections
when a series returns to baseline, and the incident manager:

* resolves a still-open incident with ``resolution="recovered"`` (no
  diagnosis) and starts the key's cooldown clock;
* treats a regression *inside* that cooldown as flapping, not noise —
  it re-escalates with a predecessor link and a severity bump instead of
  suppressing the evidence;
* keeps suppressing post-diagnosis duplicates exactly as before.

With the default ``recovery=False`` nothing changes: no recovery
detections fire and histories are identical to what they always were.
"""

from __future__ import annotations

import pytest

from repro.lab.scenarios import scenario_flapping_san_misconfiguration
from repro.stream.detectors import Detection
from repro.stream.incidents import IncidentManager, IncidentState, Severity
from repro.stream.supervisor import FleetSupervisor


def _drift(time: float, magnitude: float = 1.5) -> Detection:
    return Detection(
        time=time,
        detector="ewma-drift",
        target="V1/readTime",
        value=10.0,
        expected=5.0,
        magnitude=magnitude,
        kind="drift",
    )


def _recovery(time: float) -> Detection:
    return Detection(
        time=time,
        detector="ewma-drift",
        target="V1/readTime",
        value=5.0,
        expected=5.0,
        magnitude=0.0,
        kind="recovery",
    )


class TestManagerRecovery:
    def test_recovery_resolves_open_incident_without_diagnosis(self):
        manager = IncidentManager("env", cooldown_s=3600.0)
        incident = manager.observe(_drift(100.0))
        assert incident is not None

        assert manager.observe(_recovery(400.0)) is None
        assert incident.state is IncidentState.RESOLVED
        assert incident.resolution == "recovered"
        assert incident.resolved_at == 400.0
        assert incident.report is None
        assert manager.drain_recoveries() == [incident]
        assert manager.drain_recoveries() == []  # drained once per fold

    def test_recovery_never_touches_a_diagnosing_incident(self):
        manager = IncidentManager("env", cooldown_s=3600.0)
        incident = manager.observe(_drift(100.0))
        manager.begin_diagnosis(incident, 200.0)

        assert manager.observe(_recovery(400.0)) is None
        assert incident.state is IncidentState.DIAGNOSING
        assert manager.drain_recoveries() == []

    def test_regression_inside_cooldown_re_escalates(self):
        manager = IncidentManager("env", cooldown_s=3600.0)
        first = manager.observe(_drift(100.0))
        manager.observe(_recovery(400.0))

        # Same key degrades again well inside the cooldown window: that is
        # flapping — a new incident opens with a predecessor link and a
        # bumped severity, bypassing the cooldown.
        second = manager.observe(_drift(1000.0))
        assert second is not None and second is not first
        assert second.escalated_from == first.incident_id
        assert second.escalations == 1
        assert second.severity is first.severity.escalated(1)
        assert manager.suppressed == 0

        # Flap again: the chain keeps growing.
        manager.observe(_recovery(1300.0))
        third = manager.observe(_drift(2000.0))
        assert third.escalated_from == second.incident_id
        assert third.escalations == 2

    def test_diagnosed_resolution_still_suppresses_inside_cooldown(self):
        manager = IncidentManager("env", cooldown_s=3600.0)
        incident = manager.observe(_drift(100.0))
        manager.resolve(incident, 400.0)  # resolution="diagnosed"

        assert manager.observe(_drift(1000.0)) is None
        assert manager.suppressed == 1

    def test_cooldown_expiry_is_a_fresh_episode(self):
        manager = IncidentManager("env", cooldown_s=600.0)
        first = manager.observe(_drift(100.0))
        manager.observe(_recovery(400.0))

        fresh = manager.observe(_drift(400.0 + 600.0))
        assert fresh.escalated_from is None
        assert fresh.escalations == 0
        assert fresh.severity is Severity.from_magnitude(1.5)
        assert first.incident_id != fresh.incident_id


class TestSupervisorRecovery:
    HOURS = 10.0

    @staticmethod
    def _run(recovery: bool):
        # One chunk spans a full flap period (on-window degradation + the
        # off-window return to baseline), so the recovery detection reaches
        # the manager in the same fold that opened the incident — before the
        # next chunk boundary would have started a diagnosis wave.
        supervisor = FleetSupervisor(
            chunk_s=3600.0, cooldown_s=7200.0, recovery=recovery
        )
        supervisor.watch_scenario(
            scenario_flapping_san_misconfiguration(hours=TestSupervisorRecovery.HOURS)
        )
        supervisor.run(TestSupervisorRecovery.HOURS * 3600.0)
        return supervisor.incidents()

    @pytest.fixture(scope="class")
    def recovered_incidents(self):
        return self._run(recovery=True)

    def test_flapping_fault_recovers_and_re_escalates(self, recovered_incidents):
        resolutions = {i.resolution for i in recovered_incidents}
        assert "recovered" in resolutions, resolutions
        chained = [i for i in recovered_incidents if i.escalated_from]
        assert chained, "a flapping fault must re-escalate at least once"
        by_id = {i.incident_id: i for i in recovered_incidents}
        for incident in chained:
            predecessor = by_id[incident.escalated_from]
            assert predecessor.resolution == "recovered"
            assert incident.escalations == predecessor.escalations + 1
            assert incident.opened_at > predecessor.resolved_at

    def test_defaults_off_history_is_unchanged(self):
        incidents = self._run(recovery=False)
        assert incidents
        assert all(i.resolution != "recovered" for i in incidents)
        assert all(i.escalations == 0 for i in incidents)
        assert all(i.escalated_from is None for i in incidents)
