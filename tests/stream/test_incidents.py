"""Incident lifecycle, deduplication, cooldown and severity."""

from __future__ import annotations

import pytest

from repro.stream import Detection, Incident, IncidentManager, IncidentState, Severity


def det(time: float, target: str = "V1/readTime", magnitude: float = 1.5) -> Detection:
    return Detection(
        time=time, detector="ewma-drift", target=target, value=magnitude * 10.0,
        expected=10.0, magnitude=magnitude, kind="drift",
    )


class TestLifecycle:
    def test_open_diagnosing_resolved(self):
        mgr = IncidentManager("env-a")
        incident = mgr.observe(det(100.0))
        assert incident is not None and incident.state is IncidentState.OPEN
        incident.begin_diagnosis(200.0)
        assert incident.state is IncidentState.DIAGNOSING
        assert incident.diagnosed_at == 200.0
        mgr.resolve(incident, 300.0)
        assert incident.state is IncidentState.RESOLVED
        assert incident.resolved_at == 300.0
        assert mgr.resolved_incidents() == [incident]

    def test_cannot_diagnose_twice(self):
        mgr = IncidentManager("env-a")
        incident = mgr.observe(det(100.0))
        incident.begin_diagnosis(200.0)
        with pytest.raises(ValueError):
            incident.begin_diagnosis(300.0)

    def test_cannot_resolve_twice(self):
        mgr = IncidentManager("env-a")
        incident = mgr.observe(det(100.0))
        mgr.resolve(incident, 200.0)
        with pytest.raises(ValueError):
            incident.resolve(300.0)

    def test_incident_ids_are_unique_and_scoped(self):
        mgr = IncidentManager("env-a", cooldown_s=0.0)
        first = mgr.observe(det(100.0))
        mgr.resolve(first, 150.0)
        second = mgr.observe(det(200.0))
        assert {first.incident_id, second.incident_id} == {
            "INC-env-a-1", "INC-env-a-2",
        }


class TestDedup:
    def test_live_incident_absorbs_same_target(self):
        mgr = IncidentManager("env-a")
        incident = mgr.observe(det(100.0))
        assert mgr.observe(det(160.0)) is None
        assert mgr.observe(det(220.0)) is None
        assert len(mgr) == 1
        assert len(incident.detections) == 3
        assert incident.deduped == 2

    def test_diagnosing_incident_still_absorbs(self):
        mgr = IncidentManager("env-a")
        incident = mgr.observe(det(100.0))
        incident.begin_diagnosis(150.0)
        assert mgr.observe(det(200.0)) is None
        assert incident.deduped == 1

    def test_different_targets_open_different_incidents(self):
        mgr = IncidentManager("env-a")
        a = mgr.observe(det(100.0, target="V1/readTime"))
        b = mgr.observe(det(110.0, target="run:q2-report"))
        assert a is not None and b is not None and a is not b

    def test_dedup_is_per_environment(self):
        a = IncidentManager("env-a")
        b = IncidentManager("env-b")
        assert a.observe(det(100.0)) is not None
        assert b.observe(det(100.0)) is not None


class TestCooldown:
    def test_detection_during_cooldown_suppressed(self):
        mgr = IncidentManager("env-a", cooldown_s=3600.0)
        incident = mgr.observe(det(100.0))
        mgr.resolve(incident, 200.0)
        assert mgr.observe(det(200.0 + 1800.0)) is None
        assert mgr.suppressed == 1
        assert len(mgr) == 1

    def test_detection_after_cooldown_reopens(self):
        mgr = IncidentManager("env-a", cooldown_s=3600.0)
        incident = mgr.observe(det(100.0))
        mgr.resolve(incident, 200.0)
        reopened = mgr.observe(det(200.0 + 3600.0 + 1.0))
        assert reopened is not None and reopened is not incident

    def test_zero_cooldown(self):
        mgr = IncidentManager("env-a", cooldown_s=0.0)
        incident = mgr.observe(det(100.0))
        mgr.resolve(incident, 200.0)
        assert mgr.observe(det(201.0)) is not None

    def test_cooldown_does_not_cross_targets(self):
        mgr = IncidentManager("env-a", cooldown_s=3600.0)
        incident = mgr.observe(det(100.0, target="V1/readTime"))
        mgr.resolve(incident, 200.0)
        other = mgr.observe(det(300.0, target="run:q2-report"))
        assert other is not None

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError):
            IncidentManager("env-a", cooldown_s=-1.0)


class TestSeverity:
    @pytest.mark.parametrize(
        "magnitude,expected",
        [(1.0, Severity.MINOR), (1.9, Severity.MINOR), (2.0, Severity.MAJOR),
         (3.9, Severity.MAJOR), (4.0, Severity.CRITICAL), (10.0, Severity.CRITICAL)],
    )
    def test_thresholds(self, magnitude, expected):
        assert Severity.from_magnitude(magnitude) is expected

    def test_incident_severity_is_max_over_detections(self):
        mgr = IncidentManager("env-a")
        incident = mgr.observe(det(100.0, magnitude=1.2))
        mgr.observe(det(160.0, magnitude=5.0))  # absorbed, raises severity
        assert incident.severity is Severity.CRITICAL


class TestSerialization:
    def test_to_dict_roundtrips_without_report(self):
        mgr = IncidentManager("env-a")
        incident = mgr.observe(det(100.0))
        payload = incident.to_dict()
        assert payload["incident_id"] == incident.incident_id
        assert payload["state"] == "open"
        assert payload["severity"] == "minor"
        assert payload["report"] is None
        assert payload["detections"][0]["target"] == "V1/readTime"
        import json

        json.dumps(payload)  # must be JSON-serialisable


class TestCooldownPruning:
    def test_expired_cooldown_entries_are_pruned_on_observe(self):
        """Regression: per-target cooldown entries were never pruned after
        expiry, so a long-lived fleet with many detection targets leaked one
        entry per target forever and bloated every resume checkpoint.  The
        sweep is size-gated (PRUNE_THRESHOLD) to keep the hot detection
        path O(1) amortised."""
        mgr = IncidentManager("env-a", cooldown_s=600.0)
        # A many-target flapping run: 500 distinct targets, each opening and
        # resolving one incident, spaced so every cooldown expires long
        # before the run ends.
        for i in range(500):
            t = 10_000.0 * i
            incident = mgr.observe(det(t, target=f"V{i}/readTime"))
            assert incident is not None
            mgr.resolve(incident, t + 10.0)
        # Without pruning this held 500 entries; the sweep keeps it bounded.
        assert (
            len(mgr.state_dict()["cooldown_until"])
            <= IncidentManager.PRUNE_THRESHOLD + 1
        )
        assert len(mgr.incidents) == 500

    def test_live_cooldowns_survive_the_sweep(self):
        """Pruning never drops a cooldown that can still suppress."""
        mgr = IncidentManager("env-a", cooldown_s=10_000_000.0)
        threshold = IncidentManager.PRUNE_THRESHOLD
        for i in range(threshold + 10):
            incident = mgr.observe(det(100.0 + i, target=f"T{i}"))
            mgr.resolve(incident, 200.0 + i)  # cooldowns live ~forever
        # sweeps ran (size exceeded the threshold) but nothing was expired
        assert len(mgr.state_dict()["cooldown_until"]) == threshold + 10
        assert mgr.observe(det(5000.0, target="T0")) is None
        assert mgr.suppressed == 1

    def test_flapping_many_targets_keeps_state_bounded(self):
        mgr = IncidentManager("env-a", cooldown_s=300.0)
        n_targets = 2 * IncidentManager.PRUNE_THRESHOLD
        for flap in range(300):
            t = 1000.0 * flap
            incident = mgr.observe(det(t, target=f"T{flap % n_targets}"))
            assert incident is not None, flap
            mgr.resolve(incident, t + 5.0)
        assert (
            len(mgr.state_dict()["cooldown_until"])
            <= IncidentManager.PRUNE_THRESHOLD + 1
        )
        # after expiry the same targets open fresh incidents again
        assert mgr.observe(det(10_000_000.0, target="T0")) is not None
