"""ClockVector skew under the barrier-free loop with a paused member.

Satellite of ISSUE 5: when one member is paused by a (fleet-level or
per-member) diagnosis, the other members must keep advancing on their own
clocks — and with ``max_skew_s`` configured, the fleet's clock skew must
stay bounded by that window (which is what caps the correlation engine's
group-emit latency, since its watermark is the fleet floor).
"""

from __future__ import annotations

import time
from types import SimpleNamespace

import pytest

from repro.core import DiagnosisRequest
from repro.runtime import ClockVector
from repro.stream import FleetSupervisor
from repro.stream.detectors import Detection
from repro.stream.incidents import IncidentManager

CHUNK_S = 1800.0
N_ENVS = 6
TARGET_CHUNKS = 8


class _StubWatched:
    """Deterministic incident pressure: env 0 fires every chunk; the rest
    stay healthy.  Advancing costs ~1 ms of wall time."""

    def __init__(self, index: int) -> None:
        self.name = f"env-{index}"
        self.index = index
        self.query_name = "q-skew"
        self.advanced_s = 0.0
        self.manager = IncidentManager(self.name, cooldown_s=0.0)
        self.env = SimpleNamespace(clock=0.0, bundle=lambda: None)
        self.info = None

    def advance(self, chunk_s: float) -> list[Detection]:
        time.sleep(0.001)
        self.env.clock += chunk_s
        if self.index != 0:
            return []
        return [
            Detection(
                time=self.env.clock,
                detector="stub",
                target="V1/readTime",
                value=10.0,
                expected=5.0,
                magnitude=2.0,
                kind="drift",
            )
        ]

    def diagnosable(self) -> bool:
        return True

    def diagnosis_request(self) -> DiagnosisRequest:
        return DiagnosisRequest(self.env.bundle(), self.query_name)


class _SlowPipeline:
    """Every diagnosis pays a fixed wall latency — the pause under test."""

    def __init__(self, latency_s: float) -> None:
        self.latency_s = latency_s

    def submit_many(self, requests, pool=None):
        from repro.runtime import shared_pool

        pool = pool or shared_pool()

        def diagnose(_request):
            time.sleep(self.latency_s)
            return None

        return [pool.submit(diagnose, r) for r in requests]

    def diagnose_many(self, requests, max_workers=None, pool=None):
        return [f.result() for f in self.submit_many(requests, pool=pool)]


def _run(max_skew_s):
    supervisor = FleetSupervisor(
        pipeline=_SlowPipeline(latency_s=0.12),
        chunk_s=CHUNK_S,
        cooldown_s=0.0,
        max_skew_s=max_skew_s,
    )
    stubs = [_StubWatched(i) for i in range(N_ENVS)]
    for stub in stubs:
        supervisor.watched[stub.name] = stub
    observed = []

    def on_event(event):
        if event["type"] == "advanced":
            observed.append(
                (event["env"], event["advanced_s"], event["fleet_advanced_s"])
            )

    supervisor.run(TARGET_CHUNKS * CHUNK_S, on_event=on_event)
    return supervisor, observed


class TestBoundedSkew:
    def test_others_keep_advancing_while_one_member_is_paused(self):
        supervisor, observed = _run(max_skew_s=2 * CHUNK_S)
        # every member reached the target on its own clock
        clocks = supervisor.clocks
        assert isinstance(clocks, ClockVector)
        assert clocks.min_clock == clocks.max_clock == TARGET_CHUNKS * CHUNK_S
        assert clocks.skew == 0.0
        # while env-0 sat in its slow diagnoses, siblings got ahead of it
        max_lead = max(
            advanced - floor for _env, advanced, floor in observed
        )
        assert max_lead > 0.0

    def test_skew_is_bounded_by_the_configured_window(self):
        _supervisor, observed = _run(max_skew_s=2 * CHUNK_S)
        for _env, advanced, floor in observed:
            assert advanced - floor <= 2 * CHUNK_S + 1e-6

    def test_unbounded_skew_exceeds_the_window(self):
        """Control: without the gate the healthy members race to the target
        while the straggler is still paying its first diagnoses."""
        _supervisor, observed = _run(max_skew_s=None)
        max_lead = max(advanced - floor for _env, advanced, floor in observed)
        assert max_lead > 2 * CHUNK_S

    def test_max_skew_must_cover_a_chunk(self):
        with pytest.raises(ValueError, match="max_skew_s"):
            FleetSupervisor(chunk_s=1800.0, max_skew_s=600.0)

    def test_incident_history_unchanged_by_the_gate(self):
        """The gate is pure wall pacing: simulated histories are identical."""

        def history(max_skew_s):
            supervisor, _ = _run(max_skew_s)
            return [
                (i.incident_id, i.opened_at, i.resolved_at)
                for i in supervisor.incidents()
            ]

        assert history(2 * CHUNK_S) == history(None)
