"""End-to-end closed loop: fleet supervision, auto-marking, auto-diagnosis.

This is the acceptance test of the streaming subsystem: a
:class:`FleetSupervisor` watches four environments concurrently (one with a
flapping fault), no run is ever marked by hand, and every incident that gets
diagnosed must carry a report whose top-ranked cause is the scenario's
injected ground truth.
"""

from __future__ import annotations

import pytest

from repro.cli import DEFAULT_WATCH_FLEET, SCENARIOS
from repro.lab.scenarios import (
    scenario_lock_contention,
    scenario_san_misconfiguration,
    scenario_staggered_dual_faults,
)
from repro.stream import FleetSupervisor, IncidentState

HOURS = 8.0

#: The acceptance fleet is the stock `repro watch` fleet (4 environments,
#: one flapping), so this test covers exactly what the CLI ships.
FLEET = tuple(SCENARIOS[name] for name in DEFAULT_WATCH_FLEET)


@pytest.fixture(scope="module")
def fleet_supervisor():
    supervisor = FleetSupervisor(max_workers=4)
    for factory in FLEET:
        supervisor.watch_scenario(factory(hours=HOURS))
    supervisor.run(HOURS * 3600.0)
    return supervisor


class TestClosedLoop:
    def test_four_environments_watched_concurrently(self, fleet_supervisor):
        assert len(fleet_supervisor.watched) == 4
        for watched in fleet_supervisor.watched.values():
            assert watched.env.clock == HOURS * 3600.0

    def test_every_environment_opened_incidents_without_manual_marking(
        self, fleet_supervisor
    ):
        """No label_by_window / mark() anywhere: detectors do the labelling."""
        for watched in fleet_supervisor.watched.values():
            assert len(watched.manager.incidents) >= 1, watched.name
            runs = watched.env.stores.runs
            # The response-time SLO detector labelled runs on both sides.
            assert runs.satisfactory_runs(watched.query_name)
            assert runs.unsatisfactory_runs(watched.query_name)

    def test_incidents_open_only_after_the_fault(self, fleet_supervisor):
        for watched in fleet_supervisor.watched.values():
            fault_t = watched.info.fault_time
            for incident in watched.manager.incidents:
                assert incident.opened_at >= fault_t, (
                    f"{incident.incident_id} opened at {incident.opened_at} "
                    f"before the fault at {fault_t}"
                )

    def test_every_diagnosed_incident_matches_ground_truth(self, fleet_supervisor):
        diagnosed = [
            (watched, incident)
            for watched in fleet_supervisor.watched.values()
            for incident in watched.manager.incidents
            if incident.report is not None
        ]
        assert diagnosed, "no incident was ever diagnosed"
        for watched, incident in diagnosed:
            truth = watched.info.ground_truth
            assert incident.top_cause_id in truth, (
                f"{incident.incident_id}: top cause {incident.top_cause_id} "
                f"not in ground truth {truth}"
            )

    def test_all_incidents_reach_resolved(self, fleet_supervisor):
        for incident in fleet_supervisor.incidents():
            assert incident.state is IncidentState.RESOLVED

    def test_dedup_and_cooldown_suppress_duplicates(self, fleet_supervisor):
        """The flapping fault re-fires detectors every on-window; incident
        count must stay well below raw detection count."""
        flapping = fleet_supervisor.watched["flapping-san-misconfiguration"]
        manager = flapping.manager
        absorbed = sum(i.deduped for i in manager.incidents)
        assert absorbed + manager.suppressed > 0
        detections = (
            sum(len(i.detections) for i in manager.incidents) + manager.suppressed
        )
        assert len(manager.incidents) < detections

    def test_fleet_wide_dedup(self, fleet_supervisor):
        """Across the whole fleet: many detections, few incidents."""
        total_incidents = len(fleet_supervisor.incidents())
        total_detections = sum(
            sum(len(i.detections) for i in w.manager.incidents) + w.manager.suppressed
            for w in fleet_supervisor.watched.values()
        )
        assert total_incidents < total_detections

    def test_status_rows_and_table(self, fleet_supervisor):
        rows = fleet_supervisor.status_rows()
        assert {r["env"] for r in rows} == set(fleet_supervisor.watched)
        for row in rows:
            assert row["verified"] is True, row
        table = fleet_supervisor.render_table()
        assert "top cause" in table and "[=truth]" in table

    def test_to_dict_is_json_serialisable(self, fleet_supervisor):
        import json

        payload = json.loads(json.dumps(fleet_supervisor.to_dict()))
        assert payload["fleet"] and payload["incidents"]
        diagnosed = [i for i in payload["incidents"] if i["report"] is not None]
        assert diagnosed
        assert all(i["report"]["causes"] for i in diagnosed)


class TestStaggeredDualFaults:
    @pytest.fixture(scope="class")
    def supervisor(self):
        supervisor = FleetSupervisor()
        supervisor.watch_scenario(scenario_staggered_dual_faults(hours=12.0))
        supervisor.run(12.0 * 3600.0)
        return supervisor

    def test_first_incident_opens_before_second_fault(self, supervisor):
        watched = next(iter(supervisor.watched.values()))
        first = min(i.opened_at for i in watched.manager.incidents)
        end_t = 12.0 * 3600.0
        assert end_t / 3.0 <= first < 2.0 * end_t / 3.0

    def test_final_report_ranks_both_causes(self, supervisor):
        watched = next(iter(supervisor.watched.values()))
        last = [i for i in watched.manager.incidents if i.report is not None][-1]
        high = {
            rc.match.cause_id
            for rc in last.report.ranked_causes
            if rc.match.confidence.value == "high"
        }
        assert set(watched.info.ground_truth) <= high
        assert last.top_cause_id in watched.info.ground_truth


class TestSupervisorMechanics:
    def test_tick_without_environments_raises(self):
        with pytest.raises(ValueError):
            FleetSupervisor().tick()

    def test_worker_sizing_never_zero(self):
        """Regression: `max_workers or min(8, len(fleet))` was 0 for an
        empty fleet, so any pool-sized code path (resume fast-forward, a
        subclass calling the sizing helper) crashed constructing a
        ThreadPoolExecutor(max_workers=0).  The sizing is now clamped."""
        supervisor = FleetSupervisor()
        assert supervisor._workers(0) == 1
        assert supervisor._workers(3) == 3
        assert FleetSupervisor(max_workers=4)._workers(0) == 4
        # run() on an empty fleet still reports the real problem, not a
        # pool-construction crash.
        with pytest.raises(ValueError, match="no environments watched"):
            supervisor.run(3600.0)

    def test_run_and_tick_share_event_free_semantics(self):
        """run() with no observers equals the tick loop (sanity alongside
        tests/stream/test_async_equivalence.py which proves it at depth)."""
        a = FleetSupervisor()
        a.watch_scenario(scenario_lock_contention(hours=2.0))
        a.run(2.0 * 3600.0)
        b = FleetSupervisor()
        b.watch_scenario(scenario_lock_contention(hours=2.0))
        elapsed = 0.0
        while elapsed < 2.0 * 3600.0:
            b.tick()
            elapsed += b.chunk_s
        assert [i.to_dict() for i in a.incidents()] == [
            i.to_dict() for i in b.incidents()
        ]

    def test_duplicate_watch_name_rejected(self):
        supervisor = FleetSupervisor()
        supervisor.watch_scenario(scenario_lock_contention(hours=1.0))
        with pytest.raises(ValueError):
            supervisor.watch_scenario(scenario_lock_contention(hours=1.0))

    def test_sequential_and_parallel_advance_agree(self):
        """max_workers=1 and >1 must produce identical incident streams
        (environments are independent; the thread pool is pure fan-out)."""

        def run(workers):
            supervisor = FleetSupervisor(max_workers=workers)
            supervisor.watch_scenario(scenario_san_misconfiguration(hours=6.0))
            supervisor.watch_scenario(scenario_lock_contention(hours=6.0))
            supervisor.run(6.0 * 3600.0)
            return [
                (i.env_name, i.key, i.opened_at, len(i.detections), i.top_cause_id)
                for i in supervisor.incidents()
            ]

        assert run(1) == run(4)

    def test_incremental_advance_equals_one_shot_run(self):
        """Environment.advance in chunks reproduces Environment.run exactly."""
        from repro.lab.scenarios import scenario_san_misconfiguration as s

        one_shot = s(hours=4.0).build().run(4.0 * 3600.0)
        env = s(hours=4.0).build()
        for _ in range(8):
            env.advance(1800.0)
        chunked = env.bundle()
        runs_a = [(r.run_id, r.start_time, r.duration) for r in one_shot.stores.runs.runs()]
        runs_b = [(r.run_id, r.start_time, r.duration) for r in chunked.stores.runs.runs()]
        assert runs_a == runs_b
        assert len(one_shot.stores.metrics) == len(chunked.stores.metrics)
