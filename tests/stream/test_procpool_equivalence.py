"""Cross-backend equivalence: threads, processes, and the barriered tick.

The process-backed pool must be *semantically invisible*, exactly like the
barrier-free runtime before it: a seeded 16-environment fleet supervised on
``ProcessWorkerPool`` workers (simulators and detectors hydrated in worker
processes, JSON deltas crossing the boundary) must produce byte-for-byte
the incident history of the barriered ``tick`` loop and of the thread-pool
``run()`` path — and a run stopped mid-flight must resume **on the other
backend** into the identical history, both directions.  Fleet correlation
rides the same guarantee: shared-fabric runs must group, rank, and
short-circuit identically across backends.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import SCENARIOS
from repro.correlate import fabric_shared_pool_saturation
from repro.runtime import ProcessWorkerPool
from repro.stream import FleetSupervisor

HOURS = 6.0

EIGHT = (
    "san-misconfiguration",
    "flapping-san-misconfiguration",
    "two-external-workloads",
    "data-property-change",
    "lock-contention",
    "cpu-saturation",
    "buffer-pool-thrashing",
    "raid-rebuild",
)

#: Sixteen environments: every scenario twice (independent builds under
#: distinct watch names — same registry identity, so both copies hydrate
#: identically in a worker).
SIXTEEN = tuple((name, name) for name in EIGHT) + tuple(
    (f"{name}-b", name) for name in EIGHT
)

SWITCH_FLEET = tuple(
    (name, name)
    for name in (
        "flapping-san-misconfiguration",
        "san-misconfiguration",
        "lock-contention",
        "cpu-saturation",
    )
)


def _supervisor(members, *, pool=None, state_dir=None, max_workers=None):
    supervisor = FleetSupervisor(
        chunk_s=1800.0,
        cooldown_s=7200.0,
        max_workers=max_workers,
        state_dir=state_dir,
        pool=pool,
    )
    for watch_name, scenario_name in members:
        # Hydration is always passed; thread-backed supervisors ignore it,
        # process-backed ones build the environment in its sticky worker.
        supervisor.watch_scenario(
            SCENARIOS[scenario_name](hours=HOURS),
            name=watch_name,
            hydration={"scenario": scenario_name, "hours": HOURS},
        )
    return supervisor


def _history(supervisor):
    return json.dumps([i.to_dict() for i in supervisor.incidents()], sort_keys=True)


@pytest.fixture()
def proc_pool():
    pool = ProcessWorkerPool(processes=2)
    try:
        yield pool
    finally:
        pool.shutdown()


@pytest.fixture(scope="module")
def tick_history():
    """Ground truth: the 16-env fleet under the barriered sequential tick."""
    supervisor = _supervisor(SIXTEEN, max_workers=1)
    elapsed = 0.0
    while elapsed < HOURS * 3600.0:
        step = min(supervisor.chunk_s, HOURS * 3600.0 - elapsed)
        supervisor.tick(step)
        elapsed += step
    history = _history(supervisor)
    assert json.loads(history), "seeded fleet must open incidents"
    return history


class TestBackendEquivalence:
    def test_thread_backend_matches_tick(self, tick_history):
        supervisor = _supervisor(SIXTEEN)
        supervisor.run(HOURS * 3600.0)
        assert _history(supervisor) == tick_history

    def test_process_backend_matches_tick(self, tick_history, proc_pool):
        supervisor = _supervisor(SIXTEEN, pool=proc_pool)
        # The hydration specs really routed every member to a worker proxy.
        assert all(
            getattr(w, "is_remote", False) for w in supervisor.watched.values()
        )
        supervisor.run(HOURS * 3600.0)
        assert _history(supervisor) == tick_history
        assert supervisor.advanced_s == HOURS * 3600.0
        stats = proc_pool.stats()
        assert stats["affinity_keys"] == len(SIXTEEN)
        assert sorted(w["affinity_keys"] for w in stats["workers"]) == [8, 8]

    def test_status_rows_match_across_backends(self, proc_pool):
        """The fleet table (state, top cause, verification grades) agrees."""
        fleet = SWITCH_FLEET
        threads = _supervisor(fleet)
        threads.run(HOURS * 3600.0)
        procs = _supervisor(fleet, pool=proc_pool)
        procs.run(HOURS * 3600.0)
        assert procs.status_rows() == threads.status_rows()


class TestResumeSwitchesBackends:
    """A checkpoint is backend-neutral: stop on one pool, resume on the other."""

    @pytest.fixture(scope="class")
    def reference_history(self):
        supervisor = _supervisor(SWITCH_FLEET)
        supervisor.run(HOURS * 3600.0)
        history = _history(supervisor)
        assert any(i["report"] for i in json.loads(history)), "reference must diagnose"
        return history

    def _stop_partway(self, supervisor):
        def stop_after_two_hours(event):
            if event["type"] == "advanced" and event["advanced_s"] >= 2.0 * 3600.0:
                supervisor.stop()

        supervisor.run(HOURS * 3600.0, on_event=stop_after_two_hours)
        stopped_at = supervisor.advanced_s
        assert 0 < stopped_at < HOURS * 3600.0, "run should have stopped early"
        return stopped_at

    def test_threads_then_process(self, tmp_path, reference_history, proc_pool):
        state = tmp_path / "state"
        first = _supervisor(SWITCH_FLEET, state_dir=state)
        stopped_at = self._stop_partway(first)
        del first

        second = _supervisor(SWITCH_FLEET, pool=proc_pool, state_dir=state)
        assert second.has_checkpoint()
        covered = second.resume()
        assert covered == stopped_at
        second.run(HOURS * 3600.0 - covered)
        assert _history(second) == reference_history

    def test_process_then_threads(self, tmp_path, reference_history):
        state = tmp_path / "state"
        pool = ProcessWorkerPool(processes=2)
        try:
            first = _supervisor(SWITCH_FLEET, pool=pool, state_dir=state)
            stopped_at = self._stop_partway(first)
            del first
        finally:
            pool.shutdown()

        second = _supervisor(SWITCH_FLEET, state_dir=state)
        covered = second.resume()
        assert covered == stopped_at
        second.run(HOURS * 3600.0 - covered)
        assert _history(second) == reference_history


class TestFleetCorrelationAcrossBackends:
    """Shared-fabric grouping, ranking, and short-circuits agree byte-for-byte.

    The fleet diagnosis wave pulls every affected member's full bundle into
    the parent — on the process backend that exercises the worker-side
    ``bundle_env`` export — so identical fleet incidents prove the bundle
    payload round-trip is lossless where it matters.
    """

    def _run(self, pool=None):
        fabric = fabric_shared_pool_saturation(hours=HOURS, n_envs=8, attached=6)
        engine = fabric.correlator()
        supervisor = FleetSupervisor(
            correlator=engine, cooldown_s=HOURS * 3600.0, pool=pool
        )
        fabric.watch_all(
            supervisor,
            hydration={"fleet": "shared-pool-saturation", "hours": HOURS},
        )
        supervisor.run(HOURS * 3600.0)
        return engine, supervisor

    def test_fleet_incidents_identical(self, proc_pool):
        thread_engine, thread_sup = self._run()
        proc_engine, proc_sup = self._run(pool=proc_pool)
        assert all(
            getattr(w, "is_remote", False) for w in proc_sup.watched.values()
        )

        def dump(groups):
            return json.dumps([g.to_dict() for g in groups], sort_keys=True)

        thread_groups = thread_engine.fleet_incidents()
        assert thread_groups, "acceptance fabric must produce a fleet incident"
        assert dump(proc_engine.fleet_incidents()) == dump(thread_groups)
        assert _history(proc_sup) == _history(thread_sup)
