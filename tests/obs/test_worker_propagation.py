"""Cross-process span/metric propagation: the obs envelope seam.

Covers the worker-side buffered API in-process (context payload, task
scope, drain/ingest round-trip, merge idempotence, buffer bounds) and the
real seam end-to-end through a :class:`ProcessWorkerPool` — span context
out in the task envelope, worker spans home piggy-backed on the result.
"""

from __future__ import annotations

import pytest

from repro.obs import clock as obs_clock
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs import worker as obs_worker
from repro.storage import MemoryBackend


@pytest.fixture(autouse=True)
def _clean_worker_state():
    obs_worker.reset()
    yield
    obs_worker.reset()


def _sink():
    backend = MemoryBackend()
    obs_trace.tracer().set_sink(backend)
    return backend


class TestContextPayload:
    def test_disabled_is_none(self, obs_disabled):
        # None means the procpool never wraps the task envelope: obs-off
        # wire bytes are byte-identical to a build without obs at all.
        assert obs_worker.context_payload() is None

    def test_enabled_no_span_is_empty(self, obs_enabled):
        assert obs_worker.context_payload() == {}

    def test_carries_active_span(self, obs_enabled):
        with obs_trace.span("iteration", env="e1", sim_t=7.0) as parent:
            ctx = obs_worker.context_payload()
        assert ctx["trace_id"] == parent.trace_id
        assert ctx["span_id"] == parent.span_id
        assert ctx["sim_t"] == 7.0


class TestTaskScopeRoundTrip:
    def test_spans_parent_under_incoming_context(self, obs_enabled):
        sink = _sink()
        ctx = {"trace_id": "s9", "span_id": "s9", "sim_t": 3.0}
        with obs_worker.task_scope(ctx, task="demo:task"):
            with obs_worker.worker_span("worker.step"):
                pass
        payload = obs_worker.drain(include_metrics=True)
        assert payload is not None and len(payload["spans"]) == 2
        merged = obs_worker.ingest(payload, worker=0)
        assert merged == 2
        records = {r["name"]: r for r in sink.scan("traces")}
        root = records["worker.task"]
        child = records["worker.step"]
        assert root["trace_id"] == "s9" and root["parent_id"] == "s9"
        assert child["parent_id"] == root["span_id"]
        assert root["t"] == 3.0 and child["t"] == 3.0
        # pid/worker annotations arrive at ingest, not in the worker.
        assert root["attrs"]["pid"] == payload["pid"]
        assert root["attrs"]["worker"] == 0
        # Wall starts were rebased onto this process's clock, never negative.
        assert root["wall_start"] >= 0.0

    def test_no_context_is_noop(self, obs_enabled):
        with obs_worker.task_scope(None):
            with obs_worker.worker_span("worker.step"):
                pass
        # No context → no buffered spans, nothing to ship.
        assert obs_worker.drain(include_metrics=False) is None

    def test_worker_span_ids_disjoint_from_parent_ids(self, obs_enabled):
        # Parent spans are s<n>; worker spans are w<pid>s<n> — the span-id
        # namespaces can never collide, so the dedup key is sound.
        with obs_worker.task_scope({}, task="t"):
            pass
        payload = obs_worker.drain()
        assert payload["spans"][0]["span_id"].startswith("w")


class TestMergeIdempotence:
    def test_reingesting_same_payload_adds_nothing(self, obs_enabled):
        sink = _sink()
        with obs_worker.task_scope({}, task="t"):
            pass
        payload = obs_worker.drain()
        assert obs_worker.ingest(payload, worker=1) == 1
        before = len(list(sink.scan("traces")))
        # At-least-once delivery: a retried flush or a re-dispatched result
        # replays the identical payload — the merge must not duplicate.
        assert obs_worker.ingest(payload, worker=1) == 0
        assert len(list(sink.scan("traces"))) == before

    def test_metrics_fold_is_idempotent(self, obs_enabled):
        dump = {"counters": {"env.chunks": 5.0}, "gauges": {}, "histograms": {}}
        obs_worker.ingest({"pid": 42, "spans": [], "metrics": dump})
        obs_worker.ingest({"pid": 42, "spans": [], "metrics": dump})
        snap = obs_metrics.registry().snapshot()
        # Cumulative set-total fold: same dump twice is the same total.
        assert snap["counters"]["worker.42.env.chunks"] == 5.0
        assert snap["counters"]["workers.env.chunks"] == 5.0

    def test_aggregates_sum_across_workers(self, obs_enabled):
        for pid, count in ((41, 3.0), (42, 4.0)):
            obs_worker.ingest(
                {
                    "pid": pid,
                    "spans": [],
                    "metrics": {"counters": {"env.chunks": count}},
                }
            )
        snap = obs_metrics.registry().snapshot()
        assert snap["counters"]["workers.env.chunks"] == 7.0


class TestBufferBounds:
    def test_overflow_drops_and_reports(self, obs_enabled):
        with obs_worker.task_scope({}, task="t"):
            for _ in range(obs_worker._BUFFER_LIMIT + 10):
                with obs_worker.worker_span("worker.spin"):
                    pass
        payload = obs_worker.drain()
        assert len(payload["spans"]) == obs_worker._BUFFER_LIMIT
        assert payload["dropped"] >= 10
        obs_worker.ingest(payload)
        snap = obs_metrics.registry().snapshot()
        assert snap["counters"]["obs.worker_spans_dropped"] >= 10


class TestProcessPoolSeam:
    def test_roundtrip_through_real_pool(self, obs_enabled):
        pool_mod = pytest.importorskip("repro.runtime.procpool")
        sink = _sink()
        pool = pool_mod.ProcessWorkerPool(processes=1)
        try:
            with obs_trace.span("iteration", env="e1", sim_t=42.0) as parent:
                out = pool.run_task(
                    "repro.obs.worker:ping", {"spin": 100}, affinity="e1"
                )
            assert out["ok"] is True
            pool.collect_obs()
        finally:
            pool.shutdown()
        records = {r["name"]: r for r in sink.scan("traces")}
        task_span = records["worker.task"]
        ping_span = records["worker.ping"]
        # One coherent timeline: worker spans are children of the parent's
        # iteration span, on the parent's trace, at the simulated instant.
        assert task_span["parent_id"] == parent.span_id
        assert task_span["trace_id"] == parent.trace_id
        assert ping_span["parent_id"] == task_span["span_id"]
        assert task_span["t"] == 42.0
        assert task_span["attrs"]["pid"] > 0

    def test_obs_off_result_unwrapped(self, obs_disabled):
        pool_mod = pytest.importorskip("repro.runtime.procpool")
        pool = pool_mod.ProcessWorkerPool(processes=1)
        try:
            out = pool.run_task("repro.obs.worker:ping", {"spin": 10})
            # No envelope when obs is off: the result arrives verbatim,
            # so obs-off wire bytes (and checkpoints) are unchanged.
            assert out == {"ok": True, "acc": out["acc"]}
            assert "__obs__" not in out
        finally:
            pool.shutdown()
