"""Observability test fixtures: force the switch, isolate the singletons."""

from __future__ import annotations

import pytest

from repro.obs import clock as obs_clock
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@pytest.fixture
def obs_enabled():
    """Observability on, with clean tracer/registry state before and after.

    The tracer and metrics registry are process-wide singletons; tests must
    not leak aggregates, sinks, or the forced-on flag into each other (or
    into the rest of the suite, which assumes observability is off).
    """
    obs_clock.enable()
    obs_trace.tracer().reset()
    obs_metrics.registry().reset()
    try:
        yield
    finally:
        obs_trace.tracer().reset()
        obs_metrics.registry().reset()
        obs_clock.reset()


@pytest.fixture
def obs_disabled():
    """Observability explicitly off (wins over REPRO_OBS in the env)."""
    obs_clock.disable()
    try:
        yield
    finally:
        obs_clock.reset()
