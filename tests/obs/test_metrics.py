"""Metrics registry: instruments, snapshots, and the disabled fast path."""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import profile_payload
from repro.obs import span
from repro.storage import keyspaces
from repro.storage.backend import MemoryBackend


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self, obs_enabled):
        c = obs_metrics.registry().counter("test.count")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_set_and_add(self, obs_enabled):
        g = obs_metrics.registry().gauge("test.depth")
        g.set(4.0)
        g.add(-1.0)
        assert g.value == 3.0

    def test_histogram_summary_and_percentiles(self, obs_enabled):
        h = obs_metrics.registry().histogram("test.latency_s")
        for v in (0.001, 0.002, 0.004, 0.008, 0.5):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 5
        assert summary["sum_s"] == pytest.approx(0.515)
        assert summary["max_ms"] == pytest.approx(500.0)
        # Percentile estimates are bucket upper bounds, clamped to the
        # observed max — never above it.
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["max_ms"]

    def test_get_or_create_is_idempotent(self, obs_enabled):
        reg = obs_metrics.registry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")


class TestModuleHelpers:
    def test_helpers_record_when_enabled(self, obs_enabled):
        obs_metrics.inc("fires", 2)
        obs_metrics.set_gauge("depth", 7.0)
        obs_metrics.add_gauge("depth", -2.0)
        obs_metrics.observe("lat_s", 0.01)
        with obs_metrics.timed("op_s"):
            pass
        snap = obs_metrics.registry().snapshot()
        assert snap["counters"]["fires"] == 2
        assert snap["gauges"]["depth"] == 5.0
        assert snap["histograms"]["lat_s"]["count"] == 1
        assert snap["histograms"]["op_s"]["count"] == 1

    def test_helpers_are_noops_when_disabled(self, obs_disabled):
        obs_metrics.inc("fires")
        obs_metrics.set_gauge("depth", 7.0)
        obs_metrics.observe("lat_s", 0.01)
        with obs_metrics.timed("op_s"):
            pass
        snap = obs_metrics.registry().snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_timed_returns_shared_null_timer_when_disabled(self, obs_disabled):
        assert obs_metrics.timed("a") is obs_metrics.timed("b")


class TestSnapshots:
    def test_snapshot_to_backend_on_simulated_timeline(self, obs_enabled):
        obs_metrics.inc("fires", 3)
        backend = MemoryBackend()
        obs_metrics.registry().snapshot_to(backend, 1800.0)
        obs_metrics.inc("fires", 1)
        obs_metrics.registry().snapshot_to(backend, 3600.0)
        records = list(backend.scan(keyspaces.OBS_METRICS))
        assert [r["t"] for r in records] == [1800.0, 3600.0]
        assert records[0]["metrics"]["counters"]["fires"] == 3
        assert records[1]["metrics"]["counters"]["fires"] == 4

    def test_profile_payload_combines_spans_and_metrics(self, obs_enabled):
        with span("advance"):
            obs_metrics.inc("fires")
        payload = profile_payload()
        assert payload["enabled"] is True
        assert payload["spans"]["advance"]["count"] == 1
        assert payload["metrics"]["counters"]["fires"] == 1
