"""The ISSUE acceptance bars: critical-path coverage and byte-for-byte resume.

* ``repro trace --critical-path`` must attribute >= 95% of each tick's wall
  time to named spans on a 16-environment fleet.
* A killed-and-resumed ``repro watch --state-dir`` run with observability
  enabled must reproduce the incident history byte-for-byte — traces and
  metrics are sidecar-only and invisible to the resume path.
"""

from __future__ import annotations

import json
import time
from types import SimpleNamespace

from repro.lab.scenarios import scenario_flapping_san_misconfiguration
from repro.obs import OBS_DIR, critical_path
from repro.obs import clock as obs_clock
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.storage import MemoryBackend, keyspaces
from repro.core import DiagnosisRequest
from repro.stream import FleetSupervisor
from repro.stream.detectors import Detection
from repro.stream.incidents import IncidentManager

CHUNK_S = 1800.0
N_ENVS = 16
TARGET_CHUNKS = 4


class _StubWatched:
    """16-env fleet member: ~2ms advance cost, env 0 fires every chunk."""

    def __init__(self, index: int) -> None:
        self.name = f"env-{index:02d}"
        self.index = index
        self.query_name = "q-obs"
        self.advanced_s = 0.0
        self.manager = IncidentManager(self.name, cooldown_s=0.0)
        self.env = SimpleNamespace(clock=0.0, bundle=lambda: None)
        self.info = None

    def advance(self, chunk_s: float) -> list[Detection]:
        time.sleep(0.002)
        self.env.clock += chunk_s
        if self.index != 0:
            return []
        return [
            Detection(
                time=self.env.clock,
                detector="stub",
                target="V1/readTime",
                value=10.0,
                expected=5.0,
                magnitude=2.0,
                kind="drift",
            )
        ]

    def diagnosable(self) -> bool:
        return True

    def diagnosis_request(self) -> DiagnosisRequest:
        return DiagnosisRequest(self.env.bundle(), self.query_name)


class _FastPipeline:
    """Duck-typed pipeline: a short fixed diagnosis latency."""

    def submit_many(self, requests, pool=None):
        from repro.runtime import shared_pool

        pool = pool or shared_pool()

        def diagnose(_request):
            time.sleep(0.005)
            return None

        return [pool.submit(diagnose, r) for r in requests]

    def diagnose_many(self, requests, max_workers=None, pool=None):
        return [f.result() for f in self.submit_many(requests, pool=pool)]


class TestCriticalPathCoverage:
    def test_16_env_fleet_attributes_95_percent(self, obs_enabled):
        sink = MemoryBackend()
        obs_trace.tracer().set_sink(sink)
        supervisor = FleetSupervisor(
            pipeline=_FastPipeline(), chunk_s=CHUNK_S, cooldown_s=0.0
        )
        stubs = [_StubWatched(i) for i in range(N_ENVS)]
        for stub in stubs:
            supervisor.watched[stub.name] = stub
        supervisor.run(TARGET_CHUNKS * CHUNK_S)
        obs_trace.tracer().set_sink(None)

        spans = sorted(
            sink.scan(keyspaces.TRACES), key=lambda s: s.get("wall_start", 0.0)
        )
        report = critical_path(spans)
        assert report["roots"] >= N_ENVS * TARGET_CHUNKS
        assert report["coverage"] >= 0.95, (
            f"named spans cover only {report['coverage']:.1%} of root wall "
            f"time across {report['roots']} iterations (need >= 95%)"
        )
        # The attribution ranking names the real phases.
        assert "advance" in report["by_name"]
        assert set(report["by_name"]) <= {
            "wait", "advance", "detect", "diagnose", "correlate",
            "snapshot", "emit",
        }
        # The in-process metrics registry tracked the same run.
        counters = obs_metrics.registry().snapshot()["counters"]
        assert counters["supervisor.iterations"] >= N_ENVS * TARGET_CHUNKS
        assert counters["detectors.fires"] >= TARGET_CHUNKS


class TestResumeByteForByte:
    HOURS = 6.0
    KILL_AFTER = 3.0

    @staticmethod
    def _supervisor(state_dir=None):
        sup = FleetSupervisor(
            chunk_s=1800.0, cooldown_s=7200.0, state_dir=state_dir
        )
        sup.watch_scenario(
            scenario_flapping_san_misconfiguration(hours=TestResumeByteForByte.HOURS)
        )
        return sup

    def test_killed_resumed_obs_run_matches_obs_off_reference(
        self, tmp_path, obs_enabled
    ):
        # Reference: uninterrupted, observability fully off.
        obs_clock.disable()
        reference_sup = self._supervisor()
        reference_sup.run(self.HOURS * 3600.0)
        reference = [i.to_dict() for i in reference_sup.incidents()]
        assert any(t["report"] for t in reference), "reference must diagnose"

        # Killed and resumed, observability on: the sidecar must not
        # perturb a single byte of the incident history.
        obs_clock.enable()
        state = tmp_path / "state"
        first = self._supervisor(state)
        first.run(self.KILL_AFTER * 3600.0)
        del first  # SIGKILL: no clean shutdown, no close()

        second = self._supervisor(state)
        assert second.has_checkpoint()
        covered = second.resume()
        assert covered == self.KILL_AFTER * 3600.0
        second.run(self.HOURS * 3600.0 - covered)

        resumed = [i.to_dict() for i in second.incidents()]
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
        # The observability sidecar really was written — and only under
        # the obs/ subdirectory, where replay never looks.
        obs_root = state / OBS_DIR
        assert (obs_root / f"{keyspaces.TRACES}.jsonl").exists()
        assert (obs_root / f"{keyspaces.OBS_METRICS}.jsonl").exists()
