"""Offline trace analysis: tables, Chrome trace JSON, critical paths."""

from __future__ import annotations

import json

import pytest

from repro.obs import chrome_trace, critical_path, summarize
from repro.obs.export import load_metric_snapshots, load_spans, write_chrome_trace


def _span(
    name: str,
    span_id: str,
    start: float,
    dur: float,
    *,
    parent: str | None = None,
    env: str | None = None,
    t: float = 0.0,
) -> dict:
    record = {
        "t": t,
        "name": name,
        "span_id": span_id,
        "trace_id": span_id if parent is None else "s1",
        "wall_start": start,
        "wall_dur": dur,
    }
    if parent is not None:
        record["parent_id"] = parent
    if env is not None:
        record["k"] = env
    return record


#: One iteration (1.0s) with three children: advance covers [0.1, 0.7],
#: detect overlaps it on [0.6, 0.8], diagnose covers [0.85, 0.95].  The
#: union covers 0.80s of the 1.0s root.
SYNTHETIC = [
    _span("iteration", "s1", 0.0, 1.0, env="db1", t=1800.0),
    _span("advance", "s2", 0.1, 0.6, parent="s1", env="db1"),
    _span("detect", "s3", 0.6, 0.2, parent="s1", env="db1"),
    _span("diagnose", "s4", 0.85, 0.1, parent="s1", env="db1"),
]


class TestSummarize:
    def test_per_name_stats_sorted_by_total(self):
        summary = summarize(SYNTHETIC)
        assert list(summary) == ["iteration", "advance", "detect", "diagnose"]
        assert summary["advance"]["count"] == 1
        assert summary["advance"]["total_s"] == pytest.approx(0.6)
        assert summary["advance"]["max_ms"] == pytest.approx(600.0)

    def test_empty_input(self):
        assert summarize([]) == {}


class TestChromeTrace:
    def test_event_shape_and_relative_microseconds(self):
        payload = chrome_trace(SYNTHETIC)
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in meta} == {"supervisor", "env:db1"}
        assert len(slices) == len(SYNTHETIC)
        root = next(e for e in slices if e["name"] == "iteration")
        assert root["ts"] == 0.0  # relative to the earliest span
        assert root["dur"] == pytest.approx(1e6)
        assert root["args"]["sim_t"] == 1800.0
        child = next(e for e in slices if e["name"] == "advance")
        assert child["tid"] == root["tid"]  # same env, same track
        assert child["ts"] == pytest.approx(0.1e6)

    def test_round_trips_through_json(self, tmp_path):
        out = tmp_path / "trace.json"
        count = write_chrome_trace(SYNTHETIC, out)
        payload = json.loads(out.read_text())
        assert len(payload["traceEvents"]) == count
        assert payload["displayTimeUnit"] == "ms"

    def test_empty_input(self):
        assert chrome_trace([]) == {"traceEvents": []}


class TestCriticalPath:
    def test_interval_union_coverage(self):
        report = critical_path(SYNTHETIC)
        assert report["roots"] == 1
        assert report["total_wall_s"] == pytest.approx(1.0)
        # advance [0.1,0.7] + detect [0.6,0.8] merge to 0.7; diagnose adds 0.1.
        assert report["covered_wall_s"] == pytest.approx(0.8)
        assert report["coverage"] == pytest.approx(0.8)
        assert report["by_name"]["advance"] == pytest.approx(0.6)
        assert report["by_name"]["detect"] == pytest.approx(0.2)

    def test_children_clipped_to_root(self):
        spans = [
            _span("iteration", "s1", 1.0, 1.0, env="e"),
            # Starts before the root and ends after it: only [1.0, 2.0] counts.
            _span("advance", "s2", 0.5, 2.0, parent="s1", env="e"),
        ]
        report = critical_path(spans)
        assert report["covered_wall_s"] == pytest.approx(1.0)
        assert report["coverage"] == pytest.approx(1.0)

    def test_slowest_roots_ranked_with_phase_chain(self):
        spans = list(SYNTHETIC) + [
            _span("iteration", "s9", 5.0, 2.0, env="db2", t=3600.0),
            _span("advance", "s10", 5.0, 1.9, parent="s9", env="db2"),
        ]
        report = critical_path(spans)
        assert report["roots"] == 2
        slowest = report["slowest"][0]
        assert slowest["span_id"] == "s9"
        assert slowest["env"] == "db2"
        assert [p["name"] for p in slowest["phases"]] == ["advance"]

    def test_no_roots(self):
        report = critical_path([_span("advance", "s2", 0.0, 1.0)])
        assert report["roots"] == 0
        assert report["coverage"] == 1.0


class TestLoaders:
    def test_missing_sidecar_is_empty(self, tmp_path):
        assert load_spans(tmp_path) == []
        assert load_metric_snapshots(tmp_path) == []
