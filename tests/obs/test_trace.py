"""Spans: nesting, both clocks, journalling, and cross-thread propagation."""

from __future__ import annotations

import pytest

from repro.obs import current_span, span
from repro.obs import trace as obs_trace
from repro.runtime import Scheduler, WorkerPool
from repro.storage import keyspaces
from repro.storage.backend import MemoryBackend


class TestDisabled:
    def test_span_is_shared_noop(self, obs_disabled):
        first = span("anything", sim_t=1.0, env="e")
        second = span("other")
        assert first is second  # the shared _NOOP singleton — no allocation

    def test_noop_span_swallows_protocol(self, obs_disabled):
        with span("x") as s:
            assert s.annotate(count=3) is s
        assert current_span() is None

    def test_wrap_task_returns_fn_unchanged(self, obs_disabled):
        def fn():
            return 42

        assert obs_trace.wrap_task(fn) is fn


class TestNesting:
    def test_parent_trace_and_sim_time_inheritance(self, obs_enabled):
        with span("iteration", sim_t=1800.0, env="db1") as root:
            with span("advance") as child:
                assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id == root.span_id
                # sim_t inherits from the parent when the site has none.
                assert child.sim_t == 1800.0
            with span("detect", sim_t=3600.0) as sibling:
                assert sibling.parent_id == root.span_id
                assert sibling.sim_t == 3600.0
        assert current_span() is None

    def test_current_span_restored_after_exit(self, obs_enabled):
        with span("outer") as outer:
            with span("inner"):
                assert current_span() is not outer
            assert current_span() is outer
        assert current_span() is None

    def test_exception_recorded_and_context_reset(self, obs_enabled):
        with pytest.raises(RuntimeError):
            with span("doomed") as s:
                raise RuntimeError("boom")
        assert s.attrs["error"] == "RuntimeError"
        assert current_span() is None

    def test_wall_duration_measured(self, obs_enabled):
        with span("timed") as s:
            pass
        assert s.wall_end >= s.wall_start
        assert s.wall_dur >= 0.0


class TestJournalling:
    def test_finished_spans_append_to_sink(self, obs_enabled):
        sink = MemoryBackend()
        obs_trace.tracer().set_sink(sink)
        with span("iteration", sim_t=60.0, env="db1", chunk_s=30.0):
            with span("advance"):
                pass
        records = list(sink.scan(keyspaces.TRACES))
        assert [r["name"] for r in records] == ["advance", "iteration"]
        root = records[1]
        child = records[0]
        assert root["k"] == "db1"  # env becomes the routing key
        assert root["t"] == 60.0
        assert root["attrs"] == {"chunk_s": 30.0}
        assert child["parent_id"] == root["span_id"]
        assert child["trace_id"] == root["trace_id"] == root["span_id"]
        assert "parent_id" not in root

    def test_detached_sink_stops_journalling(self, obs_enabled):
        sink = MemoryBackend()
        obs_trace.tracer().set_sink(sink)
        with span("one"):
            pass
        obs_trace.tracer().set_sink(None)
        with span("two"):
            pass
        assert [r["name"] for r in sink.scan(keyspaces.TRACES)] == ["one"]

    def test_aggregates_fold_without_sink(self, obs_enabled):
        for _ in range(3):
            with span("advance"):
                pass
        agg = obs_trace.tracer().aggregate()
        assert agg["advance"]["count"] == 3
        assert agg["advance"]["total_s"] >= 0.0


class TestThreadHop:
    def test_wrap_task_carries_span_across_pool_submit(self, obs_enabled):
        """Span parentage survives the executor thread hop (satellite d)."""
        seen: dict = {}

        def work() -> None:
            with span("pipeline.module") as s:
                seen["parent_id"] = s.parent_id
                seen["trace_id"] = s.trace_id

        with WorkerPool(max_workers=2) as pool:
            with span("iteration", env="db1") as root:
                pool.submit(work).result()
        assert seen["parent_id"] == root.span_id
        assert seen["trace_id"] == root.trace_id

    def test_scheduler_call_to_pool_preserves_parentage(self, obs_enabled):
        """The full hot seam: Scheduler.call -> WorkerPool.submit -> thread.

        contextvars flow into the asyncio task automatically; wrap_task
        carries them over the executor hop, so a span opened on the worker
        thread parents under the iteration span that scheduled it.
        """
        seen: dict = {}

        def work() -> str:
            with span("diagnose") as s:
                seen["parent_id"] = s.parent_id
            return "done"

        async def main(scheduler: Scheduler) -> str:
            with span("iteration", sim_t=30.0, env="db1") as root:
                seen["root_id"] = root.span_id
                return await scheduler.call(work)

        with WorkerPool(max_workers=2) as pool:
            scheduler = Scheduler(pool)
            assert scheduler.run(main(scheduler)) == "done"
        assert seen["parent_id"] == seen["root_id"]

    def test_no_open_span_submits_unwrapped(self, obs_enabled):
        def work():
            return current_span()

        with WorkerPool(max_workers=1) as pool:
            assert pool.submit(work).result() is None
