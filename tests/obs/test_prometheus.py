"""Prometheus text exposition conformance (format 0.0.4).

Rendering is pure (snapshot in, text out), so these tests feed synthetic
``dump_raw``-shaped snapshots and check the wire format directly: name
sanitisation, label-value escaping, cumulative ``le`` buckets, and the
``worker.<pid>.`` / ``serve.tenant.<id>.`` prefix-to-label encoding.
"""

from __future__ import annotations

from repro.obs import metrics as obs_metrics
from repro.obs.prometheus import CONTENT_TYPE, render_prometheus


def render(counters=None, gauges=None, histograms=None) -> str:
    return render_prometheus(
        {
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": histograms or {},
        }
    )


def test_content_type_is_prometheus_text():
    assert CONTENT_TYPE.startswith("text/plain")
    assert "version=0.0.4" in CONTENT_TYPE


def test_counter_and_gauge_types_and_namespace():
    text = render(
        counters={"serve.connections": 3.0}, gauges={"pool.active": 2.0}
    )
    assert "# TYPE repro_serve_connections counter" in text
    assert "repro_serve_connections 3" in text
    assert "# TYPE repro_pool_active gauge" in text
    assert "repro_pool_active 2" in text


def test_name_sanitisation():
    # Every invalid character maps to _; the repro_ namespace prefix keeps
    # a digit-leading metric name legal without further guarding.
    text = render(counters={"3rd.metric-with bad+chars": 1.0})
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        name = line.split(" ", 1)[0].split("{", 1)[0]
        assert name == "repro_3rd_metric_with_bad_chars"


def test_worker_prefix_becomes_label():
    text = render(counters={"worker.123.env.chunks": 5.0})
    assert 'repro_env_chunks{worker="123"} 5' in text


def test_tenant_prefix_becomes_label():
    text = render(gauges={"serve.tenant.acme.clock_skew_s": 1.5})
    assert 'repro_clock_skew_s{tenant="acme"} 1.5' in text


def test_label_value_escaping():
    # Backslash, double quote, and newline must be escaped per the format
    # spec; anything else passes through verbatim.
    text = render(gauges={'serve.tenant.a\\b"c\nd.sse_clients': 1.0})
    assert '{tenant="a\\\\b\\"c\\nd"}' in text
    assert "\nrepro_sse_clients{" in text  # still a single sample line


def test_histogram_cumulative_buckets():
    text = render(
        histograms={
            "env.advance_s": {
                "bounds": [0.1, 1.0],
                "counts": [2, 1, 1],  # per-bucket: <=0.1, <=1.0, overflow
                "count": 4,
                "sum": 2.5,
                "min": 0.01,
                "max": 2.0,
            }
        }
    )
    lines = [l for l in text.splitlines() if l.startswith("repro_env_advance_s")]
    # Buckets are cumulative and emitted in ascending le order, +Inf last.
    assert lines[0] == 'repro_env_advance_s_bucket{le="0.1"} 2'
    assert lines[1] == 'repro_env_advance_s_bucket{le="1"} 3'
    assert lines[2] == 'repro_env_advance_s_bucket{le="+Inf"} 4'
    assert "repro_env_advance_s_sum 2.5" in lines
    assert "repro_env_advance_s_count 4" in lines
    assert "# TYPE repro_env_advance_s histogram" in text


def test_histogram_le_values_not_lexically_scrambled():
    # A lexical sort would order "10" before "2.5"; the renderer must keep
    # numeric ascending order so cumulative counts stay monotone.
    text = render(
        histograms={
            "h": {
                "bounds": [2.5, 10.0],
                "counts": [1, 1, 0],
                "count": 2,
                "sum": 5.0,
                "min": 1.0,
                "max": 9.0,
            }
        }
    )
    bucket_lines = [l for l in text.splitlines() if "_bucket{" in l]
    assert [l.split('le="')[1].split('"')[0] for l in bucket_lines] == [
        "2.5",
        "10",
        "+Inf",
    ]


def test_families_sorted_and_scrape_parseable():
    text = render(
        counters={"b.second": 1.0, "a.first": 2.0},
        gauges={"serve.tenants": 1.0},
    )
    families = [
        line.split()[2] for line in text.splitlines() if line.startswith("# TYPE")
    ]
    assert families == sorted(families)
    # Minimal scrape-validity: every non-comment line is `name[{labels}] value`.
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        assert name_part and float(value) is not None


def test_renders_live_registry_by_default(obs_enabled):
    obs_metrics.registry().counter("demo.hits").inc(2.0)
    text = render_prometheus()
    assert "repro_demo_hits 2" in text
