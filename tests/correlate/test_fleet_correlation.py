"""Acceptance: shared fabrics + correlation engine + drill-down, end to end.

The ISSUE-5 acceptance criteria:

* on the shared-pool scenario (8 environments, 6 attached to the faulty
  pool) the engine groups all affected members' incidents into ONE
  ``FleetIncident`` whose top-ranked cause is the shared pool;
* the coincidental independent-faults control produces ZERO merged groups;
* a killed-and-resumed run's correlation history is byte-for-byte identical
  to the uninterrupted run's.
"""

from __future__ import annotations

import json

import pytest

from repro.correlate import (
    FleetIncidentState,
    FleetIncidentStore,
    fabric_coincidental_independent_faults,
    fabric_shared_pool_saturation,
    fabric_shared_switch_degradation,
)
from repro.stream import FleetSupervisor, IncidentState

HOURS = 6.0


@pytest.fixture(scope="module")
def pool_run():
    """The acceptance fleet: 8 environments, 6 attached to the faulty pool."""
    fabric = fabric_shared_pool_saturation(hours=HOURS, n_envs=8, attached=6)
    engine = fabric.correlator()
    supervisor = FleetSupervisor(correlator=engine, cooldown_s=HOURS * 3600.0)
    fabric.watch_all(supervisor)
    supervisor.run(HOURS * 3600.0)
    return fabric, engine, supervisor


class TestSharedPoolSaturation:
    def test_one_fleet_incident_groups_all_affected_members(self, pool_run):
        fabric, engine, _sup = pool_run
        groups = engine.fleet_incidents()
        assert len(groups) == 1
        group = groups[0]
        assert group.component_id == "P1"
        assert sorted(group.member_envs) == sorted(fabric.membership()["P1"])

    def test_top_ranked_cause_is_the_shared_pool(self, pool_run):
        _fabric, engine, _sup = pool_run
        group = engine.fleet_incidents()[0]
        assert group.top_cause_id == "shared-component:P1"
        causes = group.report_data["causes"]
        # the pool out-ranks the (also shared, also on-path) core switch:
        # two attached-but-healthy members are evidence against the switch
        by_id = {c["component_id"]: c for c in causes}
        assert by_id["P1"]["score"] > by_id["fcsw-core"]["score"]
        assert by_id["P1"]["coverage"] == pytest.approx(1.0)

    def test_confidence_and_lifecycle(self, pool_run):
        _fabric, engine, _sup = pool_run
        group = engine.fleet_incidents()[0]
        assert group.confidence >= 0.9  # six quiet members firing together
        assert group.state is FleetIncidentState.RESOLVED
        assert all(m["resolved_at"] is not None for m in group.members)

    def test_member_incidents_short_circuited_with_fleet_report(self, pool_run):
        """One fleet report instead of N redundant per-member diagnoses."""
        fabric, engine, supervisor = pool_run
        group = engine.fleet_incidents()[0]
        member_ids = set(group.member_incident_ids)
        assert member_ids  # several incidents per member (metric + SLO)
        for incident in supervisor.incidents():
            assert incident.incident_id in member_ids
            assert incident.state is IncidentState.RESOLVED
            # short-circuited: fleet report attached, no per-member pipeline
            assert incident.report is None
            assert incident.report_data["causes"][0]["cause_id"] == (
                "shared-component:P1"
            )
            # resolved at a deterministic simulated instant: the group's
            # open time (late joiners: their own open time)
            assert incident.resolved_at == max(
                incident.opened_at, group.opened_at
            )

    def test_unattached_members_stay_healthy(self, pool_run):
        fabric, _engine, supervisor = pool_run
        attached = set(fabric.membership()["P1"])
        for name, watched in supervisor.watched.items():
            if name not in attached:
                assert len(watched.manager.incidents) == 0

    def test_rollup_surfaces(self, pool_run):
        _fabric, _engine, supervisor = pool_run
        table = supervisor.render_table()
        assert "fleet incident" in table
        assert "FLEET-P1-1" in table
        payload = json.loads(json.dumps(supervisor.to_dict()))
        assert payload["fleet_incidents"][0]["component_id"] == "P1"
        rows = {r["env"]: r for r in payload["fleet"]}
        attached = _fabric.membership()["P1"]
        assert all(rows[env]["group"] == "FLEET-P1-1" for env in attached)


class TestCoincidentalControl:
    def test_independent_staggered_faults_never_merge(self):
        fabric = fabric_coincidental_independent_faults(hours=HOURS)
        engine = fabric.correlator()
        supervisor = FleetSupervisor(correlator=engine)
        fabric.watch_all(supervisor)
        supervisor.run(HOURS * 3600.0)
        assert engine.fleet_incidents() == []
        # the faults did open incidents — they were just never correlated
        opened = [i for w in supervisor.watched.values() for i in w.manager.incidents]
        assert len(opened) >= 2


class TestSharedSwitchDegradation:
    def test_switch_named_only_by_the_fleet_view(self):
        fabric = fabric_shared_switch_degradation(hours=HOURS, n_envs=4)
        engine = fabric.correlator()
        supervisor = FleetSupervisor(correlator=engine, cooldown_s=HOURS * 3600.0)
        fabric.watch_all(supervisor)
        supervisor.run(HOURS * 3600.0)
        groups = engine.fleet_incidents()
        assert len(groups) == 1
        group = groups[0]
        assert group.component_id == "fcsw-core"
        assert group.top_cause_id == "shared-component:fcsw-core"
        assert sorted(group.member_envs) == sorted(fabric.members)
        # P2 is shared and on dependency paths but its metrics never moved
        by_id = {c["component_id"]: c for c in group.report_data["causes"]}
        assert by_id["fcsw-core"]["score"] > by_id["P2"]["score"]


class TestOutOfProcessTailing:
    def test_correlator_tails_a_state_dir_without_living_in_process(
        self, tmp_path
    ):
        """PR-4 follow-on closed: the supervisor journals its whole event
        stream through the `fleet_events` keyspace, so a correlator in
        another process can reconstruct the fleet incidents by tailing the
        state dir — no `on_event` callback, no shared memory."""
        from repro.stream import FleetEventLog

        state = tmp_path / "state"
        fabric = fabric_shared_pool_saturation(hours=HOURS, n_envs=4, attached=3)
        supervisor = FleetSupervisor(
            cooldown_s=HOURS * 3600.0, state_dir=state  # no correlator wired
        )
        fabric.watch_all(supervisor)
        supervisor.run(HOURS * 3600.0)

        # "another process": a fresh engine over the durable log only
        log = FleetEventLog.open(state)
        tailer = fabric.correlator()
        last = tailer.consume_log(log)
        assert last == log.last_seq >= 0
        groups = tailer.fleet_incidents()
        assert len(groups) >= 1
        assert groups[0].component_id == "P1"
        assert sorted(groups[0].member_envs) == sorted(fabric.membership()["P1"])
        log.close()

    def test_log_tailer_matches_in_process_engine(self, tmp_path):
        """Every correlation-relevant event is journalled with its
        deterministic simulated time (including fleet short-circuit
        resolutions), so a tailer reconstructs the in-process engine's
        fleet history exactly — up to the drill-down reports, which need
        the member bundles the log does not carry."""
        import json

        from repro.stream import FleetEventLog

        state = tmp_path / "state"
        fabric = fabric_shared_pool_saturation(hours=HOURS, n_envs=4, attached=3)
        engine = fabric.correlator()
        supervisor = FleetSupervisor(
            correlator=engine, cooldown_s=2 * 3600.0, state_dir=state
        )
        fabric.watch_all(supervisor)
        supervisor.run(HOURS * 3600.0)

        tailer = fabric.correlator()
        log = FleetEventLog.open(state)
        tailer.consume_log(log)
        tailer.finalize()
        log.close()

        def without_reports(groups):
            return json.dumps(
                [{**g, "report": None} for g in groups], sort_keys=True
            )

        assert len(tailer.fleet_incidents()) == len(engine.fleet_incidents()) > 0
        assert without_reports(tailer.to_dict()) == without_reports(
            engine.to_dict()
        )


class TestResumeParity:
    """Killed-and-resumed correlation history is byte-for-byte identical."""

    @staticmethod
    def _build(state_dir):
        fabric = fabric_shared_pool_saturation(hours=HOURS, n_envs=4, attached=3)
        engine = fabric.correlator(state_dir=state_dir)
        supervisor = FleetSupervisor(
            correlator=engine, cooldown_s=HOURS * 3600.0, state_dir=state_dir
        )
        fabric.watch_all(supervisor)
        return engine, supervisor

    @staticmethod
    def _incident_projection(supervisor):
        """The deterministic incident fields.

        With a correlator, *when* a member notices a fleet decision depends
        on fleet progress, so how many detections an open incident absorbs
        before its (deterministic, backdated) resolution is wall-dependent;
        identity, timing, and the attached report are not.
        """
        return [
            {
                "incident_id": i.incident_id,
                "env": i.env_name,
                "target": i.key[1],
                "state": i.state.value,
                "opened_at": i.opened_at,
                "resolved_at": i.resolved_at,
                "report": i.report_data,
            }
            for i in supervisor.incidents()
        ]

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        state = tmp_path_factory.mktemp("reference")
        engine, supervisor = self._build(state)
        supervisor.run(HOURS * 3600.0)
        assert len(engine.fleet_incidents()) == 1
        return {
            "fleet": json.dumps(
                FleetIncidentStore.open(state).history(), sort_keys=True
            ),
            "engine": json.dumps(engine.to_dict(), sort_keys=True),
            "incidents": json.dumps(
                self._incident_projection(supervisor), sort_keys=True
            ),
        }

    @pytest.mark.parametrize("kill_after_hours", [3.5, 4.5])
    def test_killed_and_resumed_correlation_history_identical(
        self, tmp_path, reference, kill_after_hours
    ):
        state = tmp_path / "state"
        first_engine, first = self._build(state)
        first.run(kill_after_hours * 3600.0)
        del first, first_engine  # SIGKILL: no clean shutdown

        second_engine, second = self._build(state)
        assert second.has_checkpoint()
        covered = second.resume()
        assert covered == kill_after_hours * 3600.0
        second.run(HOURS * 3600.0 - covered)

        assert (
            json.dumps(second_engine.to_dict(), sort_keys=True)
            == reference["engine"]
        )
        assert (
            json.dumps(self._incident_projection(second), sort_keys=True)
            == reference["incidents"]
        )
        journal = FleetIncidentStore.open(state)
        assert json.dumps(journal.history(), sort_keys=True) == reference["fleet"]
        journal.close()
