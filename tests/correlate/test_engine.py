"""Unit tests for the streaming correlation engine (synthetic event streams)."""

from __future__ import annotations

import json

import pytest

from repro.correlate import (
    CorrelationEngine,
    FleetIncidentState,
    FleetIncidentStore,
)
from repro.storage import MemoryBackend
from repro.stream import FleetEventLog

#: Four environments on the pool, six on the switch — the pool is the more
#: specific candidate when members a-c co-fire.
MEMBERSHIP = {
    "P1": ("env-a", "env-b", "env-c", "env-d"),
    "SW": ("env-a", "env-b", "env-c", "env-d", "env-e", "env-f"),
}
ALL_ENVS = MEMBERSHIP["SW"]
WINDOW = 600.0


def adv(env, t):
    return {"type": "advanced", "env": env, "advanced_s": t}


def opened(env, iid, t):
    return {"type": "incident_opened", "env": env, "incident_id": iid, "opened_at": t}


def resolved(env, iid, t):
    return {"type": "incident_resolved", "env": env, "incident_id": iid, "resolved_at": t}


def engine(**kw):
    kw.setdefault("window_s", WINDOW)
    kw.setdefault("min_members", 3)
    kw.setdefault("drilldown_delay_s", 0.0)
    return CorrelationEngine(MEMBERSHIP, **kw)


def advance_all(eng, t, envs=ALL_ENVS):
    ready = []
    for env in envs:
        ready.extend(eng.observe(adv(env, t)))
    return ready


class TestGrouping:
    def test_cooccurring_opens_merge_into_one_group(self):
        eng = engine()
        eng.observe(opened("env-a", "A1", 100.0))
        eng.observe(opened("env-b", "B1", 110.0))
        eng.observe(opened("env-c", "C1", 120.0))
        assert len(eng.fleet_incidents()) == 0  # watermark still at 0
        ready = advance_all(eng, 700.0)
        groups = eng.fleet_incidents()
        assert len(groups) == 1
        group = groups[0]
        # P1 (3 of 4 attached) is more specific than SW (3 of 6).
        assert group.component_id == "P1"
        assert group.member_envs == ["env-a", "env-b", "env-c"]
        assert group.confidence == pytest.approx(0.75)
        assert group.state is FleetIncidentState.OPEN
        # drilldown_delay 0: surfaced for drill-down immediately
        assert [g.fleet_id for g in ready] == [group.fleet_id]

    def test_below_min_members_no_group(self):
        eng = engine()
        eng.observe(opened("env-a", "A1", 100.0))
        eng.observe(opened("env-b", "B1", 110.0))
        advance_all(eng, 700.0)
        assert eng.fleet_incidents() == []

    def test_staggered_opens_outside_window_never_merge(self):
        eng = engine()
        eng.observe(opened("env-a", "A1", 100.0))
        advance_all(eng, 800.0)
        eng.observe(opened("env-b", "B1", 900.0))
        advance_all(eng, 1600.0)
        eng.observe(opened("env-c", "C1", 1700.0))
        advance_all(eng, 2400.0)
        assert eng.fleet_incidents() == []

    def test_later_open_grows_live_group_and_updates_confidence(self):
        eng = engine()
        for env, iid in [("env-a", "A1"), ("env-b", "B1"), ("env-c", "C1")]:
            eng.observe(opened(env, iid, 100.0))
        advance_all(eng, 200.0)
        group = eng.fleet_incidents()[0]
        assert group.confidence == pytest.approx(0.75)
        eng.observe(opened("env-d", "D1", 400.0))
        advance_all(eng, 500.0)
        assert group.member_envs == ["env-a", "env-b", "env-c", "env-d"]
        assert group.confidence == pytest.approx(1.0)

    def test_unattached_env_is_ignored(self):
        eng = engine()
        eng.observe(opened("stranger", "S1", 100.0))
        eng.observe(opened("env-a", "A1", 100.0))
        eng.observe(opened("env-b", "B1", 110.0))
        advance_all(eng, 700.0)
        assert eng.fleet_incidents() == []
        assert eng.disposition("S1", "stranger", 100.0) == "independent"

    def test_baseline_open_rate_discounts_confidence(self):
        """Conditional co-occurrence: the same wave clears the bar on a quiet
        fleet but not on one where two members open incidents all the time
        (their presence in the window is expected by chance)."""

        def final_wave(eng):
            base = 30 * 700.0 + 5000.0
            for i, (env, iid) in enumerate(
                [("env-a", "A-wave"), ("env-b", "B-wave"), ("env-c", "C-wave")]
            ):
                eng.observe(opened(env, iid, base + 10.0 * i))
            advance_all(eng, base + 2000.0)

        quiet = engine(min_confidence=0.6)
        advance_all(quiet, 30 * 700.0)  # same clock, no history
        final_wave(quiet)
        assert len(quiet.fleet_incidents()) == 1
        assert quiet.fleet_incidents()[0].confidence == pytest.approx(0.75)

        noisy = engine(min_confidence=0.6)
        # envs a and b flap constantly (open + resolve every 700 s; pairs
        # never reach min_members, so no noise group forms)
        for wave in range(30):
            t = 700.0 * wave
            noisy.observe(opened("env-a", f"A-noise-{wave}", t + 1.0))
            noisy.observe(opened("env-b", f"B-noise-{wave}", t + 2.0))
            noisy.observe(resolved("env-a", f"A-noise-{wave}", t + 3.0))
            noisy.observe(resolved("env-b", f"B-noise-{wave}", t + 4.0))
            advance_all(noisy, t + 700.0)
        final_wave(noisy)
        # expected co-occupancy of a+b eats the margin: (3 - ~1.15) / 4 < 0.6
        assert len(noisy.fleet_incidents()) == 0


class TestLifecycle:
    def _grouped_engine(self):
        eng = engine()
        for env, iid in [("env-a", "A1"), ("env-b", "B1"), ("env-c", "C1")]:
            eng.observe(opened(env, iid, 100.0))
        advance_all(eng, 200.0)
        return eng, eng.fleet_incidents()[0]

    def test_group_resolves_when_all_members_resolve(self):
        eng, group = self._grouped_engine()
        eng.observe(resolved("env-a", "A1", 300.0))
        eng.observe(resolved("env-b", "B1", 300.0))
        advance_all(eng, 400.0)
        assert group.state is FleetIncidentState.OPEN
        eng.observe(resolved("env-c", "C1", 450.0))
        advance_all(eng, 500.0)
        assert group.state is FleetIncidentState.RESOLVED
        assert group.resolved_at == 450.0

    def test_disposition_transitions(self):
        eng = engine()
        eng.observe(opened("env-a", "A1", 100.0))
        assert eng.disposition("A1", "env-a", 100.0) == "pending"
        advance_all(eng, 200.0)
        # alone, still pending: siblings may fire until 100 + window
        assert eng.disposition("A1", "env-a", 100.0) == "pending"
        advance_all(eng, 100.0 + WINDOW)
        assert eng.disposition("A1", "env-a", 100.0) == "independent"

    def test_grouped_disposition_and_short_circuit(self):
        eng, group = self._grouped_engine()
        assert eng.disposition("A1", "env-a", 100.0) == "grouped"
        assert eng.short_circuit("A1") is None  # report not attached yet
        eng.attach_report(group.fleet_id, {"causes": [{"cause_id": "shared-component:P1"}]})
        fleet_id, resolve_at, report = eng.short_circuit("A1")
        assert fleet_id == group.fleet_id
        assert resolve_at == group.opened_at
        assert report["causes"][0]["cause_id"] == "shared-component:P1"
        assert group.top_cause_id == "shared-component:P1"

    def test_drilldown_delay_defers_readiness(self):
        eng = CorrelationEngine(
            MEMBERSHIP, window_s=WINDOW, min_members=3, drilldown_delay_s=500.0
        )
        for env, iid in [("env-a", "A1"), ("env-b", "B1"), ("env-c", "C1")]:
            eng.observe(opened(env, iid, 100.0))
        assert advance_all(eng, 200.0) == []  # group open, not ready yet
        assert len(eng.fleet_incidents()) == 1
        ready = advance_all(eng, 700.0)  # watermark past 120 + 500
        assert len(ready) == 1


class TestDeterminism:
    def test_refeeding_identical_events_is_idempotent(self):
        store = FleetIncidentStore(MemoryBackend())
        eng = engine(store=store)
        events = [opened("env-a", "A1", 100.0), opened("env-b", "B1", 110.0),
                  opened("env-c", "C1", 120.0)]
        for event in events:
            eng.observe(event)
        advance_all(eng, 700.0)
        once = store.history()
        for event in events:  # at-least-once delivery after a resume
            eng.observe(event)
        advance_all(eng, 800.0)
        assert store.history() == once
        assert len(eng.fleet_incidents()) == 1

    def test_arrival_order_does_not_change_grouping(self):
        """Watermark processing sorts by simulated time: scrambled arrival
        (the barrier-free runtime's interleaving) yields the same groups."""

        def run(order):
            eng = engine()
            for event in order:
                eng.observe(event)
            advance_all(eng, 700.0)
            advance_all(eng, 1500.0)
            return [g.to_dict() for g in eng.fleet_incidents()]

        events = [
            opened("env-a", "A1", 100.0),
            opened("env-b", "B1", 110.0),
            opened("env-c", "C1", 120.0),
            opened("env-d", "D1", 400.0),
        ]
        ordered = run(events)
        scrambled = run([events[3], events[1], events[0], events[2]])
        assert json.dumps(ordered, sort_keys=True) == json.dumps(
            scrambled, sort_keys=True
        )
        assert ordered and ordered[0]["members"]

    def test_confidence_independent_of_how_far_clocks_raced_ahead(self):
        """Regression: confidence once read members' LIVE clocks, which race
        arbitrarily ahead of the watermark under the barrier-free runtime —
        the same simulated history journalled different confidences
        depending on interleaving.  Rates must be measured over the
        watermark."""

        def run(lead_clock):
            eng = engine(min_confidence=0.0)
            # a prior wave so baseline open counts are nonzero
            for env, iid in [("env-a", "P1"), ("env-b", "P2"), ("env-c", "P3")]:
                eng.observe(opened(env, iid, 1000.0))
                eng.observe(resolved(env, iid, 1100.0))
            advance_all(eng, 2000.0)
            # the wave under test
            for env, iid in [("env-a", "A2"), ("env-b", "B2"), ("env-c", "C2")]:
                eng.observe(opened(env, iid, 50_000.0))
            # every member except the laggard races ahead (its clock, not
            # the watermark); the laggard then crosses 51k in BOTH variants,
            # so the watermark sequence at processing time is identical
            for env in ALL_ENVS[:-1]:
                eng.observe(adv(env, lead_clock))
            eng.observe(adv(ALL_ENVS[-1], 51_000.0))
            return [g.confidence for g in eng.fleet_incidents()]

        assert run(51_000.0) == run(500_000.0)
        assert len(run(51_000.0)) == 2  # prior wave grouped too

    def test_state_roundtrip_continues_identically(self):
        def feed_first_half(eng):
            eng.observe(opened("env-a", "A1", 100.0))
            eng.observe(opened("env-b", "B1", 110.0))
            advance_all(eng, 150.0)

        def feed_second_half(eng):
            eng.observe(opened("env-c", "C1", 130.0))
            advance_all(eng, 700.0)
            eng.observe(resolved("env-a", "A1", 800.0))
            eng.observe(resolved("env-b", "B1", 800.0))
            eng.observe(resolved("env-c", "C1", 820.0))
            advance_all(eng, 900.0)

        uninterrupted = engine()
        feed_first_half(uninterrupted)
        feed_second_half(uninterrupted)

        first = engine()
        feed_first_half(first)
        frozen = json.loads(json.dumps(first.state_dict()))  # JSON-able
        second = engine()
        second.load_state(frozen)
        feed_second_half(second)

        assert json.dumps(second.to_dict(), sort_keys=True) == json.dumps(
            uninterrupted.to_dict(), sort_keys=True
        )
        assert second.fleet_incidents()[0].state is FleetIncidentState.RESOLVED


class TestEventLogTailing:
    def test_consume_log_matches_in_process_feed(self):
        log = FleetEventLog(MemoryBackend())
        events = [
            opened("env-a", "A1", 100.0),
            opened("env-b", "B1", 110.0),
            opened("env-c", "C1", 120.0),
        ]
        for event in events:
            log.append(event)
        for env in ALL_ENVS:
            log.append(adv(env, 700.0))

        tailer = engine()
        last = tailer.consume_log(log)
        assert last == log.last_seq

        fed = engine()
        for event in events:
            fed.observe(event)
        advance_all(fed, 700.0)
        assert json.dumps(tailer.to_dict(), sort_keys=True) == json.dumps(
            fed.to_dict(), sort_keys=True
        )
        # incremental tailing picks up only the new records
        log.append(opened("env-d", "D1", 400.0))
        for env in ALL_ENVS:
            log.append(adv(env, 1200.0))
        last2 = tailer.consume_log(log, after_seq=last)
        assert last2 > last
        assert tailer.fleet_incidents()[0].member_envs == [
            "env-a", "env-b", "env-c", "env-d",
        ]

    def test_finalize_drains_without_watermark(self):
        eng = engine()
        for env, iid in [("env-a", "A1"), ("env-b", "B1"), ("env-c", "C1")]:
            eng.observe(opened(env, iid, 100.0))
        assert eng.fleet_incidents() == []
        eng.finalize()
        assert len(eng.fleet_incidents()) == 1


class TestFleetIncidentStore:
    def _populated(self, tmp_path):
        store = FleetIncidentStore.open(tmp_path)
        eng = engine(store=store)
        for env, iid in [("env-a", "A1"), ("env-b", "B1"), ("env-c", "C1")]:
            eng.observe(opened(env, iid, 100.0))
        advance_all(eng, 700.0)
        group = eng.fleet_incidents()[0]
        eng.attach_report(group.fleet_id, {"causes": [{"cause_id": "shared-component:P1"}]})
        for env, iid in [("env-a", "A1"), ("env-b", "B1"), ("env-c", "C1")]:
            eng.observe(resolved(env, iid, 900.0))
        advance_all(eng, 1000.0)
        return store, group

    def test_reopen_replays_identically(self, tmp_path):
        store, _group = self._populated(tmp_path)
        before = store.history()
        assert before[0]["state"] == "resolved"
        assert before[0]["report"]["causes"][0]["cause_id"] == "shared-component:P1"
        store.close()
        reopened = FleetIncidentStore.open(tmp_path)
        assert json.dumps(reopened.history(), sort_keys=True) == json.dumps(
            before, sort_keys=True
        )
        reopened.close()

    def test_duplicate_transitions_fold_idempotently(self, tmp_path):
        store, _group = self._populated(tmp_path)
        once = store.history()
        for rec in list(store.transitions()):
            store.backend.append(store.KEYSPACE, rec)
        store.close()
        reopened = FleetIncidentStore.open(tmp_path)
        assert reopened.history() == once
        reopened.close()

    def test_history_filters(self, tmp_path):
        store, group = self._populated(tmp_path)
        assert store.history(component="P1")[0]["fleet_id"] == group.fleet_id
        assert store.history(component="SW") == []
        assert store.history(state="resolved") != []
        assert store.history(state="open") == []
        assert store.history(since=1e9) == []
        store.close()


class TestResumeGuard:
    def test_load_state_refuses_mismatched_parameters(self):
        """Resuming with a different window/min-members would silently
        produce a divergent fleet history — it must refuse instead."""
        eng = engine()
        frozen = eng.state_dict()
        twin = CorrelationEngine(
            MEMBERSHIP, window_s=WINDOW / 2, min_members=3, drilldown_delay_s=0.0
        )
        with pytest.raises(ValueError, match="different[ \\n]+parameters"):
            twin.load_state(frozen)
        same = engine()
        same.load_state(frozen)  # identical parameters load fine


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CorrelationEngine(MEMBERSHIP, window_s=0.0)
        with pytest.raises(ValueError):
            CorrelationEngine(MEMBERSHIP, min_members=1)
        with pytest.raises(ValueError):
            CorrelationEngine(MEMBERSHIP, min_confidence=1.5)
        with pytest.raises(ValueError):
            CorrelationEngine(MEMBERSHIP, drilldown_delay_s=-1.0)


class TestReEscalation:
    """A successor group opening inside the cooldown links its predecessor."""

    def _resolved_first_wave(self, eng):
        for env, iid in [("env-a", "A1"), ("env-b", "B1"), ("env-c", "C1")]:
            eng.observe(opened(env, iid, 100.0))
        advance_all(eng, 700.0)
        first = eng.fleet_incidents()[0]
        for env, iid in [("env-a", "A1"), ("env-b", "B1"), ("env-c", "C1")]:
            eng.observe(resolved(env, iid, 750.0))
        advance_all(eng, 800.0)
        assert first.state is FleetIncidentState.RESOLVED
        assert first.escalated_from is None
        return first

    def test_successor_inside_cooldown_links_predecessor(self):
        eng = engine()
        first = self._resolved_first_wave(eng)
        # New wave on the same component within one window of the resolve.
        for env, iid in [("env-a", "A2"), ("env-b", "B2"), ("env-c", "C2")]:
            eng.observe(opened(env, iid, 1250.0))
        advance_all(eng, 1900.0)
        groups = eng.fleet_incidents()
        assert len(groups) == 2
        successor = [g for g in groups if g.fleet_id != first.fleet_id][0]
        assert successor.escalated_from == first.fleet_id

    def test_successor_outside_cooldown_is_unlinked(self):
        eng = engine()
        first = self._resolved_first_wave(eng)
        # resolved_at = 750, window 600: opens at 1400 are past the cooldown.
        for env, iid in [("env-a", "A2"), ("env-b", "B2"), ("env-c", "C2")]:
            eng.observe(opened(env, iid, 1400.0))
        advance_all(eng, 2000.0)
        successor = [
            g for g in eng.fleet_incidents() if g.fleet_id != first.fleet_id
        ][0]
        assert successor.escalated_from is None

    def test_link_survives_journal_and_dict_roundtrip(self, tmp_path):
        store = FleetIncidentStore.open(tmp_path)
        eng = engine(store=store)
        first = self._resolved_first_wave(eng)
        for env, iid in [("env-a", "A2"), ("env-b", "B2"), ("env-c", "C2")]:
            eng.observe(opened(env, iid, 1250.0))
        advance_all(eng, 1900.0)
        tickets = {t["fleet_id"]: t for t in store.history()}
        successor_id = [f for f in tickets if f != first.fleet_id][0]
        assert tickets[successor_id]["escalated_from"] == first.fleet_id
        assert tickets[first.fleet_id]["escalated_from"] is None
        store.close()
        # The open record carries the full ticket, so a cold replay folds
        # the link back too.
        reopened = FleetIncidentStore.open(tmp_path)
        assert (
            reopened.history(component="P1")[-1]["escalated_from"]
            == first.fleet_id
        )
        reopened.close()

    def test_cooldown_survives_checkpoint_resume(self):
        eng = engine()
        first = self._resolved_first_wave(eng)
        # Kill/resume between the resolve and the successor wave: the
        # cooldown map must come back from the checkpoint or the resumed
        # run would diverge from the uninterrupted one.
        resumed = engine()
        resumed.load_state(eng.state_dict())
        for env, iid in [("env-a", "A2"), ("env-b", "B2"), ("env-c", "C2")]:
            resumed.observe(opened(env, iid, 1250.0))
        advance_all(resumed, 1900.0)
        successor = [
            g for g in resumed.fleet_incidents() if g.fleet_id != first.fleet_id
        ][0]
        assert successor.escalated_from == first.fleet_id
