"""Shared-fabric builder: membership, shared-fault propagation, validation."""

from __future__ import annotations

import pytest

from repro.correlate import (
    SharedFabricBuilder,
    fabric_coincidental_independent_faults,
    fabric_shared_pool_saturation,
    fabric_shared_switch_degradation,
)
from repro.lab.scenarios import scenario_healthy


class TestBuilder:
    def test_share_unknown_member_rejected(self):
        builder = SharedFabricBuilder("f")
        builder.member("a", scenario_healthy(hours=1.0))
        with pytest.raises(ValueError, match="unknown members"):
            builder.share("P1", "pool", "a", "nope")

    def test_inject_unshared_component_rejected(self):
        builder = SharedFabricBuilder("f")
        builder.member("a", scenario_healthy(hours=1.0))
        with pytest.raises(ValueError, match="never share"):
            builder.inject("P1", at=100.0, apply=lambda inj, t: None)

    def test_duplicate_member_rejected(self):
        builder = SharedFabricBuilder("f")
        builder.member("a", scenario_healthy(hours=1.0))
        with pytest.raises(ValueError, match="already added"):
            builder.member("a", scenario_healthy(hours=1.0))


class TestSharedPoolFabric:
    def test_membership_shape(self):
        fabric = fabric_shared_pool_saturation(hours=2.0, n_envs=8, attached=6)
        assert len(fabric.members) == 8
        membership = fabric.membership()
        assert len(membership["P1"]) == 6
        assert len(membership["fcsw-core"]) == 8
        member = membership["P1"][0]
        assert fabric.components_of(member) == ("P1", "fcsw-core")
        unattached = [m for m in fabric.members if m not in membership["P1"]]
        assert all(fabric.components_of(m) == ("fcsw-core",) for m in unattached)

    def test_shared_fault_propagates_to_attached_members_only(self):
        """Injecting on the shared pool replays the fault into every attached
        member's simulation — and only theirs."""
        fabric = fabric_shared_pool_saturation(hours=1.0, n_envs=3, attached=2)
        attached = fabric.membership()["P1"]
        for name, scenario in fabric.members.items():
            env = scenario.build()
            env.advance(1.0 * 3600.0)  # past the fault at hours/2
            if name in attached:
                assert "Vprime" in env.testbed.topology
                assert scenario.info.ground_truth == (
                    "volume-contention-san-misconfig",
                )
                assert scenario.info.fault_time == 1800.0
            else:
                assert "Vprime" not in env.testbed.topology
                assert scenario.info.ground_truth == ()

    def test_member_info_renamed(self):
        fabric = fabric_shared_pool_saturation(hours=2.0, n_envs=3, attached=2)
        for name, scenario in fabric.members.items():
            assert scenario.info.name == name


class TestSwitchFabric:
    def test_switch_degradation_reaches_every_member(self):
        fabric = fabric_shared_switch_degradation(hours=1.0, n_envs=2)
        for scenario in fabric.members.values():
            env = scenario.build()
            env.advance(1.0 * 3600.0)
            assert "fcsw-core" in env.iosim.degraded_switches
            assert env.stores.events.of_kind("switch_degraded")

    def test_switch_latency_is_felt_by_volumes(self):
        fabric = fabric_shared_switch_degradation(
            hours=1.0, n_envs=2, extra_latency_ms=5.0
        )
        scenario = next(iter(fabric.members.values()))
        env = scenario.build()
        env.advance(1.0 * 3600.0)
        series = env.stores.metrics.series("V1", "readTime")
        before = [s.value for s in series if s.time < 1500.0]
        after = [s.value for s in series if s.time >= 2100.0]
        assert sum(after) / len(after) > sum(before) / len(before) + 3.0


class TestControlFabric:
    def test_faults_are_staggered_beyond_any_window(self):
        fabric = fabric_coincidental_independent_faults(hours=10.0)
        fault_times = sorted(
            s.info.fault_time
            for s in fabric.members.values()
            if s.info.fault_time != float("inf")
        )
        assert len(fault_times) == 3
        gaps = [b - a for a, b in zip(fault_times, fault_times[1:])]
        assert min(gaps) > 2 * 3600.0

    def test_correlator_convenience(self):
        fabric = fabric_coincidental_independent_faults(hours=10.0)
        engine = fabric.correlator(window_s=1800.0, min_members=3)
        assert engine.membership == fabric.membership()
        assert engine.window_s == 1800.0
