"""Shared fixtures.

Scenario bundles are expensive (a simulated working day each), so they are
session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.db.plans import canonical_q2_plan
from repro.db.tpch import build_tpch_catalog
from repro.lab.scenarios import (
    scenario_concurrent_db_san,
    scenario_data_property_change,
    scenario_lock_contention,
    scenario_plan_regression,
    scenario_san_misconfiguration,
    scenario_two_external_workloads,
)
from repro.san.builder import build_testbed

#: Shorter-than-default timeline used by the session fixtures: 10 simulated
#: hours → 10 satisfactory + 10 unsatisfactory runs, enough for "few tens of
#: samples" KDE behaviour while keeping the suite fast.
FIXTURE_HOURS = 10.0


if os.environ.get("REPRO_SANITIZE", "") not in ("", "0", "false"):
    from repro.devtools import sanitize as _sanitize

    @pytest.fixture(autouse=True)
    def _sanitizer_clean():
        """Fail any test during which the runtime sanitizer records a violation.

        Active only under ``REPRO_SANITIZE=1`` (the CI sanitizer job); turns
        lock-order inversions, lock leaks, and unguarded mutations into named
        test failures instead of schedule-dependent flakes.
        """
        before = len(_sanitize.violations())
        yield
        fresh = _sanitize.violations()[before:]
        assert not fresh, "sanitizer violations recorded:\n" + "\n".join(
            v.render() for v in fresh
        )


@pytest.fixture
def testbed():
    return build_testbed()


@pytest.fixture
def catalog():
    return build_tpch_catalog()


@pytest.fixture
def q2_plan():
    return canonical_q2_plan()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def scenario1():
    return scenario_san_misconfiguration(hours=FIXTURE_HOURS).run()


@pytest.fixture(scope="session")
def scenario1_burst():
    return scenario_san_misconfiguration(hours=FIXTURE_HOURS, with_v2_burst=True).run()


@pytest.fixture(scope="session")
def scenario2():
    return scenario_two_external_workloads(hours=FIXTURE_HOURS).run()


@pytest.fixture(scope="session")
def scenario3():
    return scenario_data_property_change(hours=FIXTURE_HOURS).run()


@pytest.fixture(scope="session")
def scenario4():
    return scenario_concurrent_db_san(hours=FIXTURE_HOURS).run()


@pytest.fixture(scope="session")
def scenario5():
    return scenario_lock_contention(hours=FIXTURE_HOURS).run()


@pytest.fixture(scope="session")
def scenario_pd():
    return scenario_plan_regression(hours=FIXTURE_HOURS).run()


@pytest.fixture(scope="session")
def scenario_pd_config():
    return scenario_plan_regression(hours=FIXTURE_HOURS, via="config_change").run()
