"""Tests for correlation helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.correlation import (
    fisher_significance,
    lagged_pearson,
    pearson,
    spearman,
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_independent_noise_near_zero(self):
        rng = np.random.default_rng(0)
        assert abs(pearson(rng.normal(size=500), rng.normal(size=500))) < 0.15

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError):
            pearson([1], [2])

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        x, y = rng.normal(size=30), rng.normal(size=30)
        assert pearson(x, y) == pytest.approx(float(np.corrcoef(x, y)[0, 1]))


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = [1.0, 2.0, 3.0, 4.0, 5.0]
        y = [v**3 for v in x]
        assert spearman(x, y) == pytest.approx(1.0)

    def test_ties_handled(self):
        # ties share average ranks; result must stay within [-1, 1]
        assert -1.0 <= spearman([1, 1, 2, 2], [1, 2, 1, 2]) <= 1.0

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=25), rng.normal(size=25)
        expected = scipy_stats.spearmanr(x, y).statistic
        assert spearman(x, y) == pytest.approx(float(expected), abs=1e-9)


class TestLagged:
    def test_detects_shift(self):
        x = [0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1.0]
        y = x[2:] + [0, 0]  # y leads x by 2 -> best lag is negative side
        coeff, lag = lagged_pearson(x, y, max_lag=3)
        assert abs(coeff) > 0.9
        assert lag != 0

    def test_zero_lag_for_identical(self):
        x = list(np.random.default_rng(3).normal(size=20))
        coeff, lag = lagged_pearson(x, x, max_lag=2)
        assert coeff == pytest.approx(1.0)
        assert lag == 0

    def test_negative_max_lag_rejected(self):
        with pytest.raises(ValueError):
            lagged_pearson([1, 2], [1, 2], max_lag=-1)


class TestSignificance:
    def test_strong_correlation_significant(self):
        assert fisher_significance(0.9, 30) < 0.01

    def test_weak_correlation_insignificant(self):
        assert fisher_significance(0.1, 10) > 0.5

    def test_tiny_sample_never_significant(self):
        assert fisher_significance(0.99, 3) == 1.0

    def test_p_decreases_with_n(self):
        assert fisher_significance(0.5, 100) < fisher_significance(0.5, 10)


series = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=2, max_size=40
)


class TestProperties:
    @given(series)
    @settings(max_examples=60, deadline=None)
    def test_pearson_bounded(self, xs):
        ys = [v * 2 + 1 for v in xs]
        assert -1.0 - 1e-9 <= pearson(xs, ys) <= 1.0 + 1e-9

    @given(series)
    @settings(max_examples=60, deadline=None)
    def test_pearson_symmetric(self, xs):
        rng = np.random.default_rng(99)
        ys = list(rng.normal(size=len(xs)))
        assert pearson(xs, ys) == pytest.approx(pearson(ys, xs), abs=1e-9)

    @given(series)
    @settings(max_examples=60, deadline=None)
    def test_spearman_bounded(self, xs):
        rng = np.random.default_rng(7)
        ys = list(rng.normal(size=len(xs)))
        assert -1.0 - 1e-9 <= spearman(xs, ys) <= 1.0 + 1e-9
