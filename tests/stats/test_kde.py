"""Unit + property tests for the Gaussian KDE (the workflow's statistical core)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.kde import (
    GaussianKDE,
    anomaly_score,
    scott_bandwidth,
    silverman_bandwidth,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(finite_floats, min_size=1, max_size=60)


class TestFit:
    def test_fit_basic(self):
        kde = GaussianKDE.fit([1.0, 2.0, 3.0])
        assert kde.n == 3
        assert kde.bandwidth > 0

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            GaussianKDE.fit([])

    def test_fit_rejects_nan(self):
        with pytest.raises(ValueError):
            GaussianKDE.fit([1.0, float("nan")])

    def test_fit_rejects_inf(self):
        with pytest.raises(ValueError):
            GaussianKDE.fit([1.0, float("inf")])

    def test_fit_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            GaussianKDE.fit([1.0, 2.0], bandwidth=0.0)

    def test_fit_rejects_unknown_rule(self):
        with pytest.raises(ValueError, match="unknown bandwidth rule"):
            GaussianKDE.fit([1.0, 2.0], bandwidth="magic")

    def test_explicit_bandwidth_used(self):
        kde = GaussianKDE.fit([1.0, 2.0], bandwidth=0.5)
        assert kde.bandwidth == 0.5

    def test_constant_samples_get_floor_bandwidth(self):
        kde = GaussianKDE.fit([5.0] * 10)
        assert kde.bandwidth > 0


class TestBandwidthRules:
    def test_silverman_positive(self):
        assert silverman_bandwidth([1.0, 2.0, 3.0, 4.0]) > 0

    def test_scott_larger_than_silverman(self):
        data = list(np.random.default_rng(0).normal(size=50))
        assert scott_bandwidth(data) > silverman_bandwidth(data)

    def test_shrinks_with_n(self):
        # identical spread, different n: bandwidth must shrink as n^(-1/5)
        small = silverman_bandwidth([0.0, 1.0] * 5)
        large = silverman_bandwidth([0.0, 1.0] * 500)
        assert large < small

    def test_robust_to_outlier(self):
        # IQR-based spread should not explode with one huge outlier
        data = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98, 100.0]
        assert silverman_bandwidth(data) < 5.0


class TestPdfCdf:
    def test_pdf_integrates_to_one(self):
        kde = GaussianKDE.fit([0.0, 1.0, 2.0])
        xs = np.linspace(-10, 12, 4000)
        integral = np.trapezoid(kde.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_cdf_limits(self):
        kde = GaussianKDE.fit([0.0, 1.0])
        assert kde.cdf(-100.0) == pytest.approx(0.0, abs=1e-6)
        assert kde.cdf(100.0) == pytest.approx(1.0, abs=1e-6)

    def test_cdf_median_of_symmetric(self):
        kde = GaussianKDE.fit([-1.0, 1.0])
        assert kde.cdf(0.0) == pytest.approx(0.5, abs=1e-9)

    def test_scalar_and_array_agree(self):
        kde = GaussianKDE.fit([1.0, 2.0, 3.0])
        arr = kde.cdf(np.array([1.5, 2.5]))
        assert arr[0] == pytest.approx(kde.cdf(1.5))
        assert arr[1] == pytest.approx(kde.cdf(2.5))

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(3)
        data = rng.normal(size=40)
        ours = GaussianKDE.fit(data, bandwidth=0.4)
        theirs = scipy_stats.gaussian_kde(data, bw_method=0.4 / data.std(ddof=1))
        xs = np.linspace(-3, 3, 11)
        np.testing.assert_allclose(ours.pdf(xs), theirs(xs), rtol=5e-3, atol=5e-4)

    def test_cdf_matches_numerical_integration(self):
        kde = GaussianKDE.fit([0.0, 0.5, 2.0], bandwidth=0.3)
        xs = np.linspace(-5, 1.3, 20000)
        numeric = np.trapezoid(kde.pdf(xs), xs)
        assert kde.cdf(1.3) == pytest.approx(numeric, abs=2e-4)


class TestAnomalyScore:
    def test_far_right_tail_scores_one(self):
        assert anomaly_score([1.0, 1.1, 0.9], 10.0) == pytest.approx(1.0, abs=1e-6)

    def test_central_value_scores_half(self):
        score = anomaly_score([1.0, 1.0, 1.0, 1.0], 1.0)
        assert score == pytest.approx(0.5, abs=0.01)

    def test_left_tail_scores_zero(self):
        assert anomaly_score([10.0, 10.5, 9.5], 0.1) == pytest.approx(0.0, abs=1e-6)

    def test_detects_forty_percent_increase_under_low_noise(self):
        rng = np.random.default_rng(5)
        healthy = 10.0 * rng.lognormal(0.0, 0.02, size=20)
        assert anomaly_score(healthy, 14.0) > 0.99

    def test_tolerates_noise_at_same_level(self):
        rng = np.random.default_rng(6)
        healthy = 10.0 * rng.lognormal(0.0, 0.05, size=20)
        u = 10.0 * float(rng.lognormal(0.0, 0.05))
        assert anomaly_score(healthy, u) < 0.99


class TestSampling:
    def test_sample_size_and_distribution(self):
        kde = GaussianKDE.fit([0.0, 10.0], bandwidth=0.1)
        draws = kde.sample(2000, rng=np.random.default_rng(7))
        assert draws.shape == (2000,)
        # bimodal: roughly half near 0, half near 10
        near_zero = np.abs(draws) < 1.0
        assert 0.35 < near_zero.mean() < 0.65

    def test_sample_negative_size_rejected(self):
        with pytest.raises(ValueError):
            GaussianKDE.fit([1.0]).sample(-1)


class TestProperties:
    @given(sample_lists, finite_floats)
    @settings(max_examples=60, deadline=None)
    def test_cdf_bounded(self, samples, x):
        kde = GaussianKDE.fit(samples)
        assert 0.0 <= kde.cdf(x) <= 1.0

    @given(sample_lists, finite_floats, finite_floats)
    @settings(max_examples=60, deadline=None)
    def test_cdf_monotone(self, samples, a, b):
        kde = GaussianKDE.fit(samples)
        lo, hi = min(a, b), max(a, b)
        assert kde.cdf(lo) <= kde.cdf(hi) + 1e-9

    @given(sample_lists)
    @settings(max_examples=60, deadline=None)
    def test_pdf_nonnegative(self, samples):
        kde = GaussianKDE.fit(samples)
        xs = np.linspace(min(samples) - 1, max(samples) + 1, 16)
        assert np.all(kde.pdf(xs) >= 0.0)

    @given(sample_lists)
    @settings(max_examples=40, deadline=None)
    def test_anomaly_of_max_plus_margin_high(self, samples):
        spread = max(samples) - min(samples) + 1.0
        u = max(samples) + 10.0 * spread
        assert anomaly_score(samples, u) > 0.95
