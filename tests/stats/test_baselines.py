"""Tests for the baseline anomaly detectors (experiment E8's competitors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.baselines import (
    DETECTOR_FACTORIES,
    GaussianNaiveBayesDetector,
    KDEDetector,
    PercentileDetector,
    ThresholdDetector,
    ZScoreDetector,
)

HEALTHY = [10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9, 10.3]


@pytest.mark.parametrize("name", sorted(DETECTOR_FACTORIES))
class TestCommonBehaviour:
    def test_scores_bounded(self, name):
        detector = DETECTOR_FACTORIES[name]()
        detector.fit(HEALTHY)
        for u in (0.0, 5.0, 10.0, 15.0, 100.0):
            assert 0.0 <= detector.score(u) <= 1.0

    def test_obvious_anomaly_scores_high(self, name):
        detector = DETECTOR_FACTORIES[name]()
        detector.fit(HEALTHY)
        assert detector.score(50.0) >= 0.8

    def test_fit_returns_self(self, name):
        detector = DETECTOR_FACTORIES[name]()
        assert detector.fit(HEALTHY) is detector


class TestKDEDetector:
    def test_unfit_raises(self):
        with pytest.raises(RuntimeError):
            KDEDetector().score(1.0)

    def test_matches_module_function(self):
        from repro.stats.kde import anomaly_score

        detector = KDEDetector().fit(HEALTHY)
        assert detector.score(12.0) == pytest.approx(anomaly_score(HEALTHY, 12.0))


class TestThresholdDetector:
    def test_step_behaviour(self):
        detector = ThresholdDetector(factor=1.5).fit([10.0] * 5)
        assert detector.score(14.9) == 0.0
        assert detector.score(15.1) == 1.0

    def test_unfit_raises(self):
        with pytest.raises(RuntimeError):
            ThresholdDetector().score(1.0)

    def test_misses_moderate_shift(self):
        # the brittleness KDE avoids: a 30% shift under a 1.5x threshold
        detector = ThresholdDetector(factor=1.5).fit(HEALTHY)
        assert detector.score(13.0) == 0.0


class TestZScore:
    def test_central_value_half(self):
        detector = ZScoreDetector().fit(HEALTHY)
        assert detector.score(float(np.mean(HEALTHY))) == pytest.approx(0.5, abs=0.05)

    def test_degenerate_distribution(self):
        detector = ZScoreDetector().fit([5.0] * 4)
        assert detector.score(5.0) == 0.0
        assert detector.score(5.1) == 1.0


class TestPercentile:
    def test_small_n_granularity(self):
        # with 4 samples the empirical CDF can only express quarters —
        # exactly why smoothing matters at small n
        detector = PercentileDetector().fit([1.0, 2.0, 3.0, 4.0])
        scores = {detector.score(u) for u in (0.5, 1.5, 2.5, 3.5, 4.5)}
        assert scores <= {0.0, 0.25, 0.5, 0.75, 1.0}

    def test_unfit_raises(self):
        with pytest.raises(RuntimeError):
            PercentileDetector().score(0.0)


class TestNaiveBayes:
    def test_supervised_separation(self):
        detector = GaussianNaiveBayesDetector().fit(
            HEALTHY, unhealthy=[20.0, 21.0, 19.5, 20.5]
        )
        assert detector.score(10.0) < 0.2
        assert detector.score(20.0) > 0.8

    def test_unsupervised_fallback(self):
        detector = GaussianNaiveBayesDetector().fit(HEALTHY)
        assert detector.score(20.0) > detector.score(10.0)

    def test_unfit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianNaiveBayesDetector().score(1.0)
