"""Analytical I/O model: volume loads → disk contention → latencies/metrics.

This is the substrate that makes the paper's fault scenarios *mechanically*
real: an external workload written to a new volume V′ that happens to share
spindles with V1 drives up the utilisation of those disks, which inflates V1's
service times and therefore the running time of every query operator whose
tablespace lives on V1.

Model
-----
Per simulation tick, every volume has an offered load (:class:`VolumeLoad`).
The subsystem cache absorbs a fraction of reads (larger for sequential
streams) and of writes (write-back cache).  The residual I/Os are spread
evenly over the volume's disks; RAID write penalty multiplies back-end
writes.  Each disk then behaves like an M/M/1 server: with utilisation
``rho = iops / max_iops``, its latency is ``service_time / (1 - rho)``
(capped).  Volume response times combine cache hits with the average latency
of their disks; fabric transit adds a fixed overhead.

The model emits one flat metric sample per tick covering disks, volumes,
pools, subsystems, switches and HBA ports, using the storage-metric names of
Figure 4 / Table 2 (``readIO``, ``writeTime``, ``bytesRead``...).

Volume read/write counts are reported as *back-end* (rank-level) numbers, the
way enterprise controllers such as the paper's DS6000 expose them: the
activity of every volume co-located on the same disks is visible in each
volume's back-end counters.  This is what makes V1's ``writeIO`` anomalous in
Table 2 even though the contending writes target V′.  Front-end (host-issued)
counters are also emitted with a ``frontend`` prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from .components import ComponentType, Disk, FcPort, Hba, StoragePool, StorageSubsystem
from .topology import SanTopology

__all__ = ["VolumeLoad", "SanPerfSample", "IoSimulator", "MAX_UTILISATION"]

#: Utilisation is clamped below 1.0 so the latency curve stays finite.
MAX_UTILISATION = 0.95

#: Fixed fabric transit time added to every volume response (ms).
FABRIC_LATENCY_MS = 0.15

#: Background read IOPS a RAID rebuild imposes on every disk of the affected
#: pool (peers are read to reconstruct the rebuilding member).
REBUILD_PEER_IOPS = 45.0


@dataclass(frozen=True)
class VolumeLoad:
    """Offered I/O load on one volume during one tick."""

    read_iops: float = 0.0
    write_iops: float = 0.0
    read_kb: float = 8.0
    write_kb: float = 8.0
    sequential_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.read_iops < 0 or self.write_iops < 0:
            raise ValueError("iops must be non-negative")
        if not 0.0 <= self.sequential_fraction <= 1.0:
            raise ValueError("sequential_fraction must be in [0, 1]")

    def __add__(self, other: "VolumeLoad") -> "VolumeLoad":
        total_read = self.read_iops + other.read_iops
        total_write = self.write_iops + other.write_iops

        def _mix(a_w: float, a_v: float, b_w: float, b_v: float, default: float) -> float:
            if a_w + b_w <= 0:
                return default
            return (a_w * a_v + b_w * b_v) / (a_w + b_w)

        return VolumeLoad(
            read_iops=total_read,
            write_iops=total_write,
            read_kb=_mix(self.read_iops, self.read_kb, other.read_iops, other.read_kb, 8.0),
            write_kb=_mix(self.write_iops, self.write_kb, other.write_iops, other.write_kb, 8.0),
            sequential_fraction=_mix(
                self.read_iops + self.write_iops,
                self.sequential_fraction,
                other.read_iops + other.write_iops,
                other.sequential_fraction,
                0.0,
            ),
        )

    @property
    def total_iops(self) -> float:
        return self.read_iops + self.write_iops


@dataclass
class SanPerfSample:
    """Flat metric sample: ``(component_id, metric) -> value`` for one tick."""

    values: dict[tuple[str, str], float] = field(default_factory=dict)

    def set(self, component_id: str, metric: str, value: float) -> None:
        self.values[(component_id, metric)] = float(value)

    def get(self, component_id: str, metric: str, default: float = 0.0) -> float:
        return self.values.get((component_id, metric), default)

    def metrics_for(self, component_id: str) -> dict[str, float]:
        return {
            metric: value
            for (cid, metric), value in self.values.items()
            if cid == component_id
        }

    def volume_read_latency(self, volume_id: str) -> float:
        return self.get(volume_id, "readTime")

    def volume_write_latency(self, volume_id: str) -> float:
        return self.get(volume_id, "writeTime")


class IoSimulator:
    """Evaluates the analytical model for one topology.

    The simulator is stateless across ticks: contention is entirely
    determined by the per-tick offered loads, which keeps the model easy to
    reason about and to test.  Degraded disks (``failed`` or under RAID
    rebuild) are handled by capacity scaling.
    """

    def __init__(self, topology: SanTopology) -> None:
        self._topology = topology
        #: disks currently rebuilding: id -> capacity multiplier (< 1)
        self._rebuild_slowdown: dict[str, float] = {}
        #: degraded fabric switches: id -> (extra transit ms, error frames)
        self._switch_degradation: dict[str, tuple[float, float]] = {}

    @property
    def topology(self) -> SanTopology:
        return self._topology

    # -- degradation hooks (used by the fault injector) -----------------
    def start_rebuild(self, disk_id: str, capacity_factor: float = 0.6) -> None:
        """Mark a disk as rebuilding; it retains ``capacity_factor`` of IOPS."""
        if not 0.05 <= capacity_factor <= 1.0:
            raise ValueError("capacity_factor must be in [0.05, 1.0]")
        self._topology.get(disk_id)  # validate id
        self._rebuild_slowdown[disk_id] = capacity_factor

    def finish_rebuild(self, disk_id: str) -> None:
        self._rebuild_slowdown.pop(disk_id, None)

    @property
    def rebuilding_disks(self) -> set[str]:
        return set(self._rebuild_slowdown)

    def degrade_switch(
        self, switch_id: str, extra_latency_ms: float, error_frames: float = 25.0
    ) -> None:
        """Mark a fabric switch as degraded: every I/O transiting the fabric
        pays ``extra_latency_ms`` more, and the switch reports error frames.

        This models port congestion / CRC storms on a shared fabric element —
        the fault a shared-switch correlation scenario injects once and every
        environment attached to the fabric feels.
        """
        if extra_latency_ms < 0:
            raise ValueError("extra_latency_ms must be non-negative")
        self._topology.get(switch_id)  # validate id
        self._switch_degradation[switch_id] = (extra_latency_ms, error_frames)

    def restore_switch(self, switch_id: str) -> None:
        self._switch_degradation.pop(switch_id, None)

    @property
    def degraded_switches(self) -> set[str]:
        return set(self._switch_degradation)

    # -- core model ------------------------------------------------------
    def simulate(self, loads: Mapping[str, VolumeLoad]) -> SanPerfSample:
        """Compute one tick of per-component metrics for the offered loads."""
        topo = self._topology
        sample = SanPerfSample()

        # 1. Cache filtering + fan-out of residual volume I/O onto disks.
        disk_read_iops: dict[str, float] = {d.component_id: 0.0 for d in topo.disks}
        disk_write_iops: dict[str, float] = dict(disk_read_iops)
        volume_miss: dict[str, tuple[float, float]] = {}
        cache_hits: dict[str, float] = {s.component_id: 0.0 for s in topo.subsystems}
        cache_refs: dict[str, float] = dict(cache_hits)

        for volume_id, load in loads.items():
            if volume_id not in topo:
                continue
            subsystem = topo.subsystem_of_volume(volume_id)
            pool = topo.pool_of_volume(volume_id)
            disks = [d for d in topo.disks_of_volume(volume_id) if not d.failed]
            if not disks:
                continue
            hit = min(
                subsystem.read_cache_hit
                + subsystem.sequential_prefetch_bonus * load.sequential_fraction,
                0.98,
            )
            miss_read = load.read_iops * (1.0 - hit)
            backend_write = (
                load.write_iops
                * (1.0 - subsystem.write_cache_absorption)
                * pool.write_penalty
            )
            volume_miss[volume_id] = (miss_read, backend_write)
            cache_refs[subsystem.component_id] += load.read_iops
            cache_hits[subsystem.component_id] += load.read_iops * hit
            for disk in disks:
                disk_read_iops[disk.component_id] += miss_read / len(disks)
                disk_write_iops[disk.component_id] += backend_write / len(disks)

        # 1b. RAID rebuilds load every disk of the affected pool: peers are
        # read to reconstruct the rebuilding member.
        rebuilding_pools = {
            topo.get(disk_id).pool_id for disk_id in self._rebuild_slowdown
        }
        rebuild_extra: dict[str, float] = {}
        for pool_id in rebuilding_pools:
            if pool_id not in topo:
                continue
            for disk in topo.disks_of_pool(pool_id):
                rebuild_extra[disk.component_id] = REBUILD_PEER_IOPS

        # 2. Per-disk utilisation and latency.
        disk_latency: dict[str, float] = {}
        for disk in topo.disks:
            did = disk.component_id
            capacity = disk.max_iops * self._rebuild_slowdown.get(did, 1.0)
            iops = disk_read_iops[did] + disk_write_iops[did] + rebuild_extra.get(did, 0.0)
            utilisation = min(iops / capacity, MAX_UTILISATION) if capacity > 0 else MAX_UTILISATION
            latency = disk.service_time_ms / max(1.0 - utilisation, 1.0 - MAX_UTILISATION)
            disk_latency[did] = latency
            sample.set(did, "iops", iops)
            sample.set(did, "utilisation", utilisation)
            sample.set(did, "latency", latency)
            sample.set(did, "rebuilding", 1.0 if did in self._rebuild_slowdown else 0.0)

        # 3. Volume metrics (front-end + back-end) and response times.
        # A degraded switch adds transit time to every volume response (the
        # paper's testbed has a single fabric; all I/O crosses it).
        fabric_extra_ms = sum(
            extra for extra, _frames in self._switch_degradation.values()
        )
        for volume in topo.volumes:
            vid = volume.component_id
            load = loads.get(vid, VolumeLoad())
            subsystem = topo.subsystem_of_volume(vid)
            disks = [d for d in topo.disks_of_volume(vid) if not d.failed]
            if disks:
                avg_disk_latency = sum(disk_latency[d.component_id] for d in disks) / len(disks)
            else:
                avg_disk_latency = 50.0  # all spindles dead: saturated fallback
            hit = min(
                subsystem.read_cache_hit
                + subsystem.sequential_prefetch_bonus * load.sequential_fraction,
                0.98,
            )
            read_time = (
                FABRIC_LATENCY_MS
                + fabric_extra_ms
                + hit * subsystem.cache_latency_ms
                + (1.0 - hit) * avg_disk_latency
            )
            write_time = (
                FABRIC_LATENCY_MS
                + fabric_extra_ms
                + subsystem.write_cache_absorption * subsystem.cache_latency_ms
                + (1.0 - subsystem.write_cache_absorption) * avg_disk_latency
            )
            backend_read = sum(disk_read_iops[d.component_id] for d in disks)
            backend_write = sum(disk_write_iops[d.component_id] for d in disks)
            sample.set(vid, "readIO", backend_read)
            sample.set(vid, "writeIO", backend_write)
            sample.set(vid, "readTime", read_time)
            sample.set(vid, "writeTime", write_time)
            sample.set(vid, "frontendReadIO", load.read_iops)
            sample.set(vid, "frontendWriteIO", load.write_iops)
            sample.set(vid, "bytesRead", load.read_iops * load.read_kb * 1024.0)
            sample.set(vid, "bytesWritten", load.write_iops * load.write_kb * 1024.0)
            sample.set(vid, "seqReadRequests", load.read_iops * load.sequential_fraction)
            sample.set(vid, "seqWriteRequests", load.write_iops * load.sequential_fraction)
            sample.set(vid, "totalIOs", load.total_iops)

        # 4. Pool roll-ups.
        for pool in topo.pools:
            disks = topo.disks_of_pool(pool.component_id)
            if not disks:
                continue
            pid = pool.component_id
            sample.set(pid, "totalIOs", sum(sample.get(d.component_id, "iops") for d in disks))
            sample.set(
                pid,
                "avgLatency",
                sum(disk_latency[d.component_id] for d in disks) / len(disks),
            )
            sample.set(
                pid,
                "maxUtilisation",
                max(sample.get(d.component_id, "utilisation") for d in disks),
            )

        # 5. Subsystem + fabric roll-ups.
        total_bytes = sum(
            sample.get(v.component_id, "bytesRead") + sample.get(v.component_id, "bytesWritten")
            for v in topo.volumes
        )
        for subsystem in topo.subsystems:
            sid = subsystem.component_id
            refs = cache_refs.get(sid, 0.0)
            sample.set(sid, "totalIOs", sum(l.total_iops for l in loads.values()))
            sample.set(sid, "cacheHitRate", cache_hits.get(sid, 0.0) / refs if refs else 0.0)
            sample.set(
                sid,
                "physicalStorageReadOps",
                sum(miss for miss, _ in volume_miss.values()),
            )
            sample.set(
                sid,
                "physicalStorageWriteOps",
                sum(w for _, w in volume_miss.values()),
            )

        for switch in topo.switches:
            swid = switch.component_id
            _extra, frames = self._switch_degradation.get(swid, (0.0, 0.0))
            sample.set(swid, "bytesTransmitted", total_bytes / max(len(topo.switches), 1))
            sample.set(swid, "bytesReceived", total_bytes / max(len(topo.switches), 1))
            sample.set(swid, "errorFrames", frames)
            sample.set(swid, "linkFailures", 0.0)

        for component in topo:
            if isinstance(component, (Hba, FcPort)):
                sample.set(component.component_id, "bytesTransferred", total_bytes)

        return sample

    # -- conveniences ------------------------------------------------------
    def quiesced_sample(self) -> SanPerfSample:
        """Metrics under zero load (baseline latencies)."""
        return self.simulate({})

    def volume_latency_under(
        self, loads: Mapping[str, VolumeLoad], volume_id: str
    ) -> tuple[float, float]:
        """(read, write) response time of one volume under the offered loads."""
        sample = self.simulate(loads)
        return sample.volume_read_latency(volume_id), sample.volume_write_latency(volume_id)


def scaled(load: VolumeLoad, factor: float) -> VolumeLoad:
    """A copy of ``load`` with IOPS multiplied by ``factor``."""
    if factor < 0:
        raise ValueError("factor must be non-negative")
    return replace(load, read_iops=load.read_iops * factor, write_iops=load.write_iops * factor)
