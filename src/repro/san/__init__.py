"""SAN simulator substrate: components, topology, zoning, I/O model, events."""

from .components import (
    Component,
    ComponentType,
    Disk,
    FcPort,
    FcSwitch,
    Hba,
    Server,
    StoragePool,
    StorageSubsystem,
    Volume,
)
from .topology import SanTopology, TopologyError
from .zoning import AccessControl, LunMapping, Zone, ZoningConfig
from .iomodel import IoSimulator, SanPerfSample, VolumeLoad
from .events import SanEvent, SanEventKind
from .builder import Testbed, TopologyBuilder, build_testbed

__all__ = [
    "Component",
    "ComponentType",
    "Server",
    "Hba",
    "FcPort",
    "FcSwitch",
    "StorageSubsystem",
    "StoragePool",
    "Volume",
    "Disk",
    "SanTopology",
    "TopologyError",
    "Zone",
    "ZoningConfig",
    "LunMapping",
    "AccessControl",
    "IoSimulator",
    "VolumeLoad",
    "SanPerfSample",
    "SanEvent",
    "SanEventKind",
    "TopologyBuilder",
    "Testbed",
    "build_testbed",
]
