"""Zoning and LUN mapping/masking configuration.

Two settings dictate data accessibility in a SAN (Section 3.1.1):

* **Zoning** — which subsystem ports a given server (via its HBA ports) may
  talk to; expressed as named zones over FC port ids.
* **LUN mapping/masking** — which volumes a particular host may see.

Scenario 1's root cause is precisely a change here: a new volume plus a new
zone/mapping lets an external workload land on disks shared with V1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .components import FcPort, Hba
from .topology import SanTopology, TopologyError

__all__ = ["Zone", "ZoningConfig", "LunMapping", "AccessControl"]


@dataclass
class Zone:
    """A named set of FC port ids allowed to communicate with one another."""

    name: str
    port_ids: set[str] = field(default_factory=set)

    def add(self, port_id: str) -> None:
        self.port_ids.add(port_id)

    def remove(self, port_id: str) -> None:
        self.port_ids.discard(port_id)


class ZoningConfig:
    """Collection of zones with membership queries."""

    def __init__(self) -> None:
        self._zones: dict[str, Zone] = {}

    def create_zone(self, name: str, port_ids: set[str] | None = None) -> Zone:
        if name in self._zones:
            raise ValueError(f"zone {name!r} already exists")
        zone = Zone(name=name, port_ids=set(port_ids or ()))
        self._zones[name] = zone
        return zone

    def delete_zone(self, name: str) -> None:
        self._zones.pop(name, None)

    def zone(self, name: str) -> Zone:
        try:
            return self._zones[name]
        except KeyError:
            raise KeyError(f"unknown zone {name!r}") from None

    @property
    def zones(self) -> list[Zone]:
        return list(self._zones.values())

    def ports_zoned_together(self, port_a: str, port_b: str) -> bool:
        return any(port_a in z.port_ids and port_b in z.port_ids for z in self._zones.values())

    def snapshot(self) -> dict:
        return {name: sorted(zone.port_ids) for name, zone in sorted(self._zones.items())}


class LunMapping:
    """Volume → allowed servers (masking)."""

    def __init__(self) -> None:
        self._map: dict[str, set[str]] = {}

    def map_volume(self, volume_id: str, server_id: str) -> None:
        self._map.setdefault(volume_id, set()).add(server_id)

    def unmap_volume(self, volume_id: str, server_id: str) -> None:
        self._map.get(volume_id, set()).discard(server_id)

    def servers_for(self, volume_id: str) -> set[str]:
        return set(self._map.get(volume_id, set()))

    def volumes_for(self, server_id: str) -> set[str]:
        return {vol for vol, servers in self._map.items() if server_id in servers}

    def is_mapped(self, volume_id: str, server_id: str) -> bool:
        return server_id in self._map.get(volume_id, set())

    def snapshot(self) -> dict:
        return {vol: sorted(servers) for vol, servers in sorted(self._map.items())}


@dataclass
class AccessControl:
    """Zoning + LUN masking evaluated against a topology."""

    zoning: ZoningConfig = field(default_factory=ZoningConfig)
    lun_mapping: LunMapping = field(default_factory=LunMapping)

    def server_ports(self, topology: SanTopology, server_id: str) -> list[FcPort]:
        """All FC ports on HBAs belonging to ``server_id``."""
        ports: list[FcPort] = []
        for component in topology:
            if isinstance(component, Hba) and component.server_id == server_id:
                ports.extend(
                    c for c in topology.children(component.component_id) if isinstance(c, FcPort)
                )
        return ports

    def subsystem_ports(self, topology: SanTopology, subsystem_id: str) -> list[FcPort]:
        return [
            c for c in topology.children(subsystem_id) if isinstance(c, FcPort)
        ]

    def can_access(self, topology: SanTopology, server_id: str, volume_id: str) -> bool:
        """True iff masking allows the volume AND zoning connects the ports."""
        if not self.lun_mapping.is_mapped(volume_id, server_id):
            return False
        try:
            subsystem = topology.subsystem_of_volume(volume_id)
        except TopologyError:
            return False
        host_ports = self.server_ports(topology, server_id)
        storage_ports = self.subsystem_ports(topology, subsystem.component_id)
        if not host_ports or not storage_ports:
            # Topologies built without explicit port components fall back to
            # masking-only checks (ports are optional detail).
            return True
        return any(
            self.zoning.ports_zoned_together(hp.component_id, sp.component_id)
            for hp in host_ports
            for sp in storage_ports
        )

    def snapshot(self) -> dict:
        return {"zones": self.zoning.snapshot(), "lun_mapping": self.lun_mapping.snapshot()}
