"""Topology construction helpers and the canonical Figure-1 testbed.

The paper's testbed: a PostgreSQL server on Redhat Linux, one HBA, a fibre
channel fabric (edge + core switch), and an IBM DS6000-class storage
controller exposing two Ext3 volumes V1 and V2 carved from pools P1 and P2.
V3 and V4 share P2's disks with V2, which is what puts them on O23's *outer*
dependency path.  Disks 1-4 back P1; disks 5-10 back P2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .components import (
    Disk,
    FcPort,
    FcSwitch,
    Hba,
    Server,
    StoragePool,
    StorageSubsystem,
    Volume,
)
from .topology import SanTopology
from .zoning import AccessControl

__all__ = ["TopologyBuilder", "Testbed", "build_testbed"]


class TopologyBuilder:
    """Small fluent helper for assembling topologies in tests and scenarios."""

    def __init__(self) -> None:
        self.topology = SanTopology()
        self.access = AccessControl()

    def server(self, server_id: str, name: str | None = None, **attrs) -> "TopologyBuilder":
        self.topology.add(Server(component_id=server_id, name=name or server_id, **attrs))
        return self

    def hba(self, hba_id: str, server_id: str, ports: int = 2) -> "TopologyBuilder":
        self.topology.add(Hba(component_id=hba_id, name=hba_id, server_id=server_id))
        self.topology.connect(server_id, hba_id)
        for i in range(ports):
            port_id = f"{hba_id}-p{i}"
            self.topology.add(FcPort(component_id=port_id, name=port_id, owner_id=hba_id))
            self.topology.connect(hba_id, port_id)
        return self

    def switch(self, switch_id: str, **attrs) -> "TopologyBuilder":
        self.topology.add(FcSwitch(component_id=switch_id, name=switch_id, **attrs))
        return self

    def subsystem(self, subsystem_id: str, name: str | None = None, ports: int = 2, **attrs) -> "TopologyBuilder":
        self.topology.add(
            StorageSubsystem(component_id=subsystem_id, name=name or subsystem_id, **attrs)
        )
        for i in range(ports):
            port_id = f"{subsystem_id}-p{i}"
            self.topology.add(FcPort(component_id=port_id, name=port_id, owner_id=subsystem_id))
            self.topology.connect(subsystem_id, port_id)
        return self

    def pool(self, pool_id: str, subsystem_id: str, raid_level: str = "RAID5") -> "TopologyBuilder":
        self.topology.add(
            StoragePool(
                component_id=pool_id, name=pool_id, subsystem_id=subsystem_id, raid_level=raid_level
            )
        )
        self.topology.connect(subsystem_id, pool_id)
        return self

    def disks(self, pool_id: str, disk_ids: list[str], **attrs) -> "TopologyBuilder":
        for disk_id in disk_ids:
            self.topology.add(Disk(component_id=disk_id, name=disk_id, pool_id=pool_id, **attrs))
            self.topology.connect(pool_id, disk_id)
        return self

    def volume(self, volume_id: str, pool_id: str, size_gb: float = 100.0) -> "TopologyBuilder":
        self.topology.add(
            Volume(component_id=volume_id, name=volume_id, pool_id=pool_id, size_gb=size_gb)
        )
        self.topology.connect(pool_id, volume_id)
        return self

    def cable(self, a: str, b: str) -> "TopologyBuilder":
        """Directed fabric link (initiator side → storage side)."""
        self.topology.connect(a, b)
        return self

    def zone(self, name: str, port_ids: list[str]) -> "TopologyBuilder":
        self.access.zoning.create_zone(name, set(port_ids))
        return self

    def lun(self, volume_id: str, server_id: str) -> "TopologyBuilder":
        self.access.lun_mapping.map_volume(volume_id, server_id)
        return self


@dataclass
class Testbed:
    """The canonical experimental SAN with well-known component ids."""

    topology: SanTopology
    access: AccessControl
    db_server_id: str = "srv-db"
    subsystem_id: str = "ds6000"
    pool1_id: str = "P1"
    pool2_id: str = "P2"
    volume_ids: dict[str, str] = field(
        default_factory=lambda: {"V1": "V1", "V2": "V2", "V3": "V3", "V4": "V4"}
    )

    @property
    def v1(self) -> str:
        return self.volume_ids["V1"]

    @property
    def v2(self) -> str:
        return self.volume_ids["V2"]


def build_testbed() -> Testbed:
    """Build the Figure-1 SAN: 1 DB server, 2 switches, DS6000, P1/P2, V1-V4.

    Disk ids are ``d1``..``d10``: d1-d4 form pool P1 (backing V1), d5-d10 form
    pool P2 (backing V2, V3, V4 — hence their shared-disk coupling).
    """
    b = TopologyBuilder()
    b.server("srv-db", name="Redhat Linux DB Server", cpu_cores=8, memory_gb=32.0)
    b.hba("hba0", "srv-db", ports=2)
    b.switch("fcsw-edge")
    b.switch("fcsw-core")
    b.subsystem("ds6000", name="IBM DS6000", ports=2)
    b.pool("P1", "ds6000", raid_level="RAID5")
    b.pool("P2", "ds6000", raid_level="RAID5")
    b.disks("P1", [f"d{i}" for i in range(1, 5)], max_iops=180.0, service_time_ms=5.0)
    b.disks("P2", [f"d{i}" for i in range(5, 11)], max_iops=180.0, service_time_ms=5.0)
    b.volume("V1", "P1", size_gb=120.0)
    b.volume("V2", "P2", size_gb=400.0)
    b.volume("V3", "P2", size_gb=150.0)
    b.volume("V4", "P2", size_gb=150.0)

    # Fabric: HBA ports → edge switch → core switch → subsystem.
    b.cable("hba0-p0", "fcsw-edge")
    b.cable("hba0-p1", "fcsw-edge")
    b.cable("fcsw-edge", "fcsw-core")
    b.cable("fcsw-core", "ds6000")

    b.zone("zone-db", ["hba0-p0", "hba0-p1", "ds6000-p0", "ds6000-p1"])
    b.lun("V1", "srv-db")
    b.lun("V2", "srv-db")

    problems = b.topology.validate()
    if problems:  # pragma: no cover - construction invariant
        raise RuntimeError(f"testbed invalid: {problems}")
    return Testbed(topology=b.topology, access=b.access)
