"""Component model for the simulated Storage Area Network.

The paper's taxonomy (Figure 1) spans physical components — servers, Host Bus
Adapters (HBAs) and their Fibre Channel ports, FC switches, storage
subsystems (controllers), disks — and logical ones — storage pools and the
volumes carved out of them.  Each component type here carries the attributes
the I/O model and the monitoring collector need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = [
    "ComponentType",
    "Component",
    "Server",
    "Hba",
    "FcPort",
    "FcSwitch",
    "StorageSubsystem",
    "StoragePool",
    "Volume",
    "Disk",
]


class ComponentType(str, Enum):
    """Kinds of SAN components recognised by the topology and the APG."""

    SERVER = "server"
    HBA = "hba"
    FC_PORT = "fc_port"
    SWITCH = "switch"
    SUBSYSTEM = "subsystem"
    POOL = "pool"
    VOLUME = "volume"
    DISK = "disk"


@dataclass
class Component:
    """Base class: every SAN entity has a stable id, a display name, a type."""

    component_id: str
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)

    #: overridden by subclasses
    ctype: ComponentType = field(init=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.component_id:
            raise ValueError("component_id must be non-empty")

    def describe(self) -> str:
        """One-line human description used by the APG text renderer."""
        return f"{self.ctype.value}:{self.name}"


@dataclass
class Server(Component):
    """A host attached to the SAN (the DB server, or an interfering app server)."""

    cpu_cores: int = 8
    memory_gb: float = 32.0

    def __post_init__(self) -> None:
        super().__post_init__()
        self.ctype = ComponentType.SERVER


@dataclass
class Hba(Component):
    """Host Bus Adapter installed in a server."""

    server_id: str = ""
    port_count: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        self.ctype = ComponentType.HBA


@dataclass
class FcPort(Component):
    """A Fibre Channel port on an HBA, switch, or subsystem."""

    owner_id: str = ""
    speed_gbps: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        self.ctype = ComponentType.FC_PORT


@dataclass
class FcSwitch(Component):
    """Core or edge FC switch in the fabric."""

    port_count: int = 32
    per_port_mbps: float = 400.0

    def __post_init__(self) -> None:
        super().__post_init__()
        self.ctype = ComponentType.SWITCH


@dataclass
class StorageSubsystem(Component):
    """Storage controller (the paper's testbed uses an IBM DS6000).

    ``read_cache_hit`` is the base random-read cache hit fraction;
    sequential streams get an additional prefetch bonus in the I/O model.
    """

    read_cache_hit: float = 0.25
    sequential_prefetch_bonus: float = 0.55
    write_cache_absorption: float = 0.35
    cache_latency_ms: float = 0.3

    def __post_init__(self) -> None:
        super().__post_init__()
        self.ctype = ComponentType.SUBSYSTEM


@dataclass
class StoragePool(Component):
    """Logical aggregation of disks inside a subsystem (RAID rank)."""

    subsystem_id: str = ""
    raid_level: str = "RAID5"

    def __post_init__(self) -> None:
        super().__post_init__()
        self.ctype = ComponentType.POOL

    @property
    def write_penalty(self) -> float:
        """Back-end physical writes per logical write for the RAID level."""
        return {"RAID0": 1.0, "RAID1": 2.0, "RAID5": 4.0, "RAID6": 6.0, "RAID10": 2.0}.get(
            self.raid_level, 1.0
        )


@dataclass
class Volume(Component):
    """Logical volume carved from a pool and exposed to servers via LUNs."""

    pool_id: str = ""
    size_gb: float = 100.0

    def __post_init__(self) -> None:
        super().__post_init__()
        self.ctype = ComponentType.VOLUME


@dataclass
class Disk(Component):
    """Physical spindle.

    ``max_iops`` is the knee of the throughput curve; ``service_time_ms`` the
    unloaded per-I/O service time.  Latency grows as utilisation approaches 1
    (see :mod:`repro.san.iomodel`).
    """

    pool_id: str = ""
    max_iops: float = 180.0
    service_time_ms: float = 5.0
    failed: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        self.ctype = ComponentType.DISK
