"""SAN topology: the connectivity graph over components.

The topology answers the structural questions the APG needs:

* which disks does a volume's data physically live on,
* which other volumes share those disks (the *outer* dependency path),
* what is the end-to-end I/O path from a server to a volume (the *inner*
  dependency path): server → HBA → switch fabric → subsystem → pool → volume
  → disks.

Edges are stored directed "downstream" (from initiator toward storage), but
both directions can be traversed.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from .components import (
    Component,
    ComponentType,
    Disk,
    FcSwitch,
    Hba,
    Server,
    StoragePool,
    StorageSubsystem,
    Volume,
)

__all__ = ["SanTopology", "TopologyError"]


class TopologyError(ValueError):
    """Raised for malformed topology operations (unknown ids, duplicates...)."""


class SanTopology:
    """Mutable component graph with typed lookups and path queries."""

    def __init__(self) -> None:
        self._components: dict[str, Component] = {}
        self._children: dict[str, list[str]] = {}
        self._parents: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register a component; id must be unique."""
        cid = component.component_id
        if cid in self._components:
            raise TopologyError(f"duplicate component id {cid!r}")
        self._components[cid] = component
        self._children[cid] = []
        self._parents[cid] = []
        return component

    def remove(self, component_id: str) -> Component:
        """Remove a component and all edges touching it."""
        component = self.get(component_id)
        for child in list(self._children[component_id]):
            self._parents[child].remove(component_id)
        for parent in list(self._parents[component_id]):
            self._children[parent].remove(component_id)
        del self._children[component_id]
        del self._parents[component_id]
        del self._components[component_id]
        return component

    def connect(self, upstream_id: str, downstream_id: str) -> None:
        """Add a directed downstream edge (initiator side → storage side)."""
        if upstream_id not in self._components:
            raise TopologyError(f"unknown component {upstream_id!r}")
        if downstream_id not in self._components:
            raise TopologyError(f"unknown component {downstream_id!r}")
        if downstream_id in self._children[upstream_id]:
            return
        self._children[upstream_id].append(downstream_id)
        self._parents[downstream_id].append(upstream_id)

    def disconnect(self, upstream_id: str, downstream_id: str) -> None:
        """Remove a downstream edge if present."""
        if downstream_id in self._children.get(upstream_id, []):
            self._children[upstream_id].remove(downstream_id)
            self._parents[downstream_id].remove(upstream_id)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def get(self, component_id: str) -> Component:
        try:
            return self._components[component_id]
        except KeyError:
            raise TopologyError(f"unknown component {component_id!r}") from None

    def __contains__(self, component_id: str) -> bool:
        return component_id in self._components

    def __iter__(self) -> Iterator[Component]:
        return iter(self._components.values())

    def __len__(self) -> int:
        return len(self._components)

    def children(self, component_id: str) -> list[Component]:
        return [self._components[c] for c in self._children.get(component_id, [])]

    def parents(self, component_id: str) -> list[Component]:
        return [self._components[p] for p in self._parents.get(component_id, [])]

    def by_type(self, ctype: ComponentType) -> list[Component]:
        return [c for c in self._components.values() if c.ctype is ctype]

    @property
    def servers(self) -> list[Server]:
        return [c for c in self._components.values() if isinstance(c, Server)]

    @property
    def volumes(self) -> list[Volume]:
        return [c for c in self._components.values() if isinstance(c, Volume)]

    @property
    def disks(self) -> list[Disk]:
        return [c for c in self._components.values() if isinstance(c, Disk)]

    @property
    def pools(self) -> list[StoragePool]:
        return [c for c in self._components.values() if isinstance(c, StoragePool)]

    @property
    def subsystems(self) -> list[StorageSubsystem]:
        return [c for c in self._components.values() if isinstance(c, StorageSubsystem)]

    @property
    def switches(self) -> list[FcSwitch]:
        return [c for c in self._components.values() if isinstance(c, FcSwitch)]

    # ------------------------------------------------------------------
    # storage-mapping queries
    # ------------------------------------------------------------------
    def pool_of_volume(self, volume_id: str) -> StoragePool:
        volume = self.get(volume_id)
        if not isinstance(volume, Volume):
            raise TopologyError(f"{volume_id!r} is not a volume")
        pool = self.get(volume.pool_id)
        if not isinstance(pool, StoragePool):
            raise TopologyError(f"volume {volume_id!r} references non-pool {volume.pool_id!r}")
        return pool

    def subsystem_of_volume(self, volume_id: str) -> StorageSubsystem:
        pool = self.pool_of_volume(volume_id)
        subsystem = self.get(pool.subsystem_id)
        if not isinstance(subsystem, StorageSubsystem):
            raise TopologyError(f"pool {pool.component_id!r} has no subsystem")
        return subsystem

    def disks_of_pool(self, pool_id: str) -> list[Disk]:
        pool = self.get(pool_id)
        if not isinstance(pool, StoragePool):
            raise TopologyError(f"{pool_id!r} is not a pool")
        return [c for c in self.children(pool_id) if isinstance(c, Disk)]

    def disks_of_volume(self, volume_id: str) -> list[Disk]:
        """Disks the volume's data is striped over.

        Explicit volume→disk edges win (sub-pool striping); otherwise the
        volume spans every disk of its pool.
        """
        explicit = [c for c in self.children(volume_id) if isinstance(c, Disk)]
        if explicit:
            return explicit
        return self.disks_of_pool(self.get_volume(volume_id).pool_id)

    def get_volume(self, volume_id: str) -> Volume:
        volume = self.get(volume_id)
        if not isinstance(volume, Volume):
            raise TopologyError(f"{volume_id!r} is not a volume")
        return volume

    def volumes_of_pool(self, pool_id: str) -> list[Volume]:
        return [v for v in self.volumes if v.pool_id == pool_id]

    def volumes_sharing_disks(self, volume_id: str) -> list[Volume]:
        """Other volumes whose data shares at least one disk with ``volume_id``.

        These are the volume-level members of an operator's *outer*
        dependency path (Section 3).
        """
        own = {d.component_id for d in self.disks_of_volume(volume_id)}
        sharing = []
        for other in self.volumes:
            if other.component_id == volume_id:
                continue
            theirs = {d.component_id for d in self.disks_of_volume(other.component_id)}
            if own & theirs:
                sharing.append(other)
        return sharing

    # ------------------------------------------------------------------
    # path queries
    # ------------------------------------------------------------------
    def fabric_path(self, server_id: str, volume_id: str) -> list[Component]:
        """Shortest connectivity path server → ... → subsystem owning the volume.

        Traverses server/HBA/port/switch edges downstream (BFS) until the
        volume's subsystem is reached.  Raises :class:`TopologyError` when no
        path exists (e.g., zoning edges were never wired).
        """
        subsystem = self.subsystem_of_volume(volume_id)
        target = subsystem.component_id
        if server_id not in self._components:
            raise TopologyError(f"unknown server {server_id!r}")
        queue: deque[list[str]] = deque([[server_id]])
        seen = {server_id}
        while queue:
            path = queue.popleft()
            tail = path[-1]
            if tail == target:
                return [self._components[cid] for cid in path]
            for child_id in self._children[tail]:
                if child_id in seen:
                    continue
                seen.add(child_id)
                queue.append(path + [child_id])
        raise TopologyError(f"no fabric path from {server_id!r} to volume {volume_id!r}")

    def io_path(self, server_id: str, volume_id: str) -> list[Component]:
        """Full inner dependency chain: fabric path + pool + volume + disks."""
        path = self.fabric_path(server_id, volume_id)
        pool = self.pool_of_volume(volume_id)
        return path + [pool, self.get_volume(volume_id)] + list(self.disks_of_volume(volume_id))

    # ------------------------------------------------------------------
    # snapshots (for the config store)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ish structural snapshot used for configuration diffing."""
        return {
            "components": {
                cid: {"type": comp.ctype.value, "name": comp.name}
                for cid, comp in sorted(self._components.items())
            },
            "edges": sorted(
                (parent, child)
                for parent, children in self._children.items()
                for child in children
            ),
            "volume_pools": {
                v.component_id: v.pool_id for v in sorted(self.volumes, key=lambda v: v.component_id)
            },
        }

    def validate(self) -> list[str]:
        """Structural sanity check; returns a list of problems (empty = ok)."""
        problems = []
        for volume in self.volumes:
            if volume.pool_id not in self._components:
                problems.append(f"volume {volume.component_id} references missing pool")
            elif not self.disks_of_volume(volume.component_id):
                problems.append(f"volume {volume.component_id} has no disks")
        for pool in self.pools:
            if pool.subsystem_id not in self._components:
                problems.append(f"pool {pool.component_id} references missing subsystem")
        for hba in (c for c in self if isinstance(c, Hba)):
            if hba.server_id not in self._components:
                problems.append(f"hba {hba.component_id} references missing server")
        return problems

    def components_by_ids(self, ids: Iterable[str]) -> list[Component]:
        return [self.get(cid) for cid in ids]
