"""Statistical substrate: KDE anomaly scoring, correlation, baseline detectors."""

from .kde import GaussianKDE, anomaly_score, scott_bandwidth, silverman_bandwidth
from .correlation import fisher_significance, lagged_pearson, pearson, spearman
from .baselines import (
    DETECTOR_FACTORIES,
    AnomalyDetector,
    GaussianNaiveBayesDetector,
    KDEDetector,
    PercentileDetector,
    ThresholdDetector,
    ZScoreDetector,
)

__all__ = [
    "GaussianKDE",
    "anomaly_score",
    "silverman_bandwidth",
    "scott_bandwidth",
    "pearson",
    "spearman",
    "lagged_pearson",
    "fisher_significance",
    "AnomalyDetector",
    "KDEDetector",
    "ThresholdDetector",
    "ZScoreDetector",
    "PercentileDetector",
    "GaussianNaiveBayesDetector",
    "DETECTOR_FACTORIES",
]
