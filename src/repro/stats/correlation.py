"""Correlation helpers shared by the diagnosis modules and baselines.

Module DA needs to decide whether a component metric moved *with* an
operator's running time; the pure-ML baselines (Section 5's comparison
observation) need plain correlation coefficients.  Everything here is
implemented on numpy only.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "pearson",
    "spearman",
    "lagged_pearson",
    "fisher_significance",
]


def _pair(xs: Iterable[float], ys: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(list(xs) if not isinstance(xs, np.ndarray) else xs, dtype=float).ravel()
    y = np.asarray(list(ys) if not isinstance(ys, np.ndarray) else ys, dtype=float).ravel()
    if x.size != y.size:
        raise ValueError(f"series lengths differ: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValueError("correlation requires at least two points")
    return x, y


def pearson(xs: Iterable[float], ys: Iterable[float]) -> float:
    """Pearson correlation coefficient; 0.0 when either series is constant."""
    x, y = _pair(xs, ys)
    xd = x - x.mean()
    yd = y - y.mean()
    denom = float(np.sqrt((xd * xd).sum() * (yd * yd).sum()))
    if denom == 0.0:
        return 0.0
    return float((xd * yd).sum() / denom)


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean of their positions), 1-based."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def spearman(xs: Iterable[float], ys: Iterable[float]) -> float:
    """Spearman rank correlation (Pearson on average ranks)."""
    x, y = _pair(xs, ys)
    return pearson(_ranks(x), _ranks(y))


def lagged_pearson(
    xs: Sequence[float],
    ys: Sequence[float],
    max_lag: int = 0,
) -> tuple[float, int]:
    """Best Pearson correlation over integer lags in ``[-max_lag, max_lag]``.

    Returns ``(coefficient, lag)`` where ``lag > 0`` means ``ys`` trails
    ``xs``.  Useful for metrics sampled on slightly offset intervals.
    """
    if max_lag < 0:
        raise ValueError("max_lag must be non-negative")
    x = np.asarray(xs, dtype=float).ravel()
    y = np.asarray(ys, dtype=float).ravel()
    best = (0.0, 0)
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            xi, yi = x[: x.size - lag or None], y[lag:]
        else:
            xi, yi = x[-lag:], y[: y.size + lag]
        if min(xi.size, yi.size) < 2:
            continue
        n = min(xi.size, yi.size)
        coeff = pearson(xi[:n], yi[:n])
        if abs(coeff) > abs(best[0]):
            best = (coeff, lag)
    return best


def fisher_significance(coefficient: float, n: int) -> float:
    """Approximate two-sided p-value for a Pearson coefficient via Fisher's z.

    Good enough to rank correlations; not meant for publication-grade
    hypothesis testing.
    """
    if n < 4:
        return 1.0
    r = max(min(coefficient, 0.999999), -0.999999)
    z = 0.5 * np.log((1.0 + r) / (1.0 - r)) * np.sqrt(n - 3)
    # two-sided tail of the standard normal
    return float(2.0 * (1.0 - _phi(abs(z))))


def _phi(z: float) -> float:
    """Standard normal CDF via the same erf approximation as repro.stats.kde."""
    from .kde import _erf

    return float(0.5 * (1.0 + _erf(np.asarray(z / np.sqrt(2.0)))))
