"""Detector evaluation harness for the KDE-vs-advanced-models observation.

Section 5: *"Compared to correlation analysis using advanced models (e.g.,
Bayesian networks), KDE can produce accurate results with few tens of
samples, and is more robust to noise in the data."*  This harness makes that
claim quantitative: synthetic healthy/anomalous observations are generated at
controlled sample counts and noise levels, and every detector is scored on
detection accuracy at the workflow's 0.8 threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from .baselines import DETECTOR_FACTORIES, GaussianNaiveBayesDetector

__all__ = ["DetectorScore", "evaluate_detectors", "sweep_detectors"]

#: Relative level shift of a true anomaly (a 40% slowdown, as in the intro's
#: problem-ticket example of a 30-40% regression).
DEFAULT_SHIFT = 0.4

#: The workflow's anomaly threshold.
DEFAULT_THRESHOLD = 0.8


@dataclass(frozen=True)
class DetectorScore:
    """Detection quality of one detector at one (n, noise) design point."""

    detector: str
    n_samples: int
    noise_sigma: float
    accuracy: float
    true_positive_rate: float
    false_positive_rate: float

    @property
    def f1(self) -> float:
        tp = self.true_positive_rate
        fp = self.false_positive_rate
        if tp <= 0:
            return 0.0
        precision = tp / max(tp + fp, 1e-12)
        return 2.0 * precision * tp / max(precision + tp, 1e-12)


def _draw_healthy(rng: np.random.Generator, n: int, noise: float, scale: float) -> np.ndarray:
    return scale * rng.lognormal(mean=0.0, sigma=noise, size=n)


def evaluate_detectors(
    n_samples: int,
    noise_sigma: float,
    shift: float = DEFAULT_SHIFT,
    trials: int = 200,
    threshold: float = DEFAULT_THRESHOLD,
    detectors: Mapping[str, Callable] | None = None,
    rng: np.random.Generator | None = None,
    scale: float = 10.0,
) -> list[DetectorScore]:
    """Score every detector at one design point.

    Each trial fits on ``n_samples`` healthy values and scores one
    observation that is anomalous (shifted by ``shift``) in half the trials.
    ``scale`` sets the healthy level — operator times range from
    milliseconds to minutes, so detectors must work across scales.
    The supervised naive-Bayes detector additionally receives labelled
    anomalous samples, the advantage real deployments rarely have.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    detectors = dict(detectors if detectors is not None else DETECTOR_FACTORIES)
    counts = {
        name: {"tp": 0, "fp": 0, "pos": 0, "neg": 0} for name in detectors
    }
    for trial in range(trials):
        healthy = _draw_healthy(rng, n_samples, noise_sigma, scale)
        is_anomaly = trial % 2 == 0
        base = scale * (1.0 + shift) if is_anomaly else scale
        observed = float(base * rng.lognormal(0.0, noise_sigma))
        for name, factory in detectors.items():
            detector = factory()
            if isinstance(detector, GaussianNaiveBayesDetector):
                unhealthy = scale * (1.0 + shift) * rng.lognormal(
                    0.0, noise_sigma, size=max(n_samples // 2, 2)
                )
                detector.fit(healthy, unhealthy=unhealthy)
            else:
                detector.fit(healthy)
            flagged = detector.score(observed) >= threshold
            bucket = counts[name]
            if is_anomaly:
                bucket["pos"] += 1
                bucket["tp"] += int(flagged)
            else:
                bucket["neg"] += 1
                bucket["fp"] += int(flagged)
    scores = []
    for name, c in counts.items():
        tp_rate = c["tp"] / max(c["pos"], 1)
        fp_rate = c["fp"] / max(c["neg"], 1)
        accuracy = (c["tp"] + (c["neg"] - c["fp"])) / max(c["pos"] + c["neg"], 1)
        scores.append(
            DetectorScore(
                detector=name,
                n_samples=n_samples,
                noise_sigma=noise_sigma,
                accuracy=accuracy,
                true_positive_rate=tp_rate,
                false_positive_rate=fp_rate,
            )
        )
    return scores


def sweep_detectors(
    sample_sizes: tuple[int, ...] = (5, 10, 20, 40, 80),
    noise_levels: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2),
    **kwargs,
) -> list[DetectorScore]:
    """Full (n, noise) sweep; returns the flat list of scores."""
    out: list[DetectorScore] = []
    rng = np.random.default_rng(7)
    for noise in noise_levels:
        for n in sample_sizes:
            out.extend(evaluate_detectors(n, noise, rng=rng, **kwargs))
    return out
