"""Alternative anomaly detectors used as baselines against KDE.

Section 5 of the paper observes that *"Compared to correlation analysis using
advanced models (e.g., Bayesian networks), KDE can produce accurate results
with few tens of samples, and is more robust to noise in the data."*  To make
that observation measurable (experiment E8), this module implements the
detector families DIADS could have used instead:

* :class:`ThresholdDetector` — flag values above a fixed multiple of the
  healthy mean (what a rule-of-thumb dashboard alert does).
* :class:`ZScoreDetector` — parametric Gaussian assumption.
* :class:`PercentileDetector` — empirical CDF without smoothing.
* :class:`GaussianNaiveBayesDetector` — two-class generative model over the
  healthy/unhealthy labels, the simplest stand-in for the "advanced model"
  family (a Bayesian network over one variable degenerates to this).

All detectors share one interface: :meth:`fit` on healthy samples (and, for
the supervised one, unhealthy samples), then :meth:`score` returning a value
in ``[0, 1]`` where higher means more anomalous, so they are drop-in
replacements for the KDE anomaly score inside the diagnosis modules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Protocol

import numpy as np

from .kde import GaussianKDE

__all__ = [
    "AnomalyDetector",
    "KDEDetector",
    "ThresholdDetector",
    "ZScoreDetector",
    "PercentileDetector",
    "GaussianNaiveBayesDetector",
    "DETECTOR_FACTORIES",
]


class AnomalyDetector(Protocol):
    """Common scoring protocol for anomaly detectors."""

    def fit(self, healthy: Iterable[float]) -> "AnomalyDetector":
        """Learn the healthy distribution; returns self for chaining."""
        ...

    def score(self, observed: float) -> float:
        """Anomaly score in [0, 1]; higher is more anomalous."""
        ...


def _to_array(values: Iterable[float]) -> np.ndarray:
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if arr.size == 0:
        raise ValueError("detector requires at least one healthy sample")
    return arr.ravel()


@dataclass
class KDEDetector:
    """The paper's detector: KDE CDF as the anomaly score."""

    bandwidth: float | str = "silverman"
    _kde: GaussianKDE | None = field(default=None, repr=False)

    def fit(self, healthy: Iterable[float]) -> "KDEDetector":
        self._kde = GaussianKDE.fit(healthy, bandwidth=self.bandwidth)
        return self

    def score(self, observed: float) -> float:
        if self._kde is None:
            raise RuntimeError("fit() must be called before score()")
        return self._kde.anomaly_score(observed)


@dataclass
class ThresholdDetector:
    """Flags values above ``factor`` times the healthy mean.

    The score is a hard 0/1 step — exactly how static alert thresholds in
    monitoring dashboards behave, which is what makes them brittle.
    """

    factor: float = 1.5
    _threshold: float | None = field(default=None, repr=False)

    def fit(self, healthy: Iterable[float]) -> "ThresholdDetector":
        self._threshold = float(_to_array(healthy).mean()) * self.factor
        return self

    def score(self, observed: float) -> float:
        if self._threshold is None:
            raise RuntimeError("fit() must be called before score()")
        return 1.0 if observed > self._threshold else 0.0


@dataclass
class ZScoreDetector:
    """Gaussian-assumption detector: score = Phi((u - mean) / std)."""

    _mean: float = field(default=0.0, repr=False)
    _std: float = field(default=1.0, repr=False)

    def fit(self, healthy: Iterable[float]) -> "ZScoreDetector":
        arr = _to_array(healthy)
        self._mean = float(arr.mean())
        self._std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        return self

    def score(self, observed: float) -> float:
        if self._std <= 0.0:
            return 1.0 if observed > self._mean else 0.0
        z = (observed - self._mean) / self._std
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


@dataclass
class PercentileDetector:
    """Empirical CDF without smoothing; degrades sharply at small n."""

    _sorted: np.ndarray | None = field(default=None, repr=False)

    def fit(self, healthy: Iterable[float]) -> "PercentileDetector":
        self._sorted = np.sort(_to_array(healthy))
        return self

    def score(self, observed: float) -> float:
        if self._sorted is None:
            raise RuntimeError("fit() must be called before score()")
        rank = float(np.searchsorted(self._sorted, observed, side="right"))
        return rank / self._sorted.size


@dataclass
class GaussianNaiveBayesDetector:
    """Supervised two-class Gaussian model: P(unhealthy | u).

    Stand-in for the "advanced model" family: it needs labelled unhealthy
    samples (which real deployments rarely have many of) and it is sensitive
    to noise in the class-conditional variance estimates — the two weaknesses
    the paper attributes to heavier models.
    """

    prior_unhealthy: float = 0.5
    _healthy: tuple[float, float] | None = field(default=None, repr=False)
    _unhealthy: tuple[float, float] | None = field(default=None, repr=False)

    def fit(
        self,
        healthy: Iterable[float],
        unhealthy: Iterable[float] | None = None,
    ) -> "GaussianNaiveBayesDetector":
        h = _to_array(healthy)
        self._healthy = (float(h.mean()), max(float(h.std(ddof=1)) if h.size > 1 else 0.0, 1e-9))
        if unhealthy is not None:
            u = _to_array(unhealthy)
            self._unhealthy = (
                float(u.mean()),
                max(float(u.std(ddof=1)) if u.size > 1 else 0.0, 1e-9),
            )
        else:
            # Unsupervised fallback: assume "unhealthy" doubles the mean with
            # the same spread, a weak prior that mimics bootstrap labelling.
            self._unhealthy = (2.0 * self._healthy[0], self._healthy[1])
        return self

    def score(self, observed: float) -> float:
        if self._healthy is None or self._unhealthy is None:
            raise RuntimeError("fit() must be called before score()")
        ph = self._likelihood(observed, *self._healthy) * (1.0 - self.prior_unhealthy)
        pu = self._likelihood(observed, *self._unhealthy) * self.prior_unhealthy
        total = ph + pu
        if total <= 0.0:
            # Both likelihoods underflowed (observation far outside both
            # classes): fall back to nearest-mean classification.
            near_unhealthy = abs(observed - self._unhealthy[0]) < abs(
                observed - self._healthy[0]
            )
            return 1.0 if near_unhealthy else 0.0
        return pu / total

    @staticmethod
    def _likelihood(x: float, mean: float, std: float) -> float:
        z = (x - mean) / std
        return math.exp(-0.5 * z * z) / (std * math.sqrt(2.0 * math.pi))


#: Factories for benchmark sweeps (E8): name -> zero-argument constructor.
DETECTOR_FACTORIES = {
    "kde-silverman": lambda: KDEDetector("silverman"),
    "kde-scott": lambda: KDEDetector("scott"),
    "threshold": ThresholdDetector,
    "zscore": ZScoreDetector,
    "percentile": PercentileDetector,
    "naive-bayes": GaussianNaiveBayesDetector,
}
