"""Gaussian kernel density estimation used by the DIADS diagnosis modules.

The paper (Section 4.1) scores anomalies as ``prob(S <= u)`` where ``S`` is
the distribution of an observable (operator running time, component metric)
during *satisfactory* runs, estimated with kernel density estimation, and
``u`` is the value observed during an *unsatisfactory* run.  A score close to
1 means ``u`` sits far in the right tail of the healthy distribution.

This module implements one-dimensional Gaussian KDE from scratch on numpy:
the fitted density is a mixture of ``n`` Gaussians centred at the samples
with a common bandwidth chosen by Silverman's or Scott's rule.  Both the
density and its cumulative distribution have closed forms, so anomaly scores
are exact (no numerical integration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "GaussianKDE",
    "anomaly_score",
    "silverman_bandwidth",
    "scott_bandwidth",
]

_SQRT2 = math.sqrt(2.0)
_SQRT2PI = math.sqrt(2.0 * math.pi)

# Floor applied to bandwidths so that degenerate samples (all values equal,
# which happens for idle components whose metric is constantly zero) still
# yield a proper, extremely narrow density instead of a division by zero.
_MIN_BANDWIDTH = 1e-9


def _as_samples(data: Iterable[float]) -> np.ndarray:
    samples = np.asarray(list(data) if not isinstance(data, np.ndarray) else data, dtype=float)
    samples = samples.ravel()
    if samples.size == 0:
        raise ValueError("KDE requires at least one sample")
    if not np.all(np.isfinite(samples)):
        raise ValueError("KDE samples must be finite")
    return samples


def _spread(samples: np.ndarray) -> float:
    """Robust spread estimate: min(std, IQR / 1.349), as in Silverman's rule."""
    std = float(np.std(samples, ddof=1)) if samples.size > 1 else 0.0
    q75, q25 = np.percentile(samples, [75.0, 25.0])
    iqr = float(q75 - q25)
    candidates = [v for v in (std, iqr / 1.349) if v > 0.0]
    if not candidates:
        return 0.0
    return min(candidates)


def silverman_bandwidth(data: Iterable[float]) -> float:
    """Silverman's rule-of-thumb bandwidth: ``0.9 * A * n**(-1/5)``.

    ``A`` is the robust spread (min of the sample standard deviation and the
    normalised interquartile range).  Returns a tiny positive floor for
    degenerate (constant) samples.
    """
    samples = _as_samples(data)
    spread = _spread(samples)
    if spread <= 0.0:
        return _MIN_BANDWIDTH
    return max(0.9 * spread * samples.size ** (-0.2), _MIN_BANDWIDTH)


def scott_bandwidth(data: Iterable[float]) -> float:
    """Scott's rule-of-thumb bandwidth: ``1.06 * sigma * n**(-1/5)``."""
    samples = _as_samples(data)
    spread = _spread(samples)
    if spread <= 0.0:
        return _MIN_BANDWIDTH
    return max(1.06 * spread * samples.size ** (-0.2), _MIN_BANDWIDTH)


_BANDWIDTH_RULES = {
    "silverman": silverman_bandwidth,
    "scott": scott_bandwidth,
}


@dataclass(frozen=True)
class GaussianKDE:
    """A fitted one-dimensional Gaussian kernel density estimate.

    Instances are immutable; use :meth:`fit` to construct one.

    >>> kde = GaussianKDE.fit([10.0, 11.0, 9.5, 10.4])
    >>> 0.0 <= kde.cdf(10.0) <= 1.0
    True
    """

    samples: np.ndarray
    bandwidth: float

    @classmethod
    def fit(
        cls,
        data: Iterable[float],
        bandwidth: float | str = "silverman",
    ) -> "GaussianKDE":
        """Fit a KDE to ``data``.

        ``bandwidth`` is either a positive float or the name of a rule
        (``"silverman"`` or ``"scott"``).
        """
        samples = _as_samples(data)
        if isinstance(bandwidth, str):
            try:
                rule = _BANDWIDTH_RULES[bandwidth]
            except KeyError:
                raise ValueError(
                    f"unknown bandwidth rule {bandwidth!r}; "
                    f"expected one of {sorted(_BANDWIDTH_RULES)}"
                ) from None
            width = rule(samples)
        else:
            width = float(bandwidth)
            if width <= 0.0:
                raise ValueError("bandwidth must be positive")
        return cls(samples=samples, bandwidth=width)

    @property
    def n(self) -> int:
        """Number of fitted samples."""
        return int(self.samples.size)

    def pdf(self, x: float | Sequence[float] | np.ndarray) -> np.ndarray | float:
        """Probability density at ``x`` (scalar or array)."""
        xs = np.asarray(x, dtype=float)
        z = (xs[..., None] - self.samples) / self.bandwidth
        dens = np.exp(-0.5 * z * z).sum(axis=-1) / (self.n * self.bandwidth * _SQRT2PI)
        if np.isscalar(x) or xs.ndim == 0:
            return float(dens)
        return dens

    def cdf(self, x: float | Sequence[float] | np.ndarray) -> np.ndarray | float:
        """Cumulative distribution ``P(S <= x)`` of the fitted density."""
        xs = np.asarray(x, dtype=float)
        z = (xs[..., None] - self.samples) / (self.bandwidth * _SQRT2)
        probs = 0.5 * (1.0 + _erf(z)).mean(axis=-1)
        if np.isscalar(x) or xs.ndim == 0:
            return float(probs)
        return probs

    def anomaly_score(self, observed: float) -> float:
        """The paper's anomaly score: ``prob(S <= observed)`` under the KDE."""
        return float(self.cdf(float(observed)))

    def sample(self, size: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``size`` values from the fitted mixture (for simulation/tests)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        # Seeded fallback keeps simulation/test draws reproducible by default.
        rng = rng if rng is not None else np.random.default_rng(0)
        centers = rng.choice(self.samples, size=size, replace=True)
        return centers + rng.normal(scale=self.bandwidth, size=size)


def _erf(z: np.ndarray) -> np.ndarray:
    """Vectorised error function (Abramowitz & Stegun 7.1.26, |err| < 1.5e-7).

    Implemented here so the core library only depends on numpy (scipy is a
    dev/test dependency used to cross-validate this approximation).
    """
    sign = np.sign(z)
    z = np.abs(z)
    t = 1.0 / (1.0 + 0.3275911 * z)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-z * z))


def anomaly_score(
    satisfactory: Iterable[float],
    observed: float,
    bandwidth: float | str = "silverman",
) -> float:
    """Convenience wrapper: fit a KDE on ``satisfactory`` and score ``observed``.

    This is the exact operation Modules CO, CR and DA perform per observable.
    """
    return GaussianKDE.fit(satisfactory, bandwidth=bandwidth).anomaly_score(observed)
