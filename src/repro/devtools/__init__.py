"""repro.devtools — correctness tooling for the invariants the tests assume.

The repo's headline guarantees (byte-for-byte identical incident and
correlation histories across thread interleavings and kill/resume) rest on
conventions nothing else enforces: simulated-time-only code paths,
``shared_pool()``-only execution, paired ``state_dict``/``load_state``
checkpointing, locked store mutation, and registry-sourced keyspace names.
This package makes them machine-checked:

* :mod:`repro.devtools.lint` — ``repro lint``, an AST-based static analyzer
  with six project-specific checkers, pragma suppression, table/JSON output
  and a nonzero exit on findings (the CI gate);
* :mod:`repro.devtools.sanitize` — an opt-in runtime sanitizer
  (``REPRO_SANITIZE=1``): tracked locks that flag lock-order inversions,
  task scopes that flag locks leaking across pool tasks, and guarded-field
  instrumentation that flags mutations outside the declared lock.
"""

from .lint import (
    CHECKERS,
    Finding,
    guarded_fields_of,
    lint_paths,
    lint_source,
    render_findings,
)
from .sanitize import (
    SanitizerViolation,
    instrument_guarded,
    is_enabled,
    recording,
    reset_violations,
    task_scope,
    track_lock,
    violations,
)

__all__ = [
    "CHECKERS",
    "Finding",
    "lint_paths",
    "lint_source",
    "render_findings",
    "guarded_fields_of",
    "SanitizerViolation",
    "is_enabled",
    "track_lock",
    "task_scope",
    "instrument_guarded",
    "violations",
    "reset_violations",
    "recording",
]
