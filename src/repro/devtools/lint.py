"""``repro lint`` — AST-based enforcement of the repo's correctness invariants.

Nine checkers, each guarding a convention the determinism and durability
guarantees depend on:

``determinism``
    No wall-clock reads (``time.time()``, ``datetime.now()``, …) and no
    unseeded randomness (``np.random.default_rng()`` with no seed, the
    stdlib ``random`` module's global RNG) in simulation-facing packages
    (``lab``, ``db``, ``san``, ``stream``, ``correlate``, ``monitor``,
    ``stats``, ``obs``) or the CLI.  One stray wall-clock read makes a
    "deterministic" replay diverge only under load — the worst kind of
    flake.  The single exemption is ``obs/clock.py`` — the observability
    subsystem's allowlisted monotonic clock; everything else (including the
    rest of ``repro.obs``) measures wall durations through it.
``executor-discipline``
    No raw ``ThreadPoolExecutor`` / ``ProcessPoolExecutor`` /
    ``threading.Thread`` / ``multiprocessing`` primitive construction
    outside ``runtime/pools.py`` and ``runtime/procpool.py``.  All fan-out
    goes through :func:`repro.runtime.shared_pool` so concurrency stays
    bounded by one budget (and the sanitizer can see task boundaries).
``checkpoint-pairing``
    A class defining ``state_dict`` must define ``load_state`` (and vice
    versa); a one-sided checkpoint surface resumes to silently-stale state.
``serializer-completeness``
    Every ``*_to_dict`` in ``storage/serializers.py`` has a matching
    ``*_from_dict``: a serializer without its inverse cannot round-trip.
``keyspace-literal``
    Backend keyspace names come from :mod:`repro.storage.keyspaces` — class
    ``KEYSPACE`` attributes, ``keyspace=`` parameter defaults and call-site
    keywords must not be string literals.
``guarded-fields``
    A field annotated ``# guarded-by: <lock>`` is only mutated inside a
    ``with self.<lock>:`` block.  The annotation also drives the runtime
    sanitizer (:func:`repro.devtools.sanitize.instrument_guarded`).
``obs-discipline``
    Outside ``repro/obs/``, spans are used as context managers only (a
    manually opened span that never closes holds the trace context for the
    rest of the task and misparents everything after it), and
    ``wall_clock()`` — the observability clock — is never called directly:
    instrumented code measures wall durations through ``span()`` /
    ``timed()``, which keeps the determinism allowlist at exactly one
    module.
``serve-discipline``
    Inside ``repro/serve/``, ``async def`` bodies never call blocking
    store/filesystem operations directly — journal scans, history replays,
    event-log tails, manifest writes, ``open()``, ``time.sleep()`` all
    belong in sync functions dispatched through ``Scheduler.call`` onto the
    worker pool (one slow read inline would stall every tenant's watch and
    every SSE client sharing the coordination loop).  Also:
    :class:`~repro.storage.prefix.PrefixedBackend` is constructed only by
    the tenant registry (``serve/tenants.py``) — keyspace prefixes minted
    anywhere else would silently break tenant isolation.
``procpool-discipline``
    ``submit_task`` call sites outside ``runtime/procpool.py`` hand off
    JSON documents, not live object graphs: the task must be a (dotted
    ``"module:function"``) string, and the payload expression must not be a
    lambda, contain a lambda, or pass a bare ``self`` — closures and object
    graphs don't survive the serializer-based process handoff, and the
    failure would otherwise surface only at runtime on the process backend.

Suppression: append ``# repro-lint: disable=<check>[,<check>…]`` (or
``disable=all``) to the offending line, with a comment saying *why*; a
standalone pragma in the first five lines of a file suppresses file-wide.
``--strict`` additionally reports pragmas that no longer suppress anything,
so stale escapes cannot accumulate.

The analyzer is stdlib-``ast`` only — no new dependencies — and is wired to
the CLI as ``repro lint [paths…] [--json] [--strict] [--select checks]``,
exiting nonzero on findings (the CI gate).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "FileContext",
    "CHECKERS",
    "SIMULATION_PACKAGES",
    "lint_paths",
    "lint_source",
    "render_findings",
    "guarded_fields_of",
    "main",
]

#: Top-level packages whose code runs inside the simulated-time world.
#: ``cli.py`` is included by filename (it hosts the wall-pacing gate, the
#: one *allowlisted* wall-clock read in the tree).
SIMULATION_PACKAGES = frozenset(
    {"lab", "db", "san", "stream", "correlate", "monitor", "stats", "obs"}
)

#: The only modules allowed to construct executors/threads/processes:
#: the thread pool and its process-backed sibling.
EXECUTOR_HOMES = (("runtime", "pools.py"), ("runtime", "procpool.py"))

#: The one module allowed to read a monotonic wall clock: the observability
#: subsystem's allowlisted clock (every span/timer funnels through it).
WALL_CLOCK_HOME = ("obs", "clock.py")

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")

#: Wall-clock reads (resolved dotted names).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)

#: numpy RNG entry points that are deterministic when given a seed.
_SEEDED_RNG = frozenset({"numpy.random.default_rng", "numpy.random.Generator",
                         "numpy.random.SeedSequence"})

#: Container-mutating method names for guarded-field analysis.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to ``path:line``."""

    path: str
    line: int
    col: int
    check: str
    message: str

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "check": self.check,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.check}] {self.message}"


# ---------------------------------------------------------------------------
# per-file context: parse tree, pragmas, import aliases
# ---------------------------------------------------------------------------


def _parse_pragmas(lines: list[str]) -> tuple[dict[int, set[str]], set[str]]:
    """Line → suppressed checks, plus file-wide suppressions.

    A pragma suppresses its own line; a *standalone* pragma comment within
    the first five lines suppresses the whole file.
    """
    by_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if not match:
            continue
        checks = {part.strip() for part in match.group(1).split(",") if part.strip()}
        by_line[lineno] = checks
        if lineno <= 5 and text.lstrip().startswith("#"):
            file_wide |= checks
    return by_line, file_wide


class _ImportMap(ast.NodeVisitor):
    """Alias → canonical module path, for resolving dotted call names."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never shadow time/random/numpy
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"


@dataclass
class FileContext:
    """Everything a checker needs about one file."""

    path: str
    parts: tuple[str, ...]
    tree: ast.Module
    lines: list[str]
    pragmas: dict[int, set[str]] = field(default_factory=dict)
    file_pragmas: set[str] = field(default_factory=set)
    aliases: dict[str, str] = field(default_factory=dict)
    #: pragma lines that actually suppressed something (for --strict).
    used_pragmas: set[int] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str, path: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        by_line, file_wide = _parse_pragmas(lines)
        imports = _ImportMap()
        imports.visit(tree)
        return cls(
            path=path,
            parts=tuple(Path(path).parts),
            tree=tree,
            lines=lines,
            pragmas=by_line,
            file_pragmas=file_wide,
            aliases=imports.aliases,
        )

    # -- name resolution -------------------------------------------------
    def dotted(self, node: ast.expr) -> str | None:
        """Resolve an attribute chain to a dotted name through the imports.

        ``np.random.default_rng`` → ``numpy.random.default_rng`` under
        ``import numpy as np``; unresolvable heads (``self.x.y``) return
        None.
        """
        chain: list[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            chain.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        head = self.aliases.get(cursor.id, cursor.id)
        chain.append(head)
        return ".".join(reversed(chain))

    # -- suppression -----------------------------------------------------
    def suppressed(self, line: int, check: str) -> bool:
        checks = self.pragmas.get(line)
        if checks is not None and (check in checks or "all" in checks):
            self.used_pragmas.add(line)
            return True
        if check in self.file_pragmas or "all" in self.file_pragmas:
            for lineno in self.pragmas:
                if lineno <= 5:
                    self.used_pragmas.add(lineno)
            return True
        return False


# ---------------------------------------------------------------------------
# checkers
# ---------------------------------------------------------------------------


class Checker:
    """One named invariant over a parsed file."""

    name = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def _finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            check=self.name,
            message=message,
        )


class DeterminismChecker(Checker):
    """No wall-clock reads or unseeded randomness in simulated code."""

    name = "determinism"

    def applies(self, ctx: FileContext) -> bool:
        if ctx.parts[-2:] == WALL_CLOCK_HOME:
            return False  # the allowlisted observability clock
        return (
            bool(SIMULATION_PACKAGES.intersection(ctx.parts))
            or ctx.parts[-1] == "cli.py"
        )

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted(node.func)
            if name is None:
                continue
            if name in _WALL_CLOCK:
                yield self._finding(
                    ctx,
                    node,
                    f"wall-clock read {name}() in simulation-facing code; "
                    "use the environment's simulated clock / ClockVector",
                )
            elif (
                name.rsplit(".", 1)[-1] in ("now", "utcnow", "today")
                and "datetime" in name.split(".")
            ):
                yield self._finding(
                    ctx,
                    node,
                    f"wall-clock read {name}() in simulation-facing code; "
                    "simulated timestamps only",
                )
            elif name.endswith("random.default_rng") and not node.args and not node.keywords:
                yield self._finding(
                    ctx,
                    node,
                    "unseeded np.random.default_rng(); pass an explicit seed "
                    "so reruns reproduce",
                )
            elif name.startswith("random."):
                if name == "random.Random" and (node.args or node.keywords):
                    continue  # seeded instance RNG is fine
                yield self._finding(
                    ctx,
                    node,
                    f"{name}() draws from the process-global stdlib RNG; use "
                    "a seeded np.random.default_rng(seed) instead",
                )
            elif name.startswith("numpy.random.") and name not in _SEEDED_RNG:
                yield self._finding(
                    ctx,
                    node,
                    f"{name}() uses numpy's legacy global RNG state; use a "
                    "seeded np.random.default_rng(seed) instead",
                )


class ExecutorChecker(Checker):
    """Thread/executor/process construction lives in runtime/pools.py
    and runtime/procpool.py only."""

    name = "executor-discipline"

    _BANNED = {
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "threading.Thread",
        "multiprocessing.Process",
        "multiprocessing.Pool",
        "multiprocessing.Queue",
        "multiprocessing.SimpleQueue",
        "multiprocessing.Manager",
        "multiprocessing.get_context",
    }

    def applies(self, ctx: FileContext) -> bool:
        return tuple(ctx.parts[-2:]) not in EXECUTOR_HOMES

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted(node.func)
            if name in self._BANNED:
                yield self._finding(
                    ctx,
                    node,
                    f"raw {name} outside runtime/pools.py or "
                    "runtime/procpool.py; fan out through "
                    "repro.runtime.shared_pool() so concurrency stays bounded "
                    "by one budget",
                )


class CheckpointPairingChecker(Checker):
    """state_dict and load_state come in pairs."""

    name = "checkpoint-pairing"
    _PAIR = ("state_dict", "load_state")

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        classes: dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        }
        for cls in classes.values():
            methods, resolved = self._methods(cls, classes, set())
            if not resolved:
                # A base class lives in another module; without it we cannot
                # prove the pair is broken, so stay quiet (no false alarms).
                continue
            has = {name for name in self._PAIR if name in methods}
            if len(has) == 1:
                present = has.pop()
                missing = (set(self._PAIR) - {present}).pop()
                yield self._finding(
                    ctx,
                    cls,
                    f"class {cls.name} defines {present}() but not "
                    f"{missing}(); a one-sided checkpoint surface resumes to "
                    "stale state",
                )

    def _methods(
        self,
        cls: ast.ClassDef,
        classes: dict[str, ast.ClassDef],
        seen: set[str],
    ) -> tuple[set[str], bool]:
        """(method names incl. same-module bases, fully-resolved?)."""
        if cls.name in seen:
            return set(), True
        seen.add(cls.name)
        names = {
            stmt.name
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        # Assignment aliases count too (e.g. ``restore = load_state``).
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        resolved = True
        for base in cls.bases:
            if isinstance(base, ast.Name):
                if base.id in ("object", "Protocol", "Generic", "ABC", "Enum"):
                    continue
                if base.id in classes:
                    base_names, base_resolved = self._methods(
                        classes[base.id], classes, seen
                    )
                    names |= base_names
                    resolved = resolved and base_resolved
                else:
                    resolved = False
            else:
                resolved = False
        return names, resolved


class SerializerPairingChecker(Checker):
    """Every *_to_dict in storage/serializers.py has its *_from_dict."""

    name = "serializer-completeness"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.parts[-1] == "serializers.py"

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        functions: dict[str, ast.FunctionDef] = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        for name, node in functions.items():
            for suffix, inverse in (("_to_dict", "_from_dict"), ("_from_dict", "_to_dict")):
                if name.endswith(suffix):
                    partner = name[: -len(suffix)] + inverse
                    if partner not in functions:
                        yield self._finding(
                            ctx,
                            node,
                            f"{name}() has no {partner}(); a serializer "
                            "without its inverse cannot round-trip",
                        )


class KeyspaceLiteralChecker(Checker):
    """Keyspace names come from repro.storage.keyspaces, not literals."""

    name = "keyspace-literal"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.parts[-1] != "keyspaces.py"

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        advice = "reference repro.storage.keyspaces instead of a string literal"
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    value = None
                    if isinstance(stmt, ast.Assign) and any(
                        isinstance(t, ast.Name) and t.id == "KEYSPACE"
                        for t in stmt.targets
                    ):
                        value = stmt.value
                    elif (
                        isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)
                        and stmt.target.id in ("KEYSPACE", "keyspace")
                    ):
                        value = stmt.value
                    if isinstance(value, ast.Constant) and isinstance(value.value, str):
                        yield self._finding(
                            ctx, value, f"literal keyspace {value.value!r}; {advice}"
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                positional = args.posonlyargs + args.args
                for arg, default in zip(
                    positional[len(positional) - len(args.defaults):], args.defaults
                ):
                    if (
                        arg.arg == "keyspace"
                        and isinstance(default, ast.Constant)
                        and isinstance(default.value, str)
                    ):
                        yield self._finding(
                            ctx,
                            default,
                            f"literal keyspace default {default.value!r}; {advice}",
                        )
                for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                    if (
                        arg.arg == "keyspace"
                        and isinstance(default, ast.Constant)
                        and isinstance(default.value, str)
                    ):
                        yield self._finding(
                            ctx,
                            default,
                            f"literal keyspace default {default.value!r}; {advice}",
                        )
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if (
                        keyword.arg == "keyspace"
                        and isinstance(keyword.value, ast.Constant)
                        and isinstance(keyword.value.value, str)
                    ):
                        yield self._finding(
                            ctx,
                            keyword.value,
                            f"literal keyspace argument {keyword.value.value!r}; "
                            f"{advice}",
                        )


_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


def _class_guarded_fields(
    cls: ast.ClassDef, lines: list[str]
) -> dict[str, tuple[str, int]]:
    """Field → (lock name, annotation line) for one class.

    A ``# guarded-by: <lock>`` comment binds to the nearest field
    declaration at or below it (within four lines): a class-body assignment
    (dataclass field) or a ``self.<field> = …`` in any method.
    """
    candidates: list[tuple[int, str]] = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            candidates.append((stmt.lineno, stmt.target.id))
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    candidates.append((stmt.lineno, target.id))
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    candidates.append((node.lineno, target.attr))
    candidates.sort()

    end = max(getattr(cls, "end_lineno", cls.lineno) or cls.lineno, cls.lineno)
    guarded: dict[str, tuple[str, int]] = {}
    for lineno in range(cls.lineno, end + 1):
        if lineno > len(lines):
            break
        match = _GUARDED_RE.search(lines[lineno - 1])
        if not match:
            continue
        lock = match.group(1)
        for cand_line, name in candidates:
            if lineno <= cand_line <= lineno + 4:
                guarded[name] = (lock, lineno)
                break
    return guarded


def guarded_fields_of(source: str) -> dict[str, dict[str, str]]:
    """Class name → {field → lock} from ``# guarded-by`` annotations.

    The shared vocabulary between the static checker and the runtime
    sanitizer: both read the same comments, so a field is either protected
    in both worlds or in neither.
    """
    tree = ast.parse(source)
    lines = source.splitlines()
    out: dict[str, dict[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            fields = _class_guarded_fields(node, lines)
            if fields:
                out[node.name] = {name: lock for name, (lock, _) in fields.items()}
    return out


class GuardedFieldsChecker(Checker):
    """# guarded-by fields are only mutated under their lock."""

    name = "guarded-fields"

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            guarded = _class_guarded_fields(cls, ctx.lines)
            if not guarded:
                continue
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name in ("__init__", "__post_init__"):
                    continue  # construction happens before the object escapes
                yield from self._check_function(ctx, cls, stmt, guarded)

    def _check_function(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        func: ast.FunctionDef,
        guarded: dict[str, tuple[str, int]],
    ) -> Iterator[Finding]:
        held: list[str] = []

        def walk(node: ast.AST) -> Iterator[Finding]:
            if isinstance(node, ast.With):
                locks = [
                    item.context_expr.attr
                    for item in node.items
                    if isinstance(item.context_expr, ast.Attribute)
                    and isinstance(item.context_expr.value, ast.Name)
                    and item.context_expr.value.id == "self"
                ]
                held.extend(locks)
                for child in node.body:
                    yield from walk(child)
                del held[len(held) - len(locks):]
                return
            yield from self._mutations(ctx, cls, node, guarded, held)
            for child in ast.iter_child_nodes(node):
                if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                          ast.Lambda)):
                    yield from walk(child)

        for stmt in func.body:
            yield from walk(stmt)

    def _mutations(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        node: ast.AST,
        guarded: dict[str, tuple[str, int]],
        held: list[str],
    ) -> Iterator[Finding]:
        def self_field(expr: ast.AST) -> str | None:
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in guarded
            ):
                return expr.attr
            if isinstance(expr, ast.Subscript):
                return self_field(expr.value)
            return None

        touched: list[str] = []
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                name = self_field(target)
                if name:
                    touched.append(name)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                name = self_field(target)
                if name:
                    touched.append(name)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                name = self_field(node.func.value)
                if name:
                    touched.append(name)

        for name in touched:
            lock, _ = guarded[name]
            if lock not in held:
                yield self._finding(
                    ctx,
                    node,
                    f"{cls.name}.{name} is declared guarded-by {lock} but "
                    f"mutated outside `with self.{lock}:`",
                )


class ObsDisciplineChecker(Checker):
    """Spans are context managers; wall-clock reads stay inside repro/obs;
    worker-side task modules only emit spans through the buffered API."""

    name = "obs-discipline"

    #: Modules whose functions execute *inside pool worker processes*.  The
    #: process-wide tracer there has no sink and its spans would be lost (or
    #: worse, block the task path journalling them) — worker-side code must
    #: emit spans through ``repro.obs.worker.worker_span``, which buffers
    #: them for the piggy-backed result-path merge.
    WORKER_HOMES = (("stream", "worker.py"),)

    def applies(self, ctx: FileContext) -> bool:
        # The obs package itself is exempt: the tracer's factory methods
        # construct spans without entering them, and clock.py *is* the wall
        # clock.  (Determinism still polices obs internals.)
        return "obs" not in ctx.parts

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        worker_side = tuple(ctx.parts[-2:]) in self.WORKER_HOMES
        with_items: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted(node.func)
            if name is None:
                # Chains through a call (``tracer().set_sink``) defeat alias
                # resolution; the bare attribute leaf is still diagnostic for
                # the obs-only method names this checker polices.
                if not isinstance(node.func, ast.Attribute):
                    continue
                name = node.func.attr
            leaf = name.rsplit(".", 1)[-1]
            if leaf == "wall_clock":
                yield self._finding(
                    ctx,
                    node,
                    f"direct observability wall-clock read {name}() outside "
                    "repro/obs/; measure wall durations through span() or "
                    "metrics.timed() instead",
                )
            elif leaf == "span" and worker_side:
                yield self._finding(
                    ctx,
                    node,
                    f"{name}() in a worker-side task module; the worker "
                    "tracer has no sink and a direct span would be lost — "
                    "buffer it with obs.worker.worker_span() so the result "
                    "path merges it into the parent timeline",
                )
            elif leaf == "span" and id(node) not in with_items:
                yield self._finding(
                    ctx,
                    node,
                    f"{name}() opened outside a `with` statement; a span "
                    "that is never closed holds the trace context and "
                    "misparents every later span — use "
                    "`with span(...):`",
                )
            elif leaf == "set_sink" and worker_side:
                yield self._finding(
                    ctx,
                    node,
                    f"{name}() in a worker-side task module; workers never "
                    "attach a journal sink — spans travel home buffered on "
                    "the task result path, not through a second writer on "
                    "the same state dir",
                )
            elif leaf == "worker_span" and id(node) not in with_items:
                yield self._finding(
                    ctx,
                    node,
                    f"{name}() opened outside a `with` statement; an "
                    "unclosed worker span never reaches the buffer and "
                    "misparents every later span — use "
                    "`with worker_span(...):`",
                )


class ServeDisciplineChecker(Checker):
    """serve/ handlers stay non-blocking; only the registry mints prefixes.

    The serve subsystem multiplexes every tenant's supervisor and every SSE
    client onto ONE event loop.  A single blocking store scan inline in an
    ``async def`` freezes all of them at once — so this checker walks every
    async function under ``repro/serve/`` and flags direct calls to the
    known-blocking surface (store reads, journal replays, filesystem ops,
    ``open()``, ``time.sleep()``).  Sync functions are exempt: they are the
    bodies that ``Scheduler.call`` dispatches to the worker pool.
    """

    name = "serve-discipline"

    #: Method leaves that hit disk/database when called on a store, backend,
    #: event log, or Path.  (Deliberately not ``close``/``write``/``drain``:
    #: those are legitimate StreamWriter coroutine-side calls.)
    _BLOCKING_LEAVES = frozenset(
        {
            "scan",
            "history",
            "replay",
            "tail",
            "refresh",
            "keyspaces",
            "flush",
            "consume_log",
            "read_text",
            "write_text",
            "rmtree",
            "unlink",
            "rglob",
            "atomic_write_json",
            "set_watch",
        }
    )

    def applies(self, ctx: FileContext) -> bool:
        return "serve" in ctx.parts

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        in_tenants = ctx.parts[-1] == "tenants.py"
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = ctx.dotted(node.func)
                if (
                    not in_tenants
                    and name is not None
                    and name.rsplit(".", 1)[-1] == "PrefixedBackend"
                ):
                    yield self._finding(
                        ctx,
                        node,
                        "PrefixedBackend constructed outside serve/tenants.py; "
                        "keyspace prefixes are minted only by the tenant "
                        "registry (use registry.backend_for(tenant))",
                    )
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async(ctx, node)

    def _check_async(
        self, ctx: FileContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        def walk(node: ast.AST) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.FunctionDef):
                    continue  # sync body: runs on the pool via Scheduler.call
                if isinstance(child, ast.Call):
                    yield from self._check_call(ctx, func, child)
                yield from walk(child)

        yield from walk(func)

    def _check_call(
        self, ctx: FileContext, func: ast.AsyncFunctionDef, node: ast.Call
    ) -> Iterator[Finding]:
        name = ctx.dotted(node.func)
        advice = (
            "blocking call in async handler {func}(); route it through "
            "Scheduler.call onto the worker pool (one inline blocking call "
            "stalls every tenant and SSE client on the coordination loop)"
        ).format(func=func.name)
        if name == "open" or name == "time.sleep":
            yield self._finding(ctx, node, f"{name}(): {advice}")
            return
        if isinstance(node.func, ast.Attribute):
            leaf = node.func.attr
            if leaf in self._BLOCKING_LEAVES:
                yield self._finding(ctx, node, f".{leaf}(): {advice}")


class ProcpoolDisciplineChecker(Checker):
    """Process-pool handoffs stay serializer-friendly at the call site.

    :meth:`~repro.runtime.procpool.ProcessWorkerPool.submit_task` serialises
    payloads with ``json.dumps`` and resolves tasks by dotted name inside the
    worker — nothing else crosses the process boundary.  This checker
    enforces the lexical half of that contract at every ``submit_task`` call
    outside the executor homes: the task argument must be a string (a
    ``"module:function"`` literal or a constant that holds one — never a
    function object), and the payload expression must not capture a live
    object graph — no lambdas (closures don't serialise) and no bare
    ``self`` passed whole as the payload.  Dict literals whose values read
    attributes are fine: that is a JSON document being assembled.
    """

    name = "procpool-discipline"

    def applies(self, ctx: FileContext) -> bool:
        return tuple(ctx.parts[-2:]) not in EXECUTOR_HOMES

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit_task"
            ):
                continue
            task = node.args[0] if node.args else None
            payload = node.args[1] if len(node.args) > 1 else None
            for keyword in node.keywords:
                if keyword.arg == "payload":
                    payload = keyword.value
            if isinstance(task, ast.Lambda) or (
                isinstance(task, ast.Constant) and not isinstance(task.value, str)
            ):
                yield self._finding(
                    ctx,
                    node,
                    "submit_task task must be a dotted 'module:function' "
                    "string — function objects cannot cross the process "
                    "boundary",
                )
            if payload is None:
                continue
            if isinstance(payload, ast.Name) and payload.id == "self":
                yield self._finding(
                    ctx,
                    node,
                    "submit_task payload passes `self` whole; hand off a "
                    "JSON-able document (dict of primitives), not a live "
                    "object graph",
                )
                continue
            for child in ast.walk(payload):
                if isinstance(child, ast.Lambda):
                    yield self._finding(
                        ctx,
                        node,
                        "lambda inside a submit_task payload; closures do "
                        "not survive the serializer-based process handoff — "
                        "pass data and resolve behaviour by dotted task name",
                    )
                    break


#: Registered checkers, in report order.
CHECKERS: tuple[Checker, ...] = (
    DeterminismChecker(),
    ExecutorChecker(),
    CheckpointPairingChecker(),
    SerializerPairingChecker(),
    KeyspaceLiteralChecker(),
    GuardedFieldsChecker(),
    ObsDisciplineChecker(),
    ServeDisciplineChecker(),
    ProcpoolDisciplineChecker(),
)

CHECKER_NAMES = tuple(checker.name for checker in CHECKERS)


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Iterable[str] | None = None,
    strict: bool = False,
) -> list[Finding]:
    """Lint one source string; the building block under :func:`lint_paths`."""
    wanted = set(select) if select is not None else set(CHECKER_NAMES)
    unknown = wanted - set(CHECKER_NAMES)
    if unknown:
        raise ValueError(
            f"unknown checker(s): {', '.join(sorted(unknown))} "
            f"(available: {', '.join(CHECKER_NAMES)})"
        )
    try:
        ctx = FileContext.from_source(source, path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                check="parse-error",
                message=f"cannot parse: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for checker in CHECKERS:
        if checker.name not in wanted or not checker.applies(ctx):
            continue
        for finding in checker.run(ctx):
            if not ctx.suppressed(finding.line, finding.check):
                findings.append(finding)
    if strict:
        for lineno in sorted(set(ctx.pragmas) - ctx.used_pragmas):
            findings.append(
                Finding(
                    path=path,
                    line=lineno,
                    col=1,
                    check="stale-pragma",
                    message=(
                        "pragma suppresses nothing (strict mode); remove it "
                        "or fix the check name"
                    ),
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.check))
    return findings


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    yield candidate
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"no python file or directory at {path}")


def lint_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    strict: bool = False,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; findings sorted by location."""
    findings: list[Finding] = []
    for file_path in _iter_python_files(paths):
        findings.extend(
            lint_source(
                file_path.read_text(encoding="utf-8"),
                str(file_path),
                select=select,
                strict=strict,
            )
        )
    return findings


def render_findings(findings: list[Finding]) -> str:
    """Human-readable report: one ``path:line:col: [check] message`` per row."""
    if not findings:
        return "repro lint: clean"
    lines = [finding.render() for finding in findings]
    by_check: dict[str, int] = {}
    for finding in findings:
        by_check[finding.check] = by_check.get(finding.check, 0) + 1
    summary = ", ".join(f"{count} {name}" for name, count in sorted(by_check.items()))
    lines.append(f"\n{len(findings)} finding(s): {summary}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point behind ``repro lint`` (also ``python -m repro.devtools.lint``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST lint for the repo's determinism/locking invariants",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CHECKS",
        help=f"comma-separated subset of: {', '.join(CHECKER_NAMES)}",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on pragmas that no longer suppress anything",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as a JSON array"
    )
    args = parser.parse_args(argv)

    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select
        else None
    )
    try:
        findings = lint_paths(args.paths, select=select, strict=args.strict)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: {exc}", flush=True)
        return 2
    if args.json:
        print(json.dumps([finding.to_dict() for finding in findings], indent=2))
    else:
        print(render_findings(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
