"""Opt-in runtime lock/determinism sanitizer (``REPRO_SANITIZE=1``).

The static checker (:mod:`repro.devtools.lint`) proves lock discipline
*lexically*; this module checks it *dynamically*, where the interesting
bugs live — the interleavings tier-1 only hits probabilistically.  Three
instruments, all zero-cost when the env var is unset:

* :class:`TrackedLock` (via :func:`track_lock`) — wraps any
  ``threading.Lock``/``RLock``; every acquisition records the per-thread
  held-lock set and feeds a process-wide lock-order graph.  Acquiring B
  while holding A establishes the edge A→B; a later acquisition of A while
  holding B is a **lock-order inversion** (deadlock waiting for the right
  schedule) and is recorded as a violation with both stacks' locations.
* :func:`task_scope` — wraps every :class:`repro.runtime.WorkerPool` task
  when sanitizing, labelling violations with the task that hit them and
  flagging locks still held when a task returns (a leak: the pool thread
  will deadlock some unrelated future task).
* :func:`instrument_guarded` — reads the same ``# guarded-by: <lock>``
  annotations the lint checker enforces (via
  :func:`repro.devtools.lint.guarded_fields_of`) and rebinds the instance's
  class to a checking subclass whose ``__setattr__`` records a violation
  whenever an annotated field is rebound without its lock held.  Container
  mutation in place is the static checker's job; rebinding is the runtime's.

Violations accumulate in a process-wide registry (:func:`violations`);
under ``REPRO_SANITIZE=1`` the test suite's conftest asserts the registry
is empty after every test, so CI turns any recorded violation into a named,
attributed failure instead of a once-a-month flake.
"""

from __future__ import annotations

import inspect
import os
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "SanitizerViolation",
    "TrackedLock",
    "is_enabled",
    "enable",
    "disable",
    "track_lock",
    "task_scope",
    "current_task",
    "held_locks",
    "instrument_guarded",
    "violations",
    "reset_violations",
    "recording",
]

_ENV_FLAG = "REPRO_SANITIZE"


@dataclass(frozen=True)
class SanitizerViolation:
    """One recorded violation; ``kind`` is lock-order / lock-leak / unguarded-mutation."""

    kind: str
    message: str
    task: str | None
    location: str

    def render(self) -> str:
        task = f" [task {self.task}]" if self.task else ""
        return f"{self.kind}{task}: {self.message} ({self.location})"


class _Registry:
    """Process-wide sanitizer state: order graph + violations."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        #: (earlier, later) → location string of the acquisition that
        #: established the edge.
        self.order: dict[tuple[str, str], str] = {}
        self.violations: list[SanitizerViolation] = []

    def record(self, kind: str, message: str) -> None:
        violation = SanitizerViolation(
            kind=kind,
            message=message,
            task=current_task(),
            location=_caller_location(),
        )
        with self.lock:
            self.violations.append(violation)


_registry = _Registry()
_local = threading.local()

_forced: bool | None = None


def is_enabled() -> bool:
    """True when sanitizing (``REPRO_SANITIZE=1`` or :func:`enable`)."""
    if _forced is not None:
        return _forced
    return os.environ.get(_ENV_FLAG, "") not in ("", "0", "false")


def enable() -> None:
    """Force the sanitizer on for this process (tests)."""
    global _forced
    _forced = True


def disable() -> None:
    """Force the sanitizer off, overriding the environment (tests)."""
    global _forced
    _forced = False


def _caller_location() -> str:
    """First stack frame outside this module — where the violation happened."""
    for frame in reversed(traceback.extract_stack()):
        if not frame.filename.endswith("sanitize.py"):
            return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


# ---------------------------------------------------------------------------
# held-lock bookkeeping + ordering graph
# ---------------------------------------------------------------------------


def held_locks() -> tuple[str, ...]:
    """Names of tracked locks the current thread holds, oldest first."""
    return tuple(getattr(_local, "held", ()))


def current_task() -> str | None:
    """Label of the worker-pool task this thread is running, if any."""
    return getattr(_local, "task", None)


class TrackedLock:
    """A named wrapper around a lock that feeds the order graph.

    Reentrant re-acquisition of the same name (RLock style) does not create
    edges; distinct names always do.
    """

    def __init__(self, inner: Any, name: str) -> None:
        self._inner = inner
        self.name = name

    # -- lock protocol ---------------------------------------------------
    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = self._inner.acquire(*args, **kwargs)
        if acquired:
            self._on_acquire()
        return acquired

    def release(self) -> None:
        self._on_release()
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked() if hasattr(self._inner, "locked") else False

    # -- graph -----------------------------------------------------------
    def _on_acquire(self) -> None:
        held: list[str] | None = getattr(_local, "held", None)
        if held is None:
            held = _local.held = []
        location = _caller_location()
        for earlier in held:
            if earlier == self.name:
                continue  # reentrant
            edge = (earlier, self.name)
            inverse = (self.name, earlier)
            with _registry.lock:
                first_seen = _registry.order.get(inverse)
                _registry.order.setdefault(edge, location)
            if first_seen is not None:
                _registry.record(
                    "lock-order",
                    f"acquired {self.name!r} while holding {earlier!r}, but "
                    f"the opposite order was taken at {first_seen} — "
                    "inversion deadlocks under the right schedule",
                )
        held.append(self.name)

    def _on_release(self) -> None:
        held: list[str] = getattr(_local, "held", [])
        for index in range(len(held) - 1, -1, -1):
            if held[index] == self.name:
                del held[index]
                break


def track_lock(inner: Any, name: str) -> Any:
    """Wrap ``inner`` in a :class:`TrackedLock` when sanitizing, else pass through."""
    if not is_enabled() or isinstance(inner, TrackedLock):
        return inner
    return TrackedLock(inner, name)


@contextmanager
def task_scope(label: str) -> Iterator[None]:
    """Mark the current thread as running one worker-pool task.

    Violations recorded inside are attributed to ``label``; locks still
    held when the task finishes are reported as leaks (the pool thread
    carries them into whatever task runs next).
    """
    previous = getattr(_local, "task", None)
    _local.task = label
    entry_held = held_locks()
    try:
        yield
    finally:
        leaked = [name for name in held_locks() if name not in entry_held]
        if leaked:
            _registry.record(
                "lock-leak",
                f"task finished still holding {', '.join(sorted(leaked))}",
            )
        _local.task = previous


# ---------------------------------------------------------------------------
# guarded-field runtime checks
# ---------------------------------------------------------------------------

_instrumented_classes: dict[type, type] = {}


def _guarded_map_for(cls: type) -> dict[str, str]:
    """Field → lock for ``cls`` from its source annotations (may be empty)."""
    try:
        source = inspect.getsource(inspect.getmodule(cls))
    except (OSError, TypeError):
        return {}
    from .lint import guarded_fields_of

    return guarded_fields_of(source).get(cls.__name__, {})


def instrument_guarded(obj: Any) -> Any:
    """Instrument one object's ``# guarded-by`` fields for runtime checking.

    The object's locks named by annotations are wrapped in
    :class:`TrackedLock` (joining the order graph) and its class is rebound
    to a checking subclass: rebinding an annotated field without the lock
    held records an ``unguarded-mutation`` violation.  No-op (returning the
    object untouched) when the sanitizer is off or the class has no
    annotations.
    """
    if not is_enabled():
        return obj
    cls = type(obj)
    if cls in _instrumented_classes.values():
        return obj  # already instrumented
    guarded = _guarded_map_for(cls)
    if not guarded:
        return obj

    for lock_attr in set(guarded.values()):
        inner = getattr(obj, lock_attr, None)
        if inner is not None and not isinstance(inner, TrackedLock):
            object.__setattr__(
                obj, lock_attr, TrackedLock(inner, f"{cls.__name__}.{lock_attr}")
            )

    checked = _instrumented_classes.get(cls)
    if checked is None:

        def __setattr__(self: Any, name: str, value: Any) -> None:  # noqa: N807
            lock_attr = guarded.get(name)
            if lock_attr is not None:
                lock_name = f"{cls.__name__}.{lock_attr}"
                if lock_name not in held_locks():
                    _registry.record(
                        "unguarded-mutation",
                        f"{cls.__name__}.{name} rebound without holding "
                        f"{lock_attr} (declared `# guarded-by: {lock_attr}`)",
                    )
            super(checked, self).__setattr__(name, value)

        checked = type(f"Sanitized{cls.__name__}", (cls,), {"__setattr__": __setattr__})
        _instrumented_classes[cls] = checked
    object.__setattr__(obj, "__class__", checked)
    return obj


# ---------------------------------------------------------------------------
# inspection / test harness surface
# ---------------------------------------------------------------------------


def violations() -> list[SanitizerViolation]:
    """Snapshot of every violation recorded so far."""
    with _registry.lock:
        return list(_registry.violations)


def reset_violations() -> None:
    """Clear recorded violations and the lock-order graph."""
    with _registry.lock:
        _registry.violations.clear()
        _registry.order.clear()


@contextmanager
def recording() -> Iterator[list[SanitizerViolation]]:
    """Scope with a *fresh* registry; yields the list violations land in.

    Tests that plant deliberate violations use this so the process-wide
    registry (asserted clean after every test under ``REPRO_SANITIZE=1``)
    never sees them.
    """
    global _registry
    previous = _registry
    _registry = _Registry()
    try:
        yield _registry.violations
    finally:
        _registry = previous
