"""SSE fan-out of a tenant's :class:`~repro.stream.FleetEventLog`.

Each connected client gets its own bounded
:class:`~repro.runtime.TaskQueue` (one consumer task writing frames to that
client's socket).  The publish path — called synchronously from the
supervisor's ``on_event`` on the coordination loop — uses the queue's
non-blocking ``offer``: a client whose queue is full is *kicked* (socket
closed, ``serve.sse.kicked`` metric) rather than allowed to stall the
watch or buffer without bound.

Attach is gap-free: the broker catches a late client up from the journal
(``tail(after_seq)`` on the worker pool) and registers it for live events
in the same event-loop step that observed the log's ``last_seq`` — appends
happen on this same loop, so no event can land between the check and the
registration.  ``Last-Event-ID`` resume is just an ``after_seq`` that the
client supplies.
"""

from __future__ import annotations

import asyncio
import json
from functools import partial
from typing import TYPE_CHECKING

from ..obs import metrics as obs_metrics
from ..runtime import TaskQueue

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime import Scheduler
    from ..stream import FleetEventLog

__all__ = ["SseClient", "SseBroker", "sse_frame"]

#: Per-client queue depth: how far a client may lag behind the live log
#: before it is considered too slow and disconnected.
DEFAULT_CLIENT_BACKLOG = 128

#: Catch-up batch size per worker-pool round trip.
_SNAPSHOT_LIMIT = 512


def sse_frame(rec: dict) -> bytes:
    """One journal record as a Server-Sent-Events frame."""
    event_type = rec.get("event", {}).get("type", "message")
    data = json.dumps(rec, sort_keys=True)
    return f"id: {rec['seq']}\nevent: {event_type}\ndata: {data}\n\n".encode()


class SseClient:
    """One connected SSE consumer: a socket behind a bounded queue."""

    def __init__(
        self,
        client_id: int,
        writer: asyncio.StreamWriter,
        *,
        after_seq: int,
        backlog: int = DEFAULT_CLIENT_BACKLOG,
    ) -> None:
        self.client_id = client_id
        self.writer = writer
        #: Highest seq actually written to the socket.
        self.delivered = after_seq
        self.closed = asyncio.Event()
        self.reason: str | None = None
        self.queue: TaskQueue = TaskQueue(self._send, workers=1, maxsize=backlog)

    async def _send(self, rec: dict) -> None:
        if self.closed.is_set():
            return  # draining a kicked client: drop silently
        seq = rec.get("seq", -1)
        if seq <= self.delivered:
            return  # catch-up / live overlap — at-least-once upstream, exactly-once here
        try:
            self.writer.write(sse_frame(rec))
            await self.writer.drain()
        except (ConnectionError, OSError):
            self.kick("disconnect")
            return
        self.delivered = seq
        obs_metrics.inc("serve.sse.frames")

    def kick(self, reason: str) -> None:
        """Terminate this client (idempotent); the pump sees ``closed``."""
        if self.closed.is_set():
            return
        self.reason = reason
        obs_metrics.inc(f"serve.sse.kicked.{reason}")
        try:
            self.writer.close()
        except (ConnectionError, OSError):
            pass
        self.closed.set()

    async def shutdown(self) -> None:
        """Stop the consumer task; never raises (client errors are expected)."""
        try:
            await asyncio.wait_for(self.queue.close(), timeout=5.0)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass  # stuck/broken socket — the scheduler reaps the task on exit


class SseBroker:
    """Fan one tenant's event log out to N SSE clients."""

    def __init__(
        self,
        scheduler: "Scheduler",
        *,
        backlog: int = DEFAULT_CLIENT_BACKLOG,
    ) -> None:
        self.scheduler = scheduler
        self.backlog = backlog
        self.event_log: "FleetEventLog | None" = None
        self.clients: dict[int, SseClient] = {}
        self._next_id = 0
        self._closing = False

    def bind(self, event_log: "FleetEventLog") -> None:
        """Point the broker at the tenant's (possibly rebuilt) event log."""
        self.event_log = event_log

    # -- publish side (called on the coordination loop) -------------------
    def publish(self, _event: object = None) -> None:
        """Fan the latest appended record out; kick clients that can't keep up.

        Wired as the supervisor's ``on_event`` callback: by the time it runs,
        the record is journalled and ``event_log.last_record`` is exactly the
        event being reported (same loop thread, no interleaving).
        """
        log = self.event_log
        rec = log.last_record if log is not None else None
        if rec is None or not self.clients:
            return
        obs_metrics.inc("serve.sse.published")
        for client in list(self.clients.values()):
            if client.closed.is_set():
                continue
            if not client.queue.offer(rec):
                client.kick("slow")

    # -- subscribe side ----------------------------------------------------
    async def attach(
        self, writer: asyncio.StreamWriter, *, after_seq: int = -1
    ) -> None:
        """Pump one client: journal catch-up, then live events until close."""
        if self._closing:
            return
        self._next_id += 1
        client = SseClient(
            self._next_id, writer, after_seq=after_seq, backlog=self.backlog
        )
        client.queue.start()
        obs_metrics.inc("serve.sse.attached")
        try:
            writer.write(b": stream open\nretry: 2000\n\n")
            await writer.drain()
            cursor = after_seq
            while True:
                log = self.event_log
                last = log.last_seq if log is not None else -1
                if last <= cursor:
                    # No await between this check and registration: appends
                    # run on this loop, so the gap-free handoff is atomic.
                    self.clients[client.client_id] = client
                    break
                records = await self.scheduler.call(
                    partial(self._tail_snapshot, cursor)
                )
                for rec in records:
                    await client.queue.put(rec)
                    cursor = max(cursor, rec.get("seq", -1))
            obs_metrics.set_gauge("serve.sse.clients", len(self.clients))
            await client.closed.wait()
        except (ConnectionError, OSError):
            client.kick("disconnect")
        finally:
            self.clients.pop(client.client_id, None)
            obs_metrics.set_gauge("serve.sse.clients", len(self.clients))
            client.kick("detach")
            await client.shutdown()

    def _tail_snapshot(self, after_seq: int) -> list[dict]:
        """Blocking journal read (runs on the worker pool via ``call``)."""
        log = self.event_log
        if log is None:
            return []
        out: list[dict] = []
        for rec in log.tail(after_seq):
            out.append(rec)
            if len(out) >= _SNAPSHOT_LIMIT:
                break
        return out

    async def close(self) -> None:
        """Kick every client and wait for their consumers to stop."""
        self._closing = True
        clients = list(self.clients.values())
        self.clients.clear()
        for client in clients:
            client.kick("shutdown")
        for client in clients:
            await client.shutdown()
        obs_metrics.set_gauge("serve.sse.clients", 0)
