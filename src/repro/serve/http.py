"""A minimal HTTP/1.1 server on asyncio streams — no ``http.server``.

The serve subsystem runs its REST/SSE surface directly on the coordination
loop (the shared :class:`~repro.runtime.Scheduler`), so the transport has to
be non-blocking end-to-end.  The stdlib's ``http.server`` is thread-per
-request and blocking; this module is the ~200-line asyncio replacement:
request-line/header/body parsing with hard limits, a tiny ``{param}``
router, JSON responses, and a streaming hook for SSE.

Deliberately *not* general: one request per connection
(``Connection: close``), no keep-alive, no chunked request bodies, no TLS.
Every handler is an ``async def`` that must route blocking work through
``Scheduler.call`` — the ``serve-discipline`` lint checker enforces this.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qsl, unquote, urlsplit

from ..obs import metrics as obs_metrics
from ..obs import span

__all__ = [
    "HttpError",
    "Request",
    "Response",
    "StreamingResponse",
    "Router",
    "HttpServer",
]

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_LINES = 100
_MAX_BODY = 1 << 20  # 1 MiB

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Raise from a handler to produce a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  # keys lower-cased
    body: bytes
    params: dict[str, str] = field(default_factory=dict)  # router {param}s

    def json(self) -> Any:
        """Parse the body as JSON (HttpError 400 on garbage)."""
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


@dataclass
class Response:
    """A buffered JSON (or raw-bytes) response."""

    status: int = 200
    payload: Any = None
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self) -> tuple[bytes, bytes]:
        if self.payload is None:
            body = b""
        elif isinstance(self.payload, bytes):
            # Raw passthrough (Prometheus exposition text, etc.) — the
            # handler owns the Content-Type.
            body = self.payload
            self.headers.setdefault("Content-Type", "application/octet-stream")
        else:
            body = (json.dumps(self.payload, sort_keys=True) + "\n").encode()
            self.headers.setdefault("Content-Type", "application/json")
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        self.headers.setdefault("Content-Length", str(len(body)))
        self.headers.setdefault("Connection", "close")
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode(), body


@dataclass
class StreamingResponse:
    """Headers now, body later: the handler keeps the connection.

    ``pump(writer)`` is awaited after the header block is flushed; when it
    returns (or raises) the connection is closed.  Used for SSE.
    """

    pump: Callable[[asyncio.StreamWriter], Awaitable[None]]
    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)

    def encode_headers(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        self.headers.setdefault("Cache-Control", "no-store")
        self.headers.setdefault("Connection", "close")
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode()


Handler = Callable[[Request], "Awaitable[Response | StreamingResponse]"]


class Router:
    """Literal-and-``{param}`` path routing, method-aware."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        segments = tuple(seg for seg in pattern.strip("/").split("/") if seg)
        self._routes.append((method.upper(), segments, handler))

    def resolve(self, method: str, path: str) -> tuple[Handler, dict[str, str]]:
        segments = tuple(seg for seg in path.strip("/").split("/") if seg)
        path_matched = False
        for route_method, route_segments, handler in self._routes:
            params = self._match(route_segments, segments)
            if params is None:
                continue
            path_matched = True
            if route_method == method.upper():
                return handler, params
        if path_matched:
            raise HttpError(405, f"method {method} not allowed for {path}")
        raise HttpError(404, f"no such resource: {path}")

    @staticmethod
    def _match(
        route: tuple[str, ...], actual: tuple[str, ...]
    ) -> dict[str, str] | None:
        if len(route) != len(actual):
            return None
        params: dict[str, str] = {}
        for expected, got in zip(route, actual):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = unquote(got)
            elif expected != got:
                return None
        return params


class HttpServer:
    """Accept loop + request pipeline over a :class:`Router`."""

    def __init__(self, router: Router) -> None:
        self.router = router
        self._server: asyncio.AbstractServer | None = None

    async def start(self, host: str, port: int) -> tuple[str, int]:
        """Bind and start serving; returns the actual (host, port)."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0]
        bound_host, bound_port = sock.getsockname()[:2]
        return bound_host, bound_port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ---------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        obs_metrics.inc("serve.connections")
        try:
            try:
                request = await self._read_request(reader)
            except HttpError as exc:
                await self._write_error(writer, exc)
                return
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                ValueError,
                asyncio.LimitOverrunError,
            ):
                return  # client went away or sent garbage mid-line
            await self._dispatch(request, writer)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Request:
        line = await reader.readline()
        if len(line) > _MAX_REQUEST_LINE:
            raise HttpError(400, "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(raw) > _MAX_REQUEST_LINE:
                raise HttpError(400, "header line too long")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise HttpError(400, f"malformed header: {name.strip()!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise HttpError(400, "too many headers")
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                size = int(length)
            except ValueError:
                raise HttpError(400, "bad Content-Length") from None
            if size > _MAX_BODY:
                raise HttpError(413, f"body exceeds {_MAX_BODY} bytes")
            if size:
                body = await reader.readexactly(size)
        url = urlsplit(target)
        return Request(
            method=method.upper(),
            path=unquote(url.path) or "/",
            query=dict(parse_qsl(url.query)),
            headers=headers,
            body=body,
        )

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        with span(
            "serve.request", method=request.method, path=request.path
        ) as request_span:
            try:
                handler, params = self.router.resolve(request.method, request.path)
                request.params = params
                tenant = params.get("tenant_id")
                if tenant is not None:
                    # Tenant-tagged service telemetry: the span carries the
                    # tenant for trace filtering, and the per-tenant request
                    # counter renders as a {tenant=...} label in Prometheus.
                    # Written through the registry (not the gated helper) so
                    # scrapes see it even when span tracing is off.
                    request_span.annotate(tenant=tenant)
                    obs_metrics.registry().counter(
                        f"serve.tenant.{tenant}.requests"
                    ).inc()
                result = await handler(request)
            except HttpError as exc:
                obs_metrics.inc(f"serve.responses.{exc.status}")
                await self._write_error(writer, exc)
                return
            except (ConnectionError, OSError):
                raise
            except Exception as exc:  # handler bug → 500, keep serving
                obs_metrics.inc("serve.responses.500")
                request_span.annotate(error=repr(exc))
                await self._write_error(
                    writer, HttpError(500, f"internal error: {exc}")
                )
                return
            obs_metrics.inc(f"serve.responses.{result.status}")
            if isinstance(result, StreamingResponse):
                writer.write(result.encode_headers())
                await writer.drain()
                await result.pump(writer)
                return
            head, body = result.encode()
            writer.write(head)
            if request.method != "HEAD":
                writer.write(body)
            await writer.drain()

    @staticmethod
    async def _write_error(writer: asyncio.StreamWriter, exc: HttpError) -> None:
        head, body = Response(exc.status, {"error": exc.message}).encode()
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
