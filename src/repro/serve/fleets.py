"""Fleet specs: the JSON body of ``POST /v1/tenants/{id}/fleets``.

A :class:`FleetSpec` is the serve-side equivalent of a ``repro watch``
command line: scenario names (single-environment scenarios and fleet
scenarios, from the same catalogs the CLI uses), duration, seed, and the
supervisor/correlator knobs.  It validates eagerly (unknown scenario names,
duplicate members, conflicting fabrics — all before anything is built), is
JSON-round-trippable (``to_dict``/``from_payload``), and stamps itself into
the supervisor's ``checkpoint_meta`` so a restarted server can only resume
a tenant's watch with the identical spec.

``build`` constructs the whole per-tenant stack — fabrics, correlation
engine, supervisor — over the tenant's prefixed backend view, mirroring
``cmd_watch`` in :mod:`repro.cli` but with every store injected instead of
opened from a state dir.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime import WorkerPool
    from ..storage.backend import StorageBackend
    from ..stream import FleetSupervisor

__all__ = ["FleetSpec", "scenario_catalog"]


def scenario_catalog() -> dict:
    """The scenario names the service accepts (shared with the CLI)."""
    from ..cli import FLEET_SCENARIOS, SCENARIOS

    return {
        "scenarios": sorted(SCENARIOS),
        "fleet_scenarios": sorted(FLEET_SCENARIOS),
    }


@dataclass(frozen=True)
class FleetSpec:
    """A validated, JSON-able fleet definition for one tenant."""

    scenarios: tuple[str, ...]
    hours: float = 8.0
    seed: int | None = None
    chunk_minutes: float = 30.0
    cooldown_minutes: float = 120.0
    max_inflight_diagnoses: int | None = None
    correlation_window_minutes: float = 60.0
    min_members: int = 3
    max_workers: int | None = None
    #: Recovery-aware incident closure (resolve on return-to-baseline,
    #: re-escalate on regression) — see FleetSupervisor(recovery=True).
    recovery: bool = False

    _FIELDS = (
        "scenarios",
        "hours",
        "seed",
        "chunk_minutes",
        "cooldown_minutes",
        "max_inflight_diagnoses",
        "correlation_window_minutes",
        "min_members",
        "max_workers",
        "recovery",
    )

    @classmethod
    def from_payload(cls, data: object) -> "FleetSpec":
        """Validate a JSON payload into a spec (ValueError on any problem)."""
        from ..cli import FLEET_SCENARIOS, SCENARIOS

        if not isinstance(data, dict):
            raise ValueError("fleet spec must be a JSON object")
        unknown_fields = sorted(set(data) - set(cls._FIELDS))
        if unknown_fields:
            raise ValueError(f"unknown fleet spec fields: {', '.join(unknown_fields)}")
        names = data.get("scenarios")
        if not isinstance(names, (list, tuple)) or not names:
            raise ValueError("fleet spec needs a non-empty 'scenarios' list")
        unknown = [n for n in names if n not in SCENARIOS and n not in FLEET_SCENARIOS]
        if unknown:
            raise ValueError(f"unknown scenarios: {', '.join(map(str, unknown))}")
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(f"duplicate scenarios: {', '.join(duplicates)}")

        def number(name: str, default: float, *, positive: bool = True) -> float:
            value = data.get(name, default)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{name} must be a number")
            if positive and value <= 0:
                raise ValueError(f"{name} must be positive")
            return float(value)

        def optional_int(name: str, *, minimum: int = 1) -> int | None:
            value = data.get(name)
            if value is None:
                return None
            if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
                raise ValueError(f"{name} must be an integer >= {minimum}")
            return value

        seed = data.get("seed")
        if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
            raise ValueError("seed must be an integer")
        return cls(
            scenarios=tuple(names),
            hours=number("hours", 8.0),
            seed=seed,
            chunk_minutes=number("chunk_minutes", 30.0),
            cooldown_minutes=number("cooldown_minutes", 120.0),
            max_inflight_diagnoses=optional_int("max_inflight_diagnoses"),
            correlation_window_minutes=number("correlation_window_minutes", 60.0),
            min_members=optional_int("min_members") or 3,
            max_workers=optional_int("max_workers"),
            recovery=bool(data.get("recovery", False)),
        )

    def to_dict(self) -> dict:
        return {
            "scenarios": list(self.scenarios),
            "hours": self.hours,
            "seed": self.seed,
            "chunk_minutes": self.chunk_minutes,
            "cooldown_minutes": self.cooldown_minutes,
            "max_inflight_diagnoses": self.max_inflight_diagnoses,
            "correlation_window_minutes": self.correlation_window_minutes,
            "min_members": self.min_members,
            "max_workers": self.max_workers,
            "recovery": self.recovery,
        }

    def member_names(self) -> list[str]:
        """Environment names this spec expands to (fleet members included)."""
        from ..cli import FLEET_SCENARIOS

        members: list[str] = []
        for name in self.scenarios:
            if name in FLEET_SCENARIOS:
                fabric = FLEET_SCENARIOS[name](**self._scenario_kwargs())
                members.extend(sorted(fabric.members))
            else:
                members.append(name)
        return members

    def _scenario_kwargs(self) -> dict:
        kwargs: dict = {"hours": self.hours}
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs

    # -- construction ----------------------------------------------------
    def build(
        self,
        *,
        state_dir: str | Path,
        backend: "StorageBackend",
        pool: "WorkerPool | None" = None,
    ) -> "FleetSupervisor":
        """Build the tenant's supervisor stack over its backend view.

        Blocking (store replays, scenario construction) — the serve app runs
        this through ``Scheduler.call`` on the worker pool.
        """
        from ..cli import FLEET_SCENARIOS, SCENARIOS
        from ..correlate import CorrelationEngine, FleetIncidentStore
        from ..stream import FleetEventLog, FleetSupervisor, IncidentStore

        fabrics = [
            (name, FLEET_SCENARIOS[name](**self._scenario_kwargs()))
            for name in self.scenarios
            if name in FLEET_SCENARIOS
        ]
        correlator = None
        if fabrics:
            membership: dict[str, tuple[str, ...]] = {}
            for _fabric_name, fabric in fabrics:
                for component, members in fabric.membership().items():
                    if component in membership:
                        raise ValueError(
                            f"fleet scenarios conflict: shared component "
                            f"{component!r} is declared by more than one "
                            "fleet scenario"
                        )
                    membership[component] = tuple(members)
            correlator = CorrelationEngine(
                membership,
                window_s=self.correlation_window_minutes * 60.0,
                min_members=self.min_members,
                store=FleetIncidentStore(backend),
            )
        supervisor = FleetSupervisor(
            chunk_s=self.chunk_minutes * 60.0,
            max_workers=self.max_workers,
            cooldown_s=self.cooldown_minutes * 60.0,
            state_dir=state_dir,
            max_inflight_diagnoses=self.max_inflight_diagnoses,
            correlator=correlator,
            recovery=self.recovery,
            incident_store=IncidentStore(backend),
            event_log=FleetEventLog(backend),
            pool=pool,
            checkpoint_meta={"fleet_spec": self.to_dict()},
        )
        # Hydration specs mirror cmd_watch: the same identity keys the
        # checkpoint meta records, so a process-backed pool can rebuild each
        # environment in its sticky worker.  Thread mode ignores them.
        for fabric_name, fabric in fabrics:
            fabric.watch_all(
                supervisor,
                hydration={
                    "fleet": fabric_name,
                    "hours": self.hours,
                    "seed": self.seed,
                },
            )
        for name in self.scenarios:
            if name in FLEET_SCENARIOS:
                continue
            supervisor.watch_scenario(
                SCENARIOS[name](**self._scenario_kwargs()),
                name=name,
                hydration={
                    "scenario": name,
                    "hours": self.hours,
                    "seed": self.seed,
                },
            )
        return supervisor
