"""The serve application: one process, one scheduler, many tenants.

``ServeApp`` owns the shared substrate — one durable
:class:`~repro.storage.StorageBackend` under the state root, the
:class:`~repro.serve.tenants.TenantRegistry` that slices it into per-tenant
keyspace prefixes, and one :class:`~repro.runtime.Scheduler` whose event
loop carries *everything*: the HTTP accept loop, every tenant's
:class:`~repro.stream.FleetSupervisor` (via ``run_async``), and every SSE
client's consumer task.  Blocking work — store replays, scenario
fast-forwards, manifest writes — goes through ``Scheduler.call`` onto the
worker pool; the ``serve-discipline`` lint checker keeps it that way.

Crash-resume is the tentpole guarantee: each started watch flips its
tenant's manifest entry to ``running`` *before* the first chunk advances,
and the supervisor checkpoints into the tenant's own state dir as it goes.
A SIGKILLed server therefore restarts, reads the manifest, and resumes
every running tenant's watch — same checkpoints, same journals, so incident
history continues byte-for-byte as if the process had never died.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from functools import partial
from pathlib import Path
from typing import TYPE_CHECKING

from ..obs import metrics as obs_metrics
from ..runtime import Scheduler, resolve_pool_backend, shared_pool
from ..storage import JsonlBackend, MemoryBackend, SqliteBackend
from ..storage.backend import atomic_write_json
from .fleets import FleetSpec
from .http import HttpServer
from .stream import SseBroker
from .tenants import Tenant, TenantRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..stream import FleetSupervisor

__all__ = ["ServeApp", "WatchSession", "SERVE_MANIFEST"]

#: Written next to the tenant manifest once the server is accepting:
#: ``{"host": ..., "port": ..., "pid": ...}`` — how clients and the CI smoke
#: find a server that was started with ``--port 0``.
SERVE_MANIFEST = "serve.json"

_BACKENDS = ("jsonl", "sqlite", "memory")


class WatchSession:
    """One tenant's live watch: a supervisor task on the app's scheduler."""

    def __init__(self, app: "ServeApp", tenant_id: str, spec: FleetSpec) -> None:
        self.app = app
        self.tenant_id = tenant_id
        self.spec = spec
        self.state = "pending"  # pending → running → done|failed|stopped
        self.supervisor: "FleetSupervisor | None" = None
        self.task: asyncio.Task | None = None
        self.error: str | None = None
        self._stop_flag = False

    # -- blocking (worker pool) -------------------------------------------
    def _build(self) -> "FleetSupervisor":
        """Construct the supervisor stack; resume its checkpoint if any."""
        registry = self.app.registry
        tenant = registry.get(self.tenant_id)
        supervisor = self.spec.build(
            state_dir=registry.tenant_dir(tenant),
            backend=registry.backend_for(tenant),
            pool=self.app.scheduler.pool,
        )
        if supervisor.has_checkpoint():
            supervisor.resume()
        return supervisor

    # -- coordination loop -------------------------------------------------
    async def start(self) -> None:
        """Build (serialised — resume fast-forwards fan out on the pool),
        mark the manifest running, and spawn the watch task."""
        async with self.app.resume_lock:
            self.supervisor = await self.app.scheduler.call(self._build)
        broker = self.app.broker_for(self.tenant_id)
        broker.bind(self.supervisor.event_log)
        remaining = self.spec.hours * 3600.0 - self.supervisor.advanced_s
        if remaining <= 1e-9:
            self.state = "done"
            await self.app.record_watch(self.tenant_id, self.spec, running=False)
            return
        await self.app.record_watch(self.tenant_id, self.spec, running=True)
        self.task = self.app.scheduler.spawn(
            self._run(remaining, broker), name=f"watch-{self.tenant_id}"
        )

    async def _run(self, remaining: float, broker: SseBroker) -> None:
        self.state = "running"
        obs_metrics.inc("serve.watch.started")
        try:
            await self.supervisor.run_async(
                remaining, scheduler=self.app.scheduler, on_event=broker.publish
            )
        except asyncio.CancelledError:
            self.state = "stopped"
            raise
        except Exception as exc:  # noqa: BLE001 — reported via /watch status
            self.state = "failed"
            self.error = f"{type(exc).__name__}: {exc}"
            obs_metrics.inc("serve.watch.failed")
            await self.app.record_watch(self.tenant_id, self.spec, running=False)
        else:
            self.state = "stopped" if self._stop_flag else "done"
            obs_metrics.inc(f"serve.watch.{self.state}")
            await self.app.record_watch(self.tenant_id, self.spec, running=False)

    async def stop(self) -> None:
        """Graceful stop: current iterations finish, checkpoint is flushed."""
        self._stop_flag = True
        if self.supervisor is not None:
            self.supervisor.stop()
        if self.task is not None:
            try:
                await self.task
            except asyncio.CancelledError:
                pass

    def status(self) -> dict:
        out: dict = {
            "state": self.state,
            "spec": self.spec.to_dict(),
        }
        if self.supervisor is not None:
            out["advanced_s"] = self.supervisor.advanced_s
            out["target_s"] = self.spec.hours * 3600.0
        if self.error is not None:
            out["error"] = self.error
        return out


class ServeApp:
    """Everything behind one ``repro serve`` process."""

    def __init__(
        self,
        state_root: str | os.PathLike,
        *,
        backend: str = "jsonl",
        sse_backlog: int = 128,
        pool: str | None = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.state_root = Path(state_root)
        self.state_root.mkdir(parents=True, exist_ok=True)
        self.backend_kind = backend
        self.backend = self._open_backend(backend)
        self.registry = TenantRegistry(self.state_root, self.backend)
        self.pool_backend = resolve_pool_backend(pool)
        self.scheduler = Scheduler(pool=shared_pool(backend=self.pool_backend))
        self.sse_backlog = sse_backlog
        self.sessions: dict[str, WatchSession] = {}
        self.brokers: dict[str, SseBroker] = {}
        # Router import is deferred: api.py imports this module's types.
        from .api import build_router

        self.server = HttpServer(build_router(self))
        self.bound: tuple[str, int] | None = None
        self.resume_lock: asyncio.Lock | None = None
        self._registry_lock: asyncio.Lock | None = None
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    def _open_backend(self, kind: str):
        if kind == "jsonl":
            return JsonlBackend(self.state_root / "shared")
        if kind == "sqlite":
            return SqliteBackend(self.state_root / "shared.db")
        return MemoryBackend()

    # -- lifecycle ---------------------------------------------------------
    def serve_forever(self, host: str = "127.0.0.1", port: int = 8787) -> int:
        """Sync entry point (the CLI): run until stopped; resumed-watch count."""
        return self.scheduler.run(self.main(host, port))

    async def main(self, host: str, port: int) -> int:
        """Bind, resume every running tenant's watch, serve until stopped."""
        self._loop = asyncio.get_running_loop()
        self.resume_lock = asyncio.Lock()
        self._registry_lock = asyncio.Lock()
        self._stop_event = asyncio.Event()
        self._install_signal_handlers()
        self.bound = await self.server.start(host, port)
        await self.scheduler.call(
            partial(
                atomic_write_json,
                self.state_root / SERVE_MANIFEST,
                {"host": self.bound[0], "port": self.bound[1], "pid": os.getpid()},
                indent=2,
                sort_keys=True,
            )
        )
        resumed = await self._resume_watches()
        obs_metrics.set_gauge("serve.tenants", len(self.registry))
        await self._stop_event.wait()
        await self._shutdown()
        return resumed

    def stop(self) -> None:
        """Request shutdown (thread-safe; also the signal handler)."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self._stop_event.set)
            except (NotImplementedError, RuntimeError, ValueError):
                return  # non-main thread / platform without signal support

    async def _resume_watches(self) -> int:
        """Restart every watch the manifest says was running at kill time."""
        resumed = 0
        for tenant in self.registry.list():
            watch = tenant.watch
            if not watch or not watch.get("running"):
                continue
            try:
                spec = FleetSpec.from_payload(watch.get("spec"))
                session = WatchSession(self, tenant.tenant_id, spec)
                self.sessions[tenant.tenant_id] = session
                await session.start()
                resumed += 1
            except Exception as exc:  # noqa: BLE001 — one bad tenant ≠ no server
                obs_metrics.inc("serve.watch.resume_failed")
                session = self.sessions.get(tenant.tenant_id)
                if session is not None:
                    session.state = "failed"
                    session.error = f"resume: {type(exc).__name__}: {exc}"
        obs_metrics.set_gauge("serve.watch.resumed", resumed)
        return resumed

    async def _shutdown(self) -> None:
        await self.server.close()
        for session in list(self.sessions.values()):
            if session.state in ("pending", "running"):
                await session.stop()
        for broker in list(self.brokers.values()):
            await broker.close()
        await self.scheduler.call(self.backend.flush)

    # -- tenant/watch operations (called from handlers) --------------------
    def broker_for(self, tenant_id: str) -> SseBroker:
        broker = self.brokers.get(tenant_id)
        if broker is None:
            broker = SseBroker(self.scheduler, backlog=self.sse_backlog)
            self.brokers[tenant_id] = broker
        return broker

    def refresh_telemetry(self) -> None:
        """Refresh per-tenant watch-health gauges (called at scrape time).

        Reads only in-memory session/broker state plus one checkpoint
        ``stat()`` per tenant — loop-safe.  Writes go straight through the
        registry instruments (not the ``is_enabled`` helpers) so a
        Prometheus scrape sees live values even when span tracing is off.
        The ``serve.tenant.<tid>.*`` prefix renders as a ``{tenant=...}``
        label in the exposition format.
        """
        from ..stream.supervisor import CHECKPOINT_FILE

        registry = obs_metrics.registry()
        registry.gauge("serve.tenants").set(float(len(self.registry)))
        states = [s.state for s in self.sessions.values()]
        for state in ("pending", "running", "done", "failed", "stopped"):
            registry.gauge(f"serve.watches.{state}").set(
                float(states.count(state))
            )
        for tenant_id, session in self.sessions.items():
            prefix = f"serve.tenant.{tenant_id}"
            supervisor = session.supervisor
            if supervisor is not None:
                registry.gauge(f"{prefix}.clock_skew_s").set(
                    supervisor.clocks.skew
                )
                registry.gauge(f"{prefix}.advanced_s").set(
                    supervisor.advanced_s
                )
                registry.gauge(f"{prefix}.inflight_diagnoses").set(
                    float(
                        sum(
                            len(w.manager.diagnosing_incidents())
                            for w in supervisor.watched.values()
                        )
                    )
                )
                if supervisor.state_dir is not None:
                    checkpoint = supervisor.state_dir / CHECKPOINT_FILE
                    try:
                        age = max(0.0, time.time() - checkpoint.stat().st_mtime)
                    except OSError:
                        age = -1.0  # no checkpoint yet
                    registry.gauge(f"{prefix}.checkpoint_age_s").set(age)
        for tenant_id, broker in self.brokers.items():
            prefix = f"serve.tenant.{tenant_id}"
            registry.gauge(f"{prefix}.sse_clients").set(
                float(len(broker.clients))
            )
            log = broker.event_log
            last = log.last_seq if log is not None else -1
            lag = max(
                (last - c.delivered for c in broker.clients.values()),
                default=0,
            )
            registry.gauge(f"{prefix}.sse_lag").set(float(max(0, lag)))

    async def mutate_registry(self, fn, /, *args):
        """Serialised, off-loop manifest mutation."""
        async with self._registry_lock:
            return await self.scheduler.call(fn, *args)

    async def record_watch(
        self, tenant_id: str, spec: FleetSpec, *, running: bool
    ) -> None:
        """Durably record a tenant's watch state (no-op for gone tenants)."""
        try:
            await self.mutate_registry(
                self.registry.set_watch,
                tenant_id,
                {"spec": spec.to_dict(), "running": running},
            )
        except KeyError:
            pass  # tenant deleted while its watch wound down

    async def start_watch(self, tenant: Tenant) -> WatchSession:
        existing = self.sessions.get(tenant.tenant_id)
        if existing is not None and existing.state in ("pending", "running"):
            raise RuntimeError(f"tenant {tenant.tenant_id!r} watch already running")
        if not tenant.watch or not tenant.watch.get("spec"):
            raise LookupError(f"tenant {tenant.tenant_id!r} has no fleet")
        spec = FleetSpec.from_payload(tenant.watch["spec"])
        session = WatchSession(self, tenant.tenant_id, spec)
        self.sessions[tenant.tenant_id] = session
        await session.start()
        return session

    async def stop_watch(self, tenant_id: str) -> WatchSession:
        session = self.sessions.get(tenant_id)
        if session is None or session.state not in ("pending", "running"):
            raise LookupError(f"tenant {tenant_id!r} has no running watch")
        await session.stop()
        return session

    async def delete_tenant(self, tenant_id: str) -> Tenant:
        session = self.sessions.pop(tenant_id, None)
        if session is not None and session.state in ("pending", "running"):
            await session.stop()
        broker = self.brokers.pop(tenant_id, None)
        if broker is not None:
            await broker.close()
        tenant = await self.mutate_registry(self.registry.delete, tenant_id)
        obs_metrics.set_gauge("serve.tenants", len(self.registry))
        return tenant

    def watch_status(self, tenant: Tenant) -> dict:
        session = self.sessions.get(tenant.tenant_id)
        if session is not None:
            return session.status()
        watch = tenant.watch or {}
        if watch.get("spec"):
            return {
                "state": "idle",
                "spec": watch["spec"],
                "running_at_last_exit": bool(watch.get("running")),
            }
        return {"state": "none"}
