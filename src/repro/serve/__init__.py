"""``repro serve`` — a long-running multi-tenant fleet service.

One process hosts many tenants over one shared storage backend and one
coordination loop:

* :mod:`repro.serve.tenants` — tenant ids → keyspace prefixes, durable
  manifest (the restart source of truth);
* :mod:`repro.serve.fleets` — validated fleet specs (the POST body), built
  into :class:`~repro.stream.FleetSupervisor` stacks per tenant;
* :mod:`repro.serve.http` — a minimal asyncio HTTP/1.1 server (no
  ``http.server``, no threads-per-request);
* :mod:`repro.serve.api` — the REST/JSON routes;
* :mod:`repro.serve.stream` — SSE fan-out of each tenant's fleet event log
  with bounded per-client queues and slow-client disconnect;
* :mod:`repro.serve.app` — the :class:`ServeApp` that owns it all and
  resumes every tenant's watch after a crash.

Start it with ``repro serve --state-root DIR --port N``.
"""

from .app import SERVE_MANIFEST, ServeApp, WatchSession
from .fleets import FleetSpec, scenario_catalog
from .stream import SseBroker, SseClient, sse_frame
from .tenants import Tenant, TenantRegistry

__all__ = [
    "ServeApp",
    "WatchSession",
    "SERVE_MANIFEST",
    "FleetSpec",
    "scenario_catalog",
    "SseBroker",
    "SseClient",
    "sse_frame",
    "Tenant",
    "TenantRegistry",
]
