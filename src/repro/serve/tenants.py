"""Tenant registry: ids → keyspace prefixes, with a durable manifest.

One serve state root hosts many tenants over **one** shared
:class:`~repro.storage.StorageBackend`.  A tenant is three things:

* an id (``[a-z0-9][a-z0-9_-]*``, max 32 chars — it becomes part of
  keyspace/segment names, so the alphabet is the storage-safe one);
* a keyspace prefix (``t_<id>__``) that scopes every store the tenant's
  fleet touches — incidents, fleet incidents, fleet events — to its own
  slice of the shared backend (see
  :class:`~repro.storage.prefix.PrefixedBackend`);
* a per-tenant state directory (``<root>/tenants/<id>/``) holding the
  watch's resume checkpoint.

The manifest (``<root>/tenants.json``) is the durable source of truth:
tenant ids, prefixes, and each tenant's fleet spec + whether its watch was
running.  It is atomically replaced on every mutation, so a SIGKILLed
server restarts knowing exactly which tenants' watches to resume.

This module is the **only** place keyspace prefixes are minted — the
``serve-discipline`` lint checker fails any other serve module constructing
a :class:`PrefixedBackend`.
"""

from __future__ import annotations

import re
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..storage.backend import atomic_write_json
from ..storage.prefix import PrefixedBackend

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.backend import StorageBackend

__all__ = ["Tenant", "TenantRegistry"]

_MANIFEST = "tenants.json"
_TENANT_ID = re.compile(r"^[a-z0-9][a-z0-9_-]{0,31}$")


@dataclass
class Tenant:
    """One tenant: identity, keyspace prefix, and its (optional) fleet."""

    tenant_id: str
    prefix: str
    created_seq: int
    #: The tenant's fleet spec (``FleetSpec.to_dict()`` form) plus a
    #: ``"running"`` flag — None until a fleet is created.
    watch: dict | None = field(default=None)

    def to_dict(self) -> dict:
        return {
            "tenant_id": self.tenant_id,
            "prefix": self.prefix,
            "created_seq": self.created_seq,
            "watch": self.watch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Tenant":
        return cls(
            tenant_id=data["tenant_id"],
            prefix=data["prefix"],
            created_seq=data["created_seq"],
            watch=data.get("watch"),
        )


class TenantRegistry:
    """Durable tenant directory over one shared backend.

    All mutations rewrite the manifest atomically before returning, so the
    registry a restarted server loads is never mid-transition.  Methods are
    synchronous (tiny JSON writes); the serve app bridges them through
    ``Scheduler.call`` so HTTP handlers stay non-blocking.
    """

    def __init__(
        self, state_root: str | Path, shared_backend: "StorageBackend"
    ) -> None:
        self.state_root = Path(state_root)
        self.shared_backend = shared_backend
        self.state_root.mkdir(parents=True, exist_ok=True)
        self._tenants: dict[str, Tenant] = {}
        self._next_seq = 0
        self._load()

    @property
    def manifest_path(self) -> Path:
        return self.state_root / _MANIFEST

    def _load(self) -> None:
        if not self.manifest_path.exists():
            return
        import json

        data = json.loads(self.manifest_path.read_text())
        self._next_seq = data.get("next_seq", 0)
        self._tenants = {
            tid: Tenant.from_dict(t) for tid, t in data.get("tenants", {}).items()
        }

    def _save(self) -> None:
        atomic_write_json(
            self.manifest_path,
            {
                "version": 1,
                "next_seq": self._next_seq,
                "tenants": {
                    tid: t.to_dict() for tid, t in sorted(self._tenants.items())
                },
            },
            indent=2,
            sort_keys=True,
        )

    # -- lifecycle -------------------------------------------------------
    def create(self, tenant_id: str) -> Tenant:
        if not _TENANT_ID.match(tenant_id):
            raise ValueError(
                f"invalid tenant id {tenant_id!r} "
                "(want [a-z0-9][a-z0-9_-]*, max 32 chars)"
            )
        if tenant_id in self._tenants:
            raise ValueError(f"tenant {tenant_id!r} already exists")
        tenant = Tenant(
            tenant_id=tenant_id,
            prefix=f"t_{tenant_id}__",
            created_seq=self._next_seq,
        )
        self._next_seq += 1
        self._tenants[tenant_id] = tenant
        self._save()
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        return tenant

    def list(self) -> list[Tenant]:
        return sorted(self._tenants.values(), key=lambda t: t.created_seq)

    def delete(self, tenant_id: str) -> Tenant:
        """Drop a tenant from the manifest and remove its state dir.

        The tenant's journalled records remain in the shared backend
        (append-only segments are never rewritten here); without a manifest
        entry its prefix is unreachable through the registry, and a future
        tenant with the same id starts a fresh journal *appended after* the
        orphaned one — ``repro`` stores fold journals idempotently, so old
        open-tickets are superseded, not resurrected.
        """
        tenant = self.get(tenant_id)
        del self._tenants[tenant_id]
        self._save()
        tenant_dir = self.state_root / "tenants" / tenant_id
        if tenant_dir.exists():
            shutil.rmtree(tenant_dir, ignore_errors=True)
        return tenant

    def set_watch(self, tenant_id: str, watch: dict | None) -> Tenant:
        """Durably record the tenant's fleet spec / running flag."""
        tenant = self.get(tenant_id)
        tenant.watch = watch
        self._save()
        return tenant

    # -- per-tenant views ------------------------------------------------
    def backend_for(self, tenant: Tenant) -> PrefixedBackend:
        """The tenant's slice of the shared backend (sole minting site)."""
        return PrefixedBackend(self.shared_backend, tenant.prefix)

    def tenant_dir(self, tenant: Tenant) -> Path:
        """The tenant's checkpoint directory (created on demand)."""
        path = self.state_root / "tenants" / tenant.tenant_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._tenants
