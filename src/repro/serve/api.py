"""REST/JSON + SSE routes over :class:`~repro.serve.app.ServeApp`.

Every handler here is an ``async def`` running on the coordination loop, so
none of them may touch the stores directly — journal replays and history
queries are module-level *sync* functions dispatched through
``Scheduler.call`` onto the worker pool.  The ``serve-discipline`` lint
checker fails this module if a handler ever calls a blocking store method
inline, and if anything outside the tenant registry mints a keyspace
prefix.

The surface (all JSON unless noted)::

    GET    /healthz
    GET    /metrics
    GET    /v1/scenarios
    GET    /v1/tenants
    POST   /v1/tenants                     {"tenant_id": ...}
    GET    /v1/tenants/{tid}
    DELETE /v1/tenants/{tid}
    POST   /v1/tenants/{tid}/fleets        FleetSpec payload
    GET    /v1/tenants/{tid}/watch
    POST   /v1/tenants/{tid}/watch/start
    POST   /v1/tenants/{tid}/watch/stop
    GET    /v1/tenants/{tid}/incidents     ?env=&state=&since=
    GET    /v1/tenants/{tid}/fleet-incidents   ?component=&state=&since=
    GET    /v1/tenants/{tid}/events        SSE; Last-Event-ID / ?after= resume
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING

from .fleets import FleetSpec, scenario_catalog
from .http import HttpError, Request, Response, Router, StreamingResponse

if TYPE_CHECKING:  # pragma: no cover
    from .app import ServeApp
    from .tenants import Tenant

__all__ = ["build_router"]


def _tenant_payload(app: "ServeApp", tenant: "Tenant") -> dict:
    return {
        "tenant_id": tenant.tenant_id,
        "prefix": tenant.prefix,
        "created_seq": tenant.created_seq,
        "watch": app.watch_status(tenant),
    }


def _get_tenant(app: "ServeApp", request: Request) -> "Tenant":
    try:
        return app.registry.get(request.params["tenant_id"])
    except KeyError as exc:
        raise HttpError(404, str(exc)) from exc


def _float_query(request: Request, name: str) -> float | None:
    raw = request.query.get(name)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError as exc:
        raise HttpError(400, f"query parameter {name!r} must be a number") from exc


# -- blocking store queries (worker pool only) ----------------------------
def _journal_store(app: "ServeApp", tenant_id: str, store_cls):
    view = app.registry.backend_for(app.registry.get(tenant_id))
    store = store_cls(view)
    if not view.durable:
        # Durable backends replay in the constructor; a memory backend's
        # journal is scannable but never auto-folded — fold it now so the
        # query side sees what the supervisor wrote.
        store.replay()
    return store


def _incident_history(app: "ServeApp", tenant_id: str, filters: dict) -> list[dict]:
    from ..stream import IncidentStore

    return _journal_store(app, tenant_id, IncidentStore).history(**filters)


def _fleet_incident_history(
    app: "ServeApp", tenant_id: str, filters: dict
) -> list[dict]:
    from ..correlate import FleetIncidentStore

    return _journal_store(app, tenant_id, FleetIncidentStore).history(**filters)


def _open_event_log(app: "ServeApp", tenant_id: str):
    from ..stream import FleetEventLog

    tenant = app.registry.get(tenant_id)
    return FleetEventLog(app.registry.backend_for(tenant))


def build_router(app: "ServeApp") -> Router:
    router = Router()

    # -- service ----------------------------------------------------------
    async def healthz(request: Request) -> Response:
        """Liveness by default; ``?ready=1`` adds a readiness gate.

        Liveness (200 whenever the loop answers) is what a process monitor
        wants.  Readiness is stricter: 503 while any watch session is still
        ``pending`` (resume fast-forward in flight) or has ``failed`` — a
        load balancer should not route new fleet work at a server that is
        still hydrating or wedged.
        """
        states = [s.state for s in app.sessions.values()]
        body = {
            "ok": True,
            "backend": app.backend_kind,
            "tenants": len(app.registry),
            "watches": {state: states.count(state) for state in set(states)},
            "sse_clients": sum(len(b.clients) for b in app.brokers.values()),
        }
        if request.query.get("ready") not in (None, "", "0"):
            not_ready = [s for s in states if s in ("pending", "failed")]
            if not_ready:
                body["ok"] = False
                body["not_ready"] = {
                    state: not_ready.count(state) for state in set(not_ready)
                }
                return Response(503, body)
            body["ready"] = True
        return Response(200, body)

    async def metrics(request: Request) -> Response:
        from ..obs import metrics as obs_metrics
        from ..obs import prometheus as obs_prometheus

        # stats() reads counters under the pool's own lock and the registry
        # snapshot copies under its lock — neither blocks on store I/O, so
        # both are safe to call inline on the coordination loop; the
        # telemetry refresh only touches in-memory session/broker state.
        app.refresh_telemetry()
        if request.query.get("format") == "prometheus":
            text = obs_prometheus.render_prometheus()
            return Response(
                200,
                text.encode("utf-8"),
                headers={"Content-Type": obs_prometheus.CONTENT_TYPE},
            )
        return Response(
            200,
            {
                "pool": app.scheduler.pool.stats(),
                "metrics": obs_metrics.registry().snapshot(),
            },
        )

    async def scenarios(request: Request) -> Response:
        return Response(200, scenario_catalog())

    # -- tenants ----------------------------------------------------------
    async def list_tenants(request: Request) -> Response:
        return Response(
            200,
            {"tenants": [_tenant_payload(app, t) for t in app.registry.list()]},
        )

    async def create_tenant(request: Request) -> Response:
        body = request.json()
        if not isinstance(body, dict) or not isinstance(body.get("tenant_id"), str):
            raise HttpError(400, "body must be {\"tenant_id\": \"...\"}")
        tenant_id = body["tenant_id"]
        if tenant_id in app.registry:
            raise HttpError(409, f"tenant {tenant_id!r} already exists")
        try:
            tenant = await app.mutate_registry(app.registry.create, tenant_id)
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        return Response(201, _tenant_payload(app, tenant))

    async def get_tenant(request: Request) -> Response:
        return Response(200, _tenant_payload(app, _get_tenant(app, request)))

    async def delete_tenant(request: Request) -> Response:
        tenant = _get_tenant(app, request)
        await app.delete_tenant(tenant.tenant_id)
        return Response(200, {"deleted": tenant.tenant_id})

    # -- fleets / watches --------------------------------------------------
    async def create_fleet(request: Request) -> Response:
        tenant = _get_tenant(app, request)
        session = app.sessions.get(tenant.tenant_id)
        if session is not None and session.state in ("pending", "running"):
            raise HttpError(409, "stop the running watch before replacing the fleet")
        try:
            spec = FleetSpec.from_payload(request.json())
            members = spec.member_names()
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        await app.record_watch(tenant.tenant_id, spec, running=False)
        return Response(
            201,
            {
                "tenant_id": tenant.tenant_id,
                "spec": spec.to_dict(),
                "members": members,
            },
        )

    async def watch_status(request: Request) -> Response:
        tenant = _get_tenant(app, request)
        return Response(200, app.watch_status(tenant))

    async def watch_start(request: Request) -> Response:
        tenant = _get_tenant(app, request)
        try:
            session = await app.start_watch(tenant)
        except LookupError as exc:
            raise HttpError(409, str(exc)) from exc
        except RuntimeError as exc:
            raise HttpError(409, str(exc)) from exc
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        return Response(200, session.status())

    async def watch_stop(request: Request) -> Response:
        tenant = _get_tenant(app, request)
        try:
            session = await app.stop_watch(tenant.tenant_id)
        except LookupError as exc:
            raise HttpError(409, str(exc)) from exc
        return Response(200, session.status())

    # -- history ----------------------------------------------------------
    async def incidents(request: Request) -> Response:
        tenant = _get_tenant(app, request)
        filters = {
            "env": request.query.get("env"),
            "state": request.query.get("state"),
            "since": _float_query(request, "since"),
        }
        history = await app.scheduler.call(
            partial(_incident_history, app, tenant.tenant_id, filters)
        )
        return Response(200, {"incidents": history})

    async def fleet_incidents(request: Request) -> Response:
        tenant = _get_tenant(app, request)
        filters = {
            "component": request.query.get("component"),
            "state": request.query.get("state"),
            "since": _float_query(request, "since"),
        }
        history = await app.scheduler.call(
            partial(_fleet_incident_history, app, tenant.tenant_id, filters)
        )
        return Response(200, {"fleet_incidents": history})

    # -- SSE ---------------------------------------------------------------
    async def events(request: Request) -> StreamingResponse:
        tenant = _get_tenant(app, request)
        after_raw = request.query.get(
            "after", request.headers.get("last-event-id", "-1")
        )
        try:
            after_seq = int(after_raw)
        except ValueError as exc:
            raise HttpError(400, "after / Last-Event-ID must be an integer") from exc
        broker = app.broker_for(tenant.tenant_id)
        if broker.event_log is None:
            # No live watch has bound a log yet — open a read view so
            # catch-up still serves the journalled history.
            broker.bind(
                await app.scheduler.call(
                    partial(_open_event_log, app, tenant.tenant_id)
                )
            )
        return StreamingResponse(
            pump=lambda writer: broker.attach(writer, after_seq=after_seq),
            headers={"Content-Type": "text/event-stream"},
        )

    router.add("GET", "/healthz", healthz)
    router.add("GET", "/metrics", metrics)
    router.add("GET", "/v1/scenarios", scenarios)
    router.add("GET", "/v1/tenants", list_tenants)
    router.add("POST", "/v1/tenants", create_tenant)
    router.add("GET", "/v1/tenants/{tenant_id}", get_tenant)
    router.add("DELETE", "/v1/tenants/{tenant_id}", delete_tenant)
    router.add("POST", "/v1/tenants/{tenant_id}/fleets", create_fleet)
    router.add("GET", "/v1/tenants/{tenant_id}/watch", watch_status)
    router.add("POST", "/v1/tenants/{tenant_id}/watch/start", watch_start)
    router.add("POST", "/v1/tenants/{tenant_id}/watch/stop", watch_stop)
    router.add("GET", "/v1/tenants/{tenant_id}/incidents", incidents)
    router.add("GET", "/v1/tenants/{tenant_id}/fleet-incidents", fleet_incidents)
    router.add("GET", "/v1/tenants/{tenant_id}/events", events)
    return router
