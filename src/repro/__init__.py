"""repro — reproduction of "Why Did My Query Slow Down?" (DIADS, CIDR 2009).

An integrated database + SAN diagnosis library.  The package is organised as:

* :mod:`repro.stats` — KDE anomaly scoring and baseline detectors,
* :mod:`repro.san` — SAN simulator (topology, zoning, I/O contention),
* :mod:`repro.db` — database simulator (catalog, optimizer, executor),
* :mod:`repro.monitor` — noisy sampled monitoring stores,
* :mod:`repro.lab` — environment, workloads, fault injection, scenarios,
* :mod:`repro.core` — the paper's contribution: APGs and the DIADS workflow,
  built on a pluggable pipeline engine (registry + DAG scheduling),
* :mod:`repro.runtime` — the execution substrate: a shared long-lived
  worker pool, a cooperative asyncio scheduler with bounded backpressure
  queues, and per-environment clock vectors,
* :mod:`repro.stream` — online detectors, incidents, and the barrier-free
  fleet supervisor that closes the detect→diagnose loop with no human
  marking (each environment advances on its own clock; slow diagnoses
  overlap the rest of the fleet),
* :mod:`repro.storage` — the unified telemetry-store API: one pluggable
  backend protocol (memory + crash-safe JSONL + indexed sqlite) under every
  store, the ``TelemetryStore`` facade, and lossless serializers for
  persistence (``DiagnosisBundle.save()/load()``, ``repro watch
  --state-dir`` resume).

Quickstart::

    from repro import Diads, scenario_san_misconfiguration

    bundle = scenario_san_misconfiguration().run()
    report = Diads.from_bundle(bundle).diagnose("q2-report")
    print(report.render())

Fleet-scale batch and plug-in modules::

    from repro import DiagnosisPipeline, DiagnosisRequest, register_module

    reports = DiagnosisPipeline().diagnose_many(
        [DiagnosisRequest(bundle.bundle, "q2-report")], max_workers=8
    )

Online monitoring with auto-triggered diagnosis::

    from repro import FleetSupervisor, scenario_flapping_san_misconfiguration

    supervisor = FleetSupervisor()
    supervisor.watch_scenario(scenario_flapping_san_misconfiguration(hours=8.0))
    supervisor.run(8 * 3600.0)  # incidents open + diagnose themselves
"""

from .core import (
    Diads,
    DiagnosisModule,
    DiagnosisPipeline,
    DiagnosisReport,
    DiagnosisRequest,
    InteractiveSession,
    ModuleRegistry,
    RankedCause,
    default_pipeline,
    default_registry,
    evaluate_bundle,
    evaluate_bundles,
    evaluate_report,
    evaluate_scenario,
    register_module,
)
from .lab import (
    Scenario,
    ScenarioBundle,
    all_table1_scenarios,
    scenario_buffer_pool,
    scenario_concurrent_db_san,
    scenario_cpu_saturation,
    scenario_data_property_change,
    scenario_flapping_san_misconfiguration,
    scenario_lock_contention,
    scenario_plan_regression,
    scenario_raid_rebuild,
    scenario_san_misconfiguration,
    scenario_staggered_dual_faults,
    scenario_two_external_workloads,
)
from .stream import (
    CusumDetector,
    Detection,
    DetectorBank,
    EwmaDriftDetector,
    FleetEventLog,
    FleetSupervisor,
    Incident,
    IncidentManager,
    IncidentState,
    IncidentStore,
    ResponseTimeSloDetector,
    Severity,
    ThresholdSloDetector,
    WatchedEnvironment,
)
from .correlate import (
    CorrelationEngine,
    FleetDiagnosis,
    FleetIncident,
    FleetIncidentState,
    FleetIncidentStore,
    SharedFabric,
    SharedFabricBuilder,
    diagnose_fleet_incident,
    fabric_coincidental_independent_faults,
    fabric_shared_pool_saturation,
    fabric_shared_switch_degradation,
)
from .runtime import ClockVector, Scheduler, TaskQueue, WorkerPool, shared_pool
from .storage import (
    JsonlBackend,
    MemoryBackend,
    SqliteBackend,
    StorageBackend,
    TelemetryStore,
)
from . import obs

__version__ = "0.10.0"

__all__ = [
    "__version__",
    "Diads",
    "DiagnosisModule",
    "DiagnosisPipeline",
    "DiagnosisReport",
    "DiagnosisRequest",
    "InteractiveSession",
    "ModuleRegistry",
    "RankedCause",
    "default_pipeline",
    "default_registry",
    "register_module",
    "evaluate_bundle",
    "evaluate_bundles",
    "evaluate_report",
    "evaluate_scenario",
    "Scenario",
    "ScenarioBundle",
    "all_table1_scenarios",
    "scenario_buffer_pool",
    "scenario_concurrent_db_san",
    "scenario_cpu_saturation",
    "scenario_data_property_change",
    "scenario_flapping_san_misconfiguration",
    "scenario_lock_contention",
    "scenario_plan_regression",
    "scenario_raid_rebuild",
    "scenario_san_misconfiguration",
    "scenario_staggered_dual_faults",
    "scenario_two_external_workloads",
    "Detection",
    "ThresholdSloDetector",
    "EwmaDriftDetector",
    "CusumDetector",
    "ResponseTimeSloDetector",
    "DetectorBank",
    "Incident",
    "IncidentManager",
    "IncidentState",
    "IncidentStore",
    "Severity",
    "FleetEventLog",
    "FleetSupervisor",
    "WatchedEnvironment",
    "CorrelationEngine",
    "FleetDiagnosis",
    "FleetIncident",
    "FleetIncidentState",
    "FleetIncidentStore",
    "SharedFabric",
    "SharedFabricBuilder",
    "diagnose_fleet_incident",
    "fabric_shared_pool_saturation",
    "fabric_shared_switch_degradation",
    "fabric_coincidental_independent_faults",
    "StorageBackend",
    "MemoryBackend",
    "JsonlBackend",
    "SqliteBackend",
    "TelemetryStore",
    "WorkerPool",
    "shared_pool",
    "Scheduler",
    "TaskQueue",
    "ClockVector",
    "obs",
]
