"""repro — reproduction of "Why Did My Query Slow Down?" (DIADS, CIDR 2009).

An integrated database + SAN diagnosis library.  The package is organised as:

* :mod:`repro.stats` — KDE anomaly scoring and baseline detectors,
* :mod:`repro.san` — SAN simulator (topology, zoning, I/O contention),
* :mod:`repro.db` — database simulator (catalog, optimizer, executor),
* :mod:`repro.monitor` — noisy sampled monitoring stores,
* :mod:`repro.lab` — environment, workloads, fault injection, scenarios,
* :mod:`repro.core` — the paper's contribution: APGs and the DIADS workflow.

Quickstart::

    from repro.lab import scenario_san_misconfiguration
    from repro.core import Diads

    bundle = scenario_san_misconfiguration().run()
    report = Diads.from_bundle(bundle).diagnose("q2-report")
    print(report.render())
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
