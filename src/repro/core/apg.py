"""The Annotated Plan Graph (APG) — the paper's central data structure.

An APG ties together, for one query:

* the **plan** (operator tree) with per-execution operator annotations
  (start/stop times, estimated vs actual record counts),
* the **SAN layer**: every component on any operator's inner or outer
  dependency path, annotated with the monitoring data collected during each
  execution's ``[tb, te]`` window,
* the **configuration**: which tablespace/volume each leaf reads, and the
  events/config changes in force.

APGs are *views on the monitoring data* — they hold references into the
stores and materialise annotations on demand, which is what makes them cheap
enough for production-style usage (the paper stresses APGs come from
light-weight monitoring that is already collected).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..db.catalog import Catalog
from ..db.executor import QueryRun
from ..db.plans import PlanOperator
from ..lab.environment import DiagnosisBundle
from ..san.topology import SanTopology
from .dependency import DependencyPaths, compute_dependency_paths

__all__ = ["AnnotatedPlanGraph", "OperatorAnnotation", "build_apg"]

#: Metrics surfaced per SAN component type when annotating operators.
COMPONENT_METRICS = {
    "volume": ["readIO", "writeIO", "readTime", "writeTime", "totalIOs"],
    "disk": ["iops", "utilisation", "latency"],
    "pool": ["totalIOs", "avgLatency", "maxUtilisation"],
    "subsystem": ["totalIOs", "cacheHitRate"],
    "switch": ["bytesTransmitted", "bytesReceived", "errorFrames"],
    "server": ["cpuUsagePct", "physicalMemoryUsagePct"],
    "hba": ["bytesTransferred"],
    "fc_port": ["bytesTransferred"],
}

#: Database-level metrics annotated on the pseudo-component "db".
DB_METRICS = ["blocksRead", "bufferHits", "locksHeld", "lockWaitTime", "planRunningTime"]


@dataclass(frozen=True)
class OperatorAnnotation:
    """The APG annotation of one operator for one execution."""

    op_id: str
    run_id: str
    start: float
    stop: float
    estimated_rows: float
    actual_rows: float
    component_metrics: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def running_time(self) -> float:
        return self.stop - self.start


@dataclass
class AnnotatedPlanGraph:
    """APG for one query: plan + dependency paths + annotation accessors."""

    query_name: str
    plan: PlanOperator
    catalog: Catalog
    topology: SanTopology
    server_id: str
    runs: list[QueryRun]
    metric_store: "MetricStoreLike"
    dependency: dict[str, DependencyPaths] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.dependency:
            self.dependency = compute_dependency_paths(
                self.plan, self.catalog, self.topology, self.server_id
            )

    # -- structure ---------------------------------------------------------
    @property
    def operator_count(self) -> int:
        return self.plan.size

    @property
    def leaf_count(self) -> int:
        return len(self.plan.leaves())

    def component_ids(self) -> set[str]:
        out: set[str] = set()
        for paths in self.dependency.values():
            out |= paths.all_components
        return out

    def inner_path(self, op_id: str) -> frozenset[str]:
        return self.dependency[op_id].inner

    def outer_path(self, op_id: str) -> frozenset[str]:
        return self.dependency[op_id].outer

    def volume_of_operator(self, op_id: str) -> str | None:
        op = self.plan.find(op_id)
        if op.table is None:
            return None
        return self.catalog.volume_of_table(op.table)

    def leaves_on_volume(self, volume_id: str) -> list[str]:
        return [
            op.op_id
            for op in self.plan.leaves()
            if op.table and self.catalog.volume_of_table(op.table) == volume_id
        ]

    def volumes_used(self) -> set[str]:
        return {
            self.catalog.volume_of_table(op.table)
            for op in self.plan.leaves()
            if op.table
        }

    # -- annotations ---------------------------------------------------------
    def annotate(self, op_id: str, run: QueryRun) -> OperatorAnnotation:
        """Materialise the APG annotation of one operator for one run:
        performance data of every dependency-path component over [tb, te]."""
        rt = run.operators[op_id]
        metrics: dict[str, dict[str, float]] = {}
        for component_id in sorted(self.dependency[op_id].all_components):
            values = self._component_window(component_id, rt.start, rt.stop)
            if values:
                metrics[component_id] = values
        return OperatorAnnotation(
            op_id=op_id,
            run_id=run.run_id,
            start=rt.start,
            stop=rt.stop,
            estimated_rows=rt.est_rows,
            actual_rows=rt.actual_rows,
            component_metrics=metrics,
        )

    def _component_window(
        self, component_id: str, start: float, stop: float
    ) -> dict[str, float]:
        if component_id == "db":
            names = DB_METRICS
        else:
            try:
                ctype = self.topology.get(component_id).ctype.value
            except Exception:
                return {}
            names = COMPONENT_METRICS.get(ctype, [])
        out = {}
        for metric in names:
            mean = self.metric_store.window_mean(component_id, metric, start, stop)
            if mean is not None:
                out[metric] = mean
        return out

    def operator_times_by_label(self) -> tuple[dict[str, list[float]], dict[str, list[float]]]:
        """(satisfactory, unsatisfactory) op_id → per-run inclusive times."""
        sat: dict[str, list[float]] = {}
        unsat: dict[str, list[float]] = {}
        for run in self.runs:
            target = sat if run.satisfactory else unsat
            if run.satisfactory is None:
                continue
            for op_id, t in run.operator_times().items():
                target.setdefault(op_id, []).append(t)
        return sat, unsat


class MetricStoreLike:  # pragma: no cover - typing aid only
    def window_mean(self, component_id: str, metric: str, start: float, end: float):
        raise NotImplementedError


def build_apg(
    bundle: DiagnosisBundle,
    query_name: str,
    plan: PlanOperator | None = None,
    runs: list[QueryRun] | None = None,
) -> AnnotatedPlanGraph:
    """Construct the APG for a query from a diagnosis bundle.

    ``plan`` defaults to the plan of the latest recorded run; ``runs`` to all
    recorded runs executing that same plan (matching the workflow's "same
    plan P involved in good and bad performance" requirement).
    """
    all_runs = bundle.stores.runs.runs(query_name)
    if not all_runs:
        raise ValueError(f"no recorded runs for query {query_name!r}")
    if plan is None:
        plan = all_runs[-1].plan
    signature = plan.signature()
    if runs is None:
        runs = [r for r in all_runs if r.plan_signature == signature]
    return AnnotatedPlanGraph(
        query_name=query_name,
        plan=plan,
        catalog=bundle.catalog,
        topology=bundle.topology,
        server_id=bundle.testbed.db_server_id,
        runs=runs,
        metric_store=bundle.stores.metrics,
    )
