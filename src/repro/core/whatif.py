"""What-if analysis: proactive impact assessment of planned changes.

Section 7's first extension: *"an integrated database and SAN tool that
allows administrators to proactively assess the impact of their planned
changes on the other layer"*.  The analyzer answers three question shapes:

* **config/what-if replanning** — would changing optimizer parameters or
  dropping/creating an index change the plan of a query, and at what
  estimated cost?
* **workload placement** — if another application adds I/O load to a volume,
  how much slower do queries using (or sharing disks with) it get?
* **tablespace migration** — if a tablespace moves to another volume, what
  happens to the query's I/O time?

Predictions reuse the same building blocks DIADS diagnoses with: the APG's
volume mapping, the I/O model for latencies, and monitored operator
self-times as the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..db.optimizer import DbConfig, Optimizer
from ..db.plans import PlanOperator, diff_plans
from ..db.query import QuerySpec
from ..lab.environment import DiagnosisBundle
from ..san.iomodel import IoSimulator, VolumeLoad
from .apg import AnnotatedPlanGraph, build_apg
from .modules.impact import self_times

__all__ = ["WhatIfPlanOutcome", "WhatIfLoadOutcome", "WhatIfAnalyzer"]


@dataclass(frozen=True)
class WhatIfPlanOutcome:
    """Replanning verdict for a hypothetical catalog/config change."""

    plan_changes: bool
    current_cost: float
    hypothetical_cost: float
    diff_description: str
    hypothetical_plan: PlanOperator

    @property
    def cost_ratio(self) -> float:
        if self.current_cost <= 0:
            return 1.0
        return self.hypothetical_cost / self.current_cost


@dataclass(frozen=True)
class WhatIfLoadOutcome:
    """Predicted effect of an I/O-load or placement change on one query."""

    baseline_duration: float
    predicted_duration: float
    volume_latency_before: dict[str, float] = field(default_factory=dict)
    volume_latency_after: dict[str, float] = field(default_factory=dict)

    @property
    def slowdown_pct(self) -> float:
        if self.baseline_duration <= 0:
            return 0.0
        return (self.predicted_duration / self.baseline_duration - 1.0) * 100.0


class WhatIfAnalyzer:
    """Predictive queries over one diagnosis bundle."""

    def __init__(self, bundle: DiagnosisBundle) -> None:
        self.bundle = bundle

    # ------------------------------------------------------------------
    # plan-level what-if
    # ------------------------------------------------------------------
    def replan_under(
        self,
        query_name: str,
        config_changes: dict | None = None,
        drop_indexes: tuple[str, ...] = (),
        create_indexes: tuple = (),
    ) -> WhatIfPlanOutcome:
        """Replay the optimizer under a hypothetical catalog/config."""
        spec = self.bundle.query_specs.get(query_name)
        if not isinstance(spec, QuerySpec):
            raise ValueError(
                f"query {query_name!r} has no declarative spec to replan"
            )
        current = Optimizer(self.bundle.catalog, self.bundle.db_config).plan(spec)
        catalog = self.bundle.catalog.clone()
        for index_name in drop_indexes:
            catalog.drop_index(index_name)
        for index in create_indexes:
            catalog.create_index(index)
        config: DbConfig = self.bundle.db_config
        if config_changes:
            config = config.with_changes(**config_changes)
        hypothetical = Optimizer(catalog, config).plan(spec)
        diff = diff_plans(current, hypothetical)
        return WhatIfPlanOutcome(
            plan_changes=not diff.same,
            current_cost=current.est_cost or _total_cost(current),
            hypothetical_cost=hypothetical.est_cost or _total_cost(hypothetical),
            diff_description=diff.describe(),
            hypothetical_plan=hypothetical,
        )

    # ------------------------------------------------------------------
    # load-level what-if
    # ------------------------------------------------------------------
    def add_workload(
        self, query_name: str, volume_id: str, read_iops: float, write_iops: float
    ) -> WhatIfLoadOutcome:
        """Predict query slowdown if a new external workload lands on a volume."""
        extra = {volume_id: VolumeLoad(read_iops=read_iops, write_iops=write_iops)}
        return self._predict(query_name, extra_loads=extra)

    def move_tablespace(self, query_name: str, table: str, to_volume: str) -> WhatIfLoadOutcome:
        """Predict query duration if ``table``'s I/O moved to another volume.

        The prediction re-prices the table's leaf operators at the target
        volume's current latency.  (The second-order effect — the moved load
        changing both volumes' utilisation — is small for read-mostly report
        queries and is ignored.)
        """
        self.bundle.topology.get_volume(to_volume)  # validate target
        return self._predict(
            query_name,
            extra_loads={},
            volume_override={table: to_volume},
        )

    # ------------------------------------------------------------------
    def _apg(self, query_name: str) -> AnnotatedPlanGraph:
        return build_apg(self.bundle, query_name)

    def _current_loads(self, apg: AnnotatedPlanGraph) -> dict[str, VolumeLoad]:
        """Approximate current offered loads from monitored front-end IOPS."""
        store = self.bundle.stores.metrics
        loads: dict[str, VolumeLoad] = {}
        runs = [r for r in apg.runs if r.satisfactory is not False] or apg.runs
        for volume in self.bundle.topology.volumes:
            vid = volume.component_id
            reads, writes = [], []
            for run in runs[-8:]:
                r = store.window_mean(vid, "frontendReadIO", run.start_time, run.end_time)
                w = store.window_mean(vid, "frontendWriteIO", run.start_time, run.end_time)
                if r is not None:
                    reads.append(r)
                if w is not None:
                    writes.append(w)
            if reads or writes:
                loads[vid] = VolumeLoad(
                    read_iops=float(np.mean(reads)) if reads else 0.0,
                    write_iops=float(np.mean(writes)) if writes else 0.0,
                )
        return loads

    def _predict(
        self,
        query_name: str,
        extra_loads: dict[str, VolumeLoad],
        volume_override: dict[str, str] | None = None,
    ) -> WhatIfLoadOutcome:
        """Scale the latest satisfactory run's leaf I/O by latency ratios."""
        apg = self._apg(query_name)
        sat_runs = [r for r in apg.runs if r.satisfactory is True] or apg.runs
        baseline_run = sat_runs[-1]
        iosim = IoSimulator(self.bundle.topology)
        base_loads = self._current_loads(apg)
        before = iosim.simulate(base_loads)
        combined = dict(base_loads)
        for vid, load in extra_loads.items():
            combined[vid] = combined.get(vid, VolumeLoad()) + load
        # A tablespace move shifts the moved table's share of front-end reads.
        overrides = volume_override or {}
        after = iosim.simulate(combined)

        selves = self_times(apg.plan, baseline_run)
        predicted = 0.0
        lat_before: dict[str, float] = {}
        lat_after: dict[str, float] = {}
        for volume in self.bundle.topology.volumes:
            vid = volume.component_id
            lat_before[vid] = before.volume_read_latency(vid)
            lat_after[vid] = after.volume_read_latency(vid)
        for op in apg.plan.walk():
            self_time = selves.get(op.op_id, 0.0)
            if op.is_leaf and op.table:
                volume_id = overrides.get(
                    op.table, self.bundle.catalog.volume_of_table(op.table)
                )
                b, a = lat_before.get(volume_id, 1.0), lat_after.get(volume_id, 1.0)
                ratio = a / b if b > 0 else 1.0
                predicted += self_time * ratio
            else:
                predicted += self_time
        return WhatIfLoadOutcome(
            baseline_duration=baseline_run.duration,
            predicted_duration=predicted,
            volume_latency_before=lat_before,
            volume_latency_after=lat_after,
        )


def _total_cost(plan: PlanOperator) -> float:
    return sum(op.est_cost for op in plan.walk())
