"""Scenario evaluation: did DIADS find the injected root cause?

Used by the Table-1 bench and the robustness examples.  The evaluation
compares the diagnosis report against the scenario's ground truth (which the
fault injector knows but DIADS never sees).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..lab.scenarios import Scenario, ScenarioBundle
from .pipeline import DiagnosisRequest, default_pipeline
from .symptoms import SymptomsDatabase
from .workflow import DiagnosisReport

__all__ = [
    "ScenarioEvaluation",
    "evaluate_bundle",
    "evaluate_bundles",
    "evaluate_report",
    "evaluate_scenario",
]


@dataclass(frozen=True)
class ScenarioEvaluation:
    """Outcome of diagnosing one scenario."""

    scenario_name: str
    description: str
    ground_truth: tuple[str, ...]
    top_cause: str
    top_binding: str | None
    top_confidence: str
    top_impact_pct: float | None
    identified: bool
    high_confidence_causes: tuple[str, ...]
    report: DiagnosisReport = field(repr=False, compare=False, hash=False, default=None)

    def row(self) -> str:
        impact = (
            f"{self.top_impact_pct:5.1f}%" if self.top_impact_pct is not None else "  n/a "
        )
        verdict = "OK" if self.identified else "MISS"
        binding = f"[{self.top_binding}]" if self.top_binding else ""
        return (
            f"{self.scenario_name:<32} {verdict:<5} {self.top_cause}{binding} "
            f"({self.top_confidence}, impact {impact})"
        )


def evaluate_report(
    scenario_bundle: ScenarioBundle, report: DiagnosisReport
) -> ScenarioEvaluation:
    """Compare a finished diagnosis against the scenario's ground truth.

    Public so streaming supervision (``repro watch``) can grade the reports
    it attached to incidents with the same rules the offline sweep uses.
    """
    top = report.top_cause
    high = tuple(
        rc.match.cause_id
        for rc in report.ranked_causes
        if rc.match.confidence.value == "high"
    )
    truth = scenario_bundle.info.ground_truth
    identified = (
        top is not None
        and top.match.cause_id in truth
        and set(truth) <= set(high)
    )
    return ScenarioEvaluation(
        scenario_name=scenario_bundle.info.name,
        description=scenario_bundle.info.description,
        ground_truth=truth,
        top_cause=top.match.cause_id if top else "(none)",
        top_binding=top.match.binding if top else None,
        top_confidence=top.match.confidence.value if top else "(none)",
        top_impact_pct=top.impact_pct if top else None,
        identified=identified,
        high_confidence_causes=high,
        report=report,
    )


def evaluate_bundle(
    scenario_bundle: ScenarioBundle,
    symptoms_db: SymptomsDatabase | None = None,
    threshold: float = 0.8,
) -> ScenarioEvaluation:
    """Diagnose a scenario bundle and compare against its ground truth.

    ``identified`` requires the top-ranked cause to be one of the injected
    ones AND every injected cause to reach high confidence.
    """
    return evaluate_bundles(
        [scenario_bundle], symptoms_db=symptoms_db, threshold=threshold,
        max_workers=1,
    )[0]


def evaluate_bundles(
    scenario_bundles: Sequence[ScenarioBundle],
    symptoms_db: SymptomsDatabase | None = None,
    threshold: float = 0.8,
    max_workers: int | None = None,
) -> list[ScenarioEvaluation]:
    """Evaluate a sweep of scenario bundles through one batch diagnosis.

    All scenarios share one pipeline; the per-scenario diagnoses fan out
    over :meth:`DiagnosisPipeline.diagnose_many` (each scenario is its own
    bundle, so this is the many-bundle batch path).
    """
    pipeline = default_pipeline(symptoms_db)
    requests = [
        DiagnosisRequest(
            bundle=sb.bundle, query_name=sb.query_name, threshold=threshold
        )
        for sb in scenario_bundles
    ]
    reports = pipeline.diagnose_many(requests, max_workers=max_workers)
    return [
        evaluate_report(sb, report)
        for sb, report in zip(scenario_bundles, reports)
    ]


def evaluate_scenario(
    scenario: Scenario,
    symptoms_db: SymptomsDatabase | None = None,
    threshold: float = 0.8,
) -> ScenarioEvaluation:
    """Run a scenario end-to-end and evaluate the diagnosis."""
    return evaluate_bundle(scenario.run(), symptoms_db=symptoms_db, threshold=threshold)
