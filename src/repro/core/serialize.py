"""JSON-friendly serialization of plans, APGs and diagnosis reports.

DIADS is a tool in a management pipeline: diagnoses get attached to problem
tickets, APGs get displayed by other frontends.  Everything here produces
plain dict/list/scalar structures (``json.dumps``-able) and, for plans, can
round-trip back.
"""

from __future__ import annotations

from typing import Any

from ..storage.serializers import (  # noqa: F401  (re-exported)
    catalog_from_dict,
    catalog_to_dict,
    dbconfig_from_dict,
    dbconfig_to_dict,
    plan_from_dict,
    plan_to_dict,
    run_from_dict,
    run_to_dict,
    spec_from_dict,
    spec_to_dict,
    testbed_from_dict,
    testbed_to_dict,
)
from .apg import AnnotatedPlanGraph
from .workflow import DiagnosisReport

__all__ = [
    "plan_to_dict",
    "plan_from_dict",
    "run_to_dict",
    "run_from_dict",
    "catalog_to_dict",
    "catalog_from_dict",
    "dbconfig_to_dict",
    "dbconfig_from_dict",
    "spec_to_dict",
    "spec_from_dict",
    "testbed_to_dict",
    "testbed_from_dict",
    "apg_to_dict",
    "report_to_dict",
]


def apg_to_dict(apg: AnnotatedPlanGraph, include_annotations: bool = False) -> dict[str, Any]:
    """Structural (and optionally annotated) JSON form of an APG."""
    out: dict[str, Any] = {
        "query": apg.query_name,
        "plan": plan_to_dict(apg.plan),
        "operator_count": apg.operator_count,
        "leaf_count": apg.leaf_count,
        "volumes_used": sorted(apg.volumes_used()),
        "dependency": {
            op_id: {
                "inner": sorted(paths.inner),
                "outer": sorted(paths.outer),
            }
            for op_id, paths in sorted(apg.dependency.items())
        },
        "runs": [
            {
                "run_id": run.run_id,
                "start": run.start_time,
                "duration": run.duration,
                "satisfactory": run.satisfactory,
            }
            for run in apg.runs
        ],
    }
    if include_annotations and apg.runs:
        last = apg.runs[-1]
        out["annotations"] = {
            op.op_id: {
                "window": [last.operators[op.op_id].start, last.operators[op.op_id].stop],
                "actual_rows": last.operators[op.op_id].actual_rows,
                "components": apg.annotate(op.op_id, last).component_metrics,
            }
            for op in apg.plan.walk()
            if op.op_id in last.operators
        }
    return out


def report_to_dict(report: DiagnosisReport) -> dict[str, Any]:
    """JSON form of a diagnosis report (the ticket attachment)."""
    ctx = report.context
    sd = ctx.results.get("SD")
    return {
        "query": report.query_name,
        "runs": {
            "satisfactory": len(ctx.sat_runs),
            "unsatisfactory": len(ctx.unsat_runs),
            "onset": ctx.onset,
        },
        "modules": {
            name: result.summary for name, result in sorted(ctx.results.items())
        },
        "skipped": dict(sorted(report.skipped.items())),
        "symptoms": [
            {"sid": s.sid, "time": s.time, "description": s.description}
            for s in (sd.symptoms if sd is not None else [])
        ],
        "causes": [
            {
                "cause_id": rc.match.cause_id,
                "binding": rc.match.binding,
                "confidence": rc.match.confidence.value,
                "score": rc.match.score,
                "impact_pct": rc.impact_pct,
                "description": rc.match.description,
            }
            for rc in report.ranked_causes
        ],
    }
