"""Silo-tool baselines: what DB-only, SAN-only and pure-ML diagnosis report.

Section 5 argues: *"a SAN-only diagnosis tool may spot higher I/O loads in
both V1 and V2, and attribute both of these as potential root causes.  Even
worse, the tool may give more importance to V2 because most of the data is on
V2.  A database-only tool can pinpoint the slowdown in the operators, but it
would likely give several false positives like a suboptimal buffer pool
setting or a suboptimal choice of execution plan."*  These diagnosers
implement exactly those strategies so the claim becomes measurable
(experiment E10), plus a pure-correlation "ML-only" tool that demonstrates
event flooding.

Each baseline is expressed as an alternate *pipeline configuration*: a
single registered :class:`DiagnosisModule` wrapped by
:func:`baseline_pipeline`.  The classic ``SanOnlyDiagnoser``-style classes
remain as thin facades over those one-module pipelines, so the baselines
run on the same engine as the integrated workflow (and can be mixed into
custom pipelines for side-by-side comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..lab.environment import DiagnosisBundle
from ..stats.correlation import pearson
from .apg import COMPONENT_METRICS
from .modules.base import DiagnosisContext, ModuleResult
from .modules.correlated_operators import kde_anomaly
from .pipeline import DiagnosisPipeline
from .registry import register_module

__all__ = [
    "BaselineFinding",
    "BaselineResult",
    "SanOnlyModule",
    "DbOnlyModule",
    "CorrelationOnlyModule",
    "baseline_pipeline",
    "SanOnlyDiagnoser",
    "DbOnlyDiagnoser",
    "CorrelationOnlyDiagnoser",
]


@dataclass(frozen=True)
class BaselineFinding:
    """One candidate cause reported by a baseline tool."""

    cause: str
    target: str
    score: float
    detail: str = ""

    def describe(self) -> str:
        return f"{self.cause} @ {self.target} (score {self.score:.2f}) {self.detail}".rstrip()


@dataclass
class BaselineResult(ModuleResult):
    """Pipeline-module form of a baseline's findings list."""

    findings: list[BaselineFinding] = field(default_factory=list)

    def targets(self) -> list[str]:
        return [f.target for f in self.findings]


def _labelled_runs(bundle: DiagnosisBundle, query_name: str):
    runs = bundle.stores.runs.runs(query_name)
    sat = [r for r in runs if r.satisfactory is True]
    unsat = [r for r in runs if r.satisfactory is False]
    return sat, unsat


def _window_values(store, component_id, metric, runs):
    values = []
    for run in runs:
        mean = store.window_mean(component_id, metric, run.start_time, run.end_time)
        if mean is not None:
            values.append(mean)
    return values


@register_module
@dataclass
class SanOnlyModule:
    """A storage administrator's tool: volumes + their metrics, nothing else.

    It flags every volume with anomalous I/O metrics and — lacking any notion
    of which data the query actually reads — ranks the suspects by how much
    I/O they serve ("most of the data is on V2").
    """

    threshold: float = 0.8

    name = "SAN_ONLY"
    requires: tuple[str, ...] = ()

    def run(self, ctx: DiagnosisContext) -> BaselineResult:
        bundle = ctx.bundle
        sat, unsat = ctx.sat_runs, ctx.unsat_runs
        store = bundle.stores.metrics
        # A SAN tool has no notion of query runs — it compares the healthy
        # period against the complaint period wholesale.
        sat_start = min(r.start_time for r in sat)
        sat_end = max(r.end_time for r in sat)
        onset = min(r.start_time for r in unsat)
        horizon = max(r.end_time for r in unsat)
        findings = []
        for volume in bundle.topology.volumes:
            vid = volume.component_id
            best_metric, best_score = None, 0.0
            for metric in COMPONENT_METRICS["volume"]:
                s = store.values_between(vid, metric, sat_start, sat_end)
                u = store.values_between(vid, metric, onset, horizon)
                if len(s) < 2 or not u:
                    continue
                score = kde_anomaly(s, u)
                if score > best_score:
                    best_metric, best_score = metric, score
            if best_score >= self.threshold:
                io_weight = float(
                    np.mean(_window_values(store, vid, "totalIOs", sat + unsat) or [0.0])
                )
                findings.append(
                    BaselineFinding(
                        cause="volume-contention",
                        target=vid,
                        score=best_score,
                        detail=f"metric {best_metric}, totalIOs≈{io_weight:.0f}",
                    )
                )
        # rank by served I/O, not by causal relevance — the silo-tool mistake
        def io_of(f: BaselineFinding) -> float:
            return float(
                np.mean(
                    _window_values(store, f.target, "totalIOs", sat + unsat) or [0.0]
                )
            )

        findings.sort(key=io_of, reverse=True)
        result = BaselineResult(
            module=self.name,
            summary=f"{len(findings)} anomalous volumes (ranked by served I/O)",
            findings=findings,
        )
        ctx.set_result(result)
        return result


@register_module
@dataclass
class DbOnlyModule:
    """A database administrator's tool: operators + DB metrics, no SAN view.

    It correctly pinpoints the slow operators but, with no visibility into
    the storage layer, falls back to the usual database suspects — buffer
    pool sizing, plan choice, locking — several of which are false positives
    whenever the true cause lives in the SAN.
    """

    threshold: float = 0.8

    name = "DB_ONLY"
    requires: tuple[str, ...] = ()

    def run(self, ctx: DiagnosisContext) -> BaselineResult:
        bundle, query_name = ctx.bundle, ctx.query_name
        sat, unsat = ctx.sat_runs, ctx.unsat_runs
        store = bundle.stores.metrics
        findings: list[BaselineFinding] = []

        # operator drill-down (this part it gets right)
        sat_times: dict[str, list[float]] = {}
        unsat_times: dict[str, list[float]] = {}
        for run in sat:
            for op_id, t in run.operator_times().items():
                sat_times.setdefault(op_id, []).append(t)
        for run in unsat:
            for op_id, t in run.operator_times().items():
                unsat_times.setdefault(op_id, []).append(t)
        slow_ops = []
        for op_id in sat_times:
            if op_id not in unsat_times:
                continue
            score = kde_anomaly(sat_times[op_id], unsat_times[op_id])
            if score >= self.threshold:
                slow_ops.append((op_id, score))
        slow_ops.sort(key=lambda kv: kv[1], reverse=True)
        if slow_ops:
            findings.append(
                BaselineFinding(
                    cause="slow-operators",
                    target=",".join(op for op, _ in slow_ops[:6]),
                    score=slow_ops[0][1],
                    detail=f"{len(slow_ops)} operators slowed down",
                )
            )

        # database-internal hypotheses — emitted with no way to verify them
        def db_score(metric: str) -> float:
            s = _window_values(store, "db", metric, sat)
            u = _window_values(store, "db", metric, unsat)
            if len(s) < 2 or not u:
                return 0.0
            return kde_anomaly(s, u)

        lock_score = db_score("lockWaitTime")
        if lock_score >= self.threshold:
            findings.append(
                BaselineFinding("lock-contention", "db", lock_score, "lock waits elevated")
            )
        io_score = db_score("blocksRead")
        findings.append(
            BaselineFinding(
                cause="suboptimal-buffer-pool",
                target="db",
                score=max(io_score, 0.5),
                detail="operators wait on I/O; buffer pool may be undersized",
            )
        )
        findings.append(
            BaselineFinding(
                cause="suboptimal-plan-choice",
                target=query_name,
                score=0.5,
                detail="plan may be mis-costed for current data",
            )
        )
        result = BaselineResult(
            module=self.name,
            summary=f"{len(findings)} database-side hypotheses",
            findings=findings,
        )
        ctx.set_result(result)
        return result


def _correlation_findings(
    bundle: DiagnosisBundle, query_name: str, top_k: int, min_correlation: float
) -> list[BaselineFinding]:
    """Correlate every metric's per-run means with the query durations.

    Needs only >= 3 labelled runs overall — unlike the integrated workflow
    it does not care whether *both* labels are present.
    """
    sat, unsat = _labelled_runs(bundle, query_name)
    runs = sat + unsat
    if len(runs) < 3:
        return []
    store = bundle.stores.metrics
    durations = [r.duration for r in runs]
    findings: list[BaselineFinding] = []
    for component_id, metric in store.keys():
        values = _window_values(store, component_id, metric, runs)
        if len(values) != len(runs):
            continue
        coeff = pearson(values, durations)
        if abs(coeff) >= min_correlation:
            findings.append(
                BaselineFinding(
                    cause="correlated-metric",
                    target=f"{component_id}.{metric}",
                    score=abs(coeff),
                    detail=f"r={coeff:+.2f}",
                )
            )
    findings.sort(key=lambda f: f.score, reverse=True)
    return findings[:top_k]


@register_module
@dataclass
class CorrelationOnlyModule:
    """Pure machine learning: correlate every metric with the slowdown.

    No dependency pruning, no domain knowledge — every series whose per-run
    means co-move with the query duration is reported.  Event flooding makes
    innocent components (switches, sibling volumes) score highly.
    """

    top_k: int = 10
    min_correlation: float = 0.6

    name = "CORR_ONLY"
    requires: tuple[str, ...] = ()

    def run(self, ctx: DiagnosisContext) -> BaselineResult:
        findings = _correlation_findings(
            ctx.bundle, ctx.query_name, self.top_k, self.min_correlation
        )
        result = BaselineResult(
            module=self.name,
            summary=f"{len(findings)} correlated metrics (top {self.top_k})",
            findings=findings,
        )
        ctx.set_result(result)
        return result


_BASELINE_MODULES = {
    "san-only": SanOnlyModule,
    "db-only": DbOnlyModule,
    "correlation-only": CorrelationOnlyModule,
}


def baseline_pipeline(kind: str, **kwargs) -> DiagnosisPipeline:
    """A one-module pipeline for a silo baseline.

    ``kind`` is one of ``san-only``, ``db-only``, ``correlation-only``;
    ``kwargs`` configure the module (``threshold``, ``top_k``, ...).
    """
    try:
        factory = _BASELINE_MODULES[kind]
    except KeyError:
        raise ValueError(
            f"unknown baseline {kind!r} (choose from {sorted(_BASELINE_MODULES)})"
        ) from None
    return DiagnosisPipeline([factory(**kwargs)])


class _BaselineFacade:
    """Shared ``diagnose()`` entry point of the classic baseline classes."""

    kind: str

    def _module_kwargs(self) -> dict:
        raise NotImplementedError

    def diagnose(self, bundle: DiagnosisBundle, query_name: str) -> list[BaselineFinding]:
        sat, unsat = _labelled_runs(bundle, query_name)
        if not sat or not unsat:
            return []
        pipeline = baseline_pipeline(self.kind, **self._module_kwargs())
        report = pipeline.diagnose(bundle, query_name)
        result: BaselineResult = report.context.result(pipeline.order[0])
        return result.findings


@dataclass
class SanOnlyDiagnoser(_BaselineFacade):
    threshold: float = 0.8
    kind = "san-only"

    def _module_kwargs(self) -> dict:
        return {"threshold": self.threshold}


@dataclass
class DbOnlyDiagnoser(_BaselineFacade):
    threshold: float = 0.8
    kind = "db-only"

    def _module_kwargs(self) -> dict:
        return {"threshold": self.threshold}


@dataclass
class CorrelationOnlyDiagnoser(_BaselineFacade):
    top_k: int = 10
    min_correlation: float = 0.6
    kind = "correlation-only"

    def _module_kwargs(self) -> dict:
        return {"top_k": self.top_k, "min_correlation": self.min_correlation}

    def diagnose(self, bundle: DiagnosisBundle, query_name: str) -> list[BaselineFinding]:
        sat, unsat = _labelled_runs(bundle, query_name)
        if sat and unsat:
            return super().diagnose(bundle, query_name)
        # Pure correlation needs only >= 3 labelled runs, not both labels —
        # a diagnosis context (and hence the pipeline) is unusable here, so
        # fall through to the module's computation directly.
        return _correlation_findings(
            bundle, query_name, self.top_k, self.min_correlation
        )
