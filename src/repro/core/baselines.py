"""Silo-tool baselines: what DB-only, SAN-only and pure-ML diagnosis report.

Section 5 argues: *"a SAN-only diagnosis tool may spot higher I/O loads in
both V1 and V2, and attribute both of these as potential root causes.  Even
worse, the tool may give more importance to V2 because most of the data is on
V2.  A database-only tool can pinpoint the slowdown in the operators, but it
would likely give several false positives like a suboptimal buffer pool
setting or a suboptimal choice of execution plan."*  These diagnosers
implement exactly those strategies so the claim becomes measurable
(experiment E10), plus a pure-correlation "ML-only" tool that demonstrates
event flooding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..lab.environment import DiagnosisBundle
from ..stats.correlation import pearson
from .apg import COMPONENT_METRICS
from .modules.correlated_operators import kde_anomaly

__all__ = [
    "BaselineFinding",
    "SanOnlyDiagnoser",
    "DbOnlyDiagnoser",
    "CorrelationOnlyDiagnoser",
]


@dataclass(frozen=True)
class BaselineFinding:
    """One candidate cause reported by a baseline tool."""

    cause: str
    target: str
    score: float
    detail: str = ""

    def describe(self) -> str:
        return f"{self.cause} @ {self.target} (score {self.score:.2f}) {self.detail}".rstrip()


def _labelled_runs(bundle: DiagnosisBundle, query_name: str):
    runs = bundle.stores.runs.runs(query_name)
    sat = [r for r in runs if r.satisfactory is True]
    unsat = [r for r in runs if r.satisfactory is False]
    return sat, unsat


def _window_values(store, component_id, metric, runs):
    values = []
    for run in runs:
        mean = store.window_mean(component_id, metric, run.start_time, run.end_time)
        if mean is not None:
            values.append(mean)
    return values


@dataclass
class SanOnlyDiagnoser:
    """A storage administrator's tool: volumes + their metrics, nothing else.

    It flags every volume with anomalous I/O metrics and — lacking any notion
    of which data the query actually reads — ranks the suspects by how much
    I/O they serve ("most of the data is on V2").
    """

    threshold: float = 0.8

    def diagnose(self, bundle: DiagnosisBundle, query_name: str) -> list[BaselineFinding]:
        sat, unsat = _labelled_runs(bundle, query_name)
        if not sat or not unsat:
            return []
        store = bundle.stores.metrics
        # A SAN tool has no notion of query runs — it compares the healthy
        # period against the complaint period wholesale.
        sat_start = min(r.start_time for r in sat)
        sat_end = max(r.end_time for r in sat)
        onset = min(r.start_time for r in unsat)
        horizon = max(r.end_time for r in unsat)
        findings = []
        for volume in bundle.topology.volumes:
            vid = volume.component_id
            best_metric, best_score = None, 0.0
            for metric in COMPONENT_METRICS["volume"]:
                s = store.values_between(vid, metric, sat_start, sat_end)
                u = store.values_between(vid, metric, onset, horizon)
                if len(s) < 2 or not u:
                    continue
                score = kde_anomaly(s, u)
                if score > best_score:
                    best_metric, best_score = metric, score
            if best_score >= self.threshold:
                io_weight = float(
                    np.mean(_window_values(store, vid, "totalIOs", sat + unsat) or [0.0])
                )
                findings.append(
                    BaselineFinding(
                        cause="volume-contention",
                        target=vid,
                        score=best_score,
                        detail=f"metric {best_metric}, totalIOs≈{io_weight:.0f}",
                    )
                )
        # rank by served I/O, not by causal relevance — the silo-tool mistake
        def io_of(f: BaselineFinding) -> float:
            return float(
                np.mean(
                    _window_values(store, f.target, "totalIOs", sat + unsat) or [0.0]
                )
            )

        findings.sort(key=io_of, reverse=True)
        return findings


@dataclass
class DbOnlyDiagnoser:
    """A database administrator's tool: operators + DB metrics, no SAN view.

    It correctly pinpoints the slow operators but, with no visibility into
    the storage layer, falls back to the usual database suspects — buffer
    pool sizing, plan choice, locking — several of which are false positives
    whenever the true cause lives in the SAN.
    """

    threshold: float = 0.8

    def diagnose(self, bundle: DiagnosisBundle, query_name: str) -> list[BaselineFinding]:
        sat, unsat = _labelled_runs(bundle, query_name)
        if not sat or not unsat:
            return []
        store = bundle.stores.metrics
        findings: list[BaselineFinding] = []

        # operator drill-down (this part it gets right)
        sat_times: dict[str, list[float]] = {}
        unsat_times: dict[str, list[float]] = {}
        for run in sat:
            for op_id, t in run.operator_times().items():
                sat_times.setdefault(op_id, []).append(t)
        for run in unsat:
            for op_id, t in run.operator_times().items():
                unsat_times.setdefault(op_id, []).append(t)
        slow_ops = []
        for op_id in sat_times:
            if op_id not in unsat_times:
                continue
            score = kde_anomaly(sat_times[op_id], unsat_times[op_id])
            if score >= self.threshold:
                slow_ops.append((op_id, score))
        slow_ops.sort(key=lambda kv: kv[1], reverse=True)
        if slow_ops:
            findings.append(
                BaselineFinding(
                    cause="slow-operators",
                    target=",".join(op for op, _ in slow_ops[:6]),
                    score=slow_ops[0][1],
                    detail=f"{len(slow_ops)} operators slowed down",
                )
            )

        # database-internal hypotheses — emitted with no way to verify them
        def db_score(metric: str) -> float:
            s = _window_values(store, "db", metric, sat)
            u = _window_values(store, "db", metric, unsat)
            if len(s) < 2 or not u:
                return 0.0
            return kde_anomaly(s, u)

        lock_score = db_score("lockWaitTime")
        if lock_score >= self.threshold:
            findings.append(
                BaselineFinding("lock-contention", "db", lock_score, "lock waits elevated")
            )
        io_score = db_score("blocksRead")
        findings.append(
            BaselineFinding(
                cause="suboptimal-buffer-pool",
                target="db",
                score=max(io_score, 0.5),
                detail="operators wait on I/O; buffer pool may be undersized",
            )
        )
        findings.append(
            BaselineFinding(
                cause="suboptimal-plan-choice",
                target=query_name,
                score=0.5,
                detail="plan may be mis-costed for current data",
            )
        )
        return findings


@dataclass
class CorrelationOnlyDiagnoser:
    """Pure machine learning: correlate every metric with the slowdown.

    No dependency pruning, no domain knowledge — every series whose per-run
    means co-move with the query duration is reported.  Event flooding makes
    innocent components (switches, sibling volumes) score highly.
    """

    top_k: int = 10
    min_correlation: float = 0.6

    def diagnose(self, bundle: DiagnosisBundle, query_name: str) -> list[BaselineFinding]:
        sat, unsat = _labelled_runs(bundle, query_name)
        runs = sat + unsat
        if len(runs) < 3:
            return []
        store = bundle.stores.metrics
        durations = [r.duration for r in runs]
        findings = []
        for component_id, metric in store.keys():
            values = _window_values(store, component_id, metric, runs)
            if len(values) != len(runs):
                continue
            coeff = pearson(values, durations)
            if abs(coeff) >= self.min_correlation:
                findings.append(
                    BaselineFinding(
                        cause="correlated-metric",
                        target=f"{component_id}.{metric}",
                        score=abs(coeff),
                        detail=f"r={coeff:+.2f}",
                    )
                )
        findings.sort(key=lambda f: f.score, reverse=True)
        return findings[: self.top_k]
