"""The declarative diagnosis-pipeline engine.

The seed implementation hard-coded the Figure-2 workflow: a module dict, a
``MODULE_ORDER`` tuple, and an ``if not pd.plans_differ`` branch inside
``Diads.diagnose``.  This engine replaces that imperative core with data:

* modules declare ``requires`` (hard upstream results), ``after`` (soft
  ordering), and an optional ``gate(ctx)`` predicate — the plans-differ
  branch is now a gate on CO/CR/DA, not an ``if`` in the driver;
* :class:`DiagnosisPipeline` topologically sorts the modules, evaluates
  gates, cascades skips to hard dependents, and assembles the
  :class:`DiagnosisReport`;
* :meth:`DiagnosisPipeline.diagnose_many` fans a batch of
  :class:`DiagnosisRequest`\\ s (spanning one or many bundles) over a thread
  pool for fleet-scale diagnosis.

:class:`~repro.core.workflow.Diads` and
:class:`~repro.core.workflow.InteractiveSession` are thin facades over this
engine; new modules plug in through :mod:`repro.core.registry` without
touching anything here.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..lab.environment import DiagnosisBundle
from ..lab.scenarios import ScenarioBundle
from ..obs import metrics as obs_metrics
from ..obs import span
from ..runtime import WorkerPool, shared_pool
from .modules.base import DiagnosisContext, ModuleResult
from .registry import DiagnosisModule, ModuleRegistry, default_registry
from .symptoms import RootCauseMatch

__all__ = [
    "DEFAULT_MODULES",
    "DiagnosisPipeline",
    "DiagnosisReport",
    "DiagnosisRequest",
    "PipelineError",
    "RankedCause",
    "default_pipeline",
    "diagnosable_queries",
    "rank_causes",
]


def diagnosable_queries(bundle: "DiagnosisBundle") -> list[str]:
    """Query names in a bundle with both labels, i.e. diagnosable."""
    runs = bundle.stores.runs
    names = sorted({r.query_name for r in runs.runs()})
    return [
        name
        for name in names
        if runs.satisfactory_runs(name) and runs.unsatisfactory_runs(name)
    ]

#: The paper's Figure-2 workflow, by registered module name.
DEFAULT_MODULES = ("PD", "CO", "CR", "DA", "SD", "IA")

_CONFIDENCE_ORDER = {"high": 0, "medium": 1, "low": 2}


class PipelineError(ValueError):
    """Invalid pipeline definition (unknown/duplicate module, cycle, ...)."""


@dataclass(frozen=True)
class RankedCause:
    """A root cause with its confidence and (when computed) impact."""

    match: RootCauseMatch
    impact_pct: float | None = None

    @property
    def display_id(self) -> str:
        return self.match.display_id

    def describe(self) -> str:
        impact = (
            f", impact {self.impact_pct:.1f}%" if self.impact_pct is not None else ""
        )
        return (
            f"{self.match.display_id}: {self.match.confidence.value} confidence "
            f"({self.match.score:.0f}%{impact}) — {self.match.description}"
        )


@dataclass
class DiagnosisReport:
    """Final output of a diagnosis: module results + ranked root causes."""

    query_name: str
    context: DiagnosisContext
    ranked_causes: list[RankedCause] = field(default_factory=list)
    skipped: dict[str, str] = field(default_factory=dict)

    @property
    def top_cause(self) -> RankedCause | None:
        return self.ranked_causes[0] if self.ranked_causes else None

    def cause(self, cause_id: str) -> RankedCause:
        for ranked in self.ranked_causes:
            if ranked.match.cause_id == cause_id:
                return ranked
        raise KeyError(f"cause {cause_id!r} not in report")

    def module_result(self, module: str) -> ModuleResult:
        return self.context.result(module)

    def render(self) -> str:
        from .report import render_diagnosis

        return render_diagnosis(self)


def rank_causes(sd: Any, ia: Any) -> list[RankedCause]:
    """Order SD matches by confidence, then impact, then match score."""
    impacts = {}
    if ia is not None:
        impacts = {(s.cause_id, s.binding): s.impact_pct for s in ia.impacts}
    ranked = [
        RankedCause(match=m, impact_pct=impacts.get((m.cause_id, m.binding)))
        for m in sd.matches
    ]
    ranked.sort(
        key=lambda rc: (
            _CONFIDENCE_ORDER.get(rc.match.confidence.value, 3),
            -(rc.impact_pct if rc.impact_pct is not None else -1.0),
            -rc.match.score,
        )
    )
    return ranked


@dataclass(frozen=True)
class DiagnosisRequest:
    """One unit of batch work: a query in a bundle, plus its thresholds."""

    bundle: DiagnosisBundle
    query_name: str
    threshold: float = 0.8
    correlation_threshold: float = 0.5

    @classmethod
    def of(cls, item: "DiagnosisRequest | tuple | ScenarioBundle") -> "DiagnosisRequest":
        if isinstance(item, cls):
            return item
        if isinstance(item, ScenarioBundle):
            return cls(bundle=item.bundle, query_name=item.query_name)
        bundle, query_name, *rest = item
        if isinstance(bundle, ScenarioBundle):
            bundle = bundle.bundle
        return cls(bundle, query_name, *rest)


class DiagnosisPipeline:
    """Declarative, gate-aware executor for diagnosis modules.

    ``modules`` mixes registered names and ready module instances; names are
    resolved through ``registry`` (the process default unless given).  The
    execution order is the stable topological order induced by each module's
    ``requires``/``after`` declarations, so callers list modules in any
    order and plug-ins land where their dependencies put them.

    Module instances are shared across queries and threads — the protocol
    requires them to be stateless (all per-query state lives on the
    :class:`DiagnosisContext`).
    """

    def __init__(
        self,
        modules: Sequence[str | DiagnosisModule] = DEFAULT_MODULES,
        *,
        registry: ModuleRegistry | None = None,
    ) -> None:
        registry = registry or default_registry()
        instances: dict[str, DiagnosisModule] = {}
        for item in modules:
            module = registry.create(item) if isinstance(item, str) else item
            name = getattr(module, "name", None)
            if not name:
                raise PipelineError(f"module {module!r} has no name")
            if name in instances:
                raise PipelineError(f"module {name!r} listed twice")
            instances[name] = module
        self._modules = instances
        self.order: tuple[str, ...] = self._toposort(instances)

    # -- declaration helpers --------------------------------------------
    @staticmethod
    def requires_of(module: DiagnosisModule) -> tuple[str, ...]:
        return tuple(getattr(module, "requires", ()))

    @staticmethod
    def after_of(module: DiagnosisModule) -> tuple[str, ...]:
        return tuple(getattr(module, "after", ()))

    @staticmethod
    def provides_of(module: DiagnosisModule) -> str:
        return getattr(module, "provides", None) or module.name

    @staticmethod
    def gate_of(module: DiagnosisModule) -> Callable[[DiagnosisContext], bool] | None:
        return getattr(module, "gate", None)

    def module(self, name: str) -> DiagnosisModule:
        try:
            return self._modules[name]
        except KeyError:
            raise PipelineError(f"module {name!r} not in pipeline") from None

    def modules(self) -> dict[str, DiagnosisModule]:
        """Name → instance, in execution order."""
        return {name: self._modules[name] for name in self.order}

    def _toposort(self, instances: dict[str, DiagnosisModule]) -> tuple[str, ...]:
        # requires/after reference *result keys*: a module's ``provides``
        # (defaulting to its name), so drop-in replacements slot into the
        # same dependency edges as the module they replace.
        provider_of: dict[str, str] = {}
        for name, module in instances.items():
            key = self.provides_of(module)
            if key in provider_of:
                raise PipelineError(
                    f"modules {provider_of[key]!r} and {name!r} both provide {key!r}"
                )
            provider_of[key] = name
        self._provider_of = provider_of

        edges: dict[str, set[str]] = {name: set() for name in instances}
        for name, module in instances.items():
            for dep in self.requires_of(module):
                if dep not in provider_of:
                    raise PipelineError(
                        f"module {name!r} requires {dep!r}, which no module in "
                        f"the pipeline provides ({sorted(provider_of)})"
                    )
                edges[name].add(provider_of[dep])
            for dep in self.after_of(module):
                if dep in provider_of:
                    edges[name].add(provider_of[dep])
        # Kahn's algorithm, stable w.r.t. the caller's listing order.
        listed = list(instances)
        order: list[str] = []
        placed: set[str] = set()
        while len(order) < len(listed):
            ready = [
                n for n in listed if n not in placed and edges[n] <= placed
            ]
            if not ready:
                cycle = sorted(set(listed) - placed)
                raise PipelineError(f"dependency cycle among modules {cycle}")
            order.append(ready[0])
            placed.add(ready[0])
        return tuple(order)

    # -- scheduling ------------------------------------------------------
    def pending(
        self,
        ctx: DiagnosisContext,
        executed: Iterable[str] = (),
        bypassed: Iterable[str] = (),
    ) -> list[str]:
        """Modules still due to run, given the context's current state.

        Evaluates gates against ``ctx`` as it stands (a gate whose upstream
        has not produced a result yet passes optimistically) and drops
        modules whose hard requirements were bypassed or gated away.
        """
        executed = set(executed)
        unavailable = set(bypassed)  # module names
        results = set(ctx.results)  # provides keys
        out: list[str] = []
        for name in self.order:
            if name in executed:
                continue
            if name in unavailable:
                continue
            module = self._modules[name]
            if any(
                self._provider_of[dep] in unavailable
                or (dep not in results and self._provider_of[dep] not in out)
                for dep in self.requires_of(module)
            ):
                unavailable.add(name)
                continue
            gate = self.gate_of(module)
            if gate is not None and not gate(ctx):
                unavailable.add(name)
                continue
            out.append(name)
        return out

    def skip_reasons(
        self,
        ctx: DiagnosisContext,
        executed: Iterable[str] = (),
        bypassed: Iterable[str] = (),
    ) -> dict[str, str]:
        """Classify every module that will not run: bypassed/gated/cascaded.

        Mirrors what :meth:`execute` records in batch mode, so interactive
        sessions report the same ``skipped`` bookkeeping.  Modules still
        pending are not skipped and are excluded.
        """
        executed = set(executed)
        bypassed = set(bypassed)
        still_pending = set(self.pending(ctx, executed, bypassed))
        reasons: dict[str, str] = {}
        for name in self.order:
            if name in executed or name in still_pending:
                continue
            if name in bypassed:
                reasons[name] = "bypassed"
                continue
            module = self._modules[name]
            gate = self.gate_of(module)
            if gate is not None and not gate(ctx):
                reasons[name] = "gated"
                continue
            blocker = next(
                (
                    dep
                    for dep in self.requires_of(module)
                    if self._provider_of[dep] in reasons
                ),
                None,
            )
            if blocker is not None:
                provider = self._provider_of[blocker]
                reasons[name] = f"upstream {blocker} unavailable ({reasons[provider]})"
            else:
                reasons[name] = "not executed"
        return reasons

    # -- execution -------------------------------------------------------
    def execute(
        self,
        ctx: DiagnosisContext,
        bypassed: Iterable[str] = (),
    ) -> dict[str, str]:
        """Run the pipeline over ``ctx``; returns {module: reason} skips."""
        skipped: dict[str, str] = {name: "bypassed" for name in bypassed}
        for name in self.order:
            if name in skipped:
                continue
            module = self._modules[name]
            gate = self.gate_of(module)
            if gate is not None and not gate(ctx):
                skipped[name] = "gated"
                continue
            blocker = next(
                (
                    dep
                    for dep in self.requires_of(module)
                    if self._provider_of[dep] in skipped
                ),
                None,
            )
            if blocker is not None:
                provider = self._provider_of[blocker]
                skipped[name] = f"upstream {blocker} unavailable ({skipped[provider]})"
                continue
            with span("pipeline.module", module=name):
                module.run(ctx)
        return skipped

    def report(
        self, ctx: DiagnosisContext, skipped: dict[str, str] | None = None
    ) -> DiagnosisReport:
        """Assemble the report from whatever the context accumulated."""
        sd = ctx.results.get("SD")
        ia = ctx.results.get("IA")
        ranked = rank_causes(sd, ia) if sd is not None else []
        return DiagnosisReport(
            query_name=ctx.query_name,
            context=ctx,
            ranked_causes=ranked,
            skipped=dict(skipped or {}),
        )

    def diagnose(
        self,
        bundle: DiagnosisBundle | ScenarioBundle,
        query_name: str | None = None,
        *,
        threshold: float = 0.8,
        correlation_threshold: float = 0.5,
    ) -> DiagnosisReport:
        """Diagnose one query end-to-end (context → modules → report)."""
        if isinstance(bundle, ScenarioBundle):
            query_name = query_name or bundle.query_name
            bundle = bundle.bundle
        if query_name is None:
            raise ValueError("query_name is required for a raw DiagnosisBundle")
        ctx = DiagnosisContext(
            bundle=bundle,
            query_name=query_name,
            threshold=threshold,
            correlation_threshold=correlation_threshold,
        )
        obs_metrics.add_gauge("pipeline.in_flight", 1)
        try:
            with span("diagnose", query=query_name):
                skipped = self.execute(ctx)
                return self.report(ctx, skipped)
        finally:
            obs_metrics.add_gauge("pipeline.in_flight", -1)
            obs_metrics.inc("pipeline.diagnoses")

    def diagnose_many(
        self,
        requests: Iterable["DiagnosisRequest | tuple | ScenarioBundle"],
        max_workers: int | None = None,
        *,
        pool: "WorkerPool | None" = None,
    ) -> list[DiagnosisReport]:
        """Fleet-scale batch diagnosis over one or many bundles.

        ``requests`` items may be :class:`DiagnosisRequest`\\ s,
        ``(bundle, query_name)`` tuples, or scenario bundles.  Reports come
        back in request order.  Work fans out over the shared runtime worker
        pool with at most ``max_workers`` requests in flight (contexts are
        per-request, module instances are stateless, and the monitoring
        stores synchronise their lazy caches, so requests are independent);
        ``max_workers=1`` forces sequential execution on the calling thread.
        """
        reqs = [DiagnosisRequest.of(item) for item in requests]
        if max_workers is None:
            max_workers = min(8, len(reqs)) or 1
        if max_workers <= 1 or len(reqs) <= 1:
            return [self._diagnose_request(r) for r in reqs]
        pool = pool or shared_pool()
        return pool.map_bounded(self._diagnose_request, reqs, limit=max_workers)

    def submit_many(
        self,
        requests: Iterable["DiagnosisRequest | tuple | ScenarioBundle"],
        *,
        pool: "WorkerPool | None" = None,
    ) -> "list[Future[DiagnosisReport]]":
        """Asynchronous batch submission: one future per request.

        The non-blocking sibling of :meth:`diagnose_many`: work lands on the
        shared runtime pool (or ``pool``) immediately and the caller collects
        results whenever it likes — the fleet supervisor awaits these futures
        while other environments keep advancing, which is what lets a slow
        diagnosis overlap the rest of the fleet instead of barriering it.
        """
        pool = pool or shared_pool()
        return [
            pool.submit(self._diagnose_request, DiagnosisRequest.of(item))
            for item in requests
        ]

    def _diagnose_request(self, req: DiagnosisRequest) -> DiagnosisReport:
        return self.diagnose(
            req.bundle,
            req.query_name,
            threshold=req.threshold,
            correlation_threshold=req.correlation_threshold,
        )


def default_pipeline(
    symptoms_db: Any = None,
    *,
    registry: ModuleRegistry | None = None,
    extra_modules: Sequence[str | DiagnosisModule] = (),
) -> DiagnosisPipeline:
    """The paper's six-module workflow, plus any ``extra_modules``.

    Importing :mod:`repro.core.modules` registers the six Figure-2 modules;
    ``symptoms_db`` configures Module SD.  ``extra_modules`` is the plug-in
    hook: registered names or instances are topologically slotted in.
    """
    from .modules import SymptomsDatabaseModule  # ensure registrations ran

    registry = registry or default_registry()
    modules: list[str | DiagnosisModule] = [
        SymptomsDatabaseModule(symptoms_db) if name == "SD" else name
        for name in DEFAULT_MODULES
    ]
    modules.extend(extra_modules)
    return DiagnosisPipeline(modules, registry=registry)
