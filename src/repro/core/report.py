"""Text renderers: the library's replacement for the DIADS GUI.

The paper's tool has three screens — query selection (Figure 3), APG
visualisation (Figure 6) and interactive workflow execution (Figure 7) — plus
the APG overview diagram of Figure 1.  Each is rendered here as plain text so
examples and benches can reproduce what the screenshots show.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..db.plans import render_plan
from ..monitor.runstore import RunStore
from .apg import AnnotatedPlanGraph

if TYPE_CHECKING:  # pragma: no cover
    from .workflow import DiagnosisReport, InteractiveSession

__all__ = [
    "render_diagnosis",
    "render_query_table",
    "render_apg_overview",
    "render_apg_browser",
    "render_workflow_screen",
]


def _rule(char: str = "-", width: int = 78) -> str:
    return char * width


def render_query_table(runs: RunStore, query_name: str, limit: int | None = None) -> str:
    """Figure 3: the query-selection screen as a table."""
    rows = runs.runs(query_name)
    if limit is not None:
        rows = rows[-limit:]
    lines = [
        f"Query executions: {query_name}",
        _rule("="),
        f"{'Run':<16} {'Start':>10} {'End':>10} {'Duration':>12} {'Unsatisfactory':>15}",
        _rule(),
    ]
    for run in rows:
        mark = "[x]" if run.satisfactory is False else ("[ ]" if run.satisfactory else "[ ]")
        lines.append(
            f"{run.run_id:<16} {run.start_time:>10.0f} {run.end_time:>10.0f} "
            f"{run.duration:>10.1f} s {mark:>12}"
        )
    lines.append(_rule())
    lines.append(f"{len(rows)} executions shown")
    return "\n".join(lines)


def render_apg_overview(apg: AnnotatedPlanGraph) -> str:
    """Figure 1: the APG — plan, storage mapping, example dependency paths."""
    lines = [
        f"Annotated Plan Graph — query {apg.query_name!r}",
        _rule("="),
        f"operators: {apg.operator_count} ({apg.leaf_count} leaves), "
        f"volumes used: {', '.join(sorted(apg.volumes_used()))}",
        "",
        "Plan:",
        render_plan(
            apg.plan,
            annotate=lambda op: (
                f"vol {apg.volume_of_operator(op.op_id)}" if op.is_leaf and op.table else ""
            ),
        ),
        "",
        "Tablespace → volume mapping:",
    ]
    for ts in sorted(apg.catalog.tablespaces, key=lambda t: t.name):
        tables = [t.name for t in apg.catalog.tables if t.tablespace == ts.name]
        lines.append(f"  {ts.name} -> {ts.volume_id}  ({', '.join(sorted(tables))})")
    lines.append("")
    lines.append("Storage layout:")
    for pool in sorted(apg.topology.pools, key=lambda p: p.component_id):
        disks = ", ".join(d.component_id for d in apg.topology.disks_of_pool(pool.component_id))
        volumes = ", ".join(
            v.component_id for v in apg.topology.volumes_of_pool(pool.component_id)
        )
        lines.append(f"  {pool.component_id} [{pool.raid_level}] disks: {disks} | volumes: {volumes}")
    # Example dependency path (the paper walks O23's).
    example = next((op.op_id for op in apg.plan.leaves() if op.table), None)
    if example:
        inner = ", ".join(sorted(apg.inner_path(example)))
        outer = ", ".join(sorted(apg.outer_path(example))) or "(none)"
        lines += [
            "",
            f"Dependency paths of {example}:",
            f"  inner: {inner}",
            f"  outer: {outer}",
        ]
    return "\n".join(lines)


def render_apg_browser(
    apg: AnnotatedPlanGraph, op_id: str, run_index: int = -1
) -> str:
    """Figure 6: APG tree on the left, component metric table on the right
    (here: stacked) for one selected operator and one execution."""
    run = apg.runs[run_index]
    annotation = apg.annotate(op_id, run)
    lines = [
        f"APG browser — operator {op_id}, run {run.run_id}",
        _rule("="),
        render_plan(
            apg.plan,
            annotate=lambda op: ">>> selected" if op.op_id == op_id else "",
        ),
        "",
        f"Window: [{annotation.start:.0f}, {annotation.stop:.0f}] "
        f"({annotation.running_time:.2f} s)   rows est/actual: "
        f"{annotation.estimated_rows:.0f}/{annotation.actual_rows:.0f}",
        "",
        "Component annotations (monitored means over the window):",
    ]
    for component_id, metrics in sorted(annotation.component_metrics.items()):
        rendered = ", ".join(f"{k}={v:.2f}" for k, v in sorted(metrics.items()))
        lines.append(f"  {component_id:<12} {rendered}")
    return "\n".join(lines)


def render_workflow_screen(session: "InteractiveSession") -> str:
    """Figure 7: module buttons with status + the last result panel."""
    lines = ["DIADS workflow execution", _rule("=")]
    buttons = []
    for name in session.pipeline.order:
        if name in session.executed:
            status = "done"
        elif name in session.bypassed:
            status = "bypassed"
        elif session.pending and name == session.pending[0]:
            status = "NEXT"
        elif name in session.pending:
            status = "disabled"
        else:
            status = "skipped"
        buttons.append(f"[{name}:{status}]")
    lines.append(" ".join(buttons))
    lines.append(_rule())
    if session.executed:
        last = session.executed[-1]
        lines.append(f"Result panel — {last}:")
        lines.append(f"  {session.ctx.result(last).describe()}")
    else:
        lines.append("Result panel — (nothing executed yet)")
    return "\n".join(lines)


def render_diagnosis(report: "DiagnosisReport") -> str:
    """The final diagnosis report (batch mode's output)."""
    ctx = report.context
    lines = [
        f"DIADS diagnosis — query {report.query_name!r}",
        _rule("="),
        f"runs: {len(ctx.sat_runs)} satisfactory / {len(ctx.unsat_runs)} unsatisfactory; "
        f"slowdown onset t={ctx.onset:.0f}",
        "",
        "Module results:",
    ]
    for name in ("PD", "CO", "CR", "DA", "SD", "IA"):
        result = ctx.results.get(name)
        lines.append(f"  {result.describe() if result else f'[{name}] (not run)'}")
    sd = ctx.results.get("SD")
    if sd is not None and getattr(sd, "symptoms", None):
        lines += ["", "Symptoms observed:"]
        for symptom in sd.symptoms:
            when = f" (t={symptom.time:.0f})" if symptom.time is not None else ""
            lines.append(f"  - {symptom.sid}{when}: {symptom.description}")
    lines += ["", "Root causes (ranked):"]
    if not report.ranked_causes:
        lines.append("  (none)")
    for i, ranked in enumerate(report.ranked_causes, start=1):
        if ranked.match.confidence.value == "low" and i > 5:
            remaining = len(report.ranked_causes) - i + 1
            lines.append(f"  ... {remaining} more low-confidence causes omitted")
            break
        lines.append(f"  {i}. {ranked.describe()}")
    return "\n".join(lines)
