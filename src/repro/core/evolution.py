"""Self-evolving symptoms database: ML proposes, the expert disposes.

Section 7: *"An interesting course of future work is to enhance this
relationship with machine learning techniques contributing towards
identifying potential symptoms which can be checked by an expert and added to
the symptoms database.  Considering that a symptoms database may never be
complete, this provides a self-evolving mechanism."*

When a diagnosis ends without a high-confidence match, the observed symptom
combination is itself the candidate: :func:`suggest_entry` turns it into a
draft :class:`RootCauseEntry` (weights spread over the observed symptoms,
negative conditions for the conspicuously absent ones) for an administrator
to review, rename, and add.  :func:`suggest_from_reports` batches this over
many diagnoses and merges recurring patterns.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass

from .modules.symptoms_db import SDResult
from .symptoms import Condition, RootCauseEntry, Symptom
from .workflow import DiagnosisReport

__all__ = ["SuggestedEntry", "suggest_entry", "suggest_from_reports"]

#: Symptoms that are diagnostic on their own; event-propagation noise like
#: "operators-anomalous" carries little identifying power and gets a lower
#: weight share.
_STRONG_PREFIXES = (
    "volume-metric-anomaly",
    "new-volume-on-shared-disks",
    "external-workload-on-shared-disks",
    "raid-rebuild-on-disks-of",
    "lock-wait-anomaly",
    "record-count-anomaly",
    "server-cpu-anomaly",
    "buffer-hit-drop",
    "plan-cause-confirmed",
)

#: Absences worth encoding when no plan change / data change was seen.
_NEGATIVE_CANDIDATES = ("plan-changed", "record-count-anomaly")


@dataclass(frozen=True)
class SuggestedEntry:
    """A draft codebook entry awaiting expert review."""

    entry: RootCauseEntry
    support: int  # how many diagnoses exhibited this pattern
    rationale: str

    def describe(self) -> str:
        conditions = "; ".join(c.describe() for c in self.entry.conditions)
        return (
            f"{self.entry.cause_id} (support {self.support}): {conditions}\n"
            f"  rationale: {self.rationale}"
        )


def _generalise(sid: str) -> str:
    """Replace a concrete volume binding with the {V} placeholder."""
    if ":" in sid:
        prefix, suffix = sid.split(":", 1)
        if suffix.startswith("V") or suffix.startswith("vol"):
            return f"{prefix}:{{V}}"
    return sid


def _pattern_of(sd: SDResult) -> tuple[str, ...]:
    present = sorted({_generalise(s.sid) for s in sd.symptoms})
    return tuple(present)


def suggest_entry(report: DiagnosisReport, min_support: int = 1) -> SuggestedEntry | None:
    """Draft one candidate entry from a single inconclusive diagnosis.

    Returns None when the diagnosis already has a high-confidence cause (the
    codebook covered it) or too few symptoms were observed.
    """
    sd: SDResult | None = report.context.results.get("SD")  # type: ignore[assignment]
    if sd is None:
        return None
    if any(m.confidence.value == "high" for m in sd.matches):
        return None
    pattern = _pattern_of(sd)
    strong = [s for s in pattern if s.startswith(_STRONG_PREFIXES)]
    weak = [s for s in pattern if not s.startswith(_STRONG_PREFIXES)]
    if not strong:
        return None
    absent = [n for n in _NEGATIVE_CANDIDATES if _generalise(n) not in pattern]

    conditions = _weight_conditions(strong, weak, absent)
    digest = hashlib.blake2b("|".join(pattern).encode(), digest_size=4).hexdigest()
    per_volume = any("{V}" in c.pattern for c in conditions)
    entry = RootCauseEntry(
        cause_id=f"candidate-{digest}",
        description="Auto-suggested root cause"
        + (" affecting volume {V}" if per_volume else "")
        + " — review before adoption",
        conditions=tuple(conditions),
        per_volume=per_volume,
        kind="candidate",
    )
    return SuggestedEntry(
        entry=entry,
        support=min_support,
        rationale=f"no existing entry reached high confidence; observed: {', '.join(pattern)}",
    )


def _weight_conditions(
    strong: list[str], weak: list[str], absent: list[str]
) -> list[Condition]:
    """Spread 100% over the conditions: strong symptoms carry 70%."""
    conditions: list[Condition] = []
    budget_strong = 70.0 if (weak or absent) else 100.0
    per_strong = budget_strong / len(strong)
    for sid in strong:
        conditions.append(Condition(sid, per_strong))
    remaining = 100.0 - budget_strong
    others = len(weak) + len(absent)
    if others:
        per_other = remaining / others
        for sid in weak:
            conditions.append(Condition(sid, per_other))
        for sid in absent:
            conditions.append(Condition(sid, per_other, present=False))
    return conditions


def suggest_from_reports(
    reports: list[DiagnosisReport], min_support: int = 2
) -> list[SuggestedEntry]:
    """Merge suggestions across diagnoses; recurring patterns rank first."""
    patterns: Counter[tuple[str, ...]] = Counter()
    exemplar: dict[tuple[str, ...], DiagnosisReport] = {}
    for report in reports:
        sd = report.context.results.get("SD")
        if sd is None:
            continue
        if any(m.confidence.value == "high" for m in sd.matches):
            continue
        key = _pattern_of(sd)
        patterns[key] += 1
        exemplar.setdefault(key, report)
    out: list[SuggestedEntry] = []
    for pattern, count in patterns.most_common():
        if count < min_support:
            continue
        suggestion = suggest_entry(exemplar[pattern], min_support=count)
        if suggestion is not None:
            out.append(suggestion)
    return out
