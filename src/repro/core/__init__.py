"""DIADS core: Annotated Plan Graphs and the integrated diagnosis workflow."""

from .apg import AnnotatedPlanGraph, OperatorAnnotation, build_apg
from .dependency import DependencyPaths, compute_dependency_paths
from .symptoms import (
    Condition,
    Confidence,
    RootCauseEntry,
    RootCauseMatch,
    Symptom,
    SymptomsDatabase,
    default_symptoms_database,
)
from .modules import (
    COResult,
    CRResult,
    DAResult,
    DiagnosisContext,
    IAResult,
    ImpactScore,
    MetricFinding,
    ModuleResult,
    PDResult,
    PlanChangeCause,
    extract_symptoms,
    self_times,
)
from .workflow import Diads, DiagnosisReport, InteractiveSession, MODULE_ORDER, RankedCause
from .report import (
    render_apg_browser,
    render_apg_overview,
    render_diagnosis,
    render_query_table,
    render_workflow_screen,
)
from .baselines import (
    BaselineFinding,
    CorrelationOnlyDiagnoser,
    DbOnlyDiagnoser,
    SanOnlyDiagnoser,
)
from .whatif import WhatIfAnalyzer, WhatIfLoadOutcome, WhatIfPlanOutcome
from .selfheal import AppliedFix, Fix, SelfHealer
from .evolution import SuggestedEntry, suggest_entry, suggest_from_reports
from .evaluation import ScenarioEvaluation, evaluate_bundle, evaluate_scenario
from .serialize import apg_to_dict, plan_from_dict, plan_to_dict, report_to_dict

__all__ = [
    "AnnotatedPlanGraph",
    "OperatorAnnotation",
    "build_apg",
    "DependencyPaths",
    "compute_dependency_paths",
    "Symptom",
    "Condition",
    "RootCauseEntry",
    "RootCauseMatch",
    "SymptomsDatabase",
    "Confidence",
    "default_symptoms_database",
    "DiagnosisContext",
    "ModuleResult",
    "PDResult",
    "PlanChangeCause",
    "COResult",
    "CRResult",
    "DAResult",
    "MetricFinding",
    "IAResult",
    "ImpactScore",
    "extract_symptoms",
    "self_times",
    "Diads",
    "DiagnosisReport",
    "InteractiveSession",
    "RankedCause",
    "MODULE_ORDER",
    "render_diagnosis",
    "render_query_table",
    "render_apg_overview",
    "render_apg_browser",
    "render_workflow_screen",
    "BaselineFinding",
    "SanOnlyDiagnoser",
    "DbOnlyDiagnoser",
    "CorrelationOnlyDiagnoser",
    "WhatIfAnalyzer",
    "WhatIfPlanOutcome",
    "WhatIfLoadOutcome",
    "Fix",
    "AppliedFix",
    "SelfHealer",
    "SuggestedEntry",
    "suggest_entry",
    "suggest_from_reports",
    "ScenarioEvaluation",
    "evaluate_bundle",
    "evaluate_scenario",
    "plan_to_dict",
    "plan_from_dict",
    "apg_to_dict",
    "report_to_dict",
]
