"""The DIADS diagnosis workflow: batch and interactive facades (Figure 2).

Both facades sit on top of the declarative engine in
:mod:`repro.core.pipeline`: the module set, its ordering, and the
plans-differ branch all come from the modules' own ``requires``/``after``/
``gate`` declarations rather than imperative code here.

Batch mode (:meth:`Diads.diagnose`) runs the pipeline and returns a
:class:`DiagnosisReport`; :meth:`Diads.diagnose_many` fans a batch of
queries over a thread pool.  Interactive mode exposes the same pipeline one
step at a time: after each module the administrator can inspect the result,
*edit* it (e.g. remove an operator they know is harmless from COS), *re-run*
a module, or *bypass* one — mirroring the tool's workflow-execution screen
(Figure 7).
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from ..lab.environment import DiagnosisBundle
from ..lab.scenarios import ScenarioBundle
from .modules.base import DiagnosisContext, ModuleResult
from .pipeline import (
    DEFAULT_MODULES,
    DiagnosisPipeline,
    DiagnosisReport,
    DiagnosisRequest,
    RankedCause,
    default_pipeline,
    diagnosable_queries,
    rank_causes,
)
from .registry import DiagnosisModule, ModuleRegistry
from .symptoms import SymptomsDatabase

__all__ = ["RankedCause", "DiagnosisReport", "Diads", "InteractiveSession", "MODULE_ORDER"]

#: Execution order of the paper's workflow.  The engine derives it from the
#: module declarations at pipeline construction; tests assert this constant
#: matches ``default_pipeline().order``, so importing :mod:`repro` stays
#: free of module instantiation side effects.
MODULE_ORDER = DEFAULT_MODULES

_rank = rank_causes  # back-compat alias (pre-engine name)


class Diads:
    """The integrated diagnosis tool over one monitoring bundle.

    A thin facade over :class:`DiagnosisPipeline`: it holds the bundle and
    thresholds, builds per-query contexts, and caches finished reports.
    Custom module sets plug in via ``modules`` (registered names or
    instances — see :func:`repro.core.registry.register_module`) or a
    ready-made ``pipeline``.
    """

    def __init__(
        self,
        bundle: DiagnosisBundle,
        threshold: float = 0.8,
        correlation_threshold: float = 0.5,
        symptoms_db: SymptomsDatabase | None = None,
        *,
        modules: Sequence[str | DiagnosisModule] | None = None,
        registry: ModuleRegistry | None = None,
        pipeline: DiagnosisPipeline | None = None,
    ) -> None:
        self.bundle = bundle
        self.threshold = threshold
        self.correlation_threshold = correlation_threshold
        self._registry = registry
        self._default_built = pipeline is None and modules is None
        self._symptoms_db = symptoms_db
        if pipeline is None:
            if modules is None:
                pipeline = default_pipeline(symptoms_db, registry=registry)
            else:
                # Honour the symptoms_db argument when SD is named literally.
                from .modules import SymptomsDatabaseModule

                resolved = [
                    SymptomsDatabaseModule(symptoms_db) if m == "SD" else m
                    for m in modules
                ]
                pipeline = DiagnosisPipeline(resolved, registry=registry)
        self.pipeline = pipeline
        # guarded-by: _cache_lock
        self._reports: dict[tuple, DiagnosisReport] = {}
        self._cache_lock = threading.Lock()
        from ..devtools.sanitize import instrument_guarded

        instrument_guarded(self)  # no-op unless REPRO_SANITIZE=1

    @property
    def symptoms_db(self) -> SymptomsDatabase | None:
        return self._symptoms_db

    @symptoms_db.setter
    def symptoms_db(self, value: SymptomsDatabase | None) -> None:
        """Swap the symptoms database; rebuilds the (default) pipeline."""
        if not self._default_built:
            raise ValueError(
                "cannot swap symptoms_db on a Diads built with a custom "
                "modules=/pipeline= — construct a new Diads (or a new "
                "SymptomsDatabaseModule) instead"
            )
        self._symptoms_db = value
        self.pipeline = default_pipeline(value, registry=self._registry)
        with self._cache_lock:
            self._reports.clear()

    @classmethod
    def from_bundle(cls, bundle: DiagnosisBundle | ScenarioBundle, **kwargs) -> "Diads":
        if isinstance(bundle, ScenarioBundle):
            return cls(bundle.bundle, **kwargs)
        return cls(bundle, **kwargs)

    # ------------------------------------------------------------------
    def context(self, query_name: str) -> DiagnosisContext:
        return DiagnosisContext(
            bundle=self.bundle,
            query_name=query_name,
            threshold=self.threshold,
            correlation_threshold=self.correlation_threshold,
        )

    def modules(self) -> dict[str, DiagnosisModule]:
        """The pipeline's module instances, in execution order."""
        return self.pipeline.modules()

    def queries(self) -> list[str]:
        """Query names in the bundle with both labels, i.e. diagnosable."""
        return diagnosable_queries(self.bundle)

    def _cache_key(self, query_name: str) -> tuple:
        return (query_name, self.threshold, self.correlation_threshold)

    # ------------------------------------------------------------------
    def diagnose(self, query_name: str, *, refresh: bool = False) -> DiagnosisReport:
        """Batch mode: run the full workflow and rank root causes.

        Reports are cached per query (the monitoring bundle is immutable
        during diagnosis); pass ``refresh=True`` to re-run the pipeline.
        """
        key = self._cache_key(query_name)
        if not refresh:
            with self._cache_lock:
                cached = self._reports.get(key)
            if cached is not None:
                return cached
        report = self.pipeline.diagnose(
            self.bundle,
            query_name,
            threshold=self.threshold,
            correlation_threshold=self.correlation_threshold,
        )
        with self._cache_lock:
            self._reports[key] = report
        return report

    def diagnose_many(
        self,
        query_names: Sequence[str] | None = None,
        max_workers: int | None = None,
    ) -> list[DiagnosisReport]:
        """Diagnose many queries of this bundle concurrently.

        ``query_names`` defaults to every diagnosable query in the bundle
        (see :meth:`queries`).  Results come back in input order and share
        the per-query cache :meth:`diagnose` uses — cached queries are not
        re-diagnosed.
        """
        names = list(query_names) if query_names is not None else self.queries()
        with self._cache_lock:
            cached = {
                name: self._reports.get(self._cache_key(name)) for name in names
            }
        missing = [name for name in names if cached[name] is None]
        fresh = self.pipeline.diagnose_many(
            [
                DiagnosisRequest(
                    bundle=self.bundle,
                    query_name=name,
                    threshold=self.threshold,
                    correlation_threshold=self.correlation_threshold,
                )
                for name in missing
            ],
            max_workers=max_workers,
        )
        with self._cache_lock:
            for name, report in zip(missing, fresh):
                cached[name] = report
                self._reports[self._cache_key(name)] = report
        return [cached[name] for name in names]

    def interactive(self, query_name: str) -> "InteractiveSession":
        """Interactive mode: step through modules, editing results."""
        return InteractiveSession(self, query_name)


class InteractiveSession:
    """Step-wise workflow execution with result editing (Figure 7).

    The first pass must follow the pipeline order; afterwards any module can
    be re-executed in any order (matching the tool's behaviour: "Only the
    first execution of the modules should be in order").  What is *pending*
    is recomputed from the pipeline's declarations after every step, so
    gates (e.g. the plans-differ branch) and bypasses reshape the remaining
    schedule exactly as they do in batch mode.
    """

    def __init__(self, diads: Diads, query_name: str) -> None:
        self.diads = diads
        self.query_name = query_name
        self.ctx = diads.context(query_name)
        self.pipeline = diads.pipeline
        self._modules = self.pipeline.modules()
        self.executed: list[str] = []
        self.bypassed: set[str] = set()

    # -- progression ----------------------------------------------------
    @property
    def pending(self) -> list[str]:
        return self.pipeline.pending(self.ctx, self.executed, self.bypassed)

    @property
    def finished(self) -> bool:
        return not self.pending

    def run_next(self) -> ModuleResult | None:
        """Execute the next pending module; None when finished."""
        pending = self.pending
        if not pending:
            return None
        name = pending[0]
        result = self._modules[name].run(self.ctx)
        self.executed.append(name)
        return result

    def run_all(self) -> None:
        while not self.finished:
            self.run_next()

    # -- administrator interventions --------------------------------------
    def rerun(self, module: str) -> ModuleResult:
        """Re-execute an already-run module (any order allowed after 1st run)."""
        if module not in self.executed:
            raise ValueError(f"module {module!r} has not been run yet")
        return self._modules[module].run(self.ctx)

    def edit(self, module: str, editor: Callable[[ModuleResult], None]) -> ModuleResult:
        """Let the administrator amend a module result before the next step."""
        result = self.ctx.result(module)
        editor(result)
        return result

    def bypass(self, module: str) -> None:
        """Skip a module entirely (its consumers see no result)."""
        if module in self.executed:
            raise ValueError(f"module {module!r} already executed")
        self.bypassed.add(module)

    # -- output --------------------------------------------------------------
    def report(self) -> DiagnosisReport:
        skipped = self.pipeline.skip_reasons(self.ctx, self.executed, self.bypassed)
        return self.pipeline.report(self.ctx, skipped)
