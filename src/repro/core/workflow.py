"""The DIADS diagnosis workflow: batch and interactive execution (Figure 2).

Batch mode runs every module in order and returns a
:class:`DiagnosisReport`.  Interactive mode exposes the same pipeline one
step at a time: after each module the administrator can inspect the result,
*edit* it (e.g. remove an operator they know is harmless from COS), *re-run*
a module, or *bypass* one — mirroring the tool's workflow-execution screen
(Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..lab.environment import DiagnosisBundle
from ..lab.scenarios import ScenarioBundle
from .modules.base import DiagnosisContext, ModuleResult
from .modules.correlated_operators import CorrelatedOperatorsModule
from .modules.dependency_analysis import DependencyAnalysisModule
from .modules.impact import IAResult, ImpactAnalysisModule
from .modules.plan_diff import PDResult, PlanDiffModule
from .modules.record_counts import RecordCountsModule
from .modules.symptoms_db import SDResult, SymptomsDatabaseModule
from .symptoms import RootCauseMatch, SymptomsDatabase

__all__ = ["RankedCause", "DiagnosisReport", "Diads", "InteractiveSession", "MODULE_ORDER"]

MODULE_ORDER = ("PD", "CO", "CR", "DA", "SD", "IA")

_CONFIDENCE_ORDER = {"high": 0, "medium": 1, "low": 2}


@dataclass(frozen=True)
class RankedCause:
    """A root cause with its confidence and (when computed) impact."""

    match: RootCauseMatch
    impact_pct: float | None = None

    @property
    def display_id(self) -> str:
        return self.match.display_id

    def describe(self) -> str:
        impact = (
            f", impact {self.impact_pct:.1f}%" if self.impact_pct is not None else ""
        )
        return (
            f"{self.match.display_id}: {self.match.confidence.value} confidence "
            f"({self.match.score:.0f}%{impact}) — {self.match.description}"
        )


@dataclass
class DiagnosisReport:
    """Final output of a diagnosis: module results + ranked root causes."""

    query_name: str
    context: DiagnosisContext
    ranked_causes: list[RankedCause] = field(default_factory=list)

    @property
    def top_cause(self) -> RankedCause | None:
        return self.ranked_causes[0] if self.ranked_causes else None

    def cause(self, cause_id: str) -> RankedCause:
        for ranked in self.ranked_causes:
            if ranked.match.cause_id == cause_id:
                return ranked
        raise KeyError(f"cause {cause_id!r} not in report")

    def module_result(self, module: str) -> ModuleResult:
        return self.context.result(module)

    def render(self) -> str:
        from .report import render_diagnosis

        return render_diagnosis(self)


def _rank(sd: SDResult, ia: IAResult | None) -> list[RankedCause]:
    impacts = {}
    if ia is not None:
        impacts = {(s.cause_id, s.binding): s.impact_pct for s in ia.impacts}
    ranked = [
        RankedCause(match=m, impact_pct=impacts.get((m.cause_id, m.binding)))
        for m in sd.matches
    ]
    ranked.sort(
        key=lambda rc: (
            _CONFIDENCE_ORDER.get(rc.match.confidence.value, 3),
            -(rc.impact_pct if rc.impact_pct is not None else -1.0),
            -rc.match.score,
        )
    )
    return ranked


class Diads:
    """The integrated diagnosis tool over one monitoring bundle."""

    def __init__(
        self,
        bundle: DiagnosisBundle,
        threshold: float = 0.8,
        correlation_threshold: float = 0.5,
        symptoms_db: SymptomsDatabase | None = None,
    ) -> None:
        self.bundle = bundle
        self.threshold = threshold
        self.correlation_threshold = correlation_threshold
        self.symptoms_db = symptoms_db

    @classmethod
    def from_bundle(cls, bundle: DiagnosisBundle | ScenarioBundle, **kwargs) -> "Diads":
        if isinstance(bundle, ScenarioBundle):
            return cls(bundle.bundle, **kwargs)
        return cls(bundle, **kwargs)

    # ------------------------------------------------------------------
    def context(self, query_name: str) -> DiagnosisContext:
        return DiagnosisContext(
            bundle=self.bundle,
            query_name=query_name,
            threshold=self.threshold,
            correlation_threshold=self.correlation_threshold,
        )

    def modules(self) -> dict[str, object]:
        return {
            "PD": PlanDiffModule(),
            "CO": CorrelatedOperatorsModule(),
            "CR": RecordCountsModule(),
            "DA": DependencyAnalysisModule(),
            "SD": SymptomsDatabaseModule(self.symptoms_db),
            "IA": ImpactAnalysisModule(),
        }

    def diagnose(self, query_name: str) -> DiagnosisReport:
        """Batch mode: run the full workflow and rank root causes."""
        ctx = self.context(query_name)
        modules = self.modules()
        pd: PDResult = modules["PD"].run(ctx)  # type: ignore[union-attr]
        if not pd.plans_differ:
            modules["CO"].run(ctx)  # type: ignore[union-attr]
            modules["CR"].run(ctx)  # type: ignore[union-attr]
            modules["DA"].run(ctx)  # type: ignore[union-attr]
        sd: SDResult = modules["SD"].run(ctx)  # type: ignore[union-attr]
        ia: IAResult = modules["IA"].run(ctx)  # type: ignore[union-attr]
        return DiagnosisReport(
            query_name=query_name,
            context=ctx,
            ranked_causes=_rank(sd, ia),
        )

    def interactive(self, query_name: str) -> "InteractiveSession":
        """Interactive mode: step through modules, editing results."""
        return InteractiveSession(self, query_name)


class InteractiveSession:
    """Step-wise workflow execution with result editing (Figure 7).

    The first pass must follow the module order; afterwards any module can be
    re-executed in any order (matching the tool's behaviour: "Only the first
    execution of the modules should be in order").
    """

    def __init__(self, diads: Diads, query_name: str) -> None:
        self.diads = diads
        self.query_name = query_name
        self.ctx = diads.context(query_name)
        self._modules = diads.modules()
        self.executed: list[str] = []
        self.bypassed: set[str] = set()

    # -- progression ----------------------------------------------------
    @property
    def pending(self) -> list[str]:
        skip = set(self.executed) | self.bypassed
        order = list(MODULE_ORDER)
        pd: PDResult | None = self.ctx.results.get("PD")  # type: ignore[assignment]
        if pd is not None and pd.plans_differ:
            # plan-change branch: statistical drill-down is not applicable
            order = ["PD", "SD", "IA"]
        return [m for m in order if m not in skip]

    @property
    def finished(self) -> bool:
        return not self.pending

    def run_next(self) -> ModuleResult | None:
        """Execute the next pending module; None when finished."""
        if self.finished:
            return None
        name = self.pending[0]
        result = self._modules[name].run(self.ctx)  # type: ignore[union-attr]
        self.executed.append(name)
        return result

    def run_all(self) -> None:
        while not self.finished:
            self.run_next()

    # -- administrator interventions --------------------------------------
    def rerun(self, module: str) -> ModuleResult:
        """Re-execute an already-run module (any order allowed after 1st run)."""
        if module not in self.executed:
            raise ValueError(f"module {module!r} has not been run yet")
        return self._modules[module].run(self.ctx)  # type: ignore[union-attr]

    def edit(self, module: str, editor: Callable[[ModuleResult], None]) -> ModuleResult:
        """Let the administrator amend a module result before the next step."""
        result = self.ctx.result(module)
        editor(result)
        return result

    def bypass(self, module: str) -> None:
        """Skip a module entirely (its consumers see no result)."""
        if module in self.executed:
            raise ValueError(f"module {module!r} already executed")
        self.bypassed.add(module)

    # -- output --------------------------------------------------------------
    def report(self) -> DiagnosisReport:
        sd: SDResult | None = self.ctx.results.get("SD")  # type: ignore[assignment]
        ia: IAResult | None = self.ctx.results.get("IA")  # type: ignore[assignment]
        ranked = _rank(sd, ia) if sd is not None else []
        return DiagnosisReport(
            query_name=self.query_name, context=self.ctx, ranked_causes=ranked
        )
