"""Dependency-path computation: which components can affect an operator.

Section 3 of the paper: *"the dependency path of an operator O is the set of
physical (e.g., CPU, database cache, disk) and logical (e.g., volume,
workload) system components whose performance can impact O's performance"*.

* The **inner** path affects O directly: for a leaf operator it is the
  end-to-end I/O chain (server → HBA → fabric → subsystem → pool → volume →
  disks) of the tablespace its table lives on, plus the database instance
  itself (buffer cache, lock manager, CPU).
* The **outer** path affects O indirectly, through components on the inner
  path: volumes sharing disks with O's volume (and, transitively, the
  workloads on them).

Interior operators inherit the union of their children's paths — a slow scan
propagates upward, which is exactly the event flooding DIADS must see
through.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..db.catalog import Catalog
from ..db.plans import PlanOperator
from ..monitor.collector import DB_COMPONENT
from ..san.topology import SanTopology, TopologyError

__all__ = ["DependencyPaths", "compute_dependency_paths"]


@dataclass(frozen=True)
class DependencyPaths:
    """Inner/outer component-id sets for one operator."""

    inner: frozenset[str] = frozenset()
    outer: frozenset[str] = frozenset()

    @property
    def all_components(self) -> frozenset[str]:
        return self.inner | self.outer

    def union(self, other: "DependencyPaths") -> "DependencyPaths":
        return DependencyPaths(
            inner=self.inner | other.inner, outer=self.outer | other.outer
        )


def _leaf_paths(
    op: PlanOperator,
    catalog: Catalog,
    topology: SanTopology,
    server_id: str,
) -> DependencyPaths:
    assert op.table is not None
    volume_id = catalog.volume_of_table(op.table)
    try:
        chain = topology.io_path(server_id, volume_id)
    except TopologyError:
        # Fabric not wired (minimal test topologies): fall back to the
        # storage-side chain only.
        pool = topology.pool_of_volume(volume_id)
        chain = [pool, topology.get_volume(volume_id)] + list(
            topology.disks_of_volume(volume_id)
        )
    inner = {c.component_id for c in chain} | {server_id, DB_COMPONENT}
    outer = {
        v.component_id for v in topology.volumes_sharing_disks(volume_id)
    }
    return DependencyPaths(inner=frozenset(inner), outer=frozenset(outer))


def compute_dependency_paths(
    plan: PlanOperator,
    catalog: Catalog,
    topology: SanTopology,
    server_id: str,
) -> dict[str, DependencyPaths]:
    """Dependency paths for every operator of ``plan``.

    Returns op_id → :class:`DependencyPaths`.  Computed bottom-up so interior
    operators union their children's paths.
    """
    paths: dict[str, DependencyPaths] = {}

    def visit(op: PlanOperator) -> DependencyPaths:
        if op.is_leaf and op.table:
            result = _leaf_paths(op, catalog, topology, server_id)
        else:
            result = DependencyPaths(
                inner=frozenset({server_id, DB_COMPONENT}), outer=frozenset()
            )
            for child in op.children:
                result = result.union(visit(child))
        paths[op.op_id] = result
        return result

    visit(plan)
    return paths
