"""Module IA — Impact Analysis.

For each root cause R that survived Module SD, compute an *impact score*:
the percentage of the query slowdown attributable to R individually.  The
primary implementation is the paper's "inverse dependency analysis":

1. start from R and find the components it affects, ``comp(R)``;
2. find the operators whose performance those components affect, ``op(R)``;
3. impact = extra running time of ``op(R)`` relative to the extra plan
   running time, where *extra* is the difference of means between
   unsatisfactory and satisfactory runs.

Operator "extra time" uses **exclusive (self) times** — reconstructed from
the monitored start/stop intervals as ``inclusive − Σ children inclusive`` —
so an ancestor chain does not double-count its slow leaf.

For volume-contention causes the score is additionally weighted by how much
the volume's response time actually moved: a cause whose volume latency is
flat cannot have produced the extra time its operators show (that extra I/O
time came from *more reads*, i.e. a data change — this is how IA rules out
volume contention in scenario 3 and separates concurrent problems in
scenario 4).  This refinement corresponds to the paper's second IA
implementation, which leverages cost models to attribute time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...db.executor import QueryRun
from ...db.plans import PlanOperator
from ..registry import register_module
from ..symptoms import RootCauseMatch
from .base import DiagnosisContext, ModuleResult
from .correlated_operators import COResult
from .dependency_analysis import DAResult
from .record_counts import CRResult
from .symptoms_db import SDResult

__all__ = ["ImpactScore", "IAResult", "ImpactAnalysisModule", "self_times"]


def self_times(plan: PlanOperator, run: QueryRun) -> dict[str, float]:
    """Exclusive per-operator times from monitored inclusive intervals."""
    out: dict[str, float] = {}
    for op in plan.walk():
        if op.op_id not in run.operators:
            continue
        inclusive = run.operators[op.op_id].inclusive_time
        children = sum(
            run.operators[c.op_id].inclusive_time
            for c in op.children
            if c.op_id in run.operators
        )
        out[op.op_id] = max(inclusive - children, 0.0)
    return out


@dataclass(frozen=True)
class ImpactScore:
    """Impact of one root cause on the slowdown."""

    cause_id: str
    binding: str | None
    impact_pct: float
    confidence: str
    detail: str = ""

    @property
    def display_id(self) -> str:
        return f"{self.cause_id}[{self.binding}]" if self.binding else self.cause_id


@dataclass
class IAResult(ModuleResult):
    """Outcome of Module IA."""

    impacts: list[ImpactScore] = field(default_factory=list)
    extra_plan_time: float = 0.0

    def impact_of(self, cause_id: str) -> float:
        for score in self.impacts:
            if score.cause_id == cause_id:
                return score.impact_pct
        raise KeyError(f"no impact computed for {cause_id!r}")

    def ranked(self) -> list[ImpactScore]:
        order = {"high": 0, "medium": 1, "low": 2}
        return sorted(
            self.impacts,
            key=lambda s: (order.get(s.confidence, 3), -s.impact_pct),
        )


@register_module
class ImpactAnalysisModule:
    """Module IA."""

    name = "IA"
    requires = ("PD", "SD")
    after = ("CO", "CR", "DA")
    provides = "IA"

    def run(self, ctx: DiagnosisContext) -> IAResult:
        if ctx.apg is None:
            raise RuntimeError("Module PD must run before IA (APG not built)")
        sd: SDResult = ctx.result("SD")
        co: COResult = ctx.results.get("CO") or COResult(  # type: ignore[assignment]
            module="CO", summary="skipped (plan changed)", scores={}, cos=set()
        )
        cr: CRResult | None = ctx.results.get("CR")  # type: ignore[assignment]
        da: DAResult | None = ctx.results.get("DA")  # type: ignore[assignment]

        extra_self, extra_plan = self._extra_times(ctx)
        if extra_plan <= 0.0:
            result = IAResult(
                module=self.name,
                summary="no measurable slowdown (extra plan time <= 0)",
                impacts=[],
                extra_plan_time=extra_plan,
            )
            ctx.set_result(result)
            return result

        impacts: list[ImpactScore] = []
        candidates = [
            m for m in sd.matches if m.confidence.value in ("high", "medium")
        ]
        for match in candidates:
            impact, detail = self._impact_for(
                ctx, match, extra_self, extra_plan, co, cr, da
            )
            impacts.append(
                ImpactScore(
                    cause_id=match.cause_id,
                    binding=match.binding,
                    impact_pct=impact,
                    confidence=match.confidence.value,
                    detail=detail,
                )
            )
        impacts.sort(key=lambda s: s.impact_pct, reverse=True)
        top = impacts[0] if impacts else None
        result = IAResult(
            module=self.name,
            summary=(
                f"top impact: {top.display_id} = {top.impact_pct:.1f}%"
                if top
                else "no medium/high-confidence causes to score"
            ),
            impacts=impacts,
            extra_plan_time=extra_plan,
        )
        ctx.set_result(result)
        return result

    # ------------------------------------------------------------------
    def _extra_times(self, ctx: DiagnosisContext) -> tuple[dict[str, float], float]:
        apg = ctx.apg
        assert apg is not None
        sat_self: dict[str, list[float]] = {}
        unsat_self: dict[str, list[float]] = {}
        for run in apg.runs:
            if run.satisfactory is None:
                continue
            selves = self_times(apg.plan, run)
            target = sat_self if run.satisfactory else unsat_self
            for op_id, value in selves.items():
                target.setdefault(op_id, []).append(value)
        extra: dict[str, float] = {}
        for op_id in set(sat_self) & set(unsat_self):
            extra[op_id] = float(
                np.mean(unsat_self[op_id]) - np.mean(sat_self[op_id])
            )
        # Plan-level extra time uses every labelled run of the query (the APG
        # only holds runs of one plan, which would lose the satisfactory side
        # entirely after a plan change).
        sat_plan = [r.duration for r in ctx.sat_runs]
        unsat_plan = [r.duration for r in ctx.unsat_runs]
        extra_plan = float(np.mean(unsat_plan) - np.mean(sat_plan)) if sat_plan and unsat_plan else 0.0
        return extra, extra_plan

    def _impact_for(
        self,
        ctx: DiagnosisContext,
        match: RootCauseMatch,
        extra_self: dict[str, float],
        extra_plan: float,
        co: COResult,
        cr: CRResult | None,
        da: DAResult | None,
    ) -> tuple[float, str]:
        apg = ctx.apg
        assert apg is not None

        def pct(op_ids: set[str], factor: float = 1.0) -> float:
            base = sum(max(extra_self.get(op_id, 0.0), 0.0) for op_id in op_ids)
            return min(max(base * factor / extra_plan * 100.0, 0.0), 100.0)

        if match.kind == "plan-regression":
            return 100.0, "plan change explains the entire slowdown"

        if match.kind == "volume-contention" and match.binding:
            volume_id = match.binding
            op_ids = set(apg.leaves_on_volume(volume_id)) & co.cos
            factor, detail = self._latency_factor(ctx, volume_id)
            return pct(op_ids or set(apg.leaves_on_volume(volume_id)), factor), detail

        if match.kind == "data-change":
            crs = cr.crs if cr is not None else set()
            # count only leaf-level extra time plus interior CRS operators
            return pct(crs), "extra time of operators with shifted record counts"

        if match.kind == "lock-contention":
            tables = {
                e.component_id
                for e in ctx.bundle.stores.events.of_kind("lock_escalation")
            }
            op_ids: set[str] = set()
            for op in apg.plan.leaves():
                if op.table in tables:
                    op_ids.add(op.op_id)
            if not op_ids:
                op_ids = {o for o in co.cos if apg.plan.find(o).is_leaf}
            return pct(op_ids), "extra time of operators on contended tables"

        # generic causes (CPU, buffer pool, ...): extra *self* time of the
        # whole correlated operator set — self times never double count
        return pct(co.cos), "extra self time of correlated operators"

    def _latency_factor(self, ctx: DiagnosisContext, volume_id: str) -> tuple[float, str]:
        """Fraction of the volume's operators' extra time attributable to the
        volume actually getting slower (response-time shift)."""
        store = ctx.bundle.stores.metrics
        apg = ctx.apg
        assert apg is not None
        sat_vals, unsat_vals = [], []
        for run in apg.runs:
            mean = store.window_mean(volume_id, "readTime", run.start_time, run.end_time)
            if mean is None:
                continue
            if run.satisfactory is True:
                sat_vals.append(mean)
            elif run.satisfactory is False:
                unsat_vals.append(mean)
        if len(sat_vals) < 2 or not unsat_vals:
            return 1.0, "no latency data; attributing full extra time"
        lat_sat = float(np.mean(sat_vals))
        lat_unsat = float(np.mean(unsat_vals))
        if lat_sat <= 0:
            return 1.0, "baseline latency unavailable"
        delta = max(lat_unsat - lat_sat, 0.0)
        factor = min(delta / lat_sat, 1.0)
        return factor, (
            f"volume readTime {lat_sat:.2f} -> {lat_unsat:.2f} ms "
            f"(latency factor {factor:.2f})"
        )
