"""Module DA — Dependency Analysis.

Identifies the correlated component set (CCS): components that (i) lie on the
dependency path of at least one operator in COS, and (ii) have at least one
performance metric significantly correlated with the slowdown.  Property (i)
alone is not enough — a component may sit on a path without having caused
anything (the V2 volume in scenario 1) — so DA additionally requires the
metric to be anomalous under KDE *and* to co-move with an affected operator's
running time across runs.

Anomaly scores are computed over *phase-level* monitoring samples: every
bucket recorded while the query was behaving well vs the buckets after the
slowdown onset.  (Per-run windows would miss bursty contention that happens
*between* executions — precisely the Table-2 variant.)  The correlation check
stays per-run: a metric that is anomalous at phase level but uncorrelated
with any affected operator's time (an off-window burst) is observed but does
not enter CCS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...stats.correlation import pearson
from ..apg import COMPONENT_METRICS, DB_METRICS
from ..registry import register_module
from .base import DiagnosisContext, ModuleResult, plans_match
from .correlated_operators import COResult, kde_anomaly

__all__ = ["MetricFinding", "DAResult", "DependencyAnalysisModule"]


@dataclass(frozen=True)
class MetricFinding:
    """Scores for one (component, metric) pair."""

    component_id: str
    metric: str
    anomaly_score: float
    best_correlation: float
    correlated_operator: str | None

    @property
    def key(self) -> tuple[str, str]:
        return (self.component_id, self.metric)


@dataclass
class DAResult(ModuleResult):
    """Outcome of Module DA."""

    findings: dict[tuple[str, str], MetricFinding] = field(default_factory=dict)
    ccs: set[str] = field(default_factory=set)
    threshold: float = 0.8
    correlation_threshold: float = 0.5

    def score(self, component_id: str, metric: str) -> float:
        finding = self.findings.get((component_id, metric))
        return finding.anomaly_score if finding else 0.0

    def anomalous_metrics(self, component_id: str) -> list[MetricFinding]:
        return [
            f
            for f in self.findings.values()
            if f.component_id == component_id and f.anomaly_score >= self.threshold
        ]

    def components_with_anomalies(self) -> set[str]:
        return {
            f.component_id
            for f in self.findings.values()
            if f.anomaly_score >= self.threshold
        }


@register_module
class DependencyAnalysisModule:
    """Module DA."""

    name = "DA"
    requires = ("PD", "CO")
    after = ("CR",)
    provides = "DA"
    gate = staticmethod(plans_match)

    def run(self, ctx: DiagnosisContext) -> DAResult:
        if ctx.apg is None:
            raise RuntimeError("Module PD must run before DA (APG not built)")
        co: COResult = ctx.result("CO")
        apg = ctx.apg
        metrics_store = ctx.bundle.stores.metrics

        # Components on the dependency paths of correlated operators.
        components: set[str] = set()
        for op_id in co.cos:
            paths = apg.dependency.get(op_id)
            if paths is not None:
                components |= paths.all_components

        # Per-run window means per (component, metric), split by label.
        sat_runs, unsat_runs = [], []
        for run in apg.runs:
            if run.satisfactory is True:
                sat_runs.append(run)
            elif run.satisfactory is False:
                unsat_runs.append(run)

        # Operator per-run times for the correlation check (property ii).
        op_series: dict[str, list[float]] = {}
        labelled_runs = sat_runs + unsat_runs
        for op_id in co.cos:
            op_series[op_id] = [
                run.operators[op_id].inclusive_time
                for run in labelled_runs
                if op_id in run.operators
            ]

        # Phase boundaries for the anomaly side of the analysis.
        sat_start = min(r.start_time for r in sat_runs) if sat_runs else 0.0
        sat_end = max(r.end_time for r in sat_runs) if sat_runs else 0.0
        onset = ctx.onset
        horizon = ctx.horizon

        findings: dict[tuple[str, str], MetricFinding] = {}
        for component_id in sorted(components):
            for metric in self._metrics_for(ctx, component_id):
                if component_id == "db":
                    # db metrics only exist around runs; score per-run windows
                    sat_vals = self._window_values(
                        metrics_store, component_id, metric, sat_runs
                    )
                    unsat_vals = self._window_values(
                        metrics_store, component_id, metric, unsat_runs
                    )
                else:
                    sat_vals = metrics_store.values_between(
                        component_id, metric, sat_start, sat_end
                    )
                    unsat_vals = metrics_store.values_between(
                        component_id, metric, onset, horizon
                    )
                if len(sat_vals) < 2 or not unsat_vals:
                    continue
                score = kde_anomaly(sat_vals, unsat_vals)
                all_vals = self._window_values(
                    metrics_store, component_id, metric, labelled_runs
                )
                best_corr, best_op = 0.0, None
                if len(all_vals) == len(labelled_runs):
                    for op_id, times in op_series.items():
                        if len(times) != len(all_vals) or len(times) < 2:
                            continue
                        if component_id not in apg.dependency[op_id].all_components:
                            continue
                        coeff = pearson(all_vals, times)
                        if abs(coeff) > abs(best_corr):
                            best_corr, best_op = coeff, op_id
                findings[(component_id, metric)] = MetricFinding(
                    component_id=component_id,
                    metric=metric,
                    anomaly_score=score,
                    best_correlation=best_corr,
                    correlated_operator=best_op,
                )

        ccs = {
            f.component_id
            for f in findings.values()
            if f.anomaly_score >= ctx.threshold
            and abs(f.best_correlation) >= ctx.correlation_threshold
        }
        result = DAResult(
            module=self.name,
            summary=f"{len(ccs)} components correlated with the slowdown "
            f"(of {len(components)} on dependency paths)",
            findings=findings,
            ccs=ccs,
            threshold=ctx.threshold,
            correlation_threshold=ctx.correlation_threshold,
        )
        ctx.set_result(result)
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _metrics_for(ctx: DiagnosisContext, component_id: str) -> list[str]:
        if component_id == "db":
            return DB_METRICS
        try:
            ctype = ctx.bundle.topology.get(component_id).ctype.value
        except Exception:
            return []
        return COMPONENT_METRICS.get(ctype, [])

    @staticmethod
    def _window_values(store, component_id: str, metric: str, runs) -> list[float]:
        values = []
        for run in runs:
            mean = store.window_mean(component_id, metric, run.start_time, run.end_time)
            if mean is not None:
                values.append(mean)
        return values
