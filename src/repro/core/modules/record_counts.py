"""Module CR — Correlated Record-counts.

Checks whether the performance change of operators in COS correlates with
their record counts: significant shifts mean the *data properties* changed
between satisfactory and unsatisfactory runs.  Scoring is two-sided (a data
change can shrink output too): the anomaly is ``2 * |cdf(u) - 0.5|`` under
the KDE of satisfactory record counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...stats.kde import GaussianKDE
from ..registry import register_module
from .base import DiagnosisContext, ModuleResult, plans_match
from .correlated_operators import COResult

__all__ = ["CRResult", "RecordCountsModule", "two_sided_anomaly"]


def two_sided_anomaly(sat_values: list[float], unsat_values: list[float]) -> float:
    """Two-sided KDE anomaly: 0 when u is central, →1 when u is extreme.

    Degenerate (constant) satisfactory samples are common for record counts
    (they carry no execution noise); the KDE's bandwidth floor makes the
    score effectively binary there: 0 if unchanged, 1 if shifted.
    """
    if not sat_values or not unsat_values:
        return 0.0
    u = float(np.mean(unsat_values))
    cdf = GaussianKDE.fit(sat_values).cdf(u)
    return float(2.0 * abs(cdf - 0.5))


@dataclass
class CRResult(ModuleResult):
    """Outcome of Module CR."""

    scores: dict[str, float] = field(default_factory=dict)
    crs: set[str] = field(default_factory=set)
    threshold: float = 0.8

    @property
    def data_properties_changed(self) -> bool:
        return bool(self.crs)


@register_module
class RecordCountsModule:
    """Module CR."""

    name = "CR"
    requires = ("PD",)
    after = ("CO",)
    provides = "CR"
    gate = staticmethod(plans_match)

    def run(self, ctx: DiagnosisContext) -> CRResult:
        if ctx.apg is None:
            raise RuntimeError("Module PD must run before CR (APG not built)")
        co: COResult | None = ctx.results.get("CO")  # type: ignore[assignment]
        sat_counts: dict[str, list[float]] = {}
        unsat_counts: dict[str, list[float]] = {}
        for run in ctx.apg.runs:
            if run.satisfactory is None:
                continue
            target = sat_counts if run.satisfactory else unsat_counts
            for op_id, count in run.record_counts().items():
                target.setdefault(op_id, []).append(count)

        scores: dict[str, float] = {}
        for op in ctx.apg.plan.walk():
            sat = sat_counts.get(op.op_id, [])
            unsat = unsat_counts.get(op.op_id, [])
            if len(sat) < 2 or not unsat:
                continue
            scores[op.op_id] = two_sided_anomaly(sat, unsat)

        # CRS ⊆ COS per the paper: record-count shifts only matter for
        # operators whose performance changed.
        cos = co.cos if co is not None else set(scores)
        crs = {
            op_id
            for op_id, score in scores.items()
            if score >= ctx.threshold and op_id in cos
        }
        result = CRResult(
            module=self.name,
            summary=(
                f"record counts shifted for {len(crs)} operators"
                if crs
                else "data properties unchanged"
            ),
            scores=scores,
            crs=crs,
            threshold=ctx.threshold,
        )
        ctx.set_result(result)
        return result
