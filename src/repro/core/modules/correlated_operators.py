"""Module CO — Correlated Operators.

Finds the correlated operator set (COS): the operators whose change in
running time best explains plan P's slowdown.  Per operator Oi, a KDE is fit
on the running times observed in satisfactory runs; the anomaly score is
``prob(S_i <= u)`` where ``u`` is the (mean) running time over the
unsatisfactory runs.  Operators scoring at or above the threshold (0.8 in the
paper) join COS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...stats.kde import GaussianKDE
from ..registry import register_module
from .base import DiagnosisContext, ModuleResult, plans_match

__all__ = ["COResult", "CorrelatedOperatorsModule", "kde_anomaly"]


def kde_anomaly(sat_values: list[float], unsat_values: list[float]) -> float:
    """The workflow's standard anomaly score for one observable.

    Fits the KDE on the satisfactory samples and scores the mean of the
    unsatisfactory observations (averaging tames run-to-run noise while
    preserving genuine level shifts).
    """
    if not sat_values or not unsat_values:
        return 0.0
    u = float(np.mean(unsat_values))
    return GaussianKDE.fit(sat_values).anomaly_score(u)


@dataclass
class COResult(ModuleResult):
    """Outcome of Module CO."""

    scores: dict[str, float] = field(default_factory=dict)
    cos: set[str] = field(default_factory=set)
    threshold: float = 0.8

    def top(self, n: int = 10) -> list[tuple[str, float]]:
        return sorted(self.scores.items(), key=lambda kv: kv[1], reverse=True)[:n]


@register_module
class CorrelatedOperatorsModule:
    """Module CO."""

    name = "CO"
    requires = ("PD",)
    provides = "CO"
    gate = staticmethod(plans_match)

    def run(self, ctx: DiagnosisContext) -> COResult:
        if ctx.apg is None:
            raise RuntimeError("Module PD must run before CO (APG not built)")
        sat_times, unsat_times = ctx.apg.operator_times_by_label()
        scores: dict[str, float] = {}
        for op in ctx.apg.plan.walk():
            sat = sat_times.get(op.op_id, [])
            unsat = unsat_times.get(op.op_id, [])
            if len(sat) < 2 or not unsat:
                continue
            scores[op.op_id] = kde_anomaly(sat, unsat)
        cos = {op_id for op_id, score in scores.items() if score >= ctx.threshold}
        result = COResult(
            module=self.name,
            summary=f"{len(cos)}/{len(scores)} operators anomalous "
            f"(threshold {ctx.threshold})",
            scores=scores,
            cos=cos,
            threshold=ctx.threshold,
        )
        ctx.set_result(result)
        return result
