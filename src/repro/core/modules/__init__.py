"""The six modules of the DIADS diagnosis workflow (Figure 2)."""

from .base import DiagnosisContext, ModuleResult
from .plan_diff import PDResult, PlanChangeCause, PlanDiffModule
from .correlated_operators import COResult, CorrelatedOperatorsModule, kde_anomaly
from .record_counts import CRResult, RecordCountsModule, two_sided_anomaly
from .dependency_analysis import DAResult, DependencyAnalysisModule, MetricFinding
from .symptoms_db import SDResult, SymptomsDatabaseModule, extract_symptoms
from .impact import IAResult, ImpactAnalysisModule, ImpactScore, self_times

__all__ = [
    "DiagnosisContext",
    "ModuleResult",
    "PlanDiffModule",
    "PDResult",
    "PlanChangeCause",
    "CorrelatedOperatorsModule",
    "COResult",
    "kde_anomaly",
    "RecordCountsModule",
    "CRResult",
    "two_sided_anomaly",
    "DependencyAnalysisModule",
    "DAResult",
    "MetricFinding",
    "SymptomsDatabaseModule",
    "SDResult",
    "extract_symptoms",
    "ImpactAnalysisModule",
    "IAResult",
    "ImpactScore",
    "self_times",
]
