"""Shared context and result types for the diagnosis workflow modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ...db.executor import QueryRun
from ...lab.environment import DiagnosisBundle
from ..apg import AnnotatedPlanGraph

__all__ = ["DiagnosisContext", "ModuleResult", "plans_match"]


def plans_match(ctx: "DiagnosisContext") -> bool:
    """Gate for the statistical drill-down modules (CO/CR/DA).

    The Figure-2 workflow only drills into operator statistics when the
    satisfactory and unsatisfactory runs share a plan; once Module PD finds
    the plans differ, the plan-change branch takes over.  Passes
    optimistically while PD has not produced a result yet.
    """
    pd = ctx.results.get("PD")
    return pd is None or not getattr(pd, "plans_differ", False)


@dataclass
class ModuleResult:
    """Base class for per-module outputs (kept uniformly renderable)."""

    module: str
    summary: str

    def describe(self) -> str:
        return f"[{self.module}] {self.summary}"


@dataclass
class DiagnosisContext:
    """State threaded through the workflow of Figure 2.

    Built from the administrator's input: the bundle, the query, and the
    satisfactory/unsatisfactory labelling already applied to its runs.
    Modules read earlier results from ``results`` and append their own.
    """

    bundle: DiagnosisBundle
    query_name: str
    threshold: float = 0.8
    correlation_threshold: float = 0.5
    apg: AnnotatedPlanGraph | None = None
    results: dict[str, ModuleResult] = field(default_factory=dict)

    def __post_init__(self) -> None:
        runs = self.bundle.stores.runs.runs(self.query_name)
        if not runs:
            raise ValueError(f"no runs recorded for query {self.query_name!r}")
        self.sat_runs: list[QueryRun] = [r for r in runs if r.satisfactory is True]
        self.unsat_runs: list[QueryRun] = [r for r in runs if r.satisfactory is False]
        if not self.sat_runs or not self.unsat_runs:
            raise ValueError(
                "diagnosis requires both satisfactory and unsatisfactory runs "
                f"(got {len(self.sat_runs)} / {len(self.unsat_runs)})"
            )

    @property
    def onset(self) -> float:
        """Start time of the first unsatisfactory run (slowdown onset)."""
        return min(r.start_time for r in self.unsat_runs)

    @property
    def last_satisfactory_time(self) -> float:
        return max(r.start_time for r in self.sat_runs)

    @property
    def last_satisfactory_before_onset(self) -> float:
        """Start of the last good run preceding the slowdown onset.

        Distinct from :attr:`last_satisfactory_time` when the problem is
        transient and runs recover afterwards — causal events live between
        this time and the onset.
        """
        onset = self.onset
        before = [r.start_time for r in self.sat_runs if r.start_time < onset]
        return max(before) if before else 0.0

    @property
    def horizon(self) -> float:
        """End of the observed data."""
        return max(r.end_time for r in self.unsat_runs + self.sat_runs)

    def result(self, module: str) -> Any:
        try:
            return self.results[module]
        except KeyError:
            raise KeyError(
                f"module {module!r} has not produced a result yet"
            ) from None

    def set_result(self, result: ModuleResult) -> None:
        self.results[result.module] = result
