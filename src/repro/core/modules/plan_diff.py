"""Module PD — Plan Diffing and plan-change cause analysis.

First module of the workflow (Figure 2): compare the plans used in
satisfactory vs unsatisfactory runs.  If they differ, pinpoint the cause of
the plan change — index addition/dropping, changes in data properties
(statistics), or changes in configuration parameters used during plan
selection — by *replaying the optimizer* with each suspect change reverted
and checking whether the satisfactory plan comes back.  If the plans match,
the shared plan P is handed to the remaining modules.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ...db.executor import QueryRun
from ...db.optimizer import Optimizer
from ...db.plans import PlanOperator, diff_plans
from ...db.query import QuerySpec
from ..apg import build_apg
from ..registry import register_module
from .base import DiagnosisContext, ModuleResult

__all__ = ["PlanChangeCause", "PDResult", "PlanDiffModule"]


@dataclass(frozen=True)
class PlanChangeCause:
    """One candidate cause of a plan change, with replay verdict."""

    kind: str  # index_dropped | db_config_changed | stats_updated | ...
    component: str
    time: float
    confirmed: bool
    detail: str = ""

    def describe(self) -> str:
        verdict = "CONFIRMED" if self.confirmed else "not confirmed"
        return f"{self.kind} @ {self.component} (t={self.time:.0f}): {verdict} {self.detail}".rstrip()


@dataclass
class PDResult(ModuleResult):
    """Outcome of Module PD."""

    plans_differ: bool = False
    sat_signature: str = ""
    unsat_signature: str = ""
    diff_description: str = ""
    causes: list[PlanChangeCause] = field(default_factory=list)
    shared_plan: PlanOperator | None = None

    @property
    def confirmed_causes(self) -> list[PlanChangeCause]:
        return [c for c in self.causes if c.confirmed]


def _dominant_plan(runs: list[QueryRun]) -> tuple[str, PlanOperator]:
    """Most frequent plan signature among runs, with a representative plan."""
    counts = Counter(r.plan_signature for r in runs)
    signature = counts.most_common(1)[0][0]
    plan = next(r.plan for r in runs if r.plan_signature == signature)
    return signature, plan


@register_module
class PlanDiffModule:
    """Module PD."""

    name = "PD"
    requires: tuple[str, ...] = ()
    provides = "PD"

    def run(self, ctx: DiagnosisContext) -> PDResult:
        sat_sig, sat_plan = _dominant_plan(ctx.sat_runs)
        unsat_sig, unsat_plan = _dominant_plan(ctx.unsat_runs)

        if sat_sig == unsat_sig:
            result = PDResult(
                module=self.name,
                summary="same plan P involved in satisfactory and unsatisfactory runs",
                plans_differ=False,
                sat_signature=sat_sig,
                unsat_signature=unsat_sig,
                shared_plan=unsat_plan,
            )
            ctx.apg = build_apg(ctx.bundle, ctx.query_name, plan=unsat_plan)
            ctx.set_result(result)
            return result

        diff = diff_plans(sat_plan, unsat_plan)
        causes = self._analyze_causes(ctx, sat_sig)
        confirmed = [c for c in causes if c.confirmed]
        summary = (
            f"plan changed ({diff.describe()}); "
            f"{len(confirmed)}/{len(causes)} candidate causes confirmed by replay"
        )
        result = PDResult(
            module=self.name,
            summary=summary,
            plans_differ=True,
            sat_signature=sat_sig,
            unsat_signature=unsat_sig,
            diff_description=diff.describe(),
            causes=causes,
            shared_plan=None,
        )
        # The APG is still built (over the unsatisfactory plan) so the report
        # can display it, but the remaining modules are skipped.
        ctx.apg = build_apg(ctx.bundle, ctx.query_name, plan=unsat_plan)
        ctx.set_result(result)
        return result

    # ------------------------------------------------------------------
    def _analyze_causes(
        self, ctx: DiagnosisContext, sat_signature: str
    ) -> list[PlanChangeCause]:
        """Replay the optimizer with each suspect change reverted."""
        spec = ctx.bundle.query_specs.get(ctx.query_name)
        window_start = ctx.last_satisfactory_before_onset
        window_end = ctx.onset + 1.0
        suspects = [
            e
            for e in ctx.bundle.stores.events.in_window(window_start, window_end)
            if e.kind in ("index_dropped", "index_created", "db_config_changed", "stats_updated")
        ]
        causes: list[PlanChangeCause] = []
        for event in suspects:
            confirmed = False
            detail = ""
            if isinstance(spec, QuerySpec):
                confirmed, detail = self._replay(ctx, spec, sat_signature, event.kind, event)
            else:
                detail = "(no query spec available for replay)"
            causes.append(
                PlanChangeCause(
                    kind=event.kind,
                    component=event.component_id,
                    time=event.time,
                    confirmed=confirmed,
                    detail=detail,
                )
            )
        # Config-store diffs catch changes that emitted no event.
        for change in ctx.bundle.stores.config.changes_between(window_start, window_end):
            if any(c.component == change.path for c in causes):
                continue
            causes.append(
                PlanChangeCause(
                    kind=f"config-diff:{change.scope}",
                    component=change.path,
                    time=window_end,
                    confirmed=False,
                    detail=change.describe(),
                )
            )
        return causes

    def _replay(
        self,
        ctx: DiagnosisContext,
        spec: QuerySpec,
        sat_signature: str,
        kind: str,
        event,
    ) -> tuple[bool, str]:
        """Revert one change and replan; confirmed if the old plan returns."""
        catalog = ctx.bundle.catalog
        config = ctx.bundle.db_config
        initial_catalog = ctx.bundle.initial_catalog
        initial_config = ctx.bundle.initial_config
        if kind == "index_dropped":
            hypo = catalog.clone()
            try:
                original = initial_catalog.index(event.component_id)
            except Exception:
                return False, "(dropped index unknown in initial catalog)"
            hypo.create_index(original)
            plan = Optimizer(hypo, config).plan(spec)
            return plan.signature() == sat_signature, "reverting the drop restores the plan"
        if kind == "index_created":
            hypo = catalog.clone()
            if hypo.has_index(event.component_id):
                hypo.drop_index(event.component_id)
            plan = Optimizer(hypo, config).plan(spec)
            return plan.signature() == sat_signature, "removing the new index restores the plan"
        if kind == "db_config_changed":
            reverted = {
                key: getattr(initial_config, key)
                for key in event.details
                if hasattr(initial_config, key)
            }
            if not reverted:
                return False, "(no revertible parameters in event)"
            plan = Optimizer(catalog, config.with_changes(**reverted)).plan(spec)
            return plan.signature() == sat_signature, "reverting parameters restores the plan"
        if kind == "stats_updated":
            hypo = catalog.clone()
            try:
                old_rows = initial_catalog.table(event.component_id).row_count
            except Exception:
                return False, "(table unknown in initial catalog)"
            hypo.update_row_count(event.component_id, old_rows)
            plan = Optimizer(hypo, config).plan(spec)
            return plan.signature() == sat_signature, "reverting statistics restores the plan"
        return False, ""
