"""Module SD — Symptoms Database matching.

Converts the outputs of Modules PD/CO/CR/DA plus the logged events into a
set of structured symptoms, then evaluates the codebook-style symptoms
database to produce confidence-scored root causes.  This is where domain
knowledge reins in the statistics: event propagation produces many anomalous
observations, but only specific *combinations* of symptoms (with temporal
structure — e.g. a zoning change before the slowdown onset) elevate a root
cause to high confidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...san.events import SanEventKind
from ..registry import register_module
from ..symptoms import RootCauseMatch, Symptom, SymptomsDatabase, default_symptoms_database
from .base import DiagnosisContext, ModuleResult
from .correlated_operators import COResult
from .dependency_analysis import DAResult
from .plan_diff import PDResult
from .record_counts import CRResult

__all__ = ["SDResult", "SymptomsDatabaseModule", "extract_symptoms"]


@dataclass
class SDResult(ModuleResult):
    """Outcome of Module SD."""

    symptoms: list[Symptom] = field(default_factory=list)
    matches: list[RootCauseMatch] = field(default_factory=list)

    def high_confidence(self) -> list[RootCauseMatch]:
        return [m for m in self.matches if m.confidence.value == "high"]

    def medium_confidence(self) -> list[RootCauseMatch]:
        return [m for m in self.matches if m.confidence.value == "medium"]

    def match(self, cause_id: str) -> RootCauseMatch:
        for m in self.matches:
            if m.cause_id == cause_id:
                return m
        raise KeyError(f"no match for {cause_id!r}")


def extract_symptoms(ctx: DiagnosisContext) -> list[Symptom]:
    """Normalise module outputs and events into the symptom vocabulary."""
    symptoms: list[Symptom] = []
    apg = ctx.apg
    pd: PDResult | None = ctx.results.get("PD")  # type: ignore[assignment]
    co: COResult | None = ctx.results.get("CO")  # type: ignore[assignment]
    cr: CRResult | None = ctx.results.get("CR")  # type: ignore[assignment]
    da: DAResult | None = ctx.results.get("DA")  # type: ignore[assignment]

    # --- plan-level symptoms -------------------------------------------
    if pd is not None and pd.plans_differ:
        symptoms.append(Symptom.make("plan-changed", "executed plan changed"))
        for cause in pd.confirmed_causes:
            symptoms.append(
                Symptom.make(
                    f"plan-cause-confirmed:{cause.kind}",
                    cause.describe(),
                    time=cause.time,
                )
            )

    # --- operator symptoms -----------------------------------------------
    if co is not None and co.cos:
        symptoms.append(
            Symptom.make("operators-anomalous", f"{len(co.cos)} operators anomalous")
        )
        if apg is not None:
            for volume_id in sorted(apg.volumes_used()):
                leaves = set(apg.leaves_on_volume(volume_id))
                flagged = leaves & co.cos
                if flagged:
                    symptoms.append(
                        Symptom.make(
                            f"operators-anomalous-volume:{volume_id}",
                            f"{len(flagged)}/{len(leaves)} leaves on {volume_id} anomalous",
                        )
                    )
                if leaves and len(flagged) <= len(leaves) / 2:
                    symptoms.append(
                        Symptom.make(
                            f"most-volume-leaves-normal:{volume_id}",
                            f"only {len(flagged)}/{len(leaves)} leaves on "
                            f"{volume_id} anomalous",
                        )
                    )

    # --- record-count symptoms ----------------------------------------------
    if cr is not None and cr.crs:
        symptoms.append(
            Symptom.make(
                "record-count-anomaly",
                f"record counts shifted for {sorted(cr.crs)}",
            )
        )

    # --- component-metric symptoms -------------------------------------------
    if da is not None:
        volume_ids = (
            {v.component_id for v in ctx.bundle.topology.volumes} if apg else set()
        )
        for component_id in sorted(da.components_with_anomalies()):
            if component_id in volume_ids:
                anomalous = [f.metric for f in da.anomalous_metrics(component_id)]
                symptoms.append(
                    Symptom.make(
                        f"volume-metric-anomaly:{component_id}",
                        f"anomalous metrics: {', '.join(sorted(anomalous))}",
                    )
                )
        # Database-internal symptom extraction (direction-aware).
        lock_wait = da.score("db", "lockWaitTime")
        if lock_wait >= ctx.threshold:
            symptoms.append(Symptom.make("lock-wait-anomaly", "lock wait time elevated"))
        locks_held = da.score("db", "locksHeld")
        if locks_held >= ctx.threshold:
            symptoms.append(Symptom.make("locks-held-anomaly", "contended locks held"))
        blocks = da.score("db", "blocksRead")
        if blocks >= ctx.threshold:
            symptoms.append(Symptom.make("db-io-increase", "database physical I/O increased"))
        buffer_finding = da.findings.get(("db", "bufferHits"))
        if buffer_finding is not None and buffer_finding.anomaly_score <= 1.0 - ctx.threshold:
            symptoms.append(Symptom.make("buffer-hit-drop", "buffer hit ratio collapsed"))
        server_id = ctx.bundle.testbed.db_server_id
        if da.score(server_id, "cpuUsagePct") >= ctx.threshold:
            symptoms.append(Symptom.make("server-cpu-anomaly", "DB server CPU elevated"))

    # --- event symptoms --------------------------------------------------------
    symptoms.extend(_event_symptoms(ctx))
    return symptoms


def _event_symptoms(ctx: DiagnosisContext) -> list[Symptom]:
    """Symptoms derived from SAN/DB events near the slowdown onset."""
    topology = ctx.bundle.topology
    window_start = ctx.last_satisfactory_before_onset
    window_end = ctx.horizon
    events = ctx.bundle.stores.events.in_window(window_start, window_end)
    symptoms: list[Symptom] = []

    def shared_disk_volumes(volume_id: str) -> list[str]:
        try:
            return [
                v.component_id for v in topology.volumes_sharing_disks(volume_id)
            ]
        except Exception:
            return []

    for event in events:
        if event.kind == SanEventKind.VOLUME_CREATED.value:
            for victim in shared_disk_volumes(event.component_id):
                symptoms.append(
                    Symptom.make(
                        f"new-volume-on-shared-disks:{victim}",
                        f"volume {event.component_id} created on disks shared "
                        f"with {victim}",
                        time=event.time,
                    )
                )
        elif event.kind in (
            SanEventKind.ZONE_CHANGED.value,
            SanEventKind.ZONE_CREATED.value,
            SanEventKind.LUN_MAPPED.value,
        ):
            symptoms.append(
                Symptom.make("zone-or-lun-change", event.describe(), time=event.time)
            )
        elif event.kind == SanEventKind.HIGH_SUBSYSTEM_LOAD.value:
            for victim in shared_disk_volumes(event.component_id):
                symptoms.append(
                    Symptom.make(
                        f"external-workload-on-shared-disks:{victim}",
                        f"external workload on {event.component_id} shares disks "
                        f"with {victim}",
                        time=event.time,
                    )
                )
        elif event.kind == SanEventKind.VOLUME_PERF_DEGRADED.value:
            symptoms.append(
                Symptom.make(
                    f"volume-perf-degraded-event:{event.component_id}",
                    event.describe(),
                    time=event.time,
                )
            )
        elif event.kind == SanEventKind.RAID_REBUILD_STARTED.value:
            disk_id = event.component_id
            for volume in topology.volumes:
                disk_ids = {
                    d.component_id for d in topology.disks_of_volume(volume.component_id)
                }
                if disk_id in disk_ids:
                    symptoms.append(
                        Symptom.make(
                            f"raid-rebuild-on-disks-of:{volume.component_id}",
                            event.describe(),
                            time=event.time,
                        )
                    )
        elif event.kind == "dml_batch":
            symptoms.append(
                Symptom.make("dml-event", event.describe(), time=event.time)
            )
    return symptoms


@register_module
class SymptomsDatabaseModule:
    """Module SD."""

    name = "SD"
    # No hard requires: extract_symptoms reads PD/CO/CR/DA optionally, so a
    # bypassed drill-down (even PD itself) still yields a symptoms match.
    requires: tuple[str, ...] = ()
    after = ("PD", "CO", "CR", "DA")
    provides = "SD"

    def __init__(self, database: SymptomsDatabase | None = None) -> None:
        self.database = database or default_symptoms_database()

    def run(self, ctx: DiagnosisContext) -> SDResult:
        symptoms = extract_symptoms(ctx)
        volumes = [v.component_id for v in ctx.bundle.topology.volumes]
        matches = self.database.evaluate(symptoms, volumes, onset=ctx.onset)
        high = [m for m in matches if m.confidence.value == "high"]
        result = SDResult(
            module=self.name,
            summary=f"{len(symptoms)} symptoms; {len(high)} high-confidence root "
            f"cause(s): {', '.join(m.display_id for m in high) or 'none'}",
            symptoms=symptoms,
            matches=matches,
        )
        ctx.set_result(result)
        return result
