"""Module registry: the plug-in surface of the diagnosis pipeline.

The paper presents DIADS as a *modular workflow* (Figure 2) whose modules
are independently replaceable.  This file makes that claim executable: a
:class:`DiagnosisModule` protocol every module satisfies, and a
:class:`ModuleRegistry` where implementations are registered by name —
usually via the :func:`register_module` decorator::

    @register_module
    class HotTableModule:
        name = "HT"
        requires = ("CO",)

        def run(self, ctx):
            ...

Registered modules can be referenced by name when assembling a
:class:`~repro.core.pipeline.DiagnosisPipeline`, so new drill-down modules
plug into :class:`~repro.core.workflow.Diads` without touching the engine.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Protocol, runtime_checkable

from .modules.base import DiagnosisContext, ModuleResult

__all__ = [
    "DiagnosisModule",
    "ModuleRegistry",
    "RegistryError",
    "default_registry",
    "register_module",
]


@runtime_checkable
class DiagnosisModule(Protocol):
    """What the pipeline engine expects of a workflow module.

    Required:

    * ``name`` — short unique identifier (``"PD"``, ``"CO"``, ...); also the
      key under which the module's result lands in ``ctx.results``.
    * ``run(ctx)`` — execute against a :class:`DiagnosisContext`, record the
      result via ``ctx.set_result`` and return it.  Modules must be
      stateless across calls: one instance may serve many queries,
      concurrently.

    Optional (read via ``getattr`` with defaults):

    * ``requires`` — names of upstream modules whose results this module
      consumes.  Hard edges: the pipeline orders the module after them and
      skips it when any of them was skipped or bypassed.
    * ``after`` — soft ordering hints: schedule after these modules *if
      present*, but run regardless of whether they ran.
    * ``provides`` — result key, defaulting to ``name``.  A drop-in
      replacement module advertises the key it fills in ``ctx.results``
      (its ``run`` must store the result under that key, i.e.
      ``ModuleResult(module=<provides>, ...)``); ``requires``/``after``
      edges are resolved against these keys.
    * ``gate(ctx)`` — predicate evaluated just before execution; returning
      ``False`` skips the module (and, transitively, its hard dependents).
    """

    name: str

    def run(self, ctx: DiagnosisContext) -> ModuleResult: ...


ModuleFactory = Callable[..., DiagnosisModule]


class RegistryError(KeyError):
    """Unknown or conflicting module registration."""


class ModuleRegistry:
    """Name → factory mapping for diagnosis modules.

    Factories are usually the module classes themselves; any callable
    returning a :class:`DiagnosisModule` works.  Keyword arguments given to
    :meth:`create` are forwarded to the factory, so configurable modules
    (e.g. ``SymptomsDatabaseModule(symptoms_db)``) stay configurable.
    """

    def __init__(self) -> None:
        self._factories: dict[str, ModuleFactory] = {}

    # -- registration ---------------------------------------------------
    def register(
        self,
        factory: ModuleFactory,
        name: str | None = None,
        *,
        replace: bool = False,
    ) -> ModuleFactory:
        key = name or getattr(factory, "name", None)
        if not key:
            raise RegistryError(
                f"cannot infer a module name from {factory!r}; pass name="
            )
        if key in self._factories and not replace:
            raise RegistryError(
                f"module {key!r} already registered (pass replace=True to override)"
            )
        self._factories[key] = factory
        return factory

    def unregister(self, name: str) -> None:
        self._factories.pop(name, None)

    # -- lookup ---------------------------------------------------------
    def factory(self, name: str) -> ModuleFactory:
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "(none)"
            raise RegistryError(
                f"no module {name!r} registered (known: {known})"
            ) from None

    def create(self, name: str, **kwargs: Any) -> DiagnosisModule:
        return self.factory(name)(**kwargs)

    def names(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def copy(self) -> "ModuleRegistry":
        clone = ModuleRegistry()
        clone._factories.update(self._factories)
        return clone


#: Process-wide registry that ``@register_module`` populates.  The six
#: paper modules register themselves on import of :mod:`repro.core.modules`.
_DEFAULT_REGISTRY = ModuleRegistry()


def default_registry() -> ModuleRegistry:
    """The shared registry backing :func:`register_module`."""
    return _DEFAULT_REGISTRY


def register_module(
    factory: ModuleFactory | None = None,
    *,
    name: str | None = None,
    replace: bool = False,
    registry: ModuleRegistry | None = None,
) -> Any:
    """Class decorator registering a diagnosis module.

    Usable bare (``@register_module``) or with options
    (``@register_module(name="X", replace=True)``).
    """
    target = registry if registry is not None else _DEFAULT_REGISTRY

    def _register(f: ModuleFactory) -> ModuleFactory:
        return target.register(f, name=name, replace=replace)

    if factory is not None:
        return _register(factory)
    return _register
