"""Self-healing: from diagnosed root cause to (proposed or applied) fix.

Section 7: *"The current symptoms database design can be extended to include,
along with symptoms, possible fixes for the root cause of the problem.  Once
the tool identifies a root cause, it can then apply the fix to self-heal the
environment.  ...the fix may be required within the database or storage or a
combination of both layers."*

The :class:`SelfHealer` maps root-cause kinds/ids to :class:`Fix` objects.
``recommend`` is side-effect free (what a production deployment would file as
a change ticket); ``apply`` executes the fix against a lab
:class:`~repro.lab.environment.Environment` so recovery can be demonstrated
end-to-end — re-run the environment after healing and the query speeds back
up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..lab.environment import Environment
from .workflow import DiagnosisReport, RankedCause

__all__ = ["Fix", "AppliedFix", "SelfHealer"]


@dataclass(frozen=True)
class Fix:
    """One remediation: human description + executable lab action."""

    fix_id: str
    description: str
    layer: str  # "db" | "san" | "both"
    action: Callable[[Environment, float], None] = field(compare=False)

    def describe(self) -> str:
        return f"[{self.layer}] {self.fix_id}: {self.description}"


@dataclass(frozen=True)
class AppliedFix:
    """Record of a fix applied to an environment."""

    fix: Fix
    cause_id: str
    applied_at: float


class SelfHealer:
    """Derives fixes from a diagnosis report."""

    def __init__(self, min_confidence: str = "high") -> None:
        if min_confidence not in ("high", "medium"):
            raise ValueError("min_confidence must be 'high' or 'medium'")
        self.min_confidence = min_confidence

    # ------------------------------------------------------------------
    def recommend(self, report: DiagnosisReport) -> list[Fix]:
        """Fixes for every sufficiently confident cause, ranked like the report."""
        allowed = {"high"} if self.min_confidence == "high" else {"high", "medium"}
        fixes: list[Fix] = []
        for ranked in report.ranked_causes:
            if ranked.match.confidence.value not in allowed:
                continue
            fix = self._fix_for(report, ranked)
            if fix is not None:
                fixes.append(fix)
        return fixes

    def apply(
        self, report: DiagnosisReport, env: Environment, at_time: float
    ) -> list[AppliedFix]:
        """Apply every recommended fix to the lab environment."""
        applied = []
        for ranked in report.ranked_causes:
            if ranked.match.confidence.value != "high":
                continue
            fix = self._fix_for(report, ranked)
            if fix is None:
                continue
            fix.action(env, at_time)
            applied.append(
                AppliedFix(fix=fix, cause_id=ranked.match.cause_id, applied_at=at_time)
            )
        return applied

    # ------------------------------------------------------------------
    def _fix_for(self, report: DiagnosisReport, ranked: RankedCause) -> Fix | None:
        match = ranked.match
        cause = match.cause_id
        volume = match.binding

        if cause == "volume-contention-san-misconfig" and volume:
            return Fix(
                fix_id=f"quiesce-offending-volume-near-{volume}",
                description=(
                    f"Stop/relocate the workload on the newly created volume "
                    f"sharing {volume}'s disks (undo the misconfiguration)"
                ),
                layer="san",
                action=lambda env, t, v=volume: _quiesce_sharing_workloads(env, t, v),
            )
        if cause == "volume-contention-external-workload" and volume:
            return Fix(
                fix_id=f"throttle-external-workload-{volume}",
                description=(
                    f"Throttle/reschedule the external workload contending "
                    f"with {volume}"
                ),
                layer="san",
                action=lambda env, t, v=volume: _quiesce_sharing_workloads(env, t, v),
            )
        if cause == "raid-rebuild-degradation" and volume:
            return Fix(
                fix_id=f"throttle-rebuild-{volume}",
                description=f"Throttle the RAID rebuild on {volume}'s pool",
                layer="san",
                action=_throttle_rebuilds,
            )
        if cause == "lock-contention":
            return Fix(
                fix_id="kill-blocking-transactions",
                description="Terminate the blocking transactions / escalate isolation",
                layer="db",
                action=lambda env, t: env.executor.locks.clear(),
            )
        if cause == "data-property-change":
            return Fix(
                fix_id="analyze-affected-tables",
                description="Refresh optimizer statistics on the changed tables "
                "so future plans reflect the new data",
                layer="db",
                action=_refresh_statistics,
            )
        if cause == "plan-regression-index-drop":
            return Fix(
                fix_id="recreate-dropped-index",
                description="Re-create the dropped index the old plan depended on",
                layer="db",
                action=_recreate_dropped_indexes,
            )
        if cause == "plan-regression-config-change":
            return Fix(
                fix_id="revert-config-change",
                description="Revert the optimizer configuration parameters",
                layer="db",
                action=_revert_db_config,
            )
        if cause == "buffer-pool-thrashing":
            return Fix(
                fix_id="restore-buffer-pool",
                description="Grow the buffer pool back to its provisioned size",
                layer="db",
                action=lambda env, t: setattr(env.executor.buffer, "cache_mb", 96.0),
            )
        if cause == "cpu-saturation":
            return Fix(
                fix_id="evict-cpu-hog",
                description="Move the CPU-hogging process off the DB server",
                layer="db",
                action=lambda env, t: env.cpu_contention.clear(),
            )
        return None


# ---------------------------------------------------------------------------
# fix actions (lab-environment mutations)
# ---------------------------------------------------------------------------
def _quiesce_sharing_workloads(env: Environment, t: float, volume_id: str) -> None:
    """End external workloads whose volume shares disks with ``volume_id``."""
    topo = env.testbed.topology
    sharing = {v.component_id for v in topo.volumes_sharing_disks(volume_id)}
    sharing.add(volume_id)
    for workload in env.external:
        if workload.volume_id in sharing and not workload.name.startswith("background"):
            workload.end = min(workload.end, t)


def _throttle_rebuilds(env: Environment, t: float) -> None:
    for disk_id in list(env.iosim.rebuilding_disks):
        env.iosim.finish_rebuild(disk_id)


def _refresh_statistics(env: Environment, t: float) -> None:
    for table, multiplier in env.data_multipliers.items():
        current = env.catalog.table(table).row_count
        env.catalog.update_row_count(table, int(current * multiplier))
    env.collector.snapshot_config(t, "db_catalog", env.catalog.snapshot())


def _recreate_dropped_indexes(env: Environment, t: float) -> None:
    for index in env.initial_catalog.indexes:
        if not env.catalog.has_index(index.name):
            env.catalog.create_index(index)
    env.collector.snapshot_config(t, "db_catalog", env.catalog.snapshot())


def _revert_db_config(env: Environment, t: float) -> None:
    env.db_config = env.initial_config
    env.collector.snapshot_config(t, "db_config", env.db_config.snapshot())
