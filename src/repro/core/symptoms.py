"""Symptom model, codebook condition language, and the default symptoms DB.

Module SD maps symptoms (observed by Modules CO/CR/DA plus events) to root
causes using a symptoms database "motivated by an intuitive and
commercially-used format called the Codebook" (Section 4.1):

* each root-cause entry is a conjunction ``Cond1 & Cond2 & ... & Condz``,
* each condition asserts presence (``∃symp``) or absence (``¬∃symp``) of a
  symptom, optionally with a temporal qualifier (the event happened *before*
  the slowdown onset),
* each condition carries a weight; the weights of an entry sum to 100%,
* the confidence score of a root cause is the sum of weights of the
  conditions that hold — high ≥ 80, medium ≥ 50, low otherwise.

Symptoms are identified by structured ids like ``volume-metric-anomaly:V1``.
Entries may be *parameterised by volume*: condition patterns containing
``{V}`` are evaluated once per candidate volume, and the best binding is
reported (so the tool says "contention in V1", not just "contention").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable

__all__ = [
    "Symptom",
    "Condition",
    "RootCauseEntry",
    "SymptomsDatabase",
    "Confidence",
    "RootCauseMatch",
    "default_symptoms_database",
    "HIGH_CONFIDENCE",
    "MEDIUM_CONFIDENCE",
]

HIGH_CONFIDENCE = 80.0
MEDIUM_CONFIDENCE = 50.0


class Confidence(str, Enum):
    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"

    @classmethod
    def from_score(cls, score: float) -> "Confidence":
        if score >= HIGH_CONFIDENCE:
            return cls.HIGH
        if score >= MEDIUM_CONFIDENCE:
            return cls.MEDIUM
        return cls.LOW


@dataclass(frozen=True)
class Symptom:
    """An observed symptom with optional structured details.

    ``sid`` is a structured identifier; by convention parameterised symptoms
    end with ``:<component>`` (e.g. ``volume-metric-anomaly:V1``).
    ``time`` is when the underlying evidence occurred (for temporal
    conditions); None for timeless symptoms such as module outputs.
    """

    sid: str
    description: str = ""
    time: float | None = None
    details: tuple[tuple[str, Any], ...] = ()

    @staticmethod
    def make(sid: str, description: str = "", time: float | None = None, **details: Any) -> "Symptom":
        return Symptom(
            sid=sid,
            description=description,
            time=time,
            details=tuple(sorted(details.items())),
        )


@dataclass(frozen=True)
class Condition:
    """∃/¬∃ condition over a symptom pattern, with a weight.

    ``pattern`` may contain the placeholder ``{V}`` (bound per volume) and a
    trailing ``*`` wildcard.  ``before_onset=True`` additionally requires the
    matched symptom's time to precede the slowdown onset — the paper's
    example of a complex temporal symptom ("contention occurred before
    failure").
    """

    pattern: str
    weight: float
    present: bool = True
    before_onset: bool = False

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("condition weight must be positive")

    def matches(
        self,
        symptoms: Iterable[Symptom],
        binding: str | None,
        onset: float | None,
    ) -> bool:
        pattern = self.pattern.replace("{V}", binding) if binding else self.pattern
        found = False
        for symptom in symptoms:
            if pattern.endswith("*"):
                hit = symptom.sid.startswith(pattern[:-1])
            else:
                hit = symptom.sid == pattern
            if not hit:
                continue
            if self.before_onset and onset is not None and symptom.time is not None:
                if symptom.time > onset:
                    continue
            found = True
            break
        return found if self.present else not found

    def describe(self) -> str:
        quant = "∃" if self.present else "¬∃"
        tail = " (before onset)" if self.before_onset else ""
        return f"{quant} {self.pattern}{tail} [w={self.weight:.0f}]"


@dataclass(frozen=True)
class RootCauseEntry:
    """One codebook entry: a named root cause with weighted conditions."""

    cause_id: str
    description: str
    conditions: tuple[Condition, ...]
    per_volume: bool = False
    kind: str = "generic"  # used by impact analysis to pick its method

    def __post_init__(self) -> None:
        total = sum(c.weight for c in self.conditions)
        if abs(total - 100.0) > 1e-6:
            raise ValueError(
                f"entry {self.cause_id!r}: condition weights sum to {total}, expected 100"
            )

    def score(
        self,
        symptoms: Iterable[Symptom],
        binding: str | None = None,
        onset: float | None = None,
    ) -> float:
        symptoms = list(symptoms)
        return sum(
            c.weight for c in self.conditions if c.matches(symptoms, binding, onset)
        )


@dataclass(frozen=True)
class RootCauseMatch:
    """Outcome of evaluating one entry (with its best volume binding)."""

    cause_id: str
    description: str
    score: float
    confidence: Confidence
    binding: str | None = None
    kind: str = "generic"
    matched_conditions: tuple[str, ...] = ()

    @property
    def display_id(self) -> str:
        return f"{self.cause_id}[{self.binding}]" if self.binding else self.cause_id


@dataclass
class SymptomsDatabase:
    """A collection of root-cause entries with evaluation."""

    entries: list[RootCauseEntry] = field(default_factory=list)

    def add(self, entry: RootCauseEntry) -> RootCauseEntry:
        if any(e.cause_id == entry.cause_id for e in self.entries):
            raise ValueError(f"duplicate root-cause entry {entry.cause_id!r}")
        self.entries.append(entry)
        return entry

    def remove(self, cause_id: str) -> None:
        self.entries = [e for e in self.entries if e.cause_id != cause_id]

    def get(self, cause_id: str) -> RootCauseEntry:
        for entry in self.entries:
            if entry.cause_id == cause_id:
                return entry
        raise KeyError(f"no entry {cause_id!r}")

    def evaluate(
        self,
        symptoms: Iterable[Symptom],
        volumes: Iterable[str],
        onset: float | None = None,
    ) -> list[RootCauseMatch]:
        """Score every entry; parameterised entries get their best binding.

        Results are sorted by score descending.
        """
        symptoms = list(symptoms)
        volumes = list(volumes)
        matches: list[RootCauseMatch] = []
        for entry in self.entries:
            bindings: list[str | None] = list(volumes) if entry.per_volume else [None]
            best_score, best_binding = -1.0, None
            for binding in bindings:
                score = entry.score(symptoms, binding=binding, onset=onset)
                if score > best_score:
                    best_score, best_binding = score, binding
            matched = tuple(
                c.describe()
                for c in entry.conditions
                if c.matches(symptoms, best_binding, onset)
            )
            matches.append(
                RootCauseMatch(
                    cause_id=entry.cause_id,
                    description=entry.description.replace("{V}", best_binding or "?"),
                    score=best_score,
                    confidence=Confidence.from_score(best_score),
                    binding=best_binding,
                    kind=entry.kind,
                    matched_conditions=matched,
                )
            )
        matches.sort(key=lambda m: m.score, reverse=True)
        return matches


def default_symptoms_database() -> SymptomsDatabase:
    """The in-house symptoms database for query slowdowns (Section 5).

    Entries cover the Table-1 scenarios plus the extra root causes the
    introduction lists (plan regression, CPU saturation, buffer-pool
    problems, RAID rebuilds).
    """
    db = SymptomsDatabase()
    db.add(
        RootCauseEntry(
            cause_id="volume-contention-san-misconfig",
            description="Contention in volume {V} caused by a SAN misconfiguration "
            "(new volume mapped onto shared disks)",
            per_volume=True,
            kind="volume-contention",
            conditions=(
                Condition("volume-metric-anomaly:{V}", 25),
                Condition("operators-anomalous-volume:{V}", 20),
                Condition("new-volume-on-shared-disks:{V}", 25, before_onset=True),
                Condition("zone-or-lun-change", 15, before_onset=True),
                Condition("volume-perf-degraded-event:{V}", 10),
                Condition("plan-changed", 5, present=False),
            ),
        )
    )
    db.add(
        RootCauseEntry(
            cause_id="volume-contention-external-workload",
            description="Contention in volume {V} caused by an external workload "
            "on shared disks",
            per_volume=True,
            kind="volume-contention",
            conditions=(
                Condition("volume-metric-anomaly:{V}", 30),
                Condition("operators-anomalous-volume:{V}", 25),
                Condition("external-workload-on-shared-disks:{V}", 25),
                Condition("new-volume-on-shared-disks:{V}", 10, present=False),
                Condition("plan-changed", 10, present=False),
            ),
        )
    )
    db.add(
        RootCauseEntry(
            cause_id="volume-contention-db-workload",
            description="Contention in volume {V} caused by a change in the "
            "database workload",
            per_volume=True,
            kind="volume-contention",
            conditions=(
                Condition("volume-metric-anomaly:{V}", 30),
                Condition("operators-anomalous-volume:{V}", 25),
                Condition("db-io-increase", 25),
                Condition("plan-changed", 10, present=False),
                Condition("buffer-hit-drop", 10, present=False),
            ),
        )
    )
    db.add(
        RootCauseEntry(
            cause_id="data-property-change",
            description="Change in data properties (record counts shifted between "
            "satisfactory and unsatisfactory runs)",
            kind="data-change",
            conditions=(
                Condition("record-count-anomaly", 45),
                Condition("db-io-increase", 20),
                Condition("dml-event", 20, before_onset=True),
                Condition("plan-changed", 15, present=False),
            ),
        )
    )
    db.add(
        RootCauseEntry(
            cause_id="lock-contention",
            description="Lock contention on database tables",
            kind="lock-contention",
            conditions=(
                Condition("lock-wait-anomaly", 40),
                Condition("locks-held-anomaly", 20),
                Condition("operators-anomalous", 15),
                Condition("record-count-anomaly", 10, present=False),
                Condition("plan-changed", 15, present=False),
            ),
        )
    )
    db.add(
        RootCauseEntry(
            cause_id="plan-regression-index-drop",
            description="Plan regression caused by a dropped index",
            kind="plan-regression",
            conditions=(
                Condition("plan-changed", 40),
                Condition("plan-cause-confirmed:index_dropped", 60),
            ),
        )
    )
    db.add(
        RootCauseEntry(
            cause_id="plan-regression-config-change",
            description="Plan regression caused by a configuration-parameter change",
            kind="plan-regression",
            conditions=(
                Condition("plan-changed", 40),
                Condition("plan-cause-confirmed:db_config_changed", 60),
            ),
        )
    )
    db.add(
        RootCauseEntry(
            cause_id="plan-regression-stats-change",
            description="Plan regression caused by refreshed statistics / data growth",
            kind="plan-regression",
            conditions=(
                Condition("plan-changed", 40),
                Condition("plan-cause-confirmed:stats_updated", 60),
            ),
        )
    )
    db.add(
        RootCauseEntry(
            cause_id="raid-rebuild-degradation",
            description="Degraded performance of volume {V} during a RAID rebuild",
            per_volume=True,
            kind="volume-contention",
            conditions=(
                Condition("raid-rebuild-on-disks-of:{V}", 55),
                Condition("volume-metric-anomaly:{V}", 20),
                Condition("operators-anomalous-volume:{V}", 15),
                Condition("plan-changed", 10, present=False),
            ),
        )
    )
    db.add(
        RootCauseEntry(
            cause_id="cpu-saturation",
            description="CPU saturation of the database server",
            kind="server",
            conditions=(
                Condition("server-cpu-anomaly", 60),
                Condition("operators-anomalous", 20),
                Condition("volume-metric-anomaly:*", 20, present=False),
            ),
        )
    )
    db.add(
        RootCauseEntry(
            cause_id="buffer-pool-thrashing",
            description="Suboptimal buffer-pool behaviour (hit ratio collapse)",
            kind="db-internal",
            conditions=(
                Condition("buffer-hit-drop", 50),
                Condition("db-io-increase", 30),
                Condition("record-count-anomaly", 20, present=False),
            ),
        )
    )
    return db
