"""Fault injector: the problems of Table 1 (and more), injected on schedule.

The paper's demonstration uses "a fault injector that can inject a variety of
faults at the database and SAN levels, including SAN misconfiguration,
server, disk, or volume contention, RAID rebuilds, changes in data
properties, and table-locking problems".  Each method here schedules one such
fault on an :class:`~repro.lab.environment.Environment`; faults mutate the
simulators, log the events a real SAN/DB would emit, and refresh the config
snapshots the monitoring layer keeps.

The injector exists for testing and verification only — exactly like the
paper's (footnote 1); DIADS never sees it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..san.components import Server, Volume
from ..san.events import SanEvent, SanEventKind
from ..san.iomodel import VolumeLoad
from .environment import Environment
from .workloads import ExternalWorkload

__all__ = ["FaultInjector", "intermittent_windows"]


def intermittent_windows(
    at: float, until: float, period_s: float, duty_cycle: float
) -> list[tuple[float, float]]:
    """The on-windows of a duty-cycled fault: on for ``duty_cycle *
    period_s`` out of every ``period_s``, from ``at`` until ``until``.

    Shared by :meth:`FaultInjector.intermittent` (to schedule the fault) and
    scenario factories (to label exactly the degraded runs), so injection
    and ground-truth labelling can never drift apart.
    """
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    if not 0.0 < duty_cycle <= 1.0:
        raise ValueError("duty_cycle must be in (0, 1]")
    on_s = duty_cycle * period_s
    windows: list[tuple[float, float]] = []
    start = at
    while start < until:
        windows.append((start, min(start + on_s, until)))
        start += period_s
    return windows


@dataclass
class FaultInjector:
    """Schedules fault actions on one environment."""

    env: Environment

    # ------------------------------------------------------------------
    def san_misconfiguration(
        self,
        at: float,
        pool_id: str = "P1",
        new_volume_id: str = "Vprime",
        app_server_id: str = "srv-app",
        write_iops: float = 240.0,
        read_iops: float = 60.0,
        until: float = float("inf"),
    ) -> None:
        """Scenario 1: a new volume V' lands on disks shared with V1.

        Emits the full event combination DIADS must pinpoint: volume
        creation, a new zone, and a new LUN mapping for the server whose
        workload then hammers the shared spindles.
        """

        def apply(env: Environment, t: float) -> None:
            topo = env.testbed.topology
            if app_server_id not in topo:
                topo.add(Server(component_id=app_server_id, name="App Server"))
            # Re-applications (e.g. a flapping misconfiguration driven by
            # intermittent()) only restart the offending workload: the
            # volume, zone and LUN mapping were created the first time.
            if new_volume_id not in topo:
                topo.add(
                    Volume(component_id=new_volume_id, name=new_volume_id, pool_id=pool_id)
                )
                topo.connect(pool_id, new_volume_id)
                env.testbed.access.lun_mapping.map_volume(new_volume_id, app_server_id)
                zone_name = f"zone-{app_server_id}"
                if not any(z.name == zone_name for z in env.testbed.access.zoning.zones):
                    env.testbed.access.zoning.create_zone(zone_name, set())
                env.log_san_event(
                    SanEvent(t, SanEventKind.VOLUME_CREATED, new_volume_id, {"pool": pool_id})
                )
                env.log_san_event(
                    SanEvent(t, SanEventKind.ZONE_CHANGED, zone_name, {"server": app_server_id})
                )
                env.log_san_event(
                    SanEvent(
                        t, SanEventKind.LUN_MAPPED, new_volume_id, {"server": app_server_id}
                    )
                )
            env.add_external(
                ExternalWorkload(
                    name=f"app-workload-{new_volume_id}",
                    volume_id=new_volume_id,
                    load=VolumeLoad(read_iops=read_iops, write_iops=write_iops),
                    start=t,
                    end=until,
                )
            )
            env.collector.snapshot_config(t, "san", topo.snapshot())
            env.collector.snapshot_config(t, "access", env.testbed.access.snapshot())

        self.env.schedule(at, apply)

    # ------------------------------------------------------------------
    def intermittent(
        self,
        at: float,
        until: float,
        period_s: float,
        duty_cycle: float,
        fault: "Callable[..., None]",
        **fault_kwargs,
    ) -> list[tuple[float, float]]:
        """Wrap any windowed fault in an on/off duty cycle.

        ``fault`` is an injector method (or any callable) accepting ``at=``
        and ``until=`` keyword arguments — e.g. :meth:`san_misconfiguration`
        or :meth:`external_contention`.  It is scheduled once per on-window:
        on for ``duty_cycle * period_s`` seconds out of every ``period_s``,
        from ``at`` until ``until``.  Returns the scheduled (start, stop)
        windows, which scenario ground truth uses for labelling checks.

        This produces *flapping* faults: the problem appears, degrades a few
        query runs, vanishes, and returns — the pattern that exercises
        incident deduplication and cooldown in :mod:`repro.stream`.
        """
        windows = intermittent_windows(at, until, period_s, duty_cycle)
        for start, stop in windows:
            fault(at=start, until=stop, **fault_kwargs)
        return windows

    # ------------------------------------------------------------------
    def external_contention(
        self,
        at: float,
        volume_id: str,
        read_iops: float = 0.0,
        write_iops: float = 0.0,
        until: float = float("inf"),
        pattern: str = "steady",
        duty_cycle: float = 1.0,
        burst_period_s: float = 600.0,
        active_when=None,
        name: str | None = None,
    ) -> None:
        """Contention from another application's workload on one volume."""

        def apply(env: Environment, t: float) -> None:
            env.add_external(
                ExternalWorkload(
                    name=name or f"contention-{volume_id}",
                    volume_id=volume_id,
                    load=VolumeLoad(read_iops=read_iops, write_iops=write_iops),
                    start=t,
                    end=until,
                    pattern=pattern,
                    duty_cycle=duty_cycle,
                    burst_period_s=burst_period_s,
                    active_when=active_when,
                )
            )
            env.log_san_event(
                SanEvent(
                    t,
                    SanEventKind.HIGH_SUBSYSTEM_LOAD,
                    volume_id,
                    {"read_iops": read_iops, "write_iops": write_iops},
                )
            )

        self.env.schedule(at, apply)

    # ------------------------------------------------------------------
    def data_property_change(
        self, at: float, table: str, multiplier: float, update_stats: bool = False
    ) -> None:
        """Scenario 3: a DML batch shifts data properties.

        Actual row counts (and pages scanned) scale by ``multiplier`` while
        the optimizer statistics stay stale unless ``update_stats`` —
        matching "a subtle change in data properties" that the plan does not
        react to but record counts reveal.
        """

        def apply(env: Environment, t: float) -> None:
            env.data_multipliers[table] = (
                env.data_multipliers.get(table, 1.0) * multiplier
            )
            env.stores.events.add_db_event(
                t, "dml_batch", table, multiplier=multiplier
            )
            if update_stats:
                tbl = env.catalog.table(table)
                env.catalog.update_row_count(table, int(tbl.row_count * multiplier))
                env.stores.events.add_db_event(t, "stats_updated", table)
                env.collector.snapshot_config(t, "db_catalog", env.catalog.snapshot())

        self.env.schedule(at, apply)

    # ------------------------------------------------------------------
    def lock_contention(
        self, at: float, table: str, mean_wait_s: float, until: float
    ) -> None:
        """Scenario 5: table-locking problem inside the database."""

        def apply(env: Environment, t: float) -> None:
            env.executor.locks.add_contention(
                table=table, start=t, end=until, mean_wait_ms=mean_wait_s * 1000.0
            )
            env.stores.events.add_db_event(
                t, "lock_escalation", table, mean_wait_s=mean_wait_s
            )

        self.env.schedule(at, apply)

    # ------------------------------------------------------------------
    def drop_index(self, at: float, index_name: str) -> None:
        """Plan-change trigger: drop an index (Module PD territory)."""

        def apply(env: Environment, t: float) -> None:
            env.catalog.drop_index(index_name)
            env.stores.events.add_db_event(t, "index_dropped", index_name)
            env.collector.snapshot_config(t, "db_catalog", env.catalog.snapshot())

        self.env.schedule(at, apply)

    def change_db_config(self, at: float, **changes) -> None:
        """Plan-change trigger: alter optimizer configuration parameters."""

        def apply(env: Environment, t: float) -> None:
            env.db_config = env.db_config.with_changes(**changes)
            env.stores.events.add_db_event(
                t, "db_config_changed", "db", **changes
            )
            env.collector.snapshot_config(t, "db_config", env.db_config.snapshot())

        self.env.schedule(at, apply)

    # ------------------------------------------------------------------
    def cpu_saturation(
        self,
        at: float,
        until: float,
        cpu_multiplier: float = 2.5,
        server_pct: float = 70.0,
    ) -> None:
        """CPU saturation of the database server (another process hogs it)."""

        def apply(env: Environment, t: float) -> None:
            # CPU hogs emit no configuration event: they must be caught by
            # the server-metric symptoms alone.
            env.cpu_contention.append((t, until, cpu_multiplier, server_pct))

        self.env.schedule(at, apply)

    # ------------------------------------------------------------------
    def shrink_buffer_pool(self, at: float, new_cache_mb: float) -> None:
        """Misconfigured buffer pool: cache shrinks, hit ratios collapse."""

        def apply(env: Environment, t: float) -> None:
            env.executor.buffer.cache_mb = new_cache_mb
            env.stores.events.add_db_event(
                t, "db_config_changed", "db", buffer_cache_mb=new_cache_mb
            )
            env.collector.snapshot_config(t, "db_config", env.db_config.snapshot())

        self.env.schedule(at, apply)

    # ------------------------------------------------------------------
    def switch_degradation(
        self,
        at: float,
        switch_id: str = "fcsw-core",
        extra_latency_ms: float = 3.0,
        until: float = float("inf"),
        error_frames: float = 25.0,
    ) -> None:
        """Fabric-switch degradation: every I/O through the fabric slows.

        Models congestion / CRC storms on a shared fabric element.  In a
        shared fabric this is the fault whose blast radius is *every*
        environment whose I/O transits the switch — the shared-switch
        correlation scenario injects it once per attached member.
        """

        def start(env: Environment, t: float) -> None:
            env.iosim.degrade_switch(
                switch_id, extra_latency_ms, error_frames=error_frames
            )
            env.log_san_event(
                SanEvent(
                    t,
                    SanEventKind.SWITCH_DEGRADED,
                    switch_id,
                    {"extra_latency_ms": extra_latency_ms},
                )
            )

        def stop(env: Environment, t: float) -> None:
            env.iosim.restore_switch(switch_id)
            env.log_san_event(SanEvent(t, SanEventKind.SWITCH_RESTORED, switch_id, {}))

        self.env.schedule(at, start)
        if until != float("inf"):
            self.env.schedule(until, stop)

    # ------------------------------------------------------------------
    def raid_rebuild(
        self, at: float, disk_id: str, duration_s: float, capacity_factor: float = 0.5
    ) -> None:
        """Disk failure + RAID rebuild degrading a pool for a while."""

        def start(env: Environment, t: float) -> None:
            env.iosim.start_rebuild(disk_id, capacity_factor)
            env.log_san_event(
                SanEvent(t, SanEventKind.RAID_REBUILD_STARTED, disk_id, {})
            )

        def finish(env: Environment, t: float) -> None:
            env.iosim.finish_rebuild(disk_id)
            env.log_san_event(
                SanEvent(t, SanEventKind.RAID_REBUILD_FINISHED, disk_id, {})
            )

        self.env.schedule(at, start)
        self.env.schedule(at + duration_s, finish)
