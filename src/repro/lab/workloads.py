"""Workload definitions: the periodic report query and external SAN loads.

The diagnosed query is "executed multiple times (e.g., in a periodic
report-generation setting)" — :class:`QueryJob` models that.  External
workloads are what other applications sharing the SAN do to the spindles;
they can be steady, bursty (low duty cycle that coarse sampling averages
away), or gated by an arbitrary predicate (e.g. "only between query runs",
which scenario 2 uses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..db.plans import PlanOperator
from ..db.query import QuerySpec
from ..san.iomodel import VolumeLoad

__all__ = ["QueryJob", "ExternalWorkload"]


@dataclass
class QueryJob:
    """A recurring query: either a pinned plan or a spec the optimizer plans.

    Pinned plans reproduce the Figure-1 Q2 setting (the plan is stable across
    runs, so Modules CO..IA engage).  Spec-based jobs replan on every run, so
    catalog/config faults genuinely change the executed plan (Module PD).
    """

    name: str
    period_s: float
    first_run_s: float = 0.0
    pinned_plan: PlanOperator | None = None
    spec: QuerySpec | None = None

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if (self.pinned_plan is None) == (self.spec is None):
            raise ValueError("exactly one of pinned_plan / spec must be given")

    def due_at(self, tick_start: float, tick_end: float) -> list[float]:
        """Run start times falling inside [tick_start, tick_end)."""
        if tick_end <= self.first_run_s:
            return []
        first_k = max(0, math.ceil((tick_start - self.first_run_s) / self.period_s))
        times = []
        k = first_k
        while True:
            t = self.first_run_s + k * self.period_s
            if t >= tick_end:
                break
            if t >= tick_start:
                times.append(t)
            k += 1
        return times


@dataclass
class ExternalWorkload:
    """An I/O load another application offers to one volume.

    ``pattern`` is ``"steady"`` or ``"bursty"``; bursty workloads are active
    for ``duty_cycle`` of every ``burst_period_s`` window — short enough that
    5-minute monitoring buckets blur them, which is how scenario variants
    produce the moderate anomaly scores of Table 2's third column.
    """

    name: str
    volume_id: str
    load: VolumeLoad
    start: float = 0.0
    end: float = math.inf
    pattern: str = "steady"
    duty_cycle: float = 1.0
    burst_period_s: float = 600.0
    active_when: Callable[[float], bool] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.pattern not in ("steady", "bursty"):
            raise ValueError("pattern must be 'steady' or 'bursty'")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        if self.burst_period_s <= 0:
            raise ValueError("burst_period_s must be positive")

    def load_at(self, time: float) -> VolumeLoad | None:
        """The load offered at ``time`` (None when inactive)."""
        if not self.start <= time < self.end:
            return None
        if self.active_when is not None and not self.active_when(time):
            return None
        if self.pattern == "bursty":
            phase = (time - self.start) % self.burst_period_s
            if phase >= self.duty_cycle * self.burst_period_s:
                return None
        return self.load
