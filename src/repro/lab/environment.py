"""The simulated enterprise environment: database + SAN + monitoring + time.

:class:`Environment` wires every substrate together and advances a simulated
clock.  Each tick it:

1. applies any scheduled fault actions,
2. starts due query runs — the executor sees the SAN latencies produced by
   the I/O model under the *combined* load (external workloads + the query's
   own I/O), which is the database↔SAN coupling DIADS diagnoses,
3. feeds the collector: SAN component metrics, server/network metrics,
   database heartbeats — all of which land in the noisy, bucketed stores,
4. emits user-defined trigger events (volume performance degradation) when a
   volume's response time exceeds its healthy baseline.

``Environment.bundle()`` packages exactly what the DIADS tool is allowed to
see: the monitoring stores plus configuration (never the simulators' ground
truth).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from ..db.buffer import BufferModel
from ..db.catalog import Catalog
from ..db.executor import Executor, QueryRun
from ..db.locks import LockManager
from ..db.optimizer import DbConfig, Optimizer
from ..db.plans import PlanOperator
from ..monitor.collector import Collector, MonitoringStores
from ..monitor.timeseries import MetricStore
from ..san.builder import Testbed
from ..san.events import SanEvent, SanEventKind
from ..san.iomodel import IoSimulator, SanPerfSample, VolumeLoad
from .workloads import ExternalWorkload, QueryJob

__all__ = ["Environment", "DiagnosisBundle"]

#: A scheduled fault action: called as fn(environment, fire_time).
FaultAction = Callable[["Environment", float], None]


@dataclass
class DiagnosisBundle:
    """Everything the DIADS tool may consume (monitoring + configuration).

    This is the hand-off boundary of Figure 5: the management tool's DB2
    database (here: the stores) plus the SAN configuration and the database
    catalog/config — but none of the simulators' hidden ground truth.
    """

    stores: MonitoringStores
    testbed: Testbed
    catalog: Catalog
    db_config: DbConfig
    initial_catalog: Catalog
    initial_config: DbConfig
    query_names: list[str] = field(default_factory=list)
    #: query name → declarative spec (None for pinned-plan jobs); Module PD
    #: uses specs to replay the optimizer under hypothetical reverted changes.
    query_specs: dict[str, object] = field(default_factory=dict)

    @property
    def topology(self):
        return self.testbed.topology

    # -- persistence -----------------------------------------------------
    def save(self, state_dir: str | os.PathLike, *, overwrite: bool = False) -> None:
        """Persist the whole bundle under ``state_dir``.

        Monitoring telemetry (metrics, runs with labels, config snapshots,
        events) is journalled into a :class:`~repro.storage.JsonlBackend`
        under ``state_dir/telemetry``; the object graph (testbed, catalogs,
        configs, query specs) goes into ``bundle.json`` via the lossless
        serializers in :mod:`repro.storage.serializers`.  The manifest is
        written atomically last, so a directory holding a ``bundle.json``
        is always a complete, loadable bundle.
        """
        from ..storage.jsonl import JsonlBackend
        from ..storage.serializers import (
            catalog_to_dict,
            dbconfig_to_dict,
            spec_to_dict,
            testbed_to_dict,
        )
        from ..storage.telemetry import TelemetryStore

        import shutil

        path = Path(state_dir)
        manifest = path / "bundle.json"
        if manifest.exists():
            if not overwrite:
                raise FileExistsError(
                    f"{manifest} already holds a saved bundle (pass overwrite=True)"
                )
            manifest.unlink()
        # No manifest means no complete bundle: any telemetry segments
        # present are leftovers of a save() that died before its manifest
        # landed — appending onto them would double every record, so start
        # clean either way.
        shutil.rmtree(path / "telemetry", ignore_errors=True)
        path.mkdir(parents=True, exist_ok=True)

        metrics = self.stores.metrics
        target = TelemetryStore.with_backend(
            JsonlBackend(path / "telemetry"),
            interval_s=metrics.interval_s,
            noise_sigma=metrics.noise_sigma,
            seed=metrics.seed,
            replay=False,
        )
        target.absorb(self.stores)
        target.close()

        payload = {
            "version": 1,
            "metrics": {
                "interval_s": metrics.interval_s,
                "noise_sigma": metrics.noise_sigma,
                "seed": metrics.seed,
            },
            "testbed": testbed_to_dict(self.testbed),
            "catalog": catalog_to_dict(self.catalog),
            "db_config": dbconfig_to_dict(self.db_config),
            "initial_catalog": catalog_to_dict(self.initial_catalog),
            "initial_config": dbconfig_to_dict(self.initial_config),
            "query_names": list(self.query_names),
            "query_specs": {
                name: spec_to_dict(spec) if spec is not None else None
                for name, spec in self.query_specs.items()
            },
        }
        from ..storage.backend import atomic_write_json

        atomic_write_json(manifest, payload, indent=2, sort_keys=True)

    def to_payload(self) -> dict:
        """The whole bundle as one JSON document (the process-pool handoff).

        Same content as :meth:`save` — telemetry records plus the serializer
        object graph — but crossing a queue instead of landing in a state
        dir: records are journalled into an in-memory backend and dumped per
        keyspace.  Everything is JSON-able by construction (these are the
        exact records :class:`~repro.storage.JsonlBackend` writes as JSON
        lines).
        """
        from ..storage.backend import MemoryBackend
        from ..storage.serializers import (
            catalog_to_dict,
            dbconfig_to_dict,
            spec_to_dict,
            testbed_to_dict,
        )
        from ..storage.telemetry import TelemetryStore

        metrics = self.stores.metrics
        backend = MemoryBackend()
        target = TelemetryStore.with_backend(
            backend,
            interval_s=metrics.interval_s,
            noise_sigma=metrics.noise_sigma,
            seed=metrics.seed,
            replay=False,
        )
        target.absorb(self.stores)
        return {
            "version": 1,
            "metrics": {
                "interval_s": metrics.interval_s,
                "noise_sigma": metrics.noise_sigma,
                "seed": metrics.seed,
            },
            "testbed": testbed_to_dict(self.testbed),
            "catalog": catalog_to_dict(self.catalog),
            "db_config": dbconfig_to_dict(self.db_config),
            "initial_catalog": catalog_to_dict(self.initial_catalog),
            "initial_config": dbconfig_to_dict(self.initial_config),
            "query_names": list(self.query_names),
            "query_specs": {
                name: spec_to_dict(spec) if spec is not None else None
                for name, spec in self.query_specs.items()
            },
            "telemetry": {
                keyspace: list(backend.scan(keyspace))
                for keyspace in backend.keyspaces()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DiagnosisBundle":
        """Rebuild a bundle from :meth:`to_payload` output.

        The replayed stores diagnose identically to the originals — same
        records, same sampling interval / noise sigma / seed — which is what
        makes worker-process diagnosis byte-for-byte equivalent to in-process
        diagnosis.
        """
        from ..storage.backend import MemoryBackend
        from ..storage.serializers import (
            catalog_from_dict,
            dbconfig_from_dict,
            spec_from_dict,
            testbed_from_dict,
        )
        from ..storage.telemetry import TelemetryStore

        backend = MemoryBackend()
        for keyspace, records in payload.get("telemetry", {}).items():
            backend.append_many(keyspace, records)
        metrics_meta = payload["metrics"]
        stores = TelemetryStore.with_backend(
            backend,
            interval_s=metrics_meta["interval_s"],
            noise_sigma=metrics_meta["noise_sigma"],
            seed=metrics_meta["seed"],
            replay=False,
        )
        # with_backend only auto-replays durable backends; the memory backend
        # already holds every record, so replay explicitly.
        stores.replay()
        return cls(
            stores=stores,
            testbed=testbed_from_dict(payload["testbed"]),
            catalog=catalog_from_dict(payload["catalog"]),
            db_config=dbconfig_from_dict(payload["db_config"]),
            initial_catalog=catalog_from_dict(payload["initial_catalog"]),
            initial_config=dbconfig_from_dict(payload["initial_config"]),
            query_names=list(payload.get("query_names", [])),
            query_specs={
                name: spec_from_dict(spec) if spec is not None else None
                for name, spec in payload.get("query_specs", {}).items()
            },
        )

    @classmethod
    def load(cls, state_dir: str | os.PathLike) -> "DiagnosisBundle":
        """Restore a bundle persisted with :meth:`save`.

        The returned bundle diagnoses identically to the one saved: stores
        replay byte-identically (same sampling interval, noise sigma, and
        seed), and the testbed/catalog/config graph round-trips through the
        same serializers that wrote it.
        """
        from ..storage.serializers import (
            catalog_from_dict,
            dbconfig_from_dict,
            spec_from_dict,
            testbed_from_dict,
        )
        from ..storage.telemetry import TelemetryStore

        path = Path(state_dir)
        payload = json.loads((path / "bundle.json").read_text())
        metrics_meta = payload["metrics"]
        stores = TelemetryStore.open(
            path / "telemetry",
            interval_s=metrics_meta["interval_s"],
            noise_sigma=metrics_meta["noise_sigma"],
            seed=metrics_meta["seed"],
        )
        return cls(
            stores=stores,
            testbed=testbed_from_dict(payload["testbed"]),
            catalog=catalog_from_dict(payload["catalog"]),
            db_config=dbconfig_from_dict(payload["db_config"]),
            initial_catalog=catalog_from_dict(payload["initial_catalog"]),
            initial_config=dbconfig_from_dict(payload["initial_config"]),
            query_names=list(payload.get("query_names", [])),
            query_specs={
                name: spec_from_dict(spec) if spec is not None else None
                for name, spec in payload.get("query_specs", {}).items()
            },
        )


class Environment:
    """Orchestrates the simulators over a timeline."""

    def __init__(
        self,
        testbed: Testbed,
        catalog: Catalog,
        db_config: DbConfig | None = None,
        tick_s: float = 60.0,
        sampling_interval_s: float = 300.0,
        monitor_noise_sigma: float = 0.05,
        executor_noise_sigma: float = 0.02,
        buffer_cache_mb: float = 96.0,
        seed: int = 0,
        stores: MonitoringStores | None = None,
    ) -> None:
        self.testbed = testbed
        self.catalog = catalog
        self.db_config = db_config or DbConfig()
        self.tick_s = tick_s
        self.seed = seed
        self.iosim = IoSimulator(testbed.topology)
        self.executor = Executor(
            catalog,
            buffer=BufferModel(cache_mb=buffer_cache_mb),
            locks=LockManager(),
            noise_sigma=executor_noise_sigma,
        )
        # An injected store bundle (e.g. a durable TelemetryStore.open(...))
        # wins over the sampling/noise/seed parameters: the caller owns the
        # metric-store configuration along with the backend.
        self.stores = stores or MonitoringStores(
            metrics=MetricStore(
                interval_s=sampling_interval_s,
                noise_sigma=monitor_noise_sigma,
                seed=seed,
            )
        )
        self.collector = Collector(stores=self.stores)
        self.data_multipliers: dict[str, float] = {}
        self.jobs: list[QueryJob] = []
        self.external: list[ExternalWorkload] = []
        self._scheduled: list[tuple[float, FaultAction]] = []
        self._active_query_windows: list[tuple[float, float, dict[str, VolumeLoad]]] = []
        self._run_counter = 0
        self._last_duration: dict[str, float] = {}
        self._baseline_duration: dict[str, float] = {}
        #: CPU contention windows: (start, end, cpu_multiplier, server_pct)
        self.cpu_contention: list[tuple[float, float, float, float]] = []
        self._baseline_latency: dict[str, float] = {}
        self._degraded_alert_until: dict[str, float] = {}
        self.initial_catalog = catalog.clone()
        self.initial_config = self.db_config
        #: Simulation clock; None until the first advance()/run() call.
        self._clock: float | None = None
        #: Sum of requested advance durations.  The tick loop aims at this,
        #: so fractional-tick chunk sizes cannot compound into clock drift.
        self._target: float = 0.0
        #: Serialises advance() calls: the runtime scheduler may hand chunks
        #: of the same environment to different pool threads over time, and a
        #: late duplicate submission must queue behind the live one instead
        #: of interleaving ticks (the simulation state is not shareable
        #: mid-tick).  Progress is still single-threaded per environment.
        self._advance_lock = threading.RLock()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def add_job(self, job: QueryJob) -> QueryJob:
        self.jobs.append(job)
        return job

    def add_external(self, workload: ExternalWorkload) -> ExternalWorkload:
        self.external.append(workload)
        return workload

    def schedule(self, time: float, action: FaultAction) -> None:
        """Schedule a fault/maintenance action at a simulation time."""
        self._scheduled.append((time, action))
        self._scheduled.sort(key=lambda pair: pair[0])

    def log_san_event(self, event: SanEvent) -> None:
        self.stores.events.add_san_event(event)

    def snapshot_all_config(self, time: float) -> None:
        self.collector.snapshot_config(time, "db_catalog", self.catalog.snapshot())
        self.collector.snapshot_config(time, "db_config", self.db_config.snapshot())
        self.collector.snapshot_config(time, "san", self.testbed.topology.snapshot())
        self.collector.snapshot_config(time, "access", self.testbed.access.snapshot())

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, duration_s: float, start_s: float = 0.0) -> DiagnosisBundle:
        """Advance the simulated world for ``duration_s`` seconds.

        Delegates to :meth:`advance`: the clock is continuous across calls,
        so a repeated ``run`` extends the same timeline (``start_s`` must
        then be 0 or the current clock — anything else raises).
        """
        self.advance(duration_s, start_s)
        return self.bundle()

    def advance(self, duration_s: float, start_s: float = 0.0) -> float:
        """Advance the world by ``duration_s`` and return the new clock.

        Unlike :meth:`run`, this is incremental: a streaming supervisor calls
        it chunk by chunk, and config snapshots / baseline calibration happen
        only on the very first call.  ``start_s`` is honoured only then.

        Chunks need not be tick multiples: the loop aims at the *cumulative*
        requested duration, so the clock never drifts more than one tick
        ahead of the total asked for, no matter how the chunks divide.

        Re-entrancy: calls are serialised on a per-environment lock, so the
        runtime scheduler may safely submit chunks from any worker thread —
        a second caller blocks until the in-flight chunk completes rather
        than interleaving simulation ticks.
        """
        with self._advance_lock:
            if self._clock is None:
                self._clock = start_s
                self._target = start_s
                self.snapshot_all_config(start_s)
                self._capture_baseline_latencies()
            elif start_s not in (0.0, self._clock):
                raise ValueError(
                    f"environment clock already at t={self._clock:g}; it cannot "
                    f"jump to start_s={start_s:g} (the timeline is continuous)"
                )
            self._target += duration_s
            while self._clock < self._target:
                t = self._clock
                self._fire_scheduled(t)
                for job in self.jobs:
                    for run_at in job.due_at(t, t + self.tick_s):
                        self._execute_job(job, run_at)
                self._monitor_tick(t)
                self._clock = t + self.tick_s
            return self._clock

    def advance_chunks(
        self, duration_s: float, chunk_s: float, start_s: float = 0.0
    ) -> Iterator[float]:
        """Advance ``duration_s`` in ``chunk_s`` steps, yielding after each.

        The cooperative form of :meth:`advance`: the generator returns
        control to its caller at every chunk boundary, which is where the
        runtime scheduler interleaves thousands of environments on a bounded
        worker pool.  The final chunk is clamped so the cumulative duration
        is exact; yields the clock after each completed chunk.
        """
        if chunk_s <= 0:
            raise ValueError("chunk_s must be positive")
        done = 0.0
        while done < duration_s:
            step = min(chunk_s, duration_s - done)
            yield self.advance(step, start_s if done == 0.0 else 0.0)
            done += step

    @property
    def clock(self) -> float:
        """Current simulation time (0.0 before the first advance)."""
        return self._clock if self._clock is not None else 0.0

    @property
    def advance_lock(self) -> threading.RLock:
        """The lock serialising :meth:`advance` calls.

        Readers that must see a *quiescent* environment — e.g. the fleet
        drill-down reading a sibling member's stores and topology while that
        member may be mid-chunk on a pool thread — hold it around their
        reads; the member's next chunk simply queues behind them.
        """
        return self._advance_lock

    def bundle(self) -> DiagnosisBundle:
        return DiagnosisBundle(
            stores=self.stores,
            testbed=self.testbed,
            catalog=self.catalog,
            db_config=self.db_config,
            initial_catalog=self.initial_catalog,
            initial_config=self.initial_config,
            query_names=[job.name for job in self.jobs],
            query_specs={job.name: job.spec for job in self.jobs},
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _capture_baseline_latencies(self) -> None:
        sample = self.iosim.quiesced_sample()
        for volume in self.testbed.topology.volumes:
            self._baseline_latency[volume.component_id] = sample.volume_read_latency(
                volume.component_id
            )

    def _fire_scheduled(self, t: float) -> None:
        due = [pair for pair in self._scheduled if pair[0] <= t]
        self._scheduled = [pair for pair in self._scheduled if pair[0] > t]
        for when, action in due:
            action(self, max(when, t))

    def _external_loads(self, t: float) -> dict[str, VolumeLoad]:
        loads: dict[str, VolumeLoad] = {}
        for workload in self.external:
            load = workload.load_at(t)
            if load is None:
                continue
            loads[workload.volume_id] = loads.get(workload.volume_id, VolumeLoad()) + load
        return loads

    def _query_loads(self, t: float) -> dict[str, VolumeLoad]:
        loads: dict[str, VolumeLoad] = {}
        for start, stop, qloads, _cpu in self._active_query_windows:
            if start <= t < stop:
                for vol, load in qloads.items():
                    loads[vol] = loads.get(vol, VolumeLoad()) + load
        return loads

    @staticmethod
    def _merge(*parts: dict[str, VolumeLoad]) -> dict[str, VolumeLoad]:
        merged: dict[str, VolumeLoad] = {}
        for part in parts:
            for vol, load in part.items():
                merged[vol] = merged.get(vol, VolumeLoad()) + load
        return merged

    def _plan_for(self, job: QueryJob) -> PlanOperator:
        if job.pinned_plan is not None:
            return job.pinned_plan
        return Optimizer(self.catalog, self.db_config).plan(job.spec)  # type: ignore[arg-type]

    def _execute_job(self, job: QueryJob, run_at: float) -> QueryRun:
        plan = self._plan_for(job)
        # The offered-load estimate uses a fixed per-job baseline duration:
        # IOPS demand is a property of the plan and the data, not of how slow
        # the SAN happens to be this run.
        if job.name not in self._baseline_duration:
            self._baseline_duration[job.name] = self._estimate_duration(plan)
        est_duration = self._baseline_duration[job.name]
        raw_qload = self.executor.estimate_volume_load(
            plan, est_duration, self.data_multipliers
        )
        qloads = {
            vol: VolumeLoad(
                read_iops=spec["read_iops"],
                write_iops=spec["write_iops"],
                sequential_fraction=spec["sequential_fraction"],
            )
            for vol, spec in raw_qload.items()
        }
        combined = self._merge(self._external_loads(run_at), qloads)
        sample = self.iosim.simulate(combined)
        latencies = {
            v.component_id: sample.volume_read_latency(v.component_id)
            for v in self.testbed.topology.volumes
        }
        self._run_counter += 1
        rng = np.random.default_rng(self.seed * 1_000_003 + self._run_counter)
        run = self.executor.execute(
            plan,
            run_at,
            latencies,
            data_multipliers=self.data_multipliers,
            run_id=f"{job.name}#{self._run_counter}",
            query_name=job.name,
            rng=rng,
            cpu_multiplier=self._cpu_multiplier_at(run_at),
        )
        self.collector.collect_query_run(run)
        self._last_duration[job.name] = run.duration
        cpu_share = min(run.db_metrics.get("cpuTime", 0.0) / max(run.duration, 1e-9), 1.0)
        self._active_query_windows.append((run_at, run.end_time, qloads, cpu_share))
        return run

    def _cpu_multiplier_at(self, t: float) -> float:
        factor = 1.0
        for start, stop, multiplier, _pct in self.cpu_contention:
            if start <= t < stop:
                factor *= multiplier
        return factor

    def _estimate_duration(self, plan: PlanOperator) -> float:
        """Calibration run against quiesced latencies (not recorded)."""
        sample = self.iosim.quiesced_sample()
        latencies = {
            v.component_id: sample.volume_read_latency(v.component_id)
            for v in self.testbed.topology.volumes
        }
        probe = self.executor.execute(
            plan,
            0.0,
            latencies,
            data_multipliers=self.data_multipliers,
            run_id="calibration",
            rng=np.random.default_rng(self.seed),
        )
        return probe.duration

    def _monitor_tick(self, t: float) -> None:
        loads = self._merge(self._external_loads(t), self._query_loads(t))
        sample = self.iosim.simulate(loads)
        self.collector.collect_san(t, sample)
        self._emit_degradation_events(t, sample)

        # Server CPU reflects the query's CPU *share*: an I/O-bound slowdown
        # leaves the CPU idler during runs, not busier.  External CPU hogs
        # (cpu-saturation faults) add their own usage.
        cpu = 12.0
        for start, stop, _loads, cpu_share in self._active_query_windows:
            if start <= t < stop:
                cpu += 80.0 * cpu_share
        for start, stop, _mult, server_pct in self.cpu_contention:
            if start <= t < stop:
                cpu += server_pct
        self.collector.collect_server(t, self.testbed.db_server_id, cpu_pct=min(cpu, 98.0))
        total_bytes = sum(
            sample.get(v.component_id, "bytesRead")
            + sample.get(v.component_id, "bytesWritten")
            for v in self.testbed.topology.volumes
        )
        for switch in self.testbed.topology.switches:
            self.collector.collect_network(t, switch.component_id, total_bytes)
        self.collector.collect_db_tick(t, locks_held=float(self.executor.locks.locks_held(t)))

    def _emit_degradation_events(self, t: float, sample: SanPerfSample) -> None:
        """User-defined trigger: volume response time over 3x its baseline."""
        for volume in self.testbed.topology.volumes:
            vid = volume.component_id
            baseline = self._baseline_latency.get(vid)
            if baseline is None or baseline <= 0:
                continue
            if sample.volume_read_latency(vid) <= 3.0 * baseline:
                continue
            if t < self._degraded_alert_until.get(vid, -1.0):
                continue
            self._degraded_alert_until[vid] = t + 3600.0  # 1h cooldown per volume
            self.log_san_event(
                SanEvent(
                    time=t,
                    kind=SanEventKind.VOLUME_PERF_DEGRADED,
                    component_id=vid,
                    details={"readTime": round(sample.volume_read_latency(vid), 2)},
                )
            )
